#!/usr/bin/env python
"""DSA resilience + design-space exploration (paper Sections V-E and V-H).

Part 1 injects faults into the GEMM accelerator's scratchpads (input matrix
vs output matrix — the Figure 14 asymmetry).  Part 2 sweeps the number of
parallel functional units and shows the Figure 17 trade-off: fewer FUs mean
longer runtimes AND higher scratchpad vulnerability.

Run:  python examples/accelerator_resilience.py
"""

import os

from repro.accel.campaign import AccelCampaignSpec, accel_golden, run_accel_campaign
from repro.accel.dataflow import FUConfig
from repro.core.report import render_table

FAULTS = int(os.environ.get("MARVEL_FAULTS", 40))


def component_breakdown() -> None:
    print("== GEMM scratchpad vulnerability (input vs output SPM) ==")
    rows = []
    for component in ("MATRIX1", "MATRIX3"):
        spec = AccelCampaignSpec(
            design="gemm", component=component, scale="default",
            faults=FAULTS, seed=3,
        )
        res = run_accel_campaign(spec)
        role = "input (DMA'd once)" if component == "MATRIX1" else "output (streamed)"
        rows.append((component, role, res.avf, res.sdc_avf, res.crash_avf))
    print(render_table(["component", "role", "AVF", "SDC", "Crash"], rows))
    print()


def fu_sweep() -> None:
    print("== Functional-unit design-space exploration (Figure 17) ==")
    rows = []
    for count in (1, 2, 4, 8, 16):
        fu = FUConfig.uniform(count)
        spec = AccelCampaignSpec(
            design="gemm", component="MATRIX1", scale="default",
            faults=FAULTS, seed=5, fu=fu,
        )
        golden = accel_golden(spec)
        res = run_accel_campaign(spec)
        rows.append((count, golden.cycles, fu.total_units, res.avf))
    print(render_table(["parallel FUs", "cycles", "area (FU units)", "AVF"], rows))
    print("\nfewer functional units -> slower kernels -> live data exposed"
          "\nlonger -> higher AVF (Observation 8)")


def main() -> None:
    component_breakdown()
    fu_sweep()


if __name__ == "__main__":
    main()
