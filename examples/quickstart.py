#!/usr/bin/env python
"""Quickstart: one statistical fault-injection campaign, start to finish.

Injects transient single-bit faults into the integer physical register file
while the out-of-order RISC-V core runs the qsort workload, then prints the
AVF report with its SDC/Crash decomposition, the HVF, and the achieved
statistical error margin.

Run:  python examples/quickstart.py
"""

from repro import CampaignSpec, run_campaign, sim_config
from repro.core.report import render_table


def main() -> None:
    spec = CampaignSpec(
        isa="rv",                  # 'rv' | 'arm' | 'x86'
        workload="qsort",          # any of the 15 MiBench-analog workloads
        target="regfile_int",      # see repro.core.targets.TARGETS
        cfg=sim_config(),          # the scaled Table II configuration
        scale="tiny",
        faults=60,                 # statistical sample size
        seed=42,
    )
    print(f"running {spec.faults} fault injections "
          f"({spec.isa}/{spec.workload}/{spec.target}) ...")
    result = run_campaign(spec)

    print()
    print(render_table(
        ["metric", "value"],
        [
            ("AVF", result.avf),
            ("  SDC share", result.sdc_avf),
            ("  Crash share", result.crash_avf),
            ("HVF (commit-visible)", result.hvf),
            ("error margin (95% conf)", result.error_margin),
            ("golden cycles", result.golden.cycles),
        ],
    ))

    print("\nper-fault outcomes:")
    from collections import Counter

    outcomes = Counter(
        (r.outcome.value, r.masked_reason or r.crash_reason or "-")
        for r in result.records
    )
    for (outcome, detail), count in outcomes.most_common():
        print(f"  {outcome:8s} {detail:20s} x{count}")


if __name__ == "__main__":
    main()
