#!/usr/bin/env python
"""Full heterogeneous SoC simulation (the paper's Figure 1 architecture).

Builds a complete system — out-of-order host CPU, memory hierarchy,
memory-mapped GEMM accelerator, DMA, and the platform interrupt controller
(GIC on Arm hosts, PLIC on RISC-V, per the paper's port) — from a
gem5-SALAM-style YAML description, runs the driver→MMR→kernel→IRQ→readback
flow on all three ISAs, and then demonstrates a DSA fault observed from the
host side.

Run:  python examples/heterogeneous_soc.py
"""

from repro.accel.campaign import AccelInjector
from repro.accel.configgen import generate_soc
from repro.accel_designs import get_design
from repro.core.faults import FaultMask
from repro.core.presets import sim_config
from repro.core.report import render_table
from repro.soc.system import HeterogeneousSoC

DESCRIPTION = """
system:
  isa: {isa}
  preset: sim
  scale: tiny
accelerator:
  design: gemm
  fu:
    alu: 4
    mul: 2
    fpu: 8
    div: 1
"""


def run_all_isas() -> bytes:
    print("== SoC runs: driver -> MMR start -> DMA -> kernel -> IRQ -> readback ==")
    rows = []
    checksum = b""
    for isa in ("rv", "arm", "x86"):
        soc = generate_soc(DESCRIPTION.format(isa=isa))
        result = soc.run()
        assert result.ok, result.crashed
        checksum = result.output
        rows.append((
            isa,
            type(soc.controller).__name__,
            result.cpu_cycles,
            result.accel_cycles,
            result.output.hex(),
        ))
    print(render_table(
        ["host ISA", "intc", "CPU cycles", "DSA cycles", "result checksum"], rows
    ))
    print("identical checksums: the heterogeneous flow is ISA-independent\n")
    return checksum


def inject_dsa_fault(golden_checksum: bytes) -> None:
    print("== DSA fault seen end-to-end from the host ==")
    accel = get_design("gemm").instantiate()
    mask = FaultMask.single("accel:gemm:MATRIX1", 0, bit=16, cycle=1)
    injector = AccelInjector(mask, accel.mem("MATRIX1"))
    soc = HeterogeneousSoC("rv", sim_config(), accel, scale="tiny",
                           accel_injector=injector)
    result = soc.run()
    print(f"fault-free checksum: {golden_checksum.hex()}")
    print(f"faulty checksum:     {result.output.hex()}")
    print("silent data corruption crossed the DMA/MMR boundary into host "
          "software" if result.output != golden_checksum else "fault masked")


def main() -> None:
    golden = run_all_isas()
    inject_dsa_fault(golden)


if __name__ == "__main__":
    main()
