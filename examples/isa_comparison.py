#!/usr/bin/env python
"""Cross-ISA vulnerability comparison (a miniature of the paper's Figures 4-6).

Runs the same workloads, on the same microarchitecture, compiled for all
three ISAs, and compares the AVF of the integer register file, the L1
instruction cache, and the L1 data cache — the paper's headline use case:
"which ISA performs better under fault conditions?"

Run:  python examples/isa_comparison.py            (quick)
      MARVEL_FAULTS=200 python examples/isa_comparison.py   (tighter margins)
"""

import os

from repro import CampaignSpec, run_campaign, sim_config, weighted_avf
from repro.core.report import render_bars

WORKLOADS = ["qsort", "crc32", "smooth", "sha"]
TARGETS = ["regfile_int", "l1i", "l1d"]
FAULTS = int(os.environ.get("MARVEL_FAULTS", 30))


def main() -> None:
    cfg = sim_config()
    for target in TARGETS:
        labels, values = [], []
        for isa in ("arm", "x86", "rv"):
            avfs, times = [], []
            for workload in WORKLOADS:
                res = run_campaign(CampaignSpec(
                    isa=isa, workload=workload, target=target, cfg=cfg,
                    scale="tiny", faults=FAULTS, seed=7,
                ))
                avfs.append(res.avf)
                times.append(res.golden.cycles)
            labels.append(isa)
            values.append(weighted_avf(avfs, times))
        print(f"\nweighted AVF — {target} "
              f"({FAULTS} faults x {len(WORKLOADS)} workloads per ISA)")
        print(render_bars(labels, values))


if __name__ == "__main__":
    main()
