#!/usr/bin/env python
"""Performance-aware reliability comparison: the OPF metric (Section V-G).

Runs the same four algorithms (GEMM, BFS, FFT, KNN) on a standalone RISC-V
CPU and on their dedicated accelerators, measures each platform's AVF by
fault injection, and combines vulnerability with throughput into
Operations-per-Failure: OPF = OPS / AVF.

The paper's Observation 7 — the accelerator is *more* vulnerable per run
yet completes *more* correct executions between failures — falls out of the
numbers.

Run:  python examples/performance_aware_opf.py
"""

import os

from repro.analysis import figures
from repro.core.report import render_table

FAULTS = int(os.environ.get("MARVEL_FAULTS", 24))


def main() -> None:
    fig = figures.fig16_opf(faults=FAULTS)
    print(fig.figure)
    print()
    print(render_table(
        ["algorithm", "platform", "AVF", "cycles/run", "OPF (ops/failure)"],
        [
            (r["algorithm"], r["platform"], r["avf"], r["cycles"], f"{r['opf']:.3e}")
            for r in fig.rows
        ],
    ))
    print()
    by = {(r["algorithm"], r["platform"]): r for r in fig.rows}
    for algo in ("gemm", "bfs", "fft", "md_knn"):
        cpu, dsa = by[(algo, "cpu")], by[(algo, "dsa")]
        speed = cpu["cycles"] / dsa["cycles"]
        winner = "DSA" if dsa["opf"] >= cpu["opf"] else "CPU"
        print(f"{algo:8s}: DSA {speed:4.1f}x faster, "
              f"AVF {dsa['avf']:.2f} vs {cpu['avf']:.2f} -> OPF winner: {winner}")


if __name__ == "__main__":
    main()
