"""Property tests for the dead-window interval algebra (Hypothesis).

:class:`LivenessTrack` compresses a golden event stream into dead windows
queried by binary search.  The reference model here replays the raw event
stream instead: a flip at the top of cycle ``c`` is dead iff some kill at
cycle ``k`` whose predecessor event (of any kind) sat at cycle ``p < k``
satisfies ``p < c <= k``.  Every property pits the compressed structure
against that definition, plus the specific laws the campaign soundness
argument leans on: write-write kills, reads pin, protection decode points
count as reads, queries never mutate, and the open tail is never claimed.

The seed-pinned fingerprint tests at the bottom anchor the *production*
map: if a recorder seam or the window algebra changes behaviour, the
golden-run fingerprint moves and the regression fails loudly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.liveness import KILL, PIN, LivenessMap, LivenessTrack

# an event stream: kinds drawn freely, cycles made non-decreasing by
# accumulating non-negative gaps (golden streams are monotone by clock)
event_streams = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),
              st.sampled_from([PIN, KILL])),
    max_size=60,
).map(lambda gaps: [
    (cycle, kind) for cycle, kind in zip(
        (sum(g for g, _ in gaps[:i + 1]) for i in range(len(gaps))),
        (k for _, k in gaps),
    )
])


def replay(events):
    track = LivenessTrack()
    for cycle, kind in events:
        track.event(cycle, kind)
    return track


def ref_dead(events, c: int) -> bool:
    prev = -1
    for cycle, kind in events:
        if kind == KILL and prev < c <= cycle:
            return True
        prev = cycle
    return False


def query_range(events):
    last = events[-1][0] if events else 0
    return range(0, last + 3)


@settings(max_examples=300, deadline=None)
@given(event_streams)
def test_dead_matches_reference_replay(events):
    track = replay(events)
    for c in query_range(events):
        assert track.dead(c) == ref_dead(events, c), (events, c)


@settings(max_examples=200, deadline=None)
@given(event_streams)
def test_query_is_pure_and_idempotent(events):
    track = replay(events)
    before = (track.last, track.windows())
    results = [track.dead(c) for c in query_range(events)]
    again = [track.dead(c) for c in query_range(events)]
    assert results == again
    assert (track.last, track.windows()) == before


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 100), st.integers(1, 100))
def test_write_write_kills(first, gap):
    """A bit written then overwritten with nothing in between is dead from
    the start up to the second write: the first-ever write claims back to
    the beginning of time (a flip into a never-touched bit that is then
    written dies unobserved), and the overwrite claims the span between."""
    track = LivenessTrack()
    track.kill(first)
    track.kill(first + gap)
    for c in range(first + gap + 2):
        assert track.dead(c) == (c <= first + gap)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 50), st.integers(1, 50), st.integers(1, 50))
def test_read_pins_the_window(write, to_read, to_kill):
    """A read between two writes splits the claim: nothing at or before
    the read may be claimed by the later overwrite."""
    read = write + to_read
    kill = read + to_kill
    track = LivenessTrack()
    track.kill(write)
    track.pin(read)
    track.kill(kill)
    for c in range(kill + 2):
        # claimed: up to the first write (never-touched bit dies there)
        # and strictly after the read up to the overwrite.  The region
        # (write, read] is NOT dead — its first event is the observation.
        assert track.dead(c) == (c <= write or read < c <= kill), (
            c, track.windows())


@settings(max_examples=200, deadline=None)
@given(event_streams, st.lists(st.integers(0, 300), max_size=10))
def test_decode_counts_as_read(events, decode_extra):
    """Interleaving protection decode points behaves exactly like
    interleaving architectural reads (decode is an observation)."""
    cycles = sorted(decode_extra)

    def merged(use_decode):
        track = LivenessTrack()
        stream = sorted(
            [(c, k, False) for c, k in events] +
            [(c, PIN, True) for c in cycles],
            key=lambda t: t[0],
        )
        for cycle, kind, is_decode in stream:
            if is_decode and use_decode:
                track.decode(cycle)
            elif kind == KILL:
                track.kill(cycle)
            else:
                track.pin(cycle)
        return track

    with_decode, with_pin = merged(True), merged(False)
    assert with_decode.windows() == with_pin.windows()
    assert with_decode.last == with_pin.last


@settings(max_examples=200, deadline=None)
@given(event_streams)
def test_open_tail_never_claimed(events):
    track = replay(events)
    last = events[-1][0] if events else -1
    for c in (last + 1, last + 2, last + 1000):
        assert not track.dead(c)


@settings(max_examples=200, deadline=None)
@given(event_streams)
def test_windows_are_disjoint_and_ordered(events):
    """The bisect query relies on strictly increasing window ends and
    non-overlapping (start, end] intervals."""
    track = replay(events)
    windows = track.windows()
    for start, end in windows:
        assert start < end
    for (_, e1), (s2, e2) in zip(windows, windows[1:]):
        assert e1 <= s2 < e2


@settings(max_examples=100, deadline=None)
@given(event_streams)
def test_same_cycle_kill_claims_nothing(events):
    """A kill at the same cycle as the previous event opens no window —
    the observation at that cycle already pinned the value."""
    if not events:
        return
    track = replay(events)
    n = len(track.windows())
    track.kill(events[-1][0])          # same-cycle kill
    assert len(track.windows()) == n


# ------------------------------------------------------------ map queries


def test_map_never_claims_unknown_structures_or_segments():
    liveness = LivenessMap()
    assert not liveness.dead("regfile_int", 0, 0, 10)
    assert liveness.window_count("regfile_int") == 0
    assert liveness.structures() == []


# ------------------------------------------------------------ fingerprints

#: seed-pinned regression anchors: recorded from the deterministic golden
#: runs below.  A change here means recorder seams or window algebra
#: changed behaviour — bump deliberately, with an explanation, or not at all.
CPU_GOLDEN_FINGERPRINT = (
    "dea1f5afa0c0fc6a9c7b8800c6be0f0eb6b598d3174528717aad682df0d8f8e3"
)
ACCEL_GOLDEN_FINGERPRINT = (
    "9e9a89cadc3f60c4329abd89ddb89e4e8a16b6c19394c303ba1601fb32a5e658"
)


@pytest.fixture(scope="module")
def sim_cfg():
    from repro.core.presets import sim_config
    return sim_config()


def test_cpu_liveness_fingerprint_regression(sim_cfg):
    from repro.core.campaign import golden_run

    golden = golden_run("rv", "crc32", sim_cfg, "tiny", liveness=True)
    assert golden.liveness is not None
    assert golden.liveness.fingerprint() == CPU_GOLDEN_FINGERPRINT
    # crc32 computes in registers: no stores ever enter the SQ, and the
    # pre-analysis must not invent windows for an idle structure
    assert golden.liveness.window_count("sq") == 0
    assert golden.liveness.window_count("regfile_int") > 0
    assert golden.liveness.window_count("l1d") > 0


def test_accel_liveness_fingerprint_regression():
    from repro.accel.campaign import AccelCampaignSpec, accel_golden

    spec = AccelCampaignSpec(design="gemm", component="MATRIX3")
    golden = accel_golden(spec, liveness=True)
    assert golden.liveness is not None
    assert golden.liveness.fingerprint() == ACCEL_GOLDEN_FINGERPRINT
    # input matrices are only ever read post-DMA: no dead windows; the
    # output accumulator is overwritten every partial sum: plenty
    assert golden.liveness.window_count("accel:gemm:MATRIX1") == 0
    assert golden.liveness.window_count("accel:gemm:MATRIX3") > 0


def test_fingerprint_is_deterministic(sim_cfg):
    from repro.core import campaign as campaign_mod

    golden = campaign_mod.golden_run("rv", "crc32", sim_cfg, "tiny",
                                     liveness=True)
    campaign_mod._GOLDEN_CACHE.clear()
    again = campaign_mod.golden_run("rv", "crc32", sim_cfg, "tiny",
                                    liveness=True)
    assert golden.liveness.fingerprint() == again.liveness.fingerprint()
