"""Experiment-matrix runner: grid parsing, scheduling, resume identity."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.journal import CampaignJournal
from repro.core.matrix import (
    MatrixError,
    grid_from_dict,
    load_grid,
    read_manifest,
    run_matrix,
)
from repro.core.telemetry import Telemetry

GRID = {
    "matrix": {"name": "t"},
    "cpu": {
        "workloads": ["crc32"], "targets": ["regfile_int", "lq"],
        "faults": 4, "seed": 3,
    },
}


# ------------------------------------------------------------ grid parsing


def test_grid_expands_cpu_cross_product():
    grid = grid_from_dict({
        "matrix": {"name": "g"},
        "cpu": {"isas": ["rv", "arm"], "workloads": ["crc32", "sha"],
                "targets": ["regfile_int"], "faults": 7},
    })
    assert {c.key for c in grid.cells} == {
        "cpu-rv-crc32-regfile_int", "cpu-rv-sha-regfile_int",
        "cpu-arm-crc32-regfile_int", "cpu-arm-sha-regfile_int",
    }
    assert all(c.spec.faults == 7 for c in grid.cells)
    assert grid.adaptive is None


def test_grid_accel_components_default_to_paper_targets():
    grid = grid_from_dict({
        "accel": {"designs": ["gemm"], "faults": 3},
    })
    assert {c.key for c in grid.cells} == {
        "accel-gemm-MATRIX1", "accel-gemm-MATRIX3",
    }
    assert all(c.kind == "accel" for c in grid.cells)


def test_grid_rejects_unknown_sections_and_keys():
    with pytest.raises(MatrixError, match="unknown key"):
        grid_from_dict({"cpus": {"workloads": ["crc32"]}})
    with pytest.raises(MatrixError, match="unknown key"):
        grid_from_dict({"cpu": {"workloads": ["crc32"],
                                "targets": ["lq"], "turbo": True}})
    with pytest.raises(MatrixError, match="non-empty"):
        grid_from_dict({"cpu": {"workloads": [], "targets": ["lq"]}})
    with pytest.raises(MatrixError, match="zero cells"):
        grid_from_dict({"matrix": {"name": "empty"}})
    with pytest.raises(MatrixError, match="fault model"):
        grid_from_dict({"cpu": {"workloads": ["crc32"], "targets": ["lq"],
                                "model": "cosmic"}})


def test_grid_fingerprint_distinguishes_documents():
    a = grid_from_dict(dict(GRID))
    b = grid_from_dict({**GRID, "cpu": {**GRID["cpu"], "seed": 4}})
    assert a.fingerprint != b.fingerprint
    assert a.fingerprint == grid_from_dict(dict(GRID)).fingerprint


def test_load_grid_parses_toml(tmp_path):
    path = tmp_path / "grid.toml"
    path.write_text(
        '[matrix]\nname = "toml-grid"\n'
        '[cpu]\nworkloads = ["crc32"]\ntargets = ["lq"]\nfaults = 2\n'
        '[adaptive]\ntarget_margin = 0.3\nbatch = 5\nmin_faults = 5\n'
    )
    grid = load_grid(path)
    assert grid.name == "toml-grid"
    assert [c.key for c in grid.cells] == ["cpu-rv-crc32-lq"]
    assert grid.adaptive.target_margin == 0.3
    with pytest.raises(FileNotFoundError):
        load_grid(tmp_path / "nope.toml")
    bad = tmp_path / "bad.toml"
    bad.write_text("[cpu\n")
    with pytest.raises(MatrixError):
        load_grid(bad)


# ------------------------------------------------------- fault-model cells


def test_grid_fault_model_list_fans_out_cells():
    """A fault_model list multiplies cells like protection lists do; the
    uniform entry keeps the unsuffixed key (and an unset spec field) so
    its journal stays byte-identical to a fault-model-free grid."""
    grid = grid_from_dict({
        "matrix": {"name": "fm"},
        "cpu": {"workloads": ["crc32"], "targets": ["l1i"], "faults": 3,
                "fault_model": ["uniform", "burst:arity=2",
                                {"name": "error-map", "rows": "4/2/1"}]},
    })
    by_key = {c.key: c for c in grid.cells}
    assert set(by_key) == {
        "cpu-rv-crc32-l1i",
        "cpu-rv-crc32-l1i@burst-arity=2",
        "cpu-rv-crc32-l1i@error-map-rows=4_2_1",
    }
    assert by_key["cpu-rv-crc32-l1i"].spec.fault_model is None
    assert by_key["cpu-rv-crc32-l1i@burst-arity=2"].spec.fault_model \
        .describe() == "burst:arity=2"
    em = by_key["cpu-rv-crc32-l1i@error-map-rows=4_2_1"].spec.fault_model
    assert em.param_dict() == {"rows": "4/2/1"}


def test_grid_fault_model_accel_section():
    grid = grid_from_dict({
        "accel": {"designs": ["gemm"], "components": ["MATRIX1"],
                  "faults": 2, "fault_model": "error-map:rows=2/1"},
    })
    (cell,) = grid.cells
    assert cell.key == "accel-gemm-MATRIX1@error-map-rows=2_1"
    assert cell.spec.fault_model.name == "error-map"


def test_grid_fault_model_rejections():
    base = {"workloads": ["crc32"], "targets": ["regfile_int"], "faults": 2}
    with pytest.raises(MatrixError, match="unknown fault model"):
        grid_from_dict({"cpu": {**base, "fault_model": "gauss"}})
    with pytest.raises(MatrixError, match="empty list"):
        grid_from_dict({"cpu": {**base, "fault_model": []}})
    with pytest.raises(MatrixError, match="strings or tables"):
        grid_from_dict({"cpu": {**base, "fault_model": [3]}})
    # adversarial only targets caches — refused at grid-expansion time
    with pytest.raises(MatrixError, match="cache"):
        grid_from_dict({"cpu": {**base, "fault_model": "adversarial"}})
    with pytest.raises(MatrixError, match="CPU campaigns only"):
        grid_from_dict({"accel": {"designs": ["gemm"], "faults": 2,
                                  "fault_model": "burst"}})


def test_grid_error_map_file_resolves_relative_to_grid(tmp_path):
    (tmp_path / "undervolt.toml").write_text("rows = [9, 1]\n")
    grid_path = tmp_path / "grid.toml"
    grid_path.write_text(
        '[cpu]\nworkloads = ["crc32"]\ntargets = ["lq"]\nfaults = 2\n'
        'fault_model = "error-map:map=undervolt.toml"\n'
    )
    grid = load_grid(grid_path)
    (cell,) = grid.cells
    # the map file is inlined: the spec (and journal) never needs it again
    assert cell.spec.fault_model.param_dict() == {"rows": "9/1"}
    assert cell.key == "cpu-rv-crc32-lq@error-map-rows=9_1"


def test_grid_cell_seeds_are_decorrelated_sub_seeds():
    """Satellite bugfix: feeding the raw grid seed into every cell made
    cells with coinciding geometry/window draw identical fault sites.
    Each cell now gets a stable sub-seed hashed from its identity; the
    derived seed lives in the cell spec, so standalone replays of a cell
    spec remain byte-identical.  Pinned: these seeds are journal-resume
    anchors, not values to update casually."""
    from repro.core.matrix import _cell_seed

    assert _cell_seed(1, "cpu", "rv", "crc32", "regfile_int") == \
        11788026300808674172
    assert _cell_seed(1, "accel", "gemm", "MATRIX1") == 5724332883000996998

    grid = grid_from_dict(dict(GRID))
    seeds = {c.key: c.spec.seed for c in grid.cells}
    assert seeds["cpu-rv-crc32-regfile_int"] == _cell_seed(
        3, "cpu", "rv", "crc32", "regfile_int")
    assert seeds["cpu-rv-crc32-lq"] == _cell_seed(3, "cpu", "rv", "crc32",
                                                  "lq")
    # the whole point: coinciding cells no longer share a seed
    assert len(set(seeds.values())) == len(seeds)
    # and expansion is deterministic
    assert {c.key: c.spec.seed
            for c in grid_from_dict(dict(GRID)).cells} == seeds


def test_run_matrix_fault_model_cell_matches_standalone(tmp_path, cfg):
    """A burst cell's matrix journal is byte-identical to a standalone
    campaign of the cell's spec (generator + sub-seed included)."""
    from repro.core.campaign import run_campaign

    grid = grid_from_dict({
        "matrix": {"name": "fm-run"},
        "cpu": {"workloads": ["crc32"], "targets": ["regfile_int"],
                "faults": 3, "fault_model": "burst:arity=2"},
    })
    run_matrix(grid, tmp_path / "m")
    (cell,) = grid.cells
    standalone = tmp_path / "standalone.jsonl"
    run_campaign(cell.spec, journal=standalone)
    matrix_journal = tmp_path / "m" / "cells" / f"{cell.key}.jsonl"
    assert matrix_journal.read_bytes() == standalone.read_bytes()
    header = json.loads(matrix_journal.read_text().splitlines()[0])
    assert header["spec"]["fault_model"]["name"] == "burst"


# ------------------------------------------------------------ matrix runs


def test_run_matrix_cells_match_standalone_campaigns(tmp_path, cfg):
    """Every cell journal is byte-identical to the one a standalone serial
    campaign with the same spec would write."""
    from repro.core.campaign import run_campaign

    grid = grid_from_dict(GRID)
    result = run_matrix(grid, tmp_path / "m")
    assert len(result.cells) == 2
    for cell in grid.cells:
        standalone = tmp_path / f"{cell.key}-standalone.jsonl"
        run_campaign(cell.spec, journal=standalone)
        matrix_journal = tmp_path / "m" / "cells" / f"{cell.key}.jsonl"
        assert matrix_journal.read_bytes() == standalone.read_bytes()


def test_run_matrix_manifest_and_summaries(tmp_path):
    grid = grid_from_dict(GRID)
    result = run_matrix(grid, tmp_path / "m")
    manifest = read_manifest(tmp_path / "m")
    assert manifest["name"] == "t"
    assert manifest["fingerprint"] == grid.fingerprint
    for key, cell in manifest["cells"].items():
        assert cell["status"] == "exhausted"
        assert cell["faults_done"] == cell["budget"] == 4
        assert not cell["stopped_early"]
        assert (tmp_path / "m" / cell["journal"]).exists()
    rows = {c["key"]: c for c in result.cells}
    assert rows.keys() == manifest["cells"].keys()
    assert all(c["faults"] == 4 for c in result.cells)
    text = result.render()
    assert "regfile_int" in text and "lq" in text and "wAVF" in text


def test_run_matrix_refuses_mixing_without_resume(tmp_path):
    grid = grid_from_dict(GRID)
    run_matrix(grid, tmp_path / "m")
    with pytest.raises(MatrixError, match="resume=True"):
        run_matrix(grid, tmp_path / "m")
    other = grid_from_dict({**GRID, "cpu": {**GRID["cpu"], "seed": 9}})
    with pytest.raises(MatrixError, match="different grid"):
        run_matrix(other, tmp_path / "m", resume=True)


def test_run_matrix_resume_of_finished_matrix_is_noop(tmp_path):
    grid = grid_from_dict(GRID)
    run_matrix(grid, tmp_path / "m")
    cells = tmp_path / "m" / "cells"
    before = {p.name: p.read_bytes() for p in cells.glob("*.jsonl")}
    result = run_matrix(grid, tmp_path / "m", resume=True)
    after = {p.name: p.read_bytes() for p in cells.glob("*.jsonl")}
    assert before == after
    assert all(c["resumed"] == 4 for c in result.cells)


def test_run_matrix_resume_from_partial_journals_is_byte_identical(tmp_path):
    """Kill-at-any-prefix equivalence without the racy kill: truncate each
    cell journal to a different record count, resume, and require the final
    bytes to match the uninterrupted run exactly."""
    grid = grid_from_dict(GRID)
    run_matrix(grid, tmp_path / "full")
    full = {
        p.name: p.read_bytes()
        for p in (tmp_path / "full" / "cells").glob("*.jsonl")
    }

    run_matrix(grid, tmp_path / "part")
    cells = tmp_path / "part" / "cells"
    for i, name in enumerate(sorted(full)):
        lines = (cells / name).read_bytes().splitlines(keepends=True)
        keep = 1 + i  # header + i records; different prefix per cell
        (cells / name).write_bytes(b"".join(lines[:keep]))
    # the stale manifest still claims completion — resume must re-derive
    # progress from the journals, not trust the manifest
    resumed = run_matrix(grid, tmp_path / "part", resume=True)
    after = {p.name: p.read_bytes() for p in cells.glob("*.jsonl")}
    assert after == full
    assert {c["key"]: c["resumed"] for c in resumed.cells} == {
        "cpu-rv-crc32-lq": 0, "cpu-rv-crc32-regfile_int": 1,
    }


def test_run_matrix_resume_repairs_torn_tail(tmp_path):
    grid = grid_from_dict(GRID)
    run_matrix(grid, tmp_path / "full")
    full = {
        p.name: p.read_bytes()
        for p in (tmp_path / "full" / "cells").glob("*.jsonl")
    }
    run_matrix(grid, tmp_path / "part")
    cells = tmp_path / "part" / "cells"
    victim = sorted(full)[0]
    lines = (cells / victim).read_bytes().splitlines(keepends=True)
    # keep header + 2 records, then a torn fragment of the third
    (cells / victim).write_bytes(b"".join(lines[:3]) + lines[3][:25])
    run_matrix(grid, tmp_path / "part", resume=True)
    after = {p.name: p.read_bytes() for p in cells.glob("*.jsonl")}
    assert after == full


def test_run_matrix_parallel_workers_byte_identical_to_serial(tmp_path):
    grid = grid_from_dict(GRID)
    run_matrix(grid, tmp_path / "serial")
    run_matrix(grid, tmp_path / "par", workers=2)
    serial = {
        p.name: p.read_bytes()
        for p in (tmp_path / "serial" / "cells").glob("*.jsonl")
    }
    par = {
        p.name: p.read_bytes()
        for p in (tmp_path / "par" / "cells").glob("*.jsonl")
    }
    assert serial == par


def test_run_matrix_adaptive_stops_cells_early(tmp_path):
    grid = grid_from_dict({
        **GRID,
        "cpu": {**GRID["cpu"], "faults": 10},
        "adaptive": {"target_margin": 0.44, "batch": 5, "min_faults": 5},
    })
    telemetry = Telemetry()
    result = run_matrix(grid, tmp_path / "m", telemetry=telemetry)
    assert result.stopped_early == 2
    for cell in result.cells:
        assert cell["stopped_early"]
        assert cell["faults"] == 5 and cell["budget"] == 10
        assert cell["achieved_margin"] <= 0.44
    manifest = read_manifest(tmp_path / "m")
    assert all(c["status"] == "converged"
               for c in manifest["cells"].values())
    assert telemetry.aggregate.adaptive_stops == 2
    assert telemetry.aggregate.adaptive_faults_saved == 10


def test_run_matrix_mixed_cpu_and_accel_cells(tmp_path):
    grid = grid_from_dict({
        "cpu": {"workloads": ["crc32"], "targets": ["lq"], "faults": 3},
        "accel": {"designs": ["gemm"], "components": ["MATRIX1"],
                  "faults": 3},
    })
    result = run_matrix(grid, tmp_path / "m", workers=2)
    kinds = {c["key"]: c for c in result.cells}
    assert set(kinds) == {"cpu-rv-crc32-lq", "accel-gemm-MATRIX1"}
    assert all(c["faults"] == 3 for c in result.cells)
    # accel journal matches a standalone accel campaign's
    from repro.accel.campaign import run_accel_campaign

    accel_cell = next(c for c in grid.cells if c.kind == "accel")
    standalone = tmp_path / "standalone.jsonl"
    run_accel_campaign(accel_cell.spec, journal=standalone)
    matrix_journal = tmp_path / "m" / "cells" / "accel-gemm-MATRIX1.jsonl"
    assert matrix_journal.read_bytes() == standalone.read_bytes()


# ------------------------------------------------------- SIGKILL survival

_KILL_SCRIPT = """
import sys
from repro.core.matrix import load_grid, run_matrix
grid = load_grid(sys.argv[1])
run_matrix(grid, sys.argv[2], resume="--resume" in sys.argv)
print("MATRIX-DONE")
"""


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_run_matrix_survives_sigkill_with_byte_identical_journals(tmp_path):
    """Kill the matrix process mid-run with SIGKILL, resume, and require
    the per-cell journals to be byte-identical to an uninterrupted run."""
    grid_path = tmp_path / "grid.toml"
    grid_path.write_text(
        '[matrix]\nname = "kill"\n'
        '[cpu]\nworkloads = ["crc32", "bitcount"]\n'
        'targets = ["regfile_int"]\nfaults = 6\nseed = 5\n'
    )
    grid = load_grid(grid_path)
    run_matrix(grid, tmp_path / "full")
    full = {
        p.name: p.read_bytes()
        for p in (tmp_path / "full" / "cells").glob("*.jsonl")
    }

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    out = tmp_path / "killed"
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT, str(grid_path), str(out)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    # let it get partway into the first cell, then kill -9
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        journals = list((out / "cells").glob("*.jsonl")) if out.exists() else []
        if any(len(p.read_bytes().splitlines()) >= 2 for p in journals):
            break
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    # resume in-process and compare every journal byte-for-byte
    result = run_matrix(grid, out, resume=True)
    after = {p.name: p.read_bytes() for p in (out / "cells").glob("*.jsonl")}
    assert after == full
    assert sum(c["resumed"] for c in result.cells) >= 0
    manifest = read_manifest(out)
    assert all(c["faults_done"] == 6 for c in manifest["cells"].values())
