"""Differential equivalence suite for the checkpoint fast-forward engine.

The contract under test: a fault run that restores a mid-flight golden
checkpoint and replays only the delta — optionally ending early when its
state digest re-converges with the golden checkpoint stream — must emit a
:class:`FaultRecord` bit-identical to the same mask simulated from cycle 0
with checkpointing and early-exit disabled.  Anything less silently skews
the AVF/HVF numbers the campaigns exist to measure.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import (
    CampaignSpec,
    compile_workload,
    golden_run,
    masks_for_spec,
    run_one_fault,
)
from repro.core.checkpoint import (
    AUTO_INITIAL_STRIDE,
    NO_CHECKPOINTS,
    CheckpointError,
    CheckpointPolicy,
    CheckpointStore,
    CoreCheckpoint,
    delta_apply,
    delta_encode,
    matches,
    payload_digest,
    state_digest,
)
from repro.cpu.core import OoOCore
from repro.isa.base import get_isa

CKPT = CheckpointPolicy()

WORKLOAD = "crc32"


def _fresh_core(isa_name: str, cfg) -> tuple[OoOCore, bytes]:
    exe = compile_workload(isa_name, WORKLOAD, "tiny")
    core = OoOCore.from_executable(exe, get_isa(isa_name), cfg)
    return core, bytes(exe.initial_memory())


def _finish(core: OoOCore) -> None:
    while not core.halted and core.cycle < 100_000:
        core.step()


# ------------------------------------------------------------ round trips


def test_snapshot_restore_snapshot_round_trip(isa_name, cfg):
    """Mid-flight snapshot → restore into a fresh core → identical digest,
    and both cores finish with identical architectural results."""
    source, _ = _fresh_core(isa_name, cfg)
    for _ in range(400):
        source.step()
    snap = source.snapshot()
    digest = payload_digest(snap)

    clone, _ = _fresh_core(isa_name, cfg)
    clone.restore(snap)
    assert state_digest(clone) == digest
    # restoring must not consume the snapshot: a second restore still works
    assert payload_digest(source.snapshot()) == digest

    _finish(source)
    _finish(clone)
    assert clone.output == source.output
    assert clone.cycle == source.cycle
    assert clone.instructions == source.instructions
    assert state_digest(clone) == state_digest(source)


def test_checkpoint_capture_restore_round_trip(isa_name, cfg):
    """CoreCheckpoint (with memory delta-encoding) restores exactly."""
    core, base = _fresh_core(isa_name, cfg)
    for _ in range(300):
        core.step()
    ckpt = CoreCheckpoint.capture(core, base_image=base)
    assert ckpt.cycle == core.cycle
    assert matches(ckpt, core)

    clone, _ = _fresh_core(isa_name, cfg)
    ckpt.restore_into(clone)
    assert clone.cycle == ckpt.cycle
    assert state_digest(clone) == ckpt.digest


def test_delta_encoding_round_trip():
    base = bytes(range(256)) * 8
    image = bytearray(base)
    image[3] ^= 0xFF
    image[700:708] = b"ABCDEFGH"
    image[-1] ^= 1
    patches = delta_encode(base, bytes(image))
    assert delta_apply(base, patches) == image
    assert delta_encode(base, base) == []
    assert delta_apply(base, []) == base


# ------------------------------------------------------ fault-run identity


@pytest.mark.parametrize("target", ["regfile_int", "l1d", "sq",
                                    "mshr", "store_buffer", "prefetcher"])
def test_restored_run_bit_identical_to_scratch(isa_name, cfg, target):
    """Per ISA x structure: checkpointed fault runs emit records equal to
    from-scratch runs with checkpointing and early-exit disabled."""
    spec = CampaignSpec(isa=isa_name, workload=WORKLOAD, target=target,
                        cfg=cfg, scale="tiny", faults=4, seed=11)
    # spec.cfg, not cfg: uarch targets auto-enable their structure
    golden = golden_run(isa_name, WORKLOAD, spec.cfg, "tiny",
                        checkpoints=CKPT)
    masks = masks_for_spec(spec, golden)

    scratch = [run_one_fault(spec, m, golden, checkpoints=NO_CHECKPOINTS)
               for m in masks]
    restored = [run_one_fault(spec, m, golden, checkpoints=CKPT)
                for m in masks]
    assert restored == scratch

    # the comparison is only meaningful if fast-forwarding actually engaged
    store = golden.checkpoints
    assert store is not None and len(store) > 0
    assert any(
        store.restore_cycle_for(min(f.cycle for f in m.flips)) > 0
        for m in masks
    )


def test_convergence_exit_identical_without_stop_early(cfg):
    """stop_early=False forces every masked run to full length, so the
    digest re-convergence exit is the only early path — records must still
    match the full-length baseline exactly."""
    spec = CampaignSpec(isa="rv", workload=WORKLOAD, target="l1d",
                        cfg=cfg, scale="tiny", faults=6, seed=9,
                        stop_early=False)
    golden = golden_run("rv", WORKLOAD, cfg, "tiny", checkpoints=CKPT)
    masks = masks_for_spec(spec, golden)
    scratch = [run_one_fault(spec, m, golden, checkpoints=NO_CHECKPOINTS)
               for m in masks]
    fast = [run_one_fault(spec, m, golden, checkpoints=CKPT) for m in masks]
    assert fast == scratch


def test_early_exit_toggle_identical(cfg):
    """Checkpointing with early-exit off still equals the baseline."""
    spec = CampaignSpec(isa="rv", workload=WORKLOAD, target="regfile_int",
                        cfg=cfg, scale="tiny", faults=4, seed=3)
    golden = golden_run("rv", WORKLOAD, cfg, "tiny", checkpoints=CKPT)
    masks = masks_for_spec(spec, golden)
    no_exit = CheckpointPolicy(early_exit=False)
    baseline = [run_one_fault(spec, m, golden, checkpoints=NO_CHECKPOINTS)
                for m in masks]
    assert [run_one_fault(spec, m, golden, checkpoints=no_exit)
            for m in masks] == baseline


# ------------------------------------------------------------ store policy


def test_store_adaptive_thinning_bounds_memory(cfg):
    core, base = _fresh_core("rv", cfg)
    policy = CheckpointPolicy(max_checkpoints=8)
    store = CheckpointStore(policy, base_image=base)
    core.run(on_cycle=store.consider)
    assert 0 < len(store) <= policy.max_checkpoints
    cycles = [c.cycle for c in store.checkpoints]
    assert cycles == sorted(cycles)
    # crc32 runs long enough that the initial stride must have doubled
    assert store.stride > AUTO_INITIAL_STRIDE


def test_store_fixed_stride_never_thins(cfg):
    core, base = _fresh_core("rv", cfg)
    store = CheckpointStore(CheckpointPolicy(stride=100), base_image=base)
    core.run(on_cycle=store.consider)
    assert store.stride == 100
    deltas = {
        b.cycle - a.cycle
        for a, b in zip(store.checkpoints, store.checkpoints[1:])
    }
    assert all(d >= 100 for d in deltas)


def test_store_queries(cfg):
    core, base = _fresh_core("rv", cfg)
    store = CheckpointStore(CheckpointPolicy(stride=200), base_image=base)
    core.run(on_cycle=store.consider)
    mid = store.checkpoints[len(store.checkpoints) // 2]
    assert store.best_for(mid.cycle) is mid
    assert store.best_for(mid.cycle + 1) is mid
    assert store.restore_cycle_for(-1) == 0 and store.best_for(-1) is None
    after = store.probes_after(mid.cycle)
    assert all(c.cycle > mid.cycle for c in after)
    assert len(after) == len(store) - store.checkpoints.index(mid) - 1


def test_disabled_policy_rejected():
    assert not NO_CHECKPOINTS.enabled
    with pytest.raises(CheckpointError):
        CheckpointStore(NO_CHECKPOINTS)
