"""Core-test fixtures: the distributed-campaign chaos harness.

``chaos_campaign`` runs a real coordinator + worker fleet as
subprocesses, SIGKILLs random workers mid-shard (and optionally the
coordinator itself), lets the lease protocol recover, and then asserts
the merged per-cell journals are byte-identical to an uninterrupted
single-host run of the same grid.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

import pytest

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..",
                                   "src"))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep * bool(env.get("PYTHONPATH")) \
        + env.get("PYTHONPATH", "")
    return env


@dataclass
class ChaosResult:
    out: Path
    serial: Path
    kills: list = field(default_factory=list)
    coordinator_restarts: int = 0
    counters: dict = field(default_factory=dict)


def _cmp_files(a: Path, b: Path) -> None:
    if shutil.which("cmp"):
        proc = subprocess.run(["cmp", str(a), str(b)],
                              capture_output=True, text=True)
        assert proc.returncode == 0, f"cmp {a} {b}: {proc.stdout}"
    assert a.read_bytes() == b.read_bytes(), f"{a} != {b}"


@pytest.fixture
def chaos_campaign(tmp_path):
    """Factory running one chaos'd distributed campaign; see module doc."""
    procs: list[subprocess.Popen] = []

    def spawn_worker(out: Path, worker_id: str) -> subprocess.Popen:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "work", str(out),
             "--worker-id", worker_id, "--poll", "0.2"],
            env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        procs.append(proc)
        return proc

    def spawn_serve(grid: Path, out: Path, shard_size: int,
                    ttl_s: float) -> subprocess.Popen:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(grid),
             "--out", str(out), "--workers", "0",
             "--shard-size", str(shard_size), "--ttl", str(ttl_s),
             "--poll", "0.2", "--stall-timeout", "180"],
            env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        procs.append(proc)
        return proc

    def run(grid_toml: str, *, workers: int = 2, kills: int = 2,
            coordinator_restarts: int = 0, shard_size: int = 5,
            ttl_s: float = 6.0, seed: int = 0,
            timeout_s: float = 420.0) -> ChaosResult:
        from repro.core.doctor import diagnose_distributed
        from repro.core.matrix import load_grid, run_matrix
        from repro.core.shard import ShardStore, fold_shard_counters

        grid_path = tmp_path / "grid.toml"
        grid_path.write_text(grid_toml)

        serial = tmp_path / "serial"
        run_matrix(load_grid(grid_path), serial, workers=1)

        out = tmp_path / "dist"
        rng = Random(seed)
        result = ChaosResult(out=out, serial=serial)
        deadline = time.monotonic() + timeout_s

        serve = spawn_serve(grid_path, out, shard_size, ttl_s)
        fleet = {f"w{i}": spawn_worker(out, f"w{i}")
                 for i in range(workers)}
        store = ShardStore(out, worker_id="chaos-observer")

        def eligible_victims() -> list[str]:
            """Workers holding a live gen-1 lease, visibly mid-shard."""
            victims = []
            if not store.leases_dir.exists():
                return victims
            for path in store.leases_dir.glob("*.json"):
                try:
                    doc = json.loads(path.read_text())
                except (OSError, ValueError):
                    continue
                worker = doc.get("worker")
                proc = fleet.get(worker)
                if proc is None or proc.poll() is not None:
                    continue
                if int(doc.get("gen", 0)) != 1:
                    continue
                shard_id = doc.get("shard", "")
                journal = store.gen_path(shard_id, 1)
                try:
                    lines = journal.read_bytes().count(b"\n")
                except OSError:
                    continue
                try:
                    a, b = map(int, shard_id.split("@")[1].split("-"))
                except (IndexError, ValueError):
                    continue
                # >= 1 record journaled, <= half the range done: the
                # worker is provably mid-shard with work still ahead
                if 2 <= lines <= 1 + (b - a) // 2:
                    victims.append(worker)
            return victims

        performed = 0
        respawn = 0
        while performed < kills:
            if time.monotonic() > deadline:
                pytest.fail(f"chaos harness timed out after {performed} "
                            f"of {kills} kills")
            if serve.poll() is not None:
                pytest.fail(
                    f"campaign finished before {kills} kills landed "
                    f"(grid too small for the chaos schedule?): "
                    f"{serve.stdout.read() if serve.stdout else ''}")
            victims = eligible_victims()
            if not victims:
                time.sleep(0.05)
                continue
            victim = rng.choice(victims)
            proc = fleet.pop(victim)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            result.kills.append(victim)
            performed += 1
            respawn += 1
            fleet[f"{victim}r{respawn}"] = spawn_worker(
                out, f"{victim}r{respawn}")
            if result.coordinator_restarts < coordinator_restarts:
                serve.send_signal(signal.SIGKILL)
                serve.wait(timeout=30)
                serve = spawn_serve(grid_path, out, shard_size, ttl_s)
                result.coordinator_restarts += 1

        remaining = max(5.0, deadline - time.monotonic())
        try:
            serve_out, _ = serve.communicate(timeout=remaining)
        except subprocess.TimeoutExpired:
            pytest.fail("coordinator did not finish after the chaos phase")
        assert serve.returncode == 0, serve_out
        for proc in fleet.values():
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                pytest.fail("worker still running after the campaign ended")

        serial_cells = sorted((serial / "cells").glob("*.jsonl"))
        assert serial_cells
        for ref in serial_cells:
            _cmp_files(ref, out / "cells" / ref.name)

        report = diagnose_distributed(out)
        assert report.ok, report.problems
        result.counters = fold_shard_counters(out)
        return result

    yield run

    for proc in procs:
        if proc.poll() is None:
            proc.kill()
    for proc in procs:
        if proc.poll() is None:
            proc.wait(timeout=30)
