"""Bounded fault-mask fuzzing: every random mask is classified or quarantined.

~200 random masks per ISA, spread over every CPU injection target with a
~10% permanent-fault share, all under ``--sanitize=full``.  Three
properties, none of which depend on what the verdicts *are*:

* the campaign engine never lets an exception escape (a raise here is the
  test failure);
* every record carries a terminal outcome — Masked, SDC, Crash, or a
  quarantine — never an unclassified state;
* the sanitizer reports **zero** integrity violations: real injected faults
  exercise the fault-aware suppression in vivo, so a single false positive
  here means the suppression rules launder genuine fault effects into
  simulator-bug quarantines.
"""

import pytest

from repro.core.campaign import CampaignSpec, golden_run, run_campaign
from repro.core.faults import FaultModel
from repro.core.outcome import Outcome
from repro.core.sampling import generate_masks
from repro.core.sanitizer import FULL_SANITIZER
from repro.core.targets import TARGETS, get_target
from repro.cpu.core import OoOCore
from repro.isa.base import get_isa

TERMINAL = {Outcome.MASKED, Outcome.SDC, Outcome.CRASH, Outcome.SIM_FAULT}

#: per (target, model) batch — 7 targets x (24 transient + 4 stuck-at)
#: = 196 masks per ISA
TRANSIENT_PER_TARGET = 24
PERMANENT_PER_TARGET = 4


def _fuzz_masks(spec, golden, count, model, seed):
    isa = get_isa(spec.isa)
    probe = OoOCore.from_executable(golden.exe, isa, spec.cfg)
    entries, bits = get_target(spec.target).geometry(probe)
    return generate_masks(
        structure=spec.target, entries=entries, bits_per_entry=bits,
        count=count, window=golden.window, model=model, seed=seed,
    )


@pytest.mark.parametrize("isa_name", ["rv", "arm", "x86"])
def test_fuzz_masks_always_classified_never_integrity(isa_name, cfg):
    total = 0
    for t_idx, target in enumerate(sorted(TARGETS)):
        spec = CampaignSpec(
            isa=isa_name, workload="crc32", target=target, cfg=cfg,
            scale="tiny", faults=TRANSIENT_PER_TARGET, seed=1000 + t_idx,
        )
        golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
        for model, count in ((FaultModel.TRANSIENT, TRANSIENT_PER_TARGET),
                             (FaultModel.STUCK_AT_1, PERMANENT_PER_TARGET)):
            masks = _fuzz_masks(spec, golden, count, model,
                                seed=spec.seed + (model is not FaultModel.TRANSIENT))
            result = run_campaign(spec, masks=masks,
                                  sanitizer=FULL_SANITIZER)
            assert len(result.records) == count
            for record in result.records:
                assert record.outcome in TERMINAL
                # a quarantine is acceptable; an integrity false positive
                # (suppression failing on a genuine fault effect) is not
                assert record.sim_error_kind != "integrity", (
                    f"{isa_name}/{target}/{model.value}: sanitizer "
                    f"false-positive on mask {record.mask.mask_id}: "
                    f"{record.error}"
                )
            total += count
    assert total == len(TARGETS) * (TRANSIENT_PER_TARGET + PERMANENT_PER_TARGET)
