"""Crash-tolerance of the distributed campaign service, end to end.

Real coordinator + worker subprocesses, real SIGKILLs, and the
acceptance bar from the paper-reproduction roadmap: merged journals
byte-identical to a single-host serial run under at least two worker
kills and one coordinator restart.
"""

import sys

import pytest

CHAOS_TOML = """\
[matrix]
name = "chaos"

[cpu]
workloads = ["crc32"]
targets = ["regfile_int", "lq"]
faults = 10
seed = 3
"""

pytestmark = pytest.mark.skipif(sys.platform == "win32",
                                reason="POSIX signals")


def test_two_worker_kills_and_coordinator_restart_byte_identical(
        chaos_campaign):
    result = chaos_campaign(
        CHAOS_TOML, workers=3, kills=2, coordinator_restarts=1,
        shard_size=5, ttl_s=6.0, seed=7,
    )
    assert len(result.kills) == 2
    assert result.coordinator_restarts == 1
    # every kill abandoned a live lease, so the reclaim counter folded
    # from the files alone must have seen at least one expiry
    assert result.counters["lease_expirations"] >= 1
    assert result.counters["merge_conflicts"] == 0
