"""Distributed campaign service: leases, work stealing, byte-identical merge.

Everything here runs in-process (workers are `run_worker` calls with
injectable stores/clocks); true multi-process chaos lives in
``test_shard_chaos.py``.
"""

import json

import pytest

from repro.cli import main
from repro.core.doctor import diagnose_distributed
from repro.core.journal import raw_journal_lines
from repro.core.matrix import grid_from_dict, read_manifest, run_matrix
from repro.core.shard import (
    DirectoryFollower,
    ShardError,
    ShardSpec,
    ShardStore,
    StoreDegraded,
    fold_shard_counters,
    merge_shards,
    plan_shards,
    run_worker,
    shard_name,
)
from repro.core.supervisor import run_with_retry

GRID = {
    "matrix": {"name": "t"},
    "cpu": {
        "workloads": ["crc32"], "targets": ["regfile_int", "lq"],
        "faults": 6, "seed": 3,
    },
}

GRID_TOML = """\
[matrix]
name = "t"

[cpu]
workloads = ["crc32"]
targets = ["regfile_int", "lq"]
faults = 6
seed = 3
"""

ADAPTIVE_TOML = """\
[matrix]
name = "adp"

[cpu]
workloads = ["crc32"]
targets = ["regfile_int"]
faults = 10
seed = 7

[adaptive]
target_margin = 0.44
batch = 5
min_faults = 5
"""


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class KilledWorker(Exception):
    """Raised from the on_fault chaos hook to model a mid-shard SIGKILL."""


def _grid():
    return grid_from_dict(json.loads(json.dumps(GRID)))


def _dist_dir(tmp_path, toml_text=GRID_TOML, name="dist"):
    out = tmp_path / name
    out.mkdir()
    (out / "grid.toml").write_text(toml_text)
    return out


def _cell_bytes(out_dir):
    return {p.name: p.read_bytes()
            for p in sorted((out_dir / "cells").glob("*.jsonl"))}


@pytest.fixture(scope="module")
def serial_cells(tmp_path_factory):
    """Uninterrupted single-host reference run of GRID."""
    out = tmp_path_factory.mktemp("serial")
    run_matrix(_grid(), out, workers=1)
    return _cell_bytes(out)


# ------------------------------------------------------------ planning


def test_plan_shards_tiles_and_interleaves():
    shards = plan_shards(_grid(), shard_size=4)
    by_cell = {}
    for s in shards:
        by_cell.setdefault(s.cell, []).append((s.start, s.stop))
    assert set(by_cell) == {"cpu-rv-crc32-regfile_int", "cpu-rv-crc32-lq"}
    for ranges in by_cell.values():
        assert ranges == [(0, 4), (4, 6)]
    # round-robin interleave: consecutive shards alternate cells
    assert shards[0].cell != shards[1].cell
    assert all(s.id == shard_name(s.cell, s.start, s.stop) for s in shards)


def test_plan_is_idempotent_and_fingerprint_checked(tmp_path):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="w0")
    plan = store.init_plan(_grid(), shard_size=4, ttl_s=30.0)
    again = store.init_plan(_grid(), shard_size=99, ttl_s=1.0)
    assert again == plan                  # immutable after first write
    other = grid_from_dict({**GRID, "matrix": {"name": "other"},
                            "cpu": {**GRID["cpu"], "seed": 4}})
    with pytest.raises(ShardError, match="different grid"):
        store.init_plan(other, shard_size=4)


def test_load_plan_without_plan_raises(tmp_path):
    with pytest.raises(ShardError, match="no shard plan"):
        ShardStore(tmp_path).load_plan()


# ------------------------------------------------------------ leases


@pytest.fixture
def leased(tmp_path):
    out = _dist_dir(tmp_path)
    clock = FakeClock()
    w1 = ShardStore(out, worker_id="w1", clock=clock)
    plan = w1.init_plan(_grid(), shard_size=4, ttl_s=30.0)
    shard = w1.all_shards(plan)[0]
    return out, clock, w1, shard


def test_claim_is_exclusive(leased):
    out, clock, w1, shard = leased
    lease = w1.try_claim(shard, 30.0)
    assert lease is not None and lease.gen == 1
    w2 = ShardStore(out, worker_id="w2", clock=clock)
    assert w2.try_claim(shard, 30.0) is None


def test_expired_lease_reclaim_bumps_generation(leased):
    out, clock, w1, shard = leased
    lease = w1.try_claim(shard, 30.0)
    clock.advance(31.0)
    w2 = ShardStore(out, worker_id="w2", clock=clock)
    reclaimed = w2.try_claim(shard, 30.0)
    assert reclaimed is not None
    assert reclaimed.gen == lease.gen + 1        # fencing token moved on
    # the original holder can no longer renew: the lease is not its own
    assert w1.renew(lease) is None


def test_renew_refused_past_deadline_even_if_still_named(leased):
    out, clock, w1, shard = leased
    lease = w1.try_claim(shard, 30.0)
    clock.advance(30.0)                          # exactly at the deadline
    assert w1.renew(lease) is None               # refuses locally
    clock.advance(-20.0)
    renewed = w1.renew(lease)
    assert renewed is not None and renewed.deadline > lease.deadline


def test_release_publishes_done_marker_and_drops_lease(leased):
    out, clock, w1, shard = leased
    lease = w1.try_claim(shard, 30.0)
    w1.release(lease, stop=shard.stop, records=4)
    assert shard.id in w1.done_ids()
    done = w1.read_done(shard.id)
    assert done["stop"] == shard.stop and done["records"] == 4
    assert w1.read_lease(shard.id) is None


def test_corrupt_lease_never_blocks_forever(leased):
    out, clock, w1, shard = leased
    w1.leases_dir.mkdir(parents=True, exist_ok=True)
    w1.lease_path(shard.id).write_text("not json{")
    lease = w1.try_claim(shard, 30.0)
    assert lease is not None                     # corrupt lease swept aside


# ------------------------------------------------------------ stealing


def test_steal_protocol_descriptor_first(leased):
    out, clock, w1, shard = leased
    lease = w1.try_claim(shard, 30.0)
    thief = ShardStore(out, worker_id="thief", clock=clock)
    assert thief.request_steal(shard.id)
    assert not thief.request_steal(shard.id)     # one request at a time
    child = w1.publish_split(shard, shard.start + 2, shard.stop)
    assert child.stolen_from == shard.id
    assert w1.read_steal(shard.id) is None       # cleared with the split
    plan = w1.load_plan()
    shards = w1.all_shards(plan)
    assert child in shards
    # the parent is truncated at the child's start everywhere at once
    assert w1.effective_stop(shard, shards) == shard.start + 2
    assert thief.try_claim(child, 30.0) is not None
    counters = fold_shard_counters(out, store=w1)
    assert counters["shards_stolen"] == 1


# ------------------------------------------------------------ end-to-end


def test_single_worker_run_merges_byte_identical(tmp_path, serial_cells):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="solo")
    store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    result = run_worker(out, store=store)
    assert result.shards_completed == 4 and result.faults_run == 12
    assert not result.degraded
    merged = merge_shards(out, store=store)
    assert merged.complete and merged.conflicts == 0
    assert _cell_bytes(out) == serial_cells
    # the merged manifest is readable by the plain matrix tooling
    manifest = read_manifest(out)
    assert all(c["status"] == "exhausted" for c in manifest["cells"].values())
    report = diagnose_distributed(out)
    assert report.ok, report.problems
    counters = fold_shard_counters(out, store=store)
    assert counters == {"lease_expirations": 0, "shards_stolen": 0,
                        "merge_conflicts": 0}


def test_killed_worker_is_reclaimed_and_resumed_byte_identical(
        tmp_path, serial_cells):
    out = _dist_dir(tmp_path)
    clock = FakeClock()
    w1 = ShardStore(out, worker_id="w1", clock=clock)
    w1.init_plan(_grid(), shard_size=4, ttl_s=30.0)

    def die_mid_shard(shard_id, position):
        a, b = map(int, shard_id.split("@")[1].split("-"))
        if b - a >= 4 and position == a + 2:
            raise KilledWorker(shard_id)

    with pytest.raises(KilledWorker):
        run_worker(out, store=w1, on_fault=die_mid_shard)

    # the dead worker leaves a lease and a journal with two records behind
    leases = list(w1.leases_dir.glob("*.json"))
    assert len(leases) == 1
    abandoned = json.loads(leases[0].read_text())
    gen_path = w1.gen_path(abandoned["shard"], abandoned["gen"])
    _header, lines = raw_journal_lines(gen_path)
    assert len(lines) == 2
    # model a torn tail: the crash interrupted an append mid-line
    with gen_path.open("ab") as fh:
        fh.write(b'{"kind": "record", "mask": {"mask_')

    clock.advance(31.0)                          # lease expires
    w2 = ShardStore(out, worker_id="w2", clock=clock)
    # w1 may have fully completed other shards before the fatal one
    done_before = sum(w2.read_done(sid)["records"] for sid in w2.done_ids())
    result = run_worker(out, store=w2)
    assert result.reclaims == 1
    assert result.resumed == 2                   # evidence, not work
    assert result.faults_run == 12 - 2 - done_before

    merged = merge_shards(out, store=w2)
    assert merged.complete and merged.conflicts == 0
    assert _cell_bytes(out) == serial_cells
    counters = fold_shard_counters(out, store=w2)
    assert counters["lease_expirations"] == 1
    assert diagnose_distributed(out).ok


def test_steal_split_mid_run_merges_byte_identical(tmp_path, serial_cells):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="owner")
    store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    thief = ShardStore(out, worker_id="thief")
    requested = []

    def steal_once(shard_id, position):
        a, b = map(int, shard_id.split("@")[1].split("-"))
        if not requested and b - a >= 4 and position == a + 1:
            assert thief.request_steal(shard_id)
            requested.append(shard_id)

    result = run_worker(out, store=store, on_fault=steal_once)
    assert result.splits_published == 1
    assert result.faults_run == 12               # owner also claims the child
    children = store.dynamic_shards()
    assert len(children) == 1 and children[0].stolen_from == requested[0]

    merged = merge_shards(out, store=store)
    assert merged.complete and merged.conflicts == 0
    assert _cell_bytes(out) == serial_cells
    assert fold_shard_counters(out, store=store)["shards_stolen"] == 1
    assert diagnose_distributed(out).ok


def test_adaptive_merge_truncates_to_serial_stop(tmp_path):
    serial = tmp_path / "serial"
    grid = grid_from_dict({
        "matrix": {"name": "adp"},
        "cpu": {"workloads": ["crc32"], "targets": ["regfile_int"],
                "faults": 10, "seed": 7},
        "adaptive": {"target_margin": 0.44, "batch": 5, "min_faults": 5},
    })
    run_matrix(grid, serial, workers=1)
    manifest = read_manifest(serial)
    (cell_entry,) = manifest["cells"].values()
    assert cell_entry["stopped_early"]
    stop = cell_entry["faults_done"]

    # (a) no cancel marker: the worker burns the full budget, but the
    # merge re-derives the serial stop and truncates byte-identically
    out_a = _dist_dir(tmp_path, ADAPTIVE_TOML, "dist-a")
    store_a = ShardStore(out_a, worker_id="wa")
    store_a.init_plan(grid, shard_size=4, ttl_s=60.0)
    ra = run_worker(out_a, store=store_a)
    assert ra.faults_run == 10
    merged_a = merge_shards(out_a, store=store_a)
    assert merged_a.complete
    assert _cell_bytes(out_a) == _cell_bytes(serial)
    man_a = read_manifest(out_a)
    (entry_a,) = man_a["cells"].values()
    assert entry_a["status"] == "converged"
    assert entry_a["faults_done"] == stop and entry_a["stopped_early"]

    # (b) a coordinator cancel marker stops workers at the serial stop,
    # saving the budget the adaptive rule proved unnecessary
    out_b = _dist_dir(tmp_path, ADAPTIVE_TOML, "dist-b")
    store_b = ShardStore(out_b, worker_id="wb")
    store_b.init_plan(grid, shard_size=4, ttl_s=60.0)
    (cell_key,) = man_a["cells"].keys()
    store_b.write_cancel(cell_key, stop)
    rb = run_worker(out_b, store=store_b)
    assert rb.faults_run == stop
    merged_b = merge_shards(out_b, store=store_b)
    assert merged_b.complete
    assert _cell_bytes(out_b) == _cell_bytes(serial)


# ------------------------------------------------------------ conflicts


def test_merge_conflict_higher_generation_wins(tmp_path):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="solo")
    plan = store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    run_worker(out, store=store)
    shard = store.all_shards(plan)[0]

    # forge a zombie generation-2 journal whose mask-0 record differs
    g1 = store.gen_path(shard.id, 1).read_bytes().splitlines(keepends=True)
    header, first = g1[0], json.loads(g1[1])
    first["cycles"] = int(first["cycles"]) + 1
    forged = (json.dumps(first) + "\n").encode()
    store.gen_path(shard.id, 2).write_bytes(header + forged)

    merged = merge_shards(out, store=store)
    assert merged.complete
    assert merged.conflicts == 1
    cell_lines = (out / "cells" / f"{shard.cell}.jsonl").read_bytes()
    assert forged in cell_lines                  # gen 2 won the merge
    assert fold_shard_counters(out, store=store)["merge_conflicts"] == 1


def test_merge_incomplete_without_all_shards(tmp_path):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="solo")
    store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    run_worker(out, store=store, max_shards=2)
    merged = merge_shards(out, store=store)
    assert not merged.complete
    incomplete = [k for k, e in merged.cells.items()
                  if e["status"] == "running"]
    assert incomplete                            # and nothing half-written
    for key in incomplete:
        assert not (out / "cells" / f"{key}.jsonl").exists()


# ------------------------------------------------------------ doctor


def test_doctor_warns_on_stale_protocol_state_but_stays_ok(tmp_path,
                                                           serial_cells):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="solo")
    plan = store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    run_worker(out, store=store)
    merge_shards(out, store=store)
    shard = store.all_shards(plan)[0]
    # a crash can leave all of these behind; none of them is corruption
    store.steal_path(shard.id).write_text('{"kind": "steal", "by": "ghost"}')
    (store.leases_dir / ".tmp.ghost.1").write_text("{")
    store.lease_path(shard.id).write_text(json.dumps({
        "kind": "lease", "shard": shard.id, "worker": "ghost",
        "gen": 1, "deadline": 1.0, "ttl_s": 5.0,
    }))
    report = diagnose_distributed(out)
    assert report.ok, report.problems
    text = "\n".join(report.warnings)
    assert "steal request" in text
    assert "temp file" in text
    assert "stale" in text or "outlives" in text


def test_doctor_flags_overlapping_shard_ranges(tmp_path):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="solo")
    plan = store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    run_worker(out, store=store)
    merge_shards(out, store=store)
    cell = store.all_shards(plan)[0].cell
    forged = shard_name(cell, 0, 3)
    store.descriptor_path(forged).write_text(json.dumps({
        "kind": "shard", "id": forged, "cell": cell, "start": 0, "stop": 3,
    }))
    report = diagnose_distributed(out)
    assert not report.ok
    assert any("overlapping mask ranges" in p for p in report.problems)


def test_doctor_flags_untraceable_merged_record(tmp_path):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="solo")
    plan = store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    run_worker(out, store=store)
    merge_shards(out, store=store)
    cell = store.all_shards(plan)[0].cell
    merged = out / "cells" / f"{cell}.jsonl"
    lines = merged.read_bytes().splitlines(keepends=True)
    doc = json.loads(lines[1])
    doc["cycles"] = int(doc["cycles"]) + 1       # byte-level tamper
    lines[1] = (json.dumps(doc) + "\n").encode()
    merged.write_bytes(b"".join(lines))
    report = diagnose_distributed(out)
    assert not report.ok
    assert any("does not match any line journaled by its owning shard" in p
               for p in report.problems)


def test_doctor_reports_missing_plan(tmp_path):
    report = diagnose_distributed(tmp_path)
    assert not report.ok
    assert any("no shard plan" in p for p in report.problems)


# ------------------------------------------------------------ degradation


class FlakyStore(ShardStore):
    """Loses the filesystem permanently after the trapdoor is armed."""

    armed = False

    def _io(self, fn, passthrough=(FileExistsError, FileNotFoundError)):
        if self.armed:
            raise StoreDegraded("filesystem gone")
        return super()._io(fn, passthrough=passthrough)


def test_degraded_store_exits_cleanly_and_leaves_lease(tmp_path):
    out = _dist_dir(tmp_path)
    store = FlakyStore(out, worker_id="flaky")
    store.init_plan(_grid(), shard_size=4, ttl_s=60.0)

    def arm(shard_id, position):
        store.armed = True

    result = run_worker(out, store=store, on_fault=arm)
    assert result.degraded                       # clean exit, not a crash
    assert result.shards_completed == 0
    # the lease is left behind for its ttl to expire naturally
    assert len(list(store.leases_dir.glob("*.json"))) == 1


def test_run_with_retry_passthrough_and_exhaustion():
    sleeps = []
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError("transient")
        return "ok"

    assert run_with_retry(flaky, attempts=5, sleep=sleeps.append) == "ok"
    assert len(sleeps) == 2                      # backed off twice

    def signal():
        raise FileExistsError("protocol signal")

    with pytest.raises(FileExistsError):         # never retried
        run_with_retry(signal, attempts=5, passthrough=(FileExistsError,),
                       sleep=sleeps.append)

    def dead():
        raise OSError("gone")

    with pytest.raises(OSError):
        run_with_retry(dead, attempts=3, sleep=sleeps.append)


# ------------------------------------------------------------ tail + counters


def test_directory_follower_dedups_merged_copies(tmp_path):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="solo")
    store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    run_worker(out, store=store)
    merge_shards(out, store=store)
    follower = DirectoryFollower(out)
    records = follower.poll()
    assert len(records) == 12                    # shards + cells, deduped
    assert follower.duplicates == 12             # every record exists twice
    assert follower.planned() == 12
    assert follower.poll() == []                 # nothing new


def test_tail_cli_reconciles_directory(tmp_path, capsys):
    out = _dist_dir(tmp_path)
    store = ShardStore(out, worker_id="solo")
    store.init_plan(_grid(), shard_size=4, ttl_s=60.0)
    run_worker(out, store=store)
    merge_shards(out, store=store)
    rc = main(["tail", str(out), "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["finished"] == 12
    assert doc["deduplicated"] == 12
    assert doc["shard"] == {"lease_expirations": 0, "shards_stolen": 0,
                            "merge_conflicts": 0}


def test_prometheus_exports_shard_counters():
    from repro.core.telemetry import (
        CampaignAggregate,
        parse_prometheus,
        to_prometheus,
    )

    agg = CampaignAggregate()
    agg.shard = {"lease_expirations": 2, "shards_stolen": 1,
                 "merge_conflicts": 0}
    metrics = parse_prometheus(to_prometheus(agg))

    def value(prefix):
        hits = [v for k, v in metrics.items() if k.startswith(prefix)]
        assert len(hits) == 1, prefix
        return hits[0]

    assert value("repro_lease_expirations_total") == 2
    assert value("repro_shards_stolen_total") == 1
    assert value("repro_merge_conflicts_total") == 0
    bare = to_prometheus(CampaignAggregate())
    assert "repro_lease_expirations_total" not in bare
