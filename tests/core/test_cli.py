"""CLI tests (in-process, small samples)."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "rv" in out and "qsort" in out and "regfile_int" in out and "gemm" in out


def test_campaign_command(capsys, tmp_path):
    csv = tmp_path / "out.csv"
    rc = main([
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "5", "--csv", str(csv),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "avf" in out
    assert csv.exists() and "avf" in csv.read_text()


def test_campaign_journal_and_resume_flags(capsys, tmp_path):
    journal = tmp_path / "run.jsonl"
    base = [
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "4",
        "--journal", str(journal),
    ]
    assert main(base) == 0
    capsys.readouterr()
    assert journal.exists()
    assert main(base + ["--resume", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "resumed 4/4" in out
    # the journal holds exactly one record per mask (no duplicates appended)
    from repro.core.journal import CampaignJournal

    assert len(CampaignJournal.load(journal)) == 4


def test_campaign_checkpoint_flags_byte_identical_journals(capsys, tmp_path):
    """--checkpoint-stride 0 --no-early-exit (full simulation) and the
    default fast-forward path write byte-identical journals: same records,
    same header (the checkpoint policy is not part of the spec fingerprint)."""
    full = tmp_path / "full.jsonl"
    fast = tmp_path / "fast.jsonl"
    base = [
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "4", "--seed", "6",
    ]
    assert main(base + ["--checkpoint-stride", "0", "--no-early-exit",
                        "--journal", str(full)]) == 0
    assert main(base + ["--checkpoint-stride", "32",
                        "--journal", str(fast)]) == 0
    assert full.read_bytes() == fast.read_bytes()


def test_accel_campaign_journal_and_resume_flags(capsys, tmp_path):
    journal = tmp_path / "accel.jsonl"
    base = [
        "accel-campaign", "--design", "fft", "--component", "REAL",
        "--faults", "4", "--scale", "tiny", "--journal", str(journal),
    ]
    assert main(base) == 0
    capsys.readouterr()
    assert main(base + ["--resume", str(journal)]) == 0
    assert "resumed 4/4" in capsys.readouterr().out


def test_accel_campaign_command(capsys):
    rc = main([
        "accel-campaign", "--design", "fft", "--component", "REAL",
        "--faults", "5", "--scale", "tiny",
    ])
    assert rc == 0
    assert "avf" in capsys.readouterr().out


def test_campaign_telemetry_flags_leave_journal_byte_identical(
        capsys, tmp_path):
    """--progress/--metrics-out are observational: the journal they ride
    along with is byte-identical to a bare run's."""
    bare = tmp_path / "bare.jsonl"
    observed = tmp_path / "observed.jsonl"
    metrics = tmp_path / "metrics.prom"
    base = [
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "4", "--seed", "3",
    ]
    assert main(base + ["--journal", str(bare)]) == 0
    assert main(base + ["--journal", str(observed), "--progress",
                        "--metrics-out", str(metrics)]) == 0
    captured = capsys.readouterr()
    assert bare.read_bytes() == observed.read_bytes()
    assert "faults" in captured.err            # progress lines went to stderr
    assert metrics.exists()
    from repro.core.telemetry import parse_prometheus

    values = parse_prometheus(metrics.read_text())
    finished = [v for k, v in values.items()
                if k.startswith("repro_faults_finished_total")]
    assert finished == [4.0]


def test_tail_command_summarizes_journal(capsys, tmp_path):
    journal = tmp_path / "run.jsonl"
    assert main([
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "4",
        "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert main(["tail", str(journal)]) == 0
    out = capsys.readouterr().out
    assert "finished" in out and "4/4 faults" in out


def test_tail_command_json_and_metrics_reconcile(capsys, tmp_path):
    journal = tmp_path / "run.jsonl"
    metrics = tmp_path / "metrics.prom"
    assert main([
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "4",
        "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert main(["tail", str(journal), "--json",
                 "--metrics-out", str(metrics)]) == 0
    import json

    out = capsys.readouterr().out
    doc = json.loads(out[: out.rindex("}") + 1])
    assert doc["finished"] == 4 and doc["planned"] == 4
    assert sum(doc["outcomes"].values()) == 4
    from repro.core.telemetry import parse_prometheus

    values = parse_prometheus(metrics.read_text())
    finished = [v for k, v in values.items()
                if k.startswith("repro_faults_finished_total")]
    assert finished == [4.0]


def test_tail_command_missing_journal():
    assert main(["tail", "/nonexistent/journal.jsonl"]) == 1


def test_soc_command(capsys):
    rc = main(["soc", "--isa", "rv", "--design", "gemm"])
    assert rc == 0
    assert "cpu=" in capsys.readouterr().out


def test_figure_command(capsys):
    rc = main(["figure", "17", "--faults", "3"])
    assert rc == 0
    assert "Figure 17" in capsys.readouterr().out


def test_figure_unknown_number():
    assert main(["figure", "99"]) == 2


def test_parser_rejects_bad_isa():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign", "--isa", "mips"])


def test_matrix_command_runs_grid_and_resumes(capsys, tmp_path):
    grid = tmp_path / "grid.toml"
    grid.write_text(
        '[matrix]\nname = "cli-smoke"\n'
        '[cpu]\nworkloads = ["crc32"]\ntargets = ["regfile_int", "lq"]\n'
        'faults = 3\nseed = 2\n'
    )
    out = tmp_path / "mx"
    csv = tmp_path / "cells.csv"
    rc = main(["matrix", str(grid), "--out", str(out), "--csv", str(csv)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "regfile_int" in text and "manifest" in text
    assert (out / "manifest.json").exists()
    assert csv.exists() and "avf" in csv.read_text()

    # running again without --resume must refuse; with it, succeed
    assert main(["matrix", str(grid), "--out", str(out)]) == 2
    capsys.readouterr()
    assert main(["matrix", str(grid), "--out", str(out), "--resume"]) == 0


def test_matrix_command_rejects_bad_grid(capsys, tmp_path):
    bad = tmp_path / "bad.toml"
    bad.write_text('[cpu]\nworkloads = ["crc32"]\n')   # no targets
    assert main(["matrix", str(bad), "--out", str(tmp_path / "o")]) == 2
    assert "error" in capsys.readouterr().err


def test_campaign_adaptive_flag_stops_early(capsys, tmp_path):
    journal = tmp_path / "run.jsonl"
    rc = main([
        "campaign", "--workload", "crc32", "--target", "regfile_int",
        "--faults", "10", "--adaptive", "--target-margin", "0.44",
        "--batch", "5", "--journal", str(journal),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    # min_faults=20 clamps to budget 10; margin(10) ~ 0.31 <= 0.44, so the
    # budget is exactly spent — stopped_early stays False but the adaptive
    # machinery ran (budget row shows in the summary)
    assert "budget" in out
    from repro.core.journal import CampaignJournal

    assert len(CampaignJournal.load(journal)) == 10
