"""End-to-end coverage for the ``mshr`` / ``store_buffer`` / ``prefetcher``
injection targets and the LSQ geometry provenance.

Two contracts anchor this file:

* the non-blocking machinery is *timing-only* when healthy — a core with
  MSHRs, a store buffer and a prefetcher computes exactly what the
  blocking seed core computes;
* enabling the structures (or targeting them) never perturbs the journal
  identity of pre-existing campaigns, while lq/sq journals deliberately
  re-fingerprint on the 192-bit geometry.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.campaign import (
    CampaignSpec,
    compile_workload,
    run_campaign,
)
from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.outcome import Outcome
from repro.core.journal import (
    LSQ_GEOMETRY_BITS,
    CampaignJournal,
    JournalError,
    spec_to_dict,
)
from repro.core.targets import get_target
from repro.cpu.core import OoOCore
from repro.isa.base import get_isa

UARCH_TARGETS = ["mshr", "store_buffer", "prefetcher"]

UARCH_CFG = dict(mshr_entries=8, store_buffer_entries=8,
                 prefetcher_entries=16)


def _run_to_halt(isa_name, workload, cfg):
    exe = compile_workload(isa_name, workload, "tiny")
    core = OoOCore.from_executable(exe, get_isa(isa_name), cfg)
    while not core.halted and core.cycle < 400_000:
        core.step()
    assert core.halted
    return core


# ------------------------------------------------------- golden equivalence


@pytest.mark.parametrize("workload", ["crc32", "qsort"])
def test_nonblocking_core_architecturally_equal_to_blocking(
        isa_name, cfg, workload):
    """MSHRs + store buffer + prefetcher change cycles, never results."""
    blocking = _run_to_halt(isa_name, workload, cfg)
    nonblocking = _run_to_halt(isa_name, workload, cfg.with_(**UARCH_CFG))
    assert nonblocking.output == blocking.output
    assert nonblocking.instructions == blocking.instructions


# ------------------------------------------------------------ auto-enable


def test_spec_auto_enables_targeted_structure(cfg):
    assert cfg.mshr_entries == 0
    spec = CampaignSpec(isa="rv", workload="crc32", target="mshr",
                        cfg=cfg, scale="tiny", faults=4, seed=1)
    assert spec.cfg.mshr_entries > 0
    # idempotent: re-wrapping an already-enabled cfg changes nothing
    again = CampaignSpec(isa="rv", workload="crc32", target="mshr",
                         cfg=spec.cfg, scale="tiny", faults=4, seed=1)
    assert again.cfg == spec.cfg
    # non-uarch targets leave the configuration untouched
    plain = CampaignSpec(isa="rv", workload="crc32", target="l1d",
                         cfg=cfg, scale="tiny", faults=4, seed=1)
    assert plain.cfg is cfg


def test_disabled_structure_refused_with_guidance(cfg):
    core = _run_to_halt("rv", "crc32", cfg)
    with pytest.raises(ValueError, match="mshr_entries"):
        get_target("mshr").structure(core)


# ------------------------------------------------------------ end to end


@pytest.mark.parametrize("target", UARCH_TARGETS)
def test_uarch_campaign_end_to_end(cfg, target):
    spec = CampaignSpec(isa="rv", workload="qsort", target=target,
                        cfg=cfg, scale="tiny", faults=10, seed=21)
    result = run_campaign(spec)
    assert len(result.records) == 10
    summary = result.summary()
    assert summary["quarantined"] == 0
    assert summary["target"] == target


def _occupied_sites(spec, attr):
    """Golden-run (cycle, entry) pairs where the structure held live state."""
    exe = compile_workload(spec.isa, spec.workload, spec.scale)
    core = OoOCore.from_executable(exe, get_isa(spec.isa), spec.cfg)
    sites = []
    while not core.halted and core.cycle < 400_000:
        core.step()
        obj = getattr(core, attr)
        for idx in range(len(obj.entries)):
            if obj.entry_valid(idx):
                sites.append((core.cycle, idx))
    return sites


@pytest.mark.parametrize("target,bit", [
    # data bit 2 of a buffered store escapes to memory at drain time
    ("store_buffer", 66),
    # addr bit 6 is the lowest above the 64B block offset: the captured
    # fill installs at the neighbouring line on retire (redirect channel)
    ("mshr", 6),
])
def test_directed_flip_into_occupied_entry_reaches_sdc(cfg, target, bit):
    """Uniform sampling rarely lands on these short-lived structures at
    tiny scale; directed masks prove the SDC channel is live end-to-end."""
    spec = CampaignSpec(isa="rv", workload="qsort", target=target,
                        cfg=cfg, scale="tiny", faults=1, seed=1)
    sites = _occupied_sites(spec, target)
    assert sites, f"golden qsort never occupied the {target}"
    picks = sites[:: max(1, len(sites) // 40)][:40]
    masks = [FaultMask(FaultModel.TRANSIENT,
                       (FaultFlip(target, idx, bit, cyc),), mask_id=i)
             for i, (cyc, idx) in enumerate(picks)]
    result = run_campaign(spec, masks=masks)
    assert all(r.activated for r in result.records)
    assert any(r.outcome is Outcome.SDC for r in result.records)
    assert not any(r.quarantined for r in result.records)


def test_prefetcher_faults_are_timing_only(cfg):
    """Every prefetcher-table corruption must classify Masked: prefetched
    data always comes from the coherent hierarchy."""
    spec = CampaignSpec(isa="rv", workload="qsort", target="prefetcher",
                        cfg=cfg, scale="tiny", faults=1, seed=1)
    sites = _occupied_sites(spec, "prefetcher")
    assert sites, "golden qsort never trained the prefetcher"
    picks = sites[:: max(1, len(sites) // 25)][:25]
    masks = []
    for i, (cyc, idx) in enumerate(picks):
        bit = (3, 65, 81)[i % 3]       # last_addr, stride, conf fields
        masks.append(FaultMask(FaultModel.TRANSIENT,
                               (FaultFlip("prefetcher", idx, bit, cyc),),
                               mask_id=i))
    result = run_campaign(spec, masks=masks)
    assert all(r.outcome is Outcome.MASKED for r in result.records)


# ------------------------------------------------------ journal provenance


def test_spec_dict_drops_disabled_structure_sizes(cfg):
    """Specs not using the new structures serialize byte-identically to
    pre-MSHR-era journals: the size keys only exist when nonzero."""
    spec = CampaignSpec(isa="rv", workload="crc32", target="regfile_int",
                        cfg=cfg, scale="tiny", faults=4, seed=1)
    raw = spec_to_dict(spec)
    for key in ("mshr_entries", "store_buffer_entries", "prefetcher_entries"):
        assert key not in raw["cfg"]
    assert "lsq_geometry" not in raw

    uarch = CampaignSpec(isa="rv", workload="crc32", target="mshr",
                         cfg=cfg, scale="tiny", faults=4, seed=1)
    assert spec_to_dict(uarch)["cfg"]["mshr_entries"] > 0


def test_lq_sq_specs_carry_geometry_provenance(cfg):
    for target in ("lq", "sq"):
        spec = CampaignSpec(isa="rv", workload="crc32", target=target,
                            cfg=cfg, scale="tiny", faults=4, seed=1)
        assert spec_to_dict(spec)["lsq_geometry"] == LSQ_GEOMETRY_BITS == 192


def test_resume_refuses_old_geometry_journal(cfg, tmp_path):
    """A journal written before the 192-bit LSQ widening must be refused on
    resume with a message naming the geometry change."""
    spec = CampaignSpec(isa="rv", workload="crc32", target="sq",
                        cfg=cfg, scale="tiny", faults=4, seed=2)
    path = tmp_path / "sq.jsonl"
    run_campaign(spec, journal=path)

    # forge the pre-widening era: strip the provenance key and re-seal the
    # header the way the old writer would have (fingerprint over its spec)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    del header["spec"]["lsq_geometry"]
    canon = json.dumps(header["spec"], sort_keys=True)
    header["fingerprint"] = hashlib.sha256(canon.encode()).hexdigest()
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")

    with pytest.raises(JournalError, match="192-bit LSQ entry geometry"):
        CampaignJournal.open(path, spec)
