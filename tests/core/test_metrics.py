"""Tests for AVF / weighted AVF / HVF / OPF metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.campaign import FaultRecord
from repro.core.faults import FaultMask, FaultModel
from repro.core.metrics import (
    avf,
    crash_avf,
    error_margin,
    hvf,
    n_valid,
    opf,
    quarantined,
    sdc_avf,
    weighted_avf,
)
from repro.core.outcome import HVFClass, Outcome


def _rec(outcome, hvf_class=None):
    if hvf_class is None:
        hvf_class = HVFClass.BENIGN if outcome is Outcome.MASKED else HVFClass.CORRUPTION
    return FaultRecord(
        mask=FaultMask.single("l1d", 0, 0, 0),
        outcome=outcome,
        hvf=hvf_class,
        cycles=100,
    )


def test_avf_decomposition():
    records = (
        [_rec(Outcome.MASKED)] * 6 + [_rec(Outcome.SDC)] * 3 + [_rec(Outcome.CRASH)]
    )
    assert avf(records) == pytest.approx(0.4)
    assert sdc_avf(records) == pytest.approx(0.3)
    assert crash_avf(records) == pytest.approx(0.1)
    assert avf(records) == pytest.approx(sdc_avf(records) + crash_avf(records))


def test_hvf_at_least_avf():
    records = (
        [_rec(Outcome.MASKED, HVFClass.CORRUPTION)] * 2   # sw-masked corruptions
        + [_rec(Outcome.MASKED)] * 4
        + [_rec(Outcome.SDC)] * 4
    )
    assert hvf(records) >= avf(records)
    assert hvf(records) == pytest.approx(0.6)


def test_metrics_reject_empty():
    for fn in (avf, sdc_avf, crash_avf, hvf):
        with pytest.raises(ValueError):
            fn([])


def test_quarantined_records_do_not_move_metrics():
    clean = (
        [_rec(Outcome.MASKED)] * 6 + [_rec(Outcome.SDC)] * 3
        + [_rec(Outcome.CRASH)]
    )
    poisoned = clean + [_rec(Outcome.SIM_FAULT, HVFClass.BENIGN)] * 5
    for fn in (avf, sdc_avf, crash_avf, hvf):
        assert fn(poisoned) == pytest.approx(fn(clean))
    assert quarantined(poisoned) == 5 and quarantined(clean) == 0


def test_all_quarantined_degrades_to_none():
    """A fully-quarantined (but non-empty) campaign is a real degraded
    outcome, not a caller bug: metrics report 'undefined' instead of
    raising and taking a whole sweep's report down with them."""
    records = [_rec(Outcome.SIM_FAULT, HVFClass.BENIGN)] * 3
    for fn in (avf, sdc_avf, crash_avf, hvf):
        assert fn(records) is None
    assert n_valid(records) == 0
    assert quarantined(records) == 3


def test_error_margin_all_quarantined_degrades_to_none():
    records = [_rec(Outcome.SIM_FAULT, HVFClass.BENIGN)] * 5
    assert error_margin(records, population=10**6) is None
    with pytest.raises(ValueError):
        error_margin([], population=10**6)


def test_weighted_avf_formula():
    # the paper's wAVF: long benchmarks dominate
    assert weighted_avf([0.1, 0.5], [9.0, 1.0]) == pytest.approx(0.14)
    assert weighted_avf([0.2], [5.0]) == pytest.approx(0.2)


@given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=10),
       st.lists(st.floats(min_value=0.1, max_value=100), min_size=10, max_size=10))
def test_weighted_avf_bounded(avfs, times):
    times = times[: len(avfs)]
    result = weighted_avf(avfs, times)
    assert min(avfs) - 1e-9 <= result <= max(avfs) + 1e-9


def test_weighted_avf_validation():
    with pytest.raises(ValueError):
        weighted_avf([], [])
    with pytest.raises(ValueError):
        weighted_avf([0.1], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_avf([0.1], [0.0])


def test_opf_definition():
    # OPS = ops / (cycles / f); OPF = OPS / AVF
    value = opf(avf_value=0.5, cycles_per_run=1000, clock_hz=1e9,
                operations_per_run=10)
    assert value == pytest.approx((10 / (1000 / 1e9)) / 0.5)


def test_opf_faster_platform_wins_despite_higher_avf():
    """The paper's Observation 7 in miniature: 10x speed beats 3x AVF."""
    cpu = opf(0.1, cycles_per_run=100_000, operations_per_run=100)
    dsa = opf(0.3, cycles_per_run=10_000, operations_per_run=100)
    assert dsa > cpu


def test_opf_edges():
    assert opf(0.0, 100) == float("inf")
    with pytest.raises(ValueError):
        opf(0.5, 0)


def test_error_margin_wrapper():
    records = [_rec(Outcome.MASKED)] * 100
    assert 0 < error_margin(records, population=10**6) < 0.2


# --------------------------------------------------- None propagation


def test_opf_none_avf_propagates_none():
    assert opf(None, cycles_per_run=1000, clock_hz=2e9) is None
    with pytest.raises(ValueError):
        # bad geometry still rejected even with an undefined AVF
        opf(None, cycles_per_run=0, clock_hz=2e9)


def test_weighted_avf_detailed_skips_none_and_renormalizes():
    from repro.core.metrics import weighted_avf_detailed

    # the None cell's weight must drop out, not dilute the average
    res = weighted_avf_detailed([0.2, None, 0.4], [1.0, 5.0, 1.0])
    assert res.value == pytest.approx(0.3)
    assert res.n_used == 2
    assert res.n_skipped == 1


def test_weighted_avf_detailed_all_none_returns_none():
    from repro.core.metrics import weighted_avf_detailed

    res = weighted_avf_detailed([None, None], [1.0, 2.0])
    assert res.value is None
    assert res.n_used == 0
    assert res.n_skipped == 2


def test_weighted_avf_warns_on_skipped_cells():
    with pytest.warns(RuntimeWarning, match="skipped"):
        value = weighted_avf([0.5, None], [2.0, 2.0])
    assert value == pytest.approx(0.5)


def test_weighted_avf_detailed_validation():
    from repro.core.metrics import weighted_avf_detailed

    with pytest.raises(ValueError):
        weighted_avf_detailed([0.1], [1.0, 2.0])   # length mismatch
    with pytest.raises(ValueError):
        weighted_avf_detailed([], [])
    with pytest.raises(ValueError):
        weighted_avf_detailed([0.1, 0.2], [0.0, 0.0])  # zero total weight
