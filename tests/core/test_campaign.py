"""End-to-end campaign tests: golden caching, classification, determinism."""

import pytest

from repro.core.campaign import (
    CampaignSpec,
    golden_run,
    masks_for_spec,
    run_campaign,
    run_one_fault,
)
from repro.core.faults import FaultMask, FaultModel
from repro.core.outcome import HVFClass, Outcome


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=12, seed=21,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


def test_golden_run_cached_and_consistent(cfg):
    a = golden_run("rv", "crc32", cfg, "tiny")
    b = golden_run("rv", "crc32", cfg, "tiny")
    assert a is b
    assert a.result.ok
    assert a.window[0] < a.window[1] <= a.cycles
    assert a.result.commit_trace


def test_campaign_end_to_end(cfg):
    res = run_campaign(_spec(cfg))
    assert len(res.records) == 12
    assert 0.0 <= res.avf <= 1.0
    assert res.avf == pytest.approx(res.sdc_avf + res.crash_avf)
    assert res.hvf >= res.avf - 1e-9           # HVF >= AVF by construction
    assert res.population_bits == cfg.int_phys_regs * 64
    assert 0 < res.error_margin < 1
    summary = res.summary()
    assert summary["isa"] == "rv" and summary["faults"] == 12


def test_campaign_deterministic(cfg):
    a = run_campaign(_spec(cfg))
    b = run_campaign(_spec(cfg))
    assert [r.outcome for r in a.records] == [r.outcome for r in b.records]
    assert [r.cycles for r in a.records] == [r.cycles for r in b.records]


def test_campaign_seed_changes_sample(cfg):
    a = run_campaign(_spec(cfg, seed=1))
    b = run_campaign(_spec(cfg, seed=2))
    assert [r.mask for r in a.records] != [r.mask for r in b.records]


def test_masks_within_golden_window(cfg):
    spec = _spec(cfg, faults=50)
    golden = golden_run(spec.isa, spec.workload, cfg, spec.scale)
    for mask in masks_for_spec(spec, golden):
        assert golden.window[0] <= mask.flips[0].cycle < golden.window[1]


def test_directed_fault_in_hot_data_is_sdc(cfg):
    """Flipping a bit of the CRC table mid-run must corrupt the checksum."""
    spec = _spec(cfg, target="l1d", faults=1)
    golden = golden_run("rv", "crc32", cfg, "tiny")
    from repro.cpu.core import OoOCore
    from repro.isa.base import get_isa

    # find an L1D line that is valid mid-run and flip a data bit in it
    probe = OoOCore.from_executable(golden.exe, get_isa("rv"), cfg)
    mid = (golden.window[0] + golden.window[1]) // 2
    while probe.cycle < mid:
        probe.step()
    line = next(l for l in range(probe.l1d.num_lines) if probe.l1d.valid[l])
    mask = FaultMask.single("l1d", line, 8 * 8 + 1, cycle=mid)
    record = run_one_fault(spec, mask)
    assert record.outcome in (Outcome.SDC, Outcome.MASKED, Outcome.CRASH)
    if record.outcome is not Outcome.MASKED:
        assert record.hvf is HVFClass.CORRUPTION


def test_permanent_campaign_runs(cfg):
    spec = _spec(cfg, model=FaultModel.STUCK_AT_1, faults=8, target="l1d")
    res = run_campaign(spec)
    assert len(res.records) == 8
    # permanent faults never take the transient early-exit
    assert all(r.masked_reason != "masked_unused" for r in res.records
               if r.outcome is not Outcome.MASKED)


def test_early_termination_actually_saves_cycles(cfg):
    """Masked-by-overwrite runs must stop well before the golden runtime."""
    res = run_campaign(_spec(cfg, faults=40))
    golden_cycles = res.golden.cycles
    early = [
        r for r in res.records
        if r.masked_reason in ("masked_unused", "masked_overwritten", "masked_discarded")
    ]
    assert early, "expected some early-terminated runs"
    assert any(r.cycles < golden_cycles * 0.9 for r in early)


def test_stop_on_hvf_mode(cfg):
    spec = _spec(cfg, faults=20, stop_on_hvf=True)
    res = run_campaign(spec)
    corrupt = [r for r in res.records if r.hvf is HVFClass.CORRUPTION]
    if corrupt:  # corrupted runs stopped at the first mismatch
        assert any(r.cycles <= res.golden.cycles for r in corrupt)


def test_multiprocess_workers_agree(cfg):
    spec = _spec(cfg, faults=4)
    seq = run_campaign(spec)
    par = run_campaign(spec, workers=2)
    assert [r.outcome for r in seq.records] == [r.outcome for r in par.records]


def test_unknown_workload_message(cfg):
    with pytest.raises(KeyError):
        run_campaign(_spec(cfg, workload="not_a_workload"))
