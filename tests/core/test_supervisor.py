"""Supervised-executor tests: timeouts, broken pools, serial degradation.

Worker functions must be module-level (picklable).  Timings are kept tight:
no test sleeps longer than a couple of seconds even on failure, because the
supervisor kills hung workers instead of joining them.
"""

import os
import time

from repro.core.supervisor import (
    ERROR,
    OK,
    TIMEOUT,
    SupervisorPolicy,
    TaskOutcome,
    run_supervised,
)

_FAST = dict(backoff_base_s=0.0, backoff_cap_s=0.0, poll_s=0.02)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"bad {x}")


def _sleepy(x):
    if x == "sleep":
        time.sleep(30)
    return x


def _die_once(path):
    """Break the pool on the first attempt, succeed on the retry."""
    if os.path.exists(path):
        return "ok"
    open(path, "w").close()
    os._exit(1)


def _die_in_child(parent_pid):
    """Always break the pool; only the parent process can run this."""
    if os.getpid() != parent_pid:
        os._exit(1)
    return "serial"


def test_results_in_input_order():
    outcomes = run_supervised(_square, [1, 2, 3, 4, 5], workers=2,
                              policy=SupervisorPolicy(**_FAST))
    assert [o.value for o in outcomes] == [1, 4, 9, 16, 25]
    assert all(o.ok and o.kind == OK and o.attempts == 1 for o in outcomes)


def test_worker_exception_retries_then_reports_error():
    policy = SupervisorPolicy(max_retries=1, **_FAST)
    outcomes = run_supervised(_boom, ["x"], workers=2, policy=policy)
    (outcome,) = outcomes
    assert outcome.kind == ERROR and not outcome.ok
    assert outcome.attempts == 2          # first try + one retry
    assert "ValueError" in outcome.error


def test_hung_task_times_out_without_sinking_others():
    policy = SupervisorPolicy(timeout_s=1.0, max_retries=0, **_FAST)
    start = time.monotonic()
    outcomes = run_supervised(_sleepy, ["a", "sleep", "b"], workers=2,
                              policy=policy)
    elapsed = time.monotonic() - start
    by_item = {o.item: o for o in outcomes}
    assert by_item["a"].ok and by_item["b"].ok
    assert by_item["sleep"].kind == TIMEOUT
    assert "wall clock" in by_item["sleep"].error
    assert elapsed < 15, "supervisor must kill hung workers, not join them"


def test_broken_pool_respawns_and_requeues(tmp_path):
    flag = str(tmp_path / "died-once")
    policy = SupervisorPolicy(**_FAST)
    outcomes = run_supervised(_die_once, [flag], workers=2, policy=policy)
    (outcome,) = outcomes
    # the pool broke (worker os._exit), the mask was requeued, the retry
    # succeeded; the task itself never failed so attempts stays 1
    assert outcome.ok and outcome.value == "ok" and outcome.attempts == 1


def test_degrades_to_serial_after_repeated_pool_failures():
    policy = SupervisorPolicy(max_pool_respawns=0, **_FAST)
    items = [os.getpid()] * 3
    outcomes = run_supervised(_die_in_child, items, workers=2, policy=policy)
    assert [o.value for o in outcomes] == ["serial"] * 3
    assert all(o.mode == "serial" for o in outcomes)


def test_on_result_fires_per_completion():
    seen = []
    run_supervised(_square, [1, 2, 3], workers=2,
                   policy=SupervisorPolicy(**_FAST),
                   on_result=seen.append)
    assert sorted(o.value for o in seen) == [1, 4, 9]
    assert all(isinstance(o, TaskOutcome) for o in seen)


def test_serial_items_with_no_workers_needed():
    # workers=1 still goes through the pool; exercise the trivial case
    outcomes = run_supervised(_square, [], workers=1)
    assert outcomes == []


def test_backoff_schedule_is_exponential_and_capped():
    policy = SupervisorPolicy(backoff_base_s=0.25, backoff_cap_s=1.0)
    assert policy.backoff_for(0) == 0.25
    assert policy.backoff_for(1) == 0.5
    assert policy.backoff_for(2) == 1.0
    assert policy.backoff_for(10) == 1.0


def test_backoff_and_timeout_clamp_negative_attempts():
    """Attempt numbers below 0 must clamp to the attempt-0 value: a negative
    attempt may never *shrink* the backoff below base or the deadline below
    timeout_s (the first-respawn path computes ``respawns - 1``)."""
    policy = SupervisorPolicy(timeout_s=8.0, backoff_base_s=0.25,
                              backoff_cap_s=4.0)
    assert policy.backoff_for(-1) == policy.backoff_for(0) == 0.25
    assert policy.timeout_for(-1) == policy.timeout_for(0) == 8.0
    assert policy.timeout_for(1) == 16.0          # retries still escalate
    assert SupervisorPolicy(timeout_s=None).timeout_for(0) is None


def test_first_pool_respawn_sleeps_base_backoff():
    """Pin the respawn backoff sequence: respawn n sleeps
    ``backoff_for(n - 1)``, so the first respawn waits exactly the base
    backoff (not base/2 from a stray ``2**-1``), and the degradation to
    serial does not sleep at all."""
    slept = []
    policy = SupervisorPolicy(max_pool_respawns=2, backoff_base_s=0.25,
                              backoff_cap_s=1.0, poll_s=0.02)
    outcomes = run_supervised(_die_in_child, [os.getpid()] * 2, workers=2,
                              policy=policy, sleep=slept.append)
    assert [o.value for o in outcomes] == ["serial"] * 2
    assert slept == [0.25, 0.5]


def test_on_event_reports_dispatch_and_retry():
    events = []
    policy = SupervisorPolicy(max_retries=1, **_FAST)
    run_supervised(_boom, ["x"], workers=2, policy=policy,
                   on_event=lambda kind, info: events.append((kind, info)))
    kinds = [k for k, _ in events]
    assert kinds.count("dispatch") == 2          # first try + one retry
    assert kinds.count("retry") == 1
    retry = dict(events)["retry"]
    assert retry["reason"] == "error" and retry["attempt"] == 1
    dispatches = [info for k, info in events if k == "dispatch"]
    assert [d["attempt"] for d in dispatches] == [0, 1]
    assert all(d["index"] == 0 for d in dispatches)


def test_on_event_reports_respawn_and_serial_degradation():
    events = []
    policy = SupervisorPolicy(max_pool_respawns=0, **_FAST)
    run_supervised(_die_in_child, [os.getpid()], workers=2, policy=policy,
                   on_event=lambda kind, info: events.append(kind))
    assert "pool_respawn" in events
    assert "serial_degradation" in events
    # the serial re-dispatch is observable too
    assert events.count("dispatch") >= 2


def test_outcomes_carry_wall_clock():
    outcomes = run_supervised(_square, [1, 2], workers=2,
                              policy=SupervisorPolicy(**_FAST))
    assert all(o.wall_s is not None and o.wall_s >= 0 for o in outcomes)
    policy = SupervisorPolicy(timeout_s=0.5, max_retries=0, **_FAST)
    outcomes = run_supervised(_sleepy, ["sleep"], workers=1, policy=policy)
    (timed_out,) = outcomes
    assert timed_out.kind == TIMEOUT
    assert timed_out.wall_s is not None and timed_out.wall_s >= 0.5


def _sleep_for(item):
    time.sleep(item["sleep"])
    return item["name"]


def test_item_timeout_budgets_each_item_separately():
    """A heterogeneous queue: the slow item must time out on its own tight
    budget while the generous-budget item survives a longer runtime."""
    items = [
        {"name": "quick", "sleep": 0.0, "budget": 0.2},
        {"name": "hog", "sleep": 30.0, "budget": 0.2},
        {"name": "patient", "sleep": 0.4, "budget": 30.0},
    ]
    policy = SupervisorPolicy(max_retries=0, **_FAST)
    outcomes = run_supervised(
        _sleep_for, items, workers=3, policy=policy,
        item_timeout=lambda item: item["budget"],
    )
    assert outcomes[0].ok and outcomes[0].value == "quick"
    assert outcomes[1].kind == TIMEOUT
    assert outcomes[2].ok and outcomes[2].value == "patient"


def test_item_timeout_none_runs_untimed():
    policy = SupervisorPolicy(timeout_s=0.05, max_retries=0, **_FAST)
    outcomes = run_supervised(
        _sleep_for, [{"name": "slowish", "sleep": 0.3}], workers=1,
        policy=policy, item_timeout=lambda item: None,
    )
    # per-item None overrides the policy budget: no timeout fires
    assert outcomes[0].ok and outcomes[0].value == "slowish"


def test_item_timeout_scales_on_retry():
    """Retried attempts get budget * timeout_scale_on_retry**attempt, same
    rule as the policy-level timeout."""
    policy = SupervisorPolicy(max_retries=1, timeout_scale_on_retry=10.0,
                              **_FAST)
    outcomes = run_supervised(
        _sleep_for, [{"name": "borderline", "sleep": 0.4}], workers=1,
        policy=policy, item_timeout=lambda item: 0.15,
    )
    # attempt 0 times out at 0.15s; attempt 1's budget is 1.5s and passes
    assert outcomes[0].ok
    assert outcomes[0].attempts == 2
