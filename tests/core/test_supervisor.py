"""Supervised-executor tests: timeouts, broken pools, serial degradation.

Worker functions must be module-level (picklable).  Timings are kept tight:
no test sleeps longer than a couple of seconds even on failure, because the
supervisor kills hung workers instead of joining them.
"""

import os
import time

from repro.core.supervisor import (
    ERROR,
    OK,
    TIMEOUT,
    SupervisorPolicy,
    TaskOutcome,
    run_supervised,
)

_FAST = dict(backoff_base_s=0.0, backoff_cap_s=0.0, poll_s=0.02)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"bad {x}")


def _sleepy(x):
    if x == "sleep":
        time.sleep(30)
    return x


def _die_once(path):
    """Break the pool on the first attempt, succeed on the retry."""
    if os.path.exists(path):
        return "ok"
    open(path, "w").close()
    os._exit(1)


def _die_in_child(parent_pid):
    """Always break the pool; only the parent process can run this."""
    if os.getpid() != parent_pid:
        os._exit(1)
    return "serial"


def test_results_in_input_order():
    outcomes = run_supervised(_square, [1, 2, 3, 4, 5], workers=2,
                              policy=SupervisorPolicy(**_FAST))
    assert [o.value for o in outcomes] == [1, 4, 9, 16, 25]
    assert all(o.ok and o.kind == OK and o.attempts == 1 for o in outcomes)


def test_worker_exception_retries_then_reports_error():
    policy = SupervisorPolicy(max_retries=1, **_FAST)
    outcomes = run_supervised(_boom, ["x"], workers=2, policy=policy)
    (outcome,) = outcomes
    assert outcome.kind == ERROR and not outcome.ok
    assert outcome.attempts == 2          # first try + one retry
    assert "ValueError" in outcome.error


def test_hung_task_times_out_without_sinking_others():
    policy = SupervisorPolicy(timeout_s=1.0, max_retries=0, **_FAST)
    start = time.monotonic()
    outcomes = run_supervised(_sleepy, ["a", "sleep", "b"], workers=2,
                              policy=policy)
    elapsed = time.monotonic() - start
    by_item = {o.item: o for o in outcomes}
    assert by_item["a"].ok and by_item["b"].ok
    assert by_item["sleep"].kind == TIMEOUT
    assert "wall clock" in by_item["sleep"].error
    assert elapsed < 15, "supervisor must kill hung workers, not join them"


def test_broken_pool_respawns_and_requeues(tmp_path):
    flag = str(tmp_path / "died-once")
    policy = SupervisorPolicy(**_FAST)
    outcomes = run_supervised(_die_once, [flag], workers=2, policy=policy)
    (outcome,) = outcomes
    # the pool broke (worker os._exit), the mask was requeued, the retry
    # succeeded; the task itself never failed so attempts stays 1
    assert outcome.ok and outcome.value == "ok" and outcome.attempts == 1


def test_degrades_to_serial_after_repeated_pool_failures():
    policy = SupervisorPolicy(max_pool_respawns=0, **_FAST)
    items = [os.getpid()] * 3
    outcomes = run_supervised(_die_in_child, items, workers=2, policy=policy)
    assert [o.value for o in outcomes] == ["serial"] * 3
    assert all(o.mode == "serial" for o in outcomes)


def test_on_result_fires_per_completion():
    seen = []
    run_supervised(_square, [1, 2, 3], workers=2,
                   policy=SupervisorPolicy(**_FAST),
                   on_result=seen.append)
    assert sorted(o.value for o in seen) == [1, 4, 9]
    assert all(isinstance(o, TaskOutcome) for o in seen)


def test_serial_items_with_no_workers_needed():
    # workers=1 still goes through the pool; exercise the trivial case
    outcomes = run_supervised(_square, [], workers=1)
    assert outcomes == []


def test_backoff_schedule_is_exponential_and_capped():
    policy = SupervisorPolicy(backoff_base_s=0.25, backoff_cap_s=1.0)
    assert policy.backoff_for(0) == 0.25
    assert policy.backoff_for(1) == 0.5
    assert policy.backoff_for(2) == 1.0
    assert policy.backoff_for(10) == 1.0
