"""Pluggable fault-model registry: generators, provenance, byte identity.

Five layers of guarantees:

* **spec canonicalization** — ``name:k=v,...`` parsing, sorted params,
  journal-dict round trips, and the collapse of a bare ``uniform`` to the
  unset form;
* **generator streams** — seed-pinned determinism for ``burst``,
  ``error-map`` and ``adversarial``, plus their structural invariants
  (burst adjacency/arity/single-timestamp, error-map row weighting,
  adversarial cache-site geometry) and without-replacement draws;
* **byte identity** — an unset (or bare-``uniform``) fault model
  dispatches to the exact pre-registry sampler streams and serializes
  without a ``fault_model`` key, so old journals fingerprint-match;
* **provenance** — the generator identity rides the journal header:
  ``--resume`` refuses a journal drawn by a different generator, and
  ``repro doctor`` validates the header and per-record mask shapes;
* **interplay** — burst (multi-bit) masks flow through the liveness
  audit with zero disagreements and through protection with the real
  SECDED/TMR semantics (double-bit DUE, triple-bit residual escape,
  TMR vote), and telemetry's per-generator counters are replay-pure.
"""

import hashlib
import json

import pytest

from repro.accel.campaign import AccelCampaignSpec, run_accel_campaign
from repro.cli import main as cli_main
from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.faultmodels import (
    GENERATORS,
    FaultModelSpec,
    accel_sample,
    cpu_sample,
    fault_model_from_dict,
    get_generator,
    parse_fault_model,
    resolve,
    validate_for,
)
from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.journal import (
    CampaignJournal,
    JournalError,
    spec_fingerprint,
    spec_to_dict,
)
from repro.core.outcome import Outcome
from repro.core.protection import ProtectionConfig
from repro.core.sampling import generate_masks


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=6, seed=9,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


#: synthetic commit trace (pc, raw, dst, value, addr, store_data, taken):
#: three straight-line ops and two branches, one duplicated pc
SYNTH_TRACE = [
    (0x100, 0x13, 1, 0, None, None, None),
    (0x104, 0x6F, 0, 0, None, None, True),
    (0x108, 0x33, 2, 5, None, None, None),
    (0x10C, 0x63, 0, 0, None, None, False),
    (0x100, 0x13, 1, 0, None, None, None),     # duplicate pc: deduped
]


# ------------------------------------------------------- spec canonical form


def test_parse_round_trips_describe():
    spec = FaultModelSpec.parse("burst:span=4, arity=3")
    assert spec.name == "burst"
    assert spec.params == (("arity", "3"), ("span", "4"))   # sorted
    assert spec.describe() == "burst:arity=3,span=4"
    assert FaultModelSpec.parse(spec.describe()) == spec
    assert FaultModelSpec.parse("uniform").describe() == "uniform"


def test_params_sort_whatever_the_construction_order():
    a = FaultModelSpec("burst", (("span", "4"), ("arity", "3")))
    b = FaultModelSpec("burst", (("arity", "3"), ("span", "4")))
    assert a == b and a.param_dict() == {"arity": "3", "span": "4"}


@pytest.mark.parametrize("text", ["", ":arity=2", "burst:arity", "burst:=3"])
def test_parse_rejects_malformed(text):
    with pytest.raises(ValueError):
        FaultModelSpec.parse(text)


def test_from_dict_round_trips_the_journal_form():
    import dataclasses

    spec = FaultModelSpec.parse("error-map:rows=4/2/1,default=0.5")
    wire = json.loads(json.dumps(dataclasses.asdict(spec)))
    assert fault_model_from_dict(wire) == spec


@pytest.mark.parametrize("data", [
    "burst", {"params": []}, {"name": ""}, {"name": "burst", "params": "x"},
    {"name": "burst", "params": [["arity"]]},
])
def test_from_dict_rejects_forged_provenance(data):
    with pytest.raises(ValueError):
        fault_model_from_dict(data)


def test_registry_contents_and_unknown_name():
    assert set(GENERATORS) == {"uniform", "burst", "error-map", "adversarial"}
    with pytest.raises(ValueError, match="unknown fault model"):
        get_generator("gauss")
    with pytest.raises(ValueError, match="unknown fault model"):
        parse_fault_model("gauss:sigma=2")


def test_generators_reject_unknown_params():
    with pytest.raises(ValueError, match="does not take parameter"):
        get_generator("burst").validate({"frequency": "2"})
    with pytest.raises(ValueError, match="does not take parameter"):
        parse_fault_model("uniform:arity=2")


def test_resolve_collapses_bare_uniform_to_unset():
    """An explicitly-requested default must fingerprint (and journal)
    exactly like a spec that never mentioned a fault model."""
    assert parse_fault_model("uniform") is None
    assert resolve(FaultModelSpec("uniform")) is None
    assert resolve(None) is None
    assert parse_fault_model("burst:arity=2") == FaultModelSpec.parse(
        "burst:arity=2")


def test_validate_for_side_and_compatibility_checks():
    validate_for(None)                                      # unset: anything
    validate_for(FaultModelSpec("error-map", (("rows", "2/1"),)), accel=True)
    with pytest.raises(ValueError, match="CPU campaigns only"):
        validate_for(FaultModelSpec("burst"), accel=True)
    with pytest.raises(ValueError, match="CPU campaigns only"):
        validate_for(FaultModelSpec("adversarial"), accel=True)
    with pytest.raises(ValueError, match="flips_per_mask"):
        validate_for(FaultModelSpec("burst"), flips_per_mask=3)
    with pytest.raises(ValueError, match="transients only"):
        validate_for(FaultModelSpec("adversarial"),
                     model=FaultModel.STUCK_AT_0)
    with pytest.raises(ValueError, match="cache"):
        validate_for(FaultModelSpec("adversarial"), target_kind="regfile")


# --------------------------------------------------- uniform byte identity


def test_uniform_cpu_dispatch_is_generate_masks_verbatim():
    """Unset and bare-uniform specs must reproduce the historical CPU
    sampler stream bit for bit — the journal byte-identity contract."""
    kwargs = dict(structure="rf", entries=8, bits_per_entry=32, count=10,
                  window=(10, 60), model=FaultModel.TRANSIENT, seed=42,
                  flips_per_mask=2)
    reference = generate_masks("rf", 8, 32, 10, (10, 60), seed=42,
                               flips_per_mask=2)
    assert cpu_sample(None, **kwargs) == reference
    assert cpu_sample(FaultModelSpec("uniform"), **kwargs) == reference


def test_uniform_accel_dispatch_is_deterministic_and_distinct():
    kwargs = dict(structure="accel:gemm:MATRIX1", total_bits=256, cycles=40,
                  count=20, model=FaultModel.TRANSIENT, seed=7)
    a = accel_sample(None, **kwargs)
    b = accel_sample(FaultModelSpec("uniform"), **kwargs)
    assert a == b
    sites = [(m.flips[0].bit, m.flips[0].cycle) for m in a]
    assert len(set(sites)) == 20
    for bit, cycle in sites:
        assert 0 <= bit < 256 and 0 <= cycle < 40


def test_unset_spec_serializes_without_fault_model_key(cfg):
    bare = _spec(cfg)
    assert "fault_model" not in spec_to_dict(bare)
    assert spec_fingerprint(bare) == spec_fingerprint(
        _spec(cfg, fault_model=parse_fault_model("uniform")))
    burst = _spec(cfg, fault_model=parse_fault_model("burst:arity=2"))
    # pre-JSON form keeps tuples; the journal writes their list round-trip
    assert spec_to_dict(burst)["fault_model"] == {
        "name": "burst", "params": (("arity", "2"),)}
    assert spec_fingerprint(burst) != spec_fingerprint(bare)


# ------------------------------------------------------------------- burst


def test_burst_seed_stability_regression():
    """Pinned draw sequence — the same breaking-change tripwire as the
    uniform sampler's pin: resumed journals match masks by exact flips."""
    masks = cpu_sample(FaultModelSpec.parse("burst:arity=3,span=4"),
                       structure="rf", entries=8, bits_per_entry=32, count=3,
                       window=(10, 20), model=FaultModel.TRANSIENT, seed=7)
    assert [[(f.entry, f.bit, f.cycle) for f in m.flips] for m in masks] == [
        [(5, 4, 11), (5, 6, 11), (5, 7, 11)],
        [(1, 11, 10), (1, 13, 10), (1, 14, 10)],
        [(1, 13, 11), (1, 15, 11), (1, 16, 11)],
    ]


def test_burst_bit_axis_shape_invariants():
    spec = FaultModelSpec.parse("burst:arity=3,span=5")
    masks = cpu_sample(spec, structure="rf", entries=16, bits_per_entry=64,
                       count=20, window=(0, 100),
                       model=FaultModel.TRANSIENT, seed=3)
    seen_sites = set()
    for m in masks:
        assert len(m.flips) == 3 and m.multi_bit
        entries = {f.entry for f in m.flips}
        cycles = {f.cycle for f in m.flips}
        bits = sorted(f.bit for f in m.flips)
        assert len(entries) == 1                    # one row
        assert len(cycles) == 1                     # one timestamp
        assert bits[-1] - bits[0] < 5               # inside the span window
        assert len(set(bits)) == 3                  # distinct flips
        for f in m.flips:
            site = (f.entry, f.bit, f.cycle)
            assert site not in seen_sites           # without replacement
            seen_sites.add(site)


def test_burst_entry_axis_strikes_adjacent_rows():
    spec = FaultModelSpec.parse("burst:axis=entry,span=3,arity=2")
    masks = cpu_sample(spec, structure="rf", entries=16, bits_per_entry=8,
                       count=10, window=(5, 50),
                       model=FaultModel.TRANSIENT, seed=1)
    for m in masks:
        assert len({f.bit for f in m.flips}) == 1   # same column
        assert len({f.cycle for f in m.flips}) == 1
        rows = sorted(f.entry for f in m.flips)
        assert rows[1] - rows[0] < 3


def test_burst_parameter_and_placement_errors():
    ctx = dict(structure="rf", entries=4, bits_per_entry=8, count=2,
               window=(0, 10), model=FaultModel.TRANSIENT, seed=1)
    with pytest.raises(ValueError, match="flips_per_mask"):
        cpu_sample(FaultModelSpec("burst"), flips_per_mask=2, **ctx)
    with pytest.raises(ValueError, match="cannot hold"):
        parse_fault_model("burst:arity=4,span=2")
    with pytest.raises(ValueError, match="axis"):
        parse_fault_model("burst:axis=diag")
    with pytest.raises(ValueError, match="exceeds the bit extent"):
        cpu_sample(FaultModelSpec.parse("burst:span=16"), **ctx)
    with pytest.raises(ValueError, match="cannot place"):
        cpu_sample(FaultModelSpec.parse("burst:arity=2"),
                   structure="rf", entries=1, bits_per_entry=4, count=50,
                   window=(0, 2), model=FaultModel.TRANSIENT, seed=1)


# --------------------------------------------------------------- error-map


def test_error_map_seed_stability_and_zero_weight_rows():
    """Pinned stream; rows with weight 0 (row 1 inline, row 3 by default=0)
    must never be drawn."""
    spec = FaultModelSpec.parse("error-map:rows=4/0/1,default=0")
    masks = cpu_sample(spec, structure="rf", entries=4, bits_per_entry=8,
                       count=5, window=(0, 6),
                       model=FaultModel.TRANSIENT, seed=11)
    sites = [(m.flips[0].entry, m.flips[0].bit, m.flips[0].cycle)
             for m in masks]
    assert sites == [(0, 7, 3), (0, 3, 1), (2, 7, 5), (0, 2, 0), (0, 0, 4)]
    assert {e for e, _, _ in sites} <= {0, 2}
    assert len(set(sites)) == 5                     # without replacement


def test_error_map_weighting_skews_the_draw():
    spec = FaultModelSpec.parse("error-map:rows=50/1")
    masks = cpu_sample(spec, structure="rf", entries=2, bits_per_entry=64,
                       count=60, window=(0, 50),
                       model=FaultModel.TRANSIENT, seed=5)
    hot = sum(1 for m in masks if m.flips[0].entry == 0)
    assert hot > 45                                 # ~50x the cold row


def test_error_map_accel_rows_are_bytes():
    """Accel rows are 8-bit bytes; a zero-weighted byte is never struck,
    and the stream is seed-pinned."""
    spec = FaultModelSpec.parse("error-map:rows=8/0/1,default=1")
    masks = accel_sample(spec, structure="accel:gemm:MATRIX1", total_bits=30,
                         cycles=12, count=5, model=FaultModel.TRANSIENT,
                         seed=5)
    sites = [(m.flips[0].bit, m.flips[0].cycle) for m in masks]
    assert sites == [(5, 11), (24, 7), (3, 10), (2, 1), (3, 6)]
    assert all(not 8 <= bit < 16 for bit, _ in sites)   # dead byte row 1


def test_error_map_rejects_degenerate_weights():
    with pytest.raises(ValueError):
        parse_fault_model("error-map")              # no weights at all
    with pytest.raises(ValueError, match="zero weight"):
        parse_fault_model("error-map:rows=0/0,default=0")
    with pytest.raises(ValueError, match="not a number"):
        parse_fault_model("error-map:rows=4/x/1")
    with pytest.raises(ValueError, match=">= 0"):
        parse_fault_model("error-map:rows=4/-1")
    # population counts positively-weighted rows only: 1 live row x 8 bits
    # x 4 cycles = 32 sites < 40 requested
    with pytest.raises(ValueError, match="positively-weighted"):
        cpu_sample(FaultModelSpec.parse("error-map:rows=1,default=0"),
                   structure="rf", entries=4, bits_per_entry=8, count=40,
                   window=(0, 4), model=FaultModel.TRANSIENT, seed=1)


def test_error_map_file_is_inlined_at_resolve_time(tmp_path):
    """map=FILE.toml becomes inline rows= weights: the fingerprint is
    content-sensitive and the journal self-contained."""
    map_file = tmp_path / "undervolt.toml"
    map_file.write_text("rows = [4, 2, 1]\ndefault = 0.5\n")
    spec = parse_fault_model(f"error-map:map={map_file}")
    assert spec.param_dict() == {"rows": "4/2/1", "default": "0.5"}
    # relative paths anchor at base_dir (the grid file's directory)
    rel = parse_fault_model("error-map:map=undervolt.toml",
                            base_dir=tmp_path)
    assert rel == spec
    # editing the file changes the resolved identity
    map_file.write_text("rows = [4, 2, 99]\n")
    assert parse_fault_model(f"error-map:map={map_file}") != spec


def test_error_map_file_errors(tmp_path):
    missing = tmp_path / "nope.toml"
    with pytest.raises(ValueError, match="nope.toml"):
        parse_fault_model(f"error-map:map={missing}")
    bad = tmp_path / "bad.toml"
    bad.write_text("rows = 'all'\n")
    with pytest.raises(ValueError, match="list of numbers"):
        parse_fault_model(f"error-map:map={bad}")
    extra = tmp_path / "extra.toml"
    extra.write_text("rows = [1]\nvoltage = 0.7\n")
    with pytest.raises(ValueError, match="unknown key"):
        parse_fault_model(f"error-map:map={extra}")
    both = tmp_path / "ok.toml"
    both.write_text("rows = [1, 2]\n")
    with pytest.raises(ValueError, match="not both"):
        parse_fault_model(f"error-map:map={both},rows=3/1")
    # an unresolved map= param must never reach the sampler
    with pytest.raises(ValueError, match="resolved before sampling"):
        cpu_sample(FaultModelSpec("error-map", (("map", str(both)),)),
                   structure="rf", entries=2, bits_per_entry=8, count=1,
                   window=(0, 4), model=FaultModel.TRANSIENT, seed=1)


# ------------------------------------------------------------- adversarial


def _adv_sample(attack="branch", count=3, trace=SYNTH_TRACE, **over):
    kwargs = dict(structure="l1i", entries=8, bits_per_entry=128, count=count,
                  window=(100, 200), model=FaultModel.TRANSIENT, seed=3,
                  target_kind="cache", cache_geometry=(16, 4, 2),
                  commit_trace=trace)
    kwargs.update(over)
    return cpu_sample(FaultModelSpec.parse(f"adversarial:attack={attack}"),
                      **kwargs)


def test_adversarial_seed_stability_regression():
    masks = _adv_sample()
    sites = [(m.flips[0].entry, m.flips[0].bit, m.flips[0].cycle)
             for m in masks]
    assert sites == [(1, 37, 133), (1, 39, 133), (0, 99, 166)]


def test_adversarial_sites_land_on_traced_cache_lines():
    """Every directed flip maps back to a traced instruction: the set index
    derives from its pc, the bit from its line-offset bytes."""
    line_size, num_sets, assoc = 16, 4, 2
    for attack, nbytes in (("skip", 1), ("opcode", 4), ("branch", 1)):
        masks = _adv_sample(attack=attack, count=4)
        eligible = {pc for pc, *rest in SYNTH_TRACE
                    if attack != "branch" or rest[-1] is not None}
        for m in masks:
            (flip,) = m.flips
            set_idx, way = divmod(flip.entry, assoc)
            byte_off, bit_in_byte = divmod(flip.bit, 8)
            assert 0 <= way < assoc and 0 <= bit_in_byte < 8
            matching = [pc for pc in eligible
                        if (pc // line_size) % num_sets == set_idx
                        and 0 <= byte_off - pc % line_size < nbytes]
            assert matching, (attack, flip)
            assert 100 <= flip.cycle < 200


def test_adversarial_branch_filter_and_empty_trace():
    straight = [(0x200 + 4 * i, 0x13, 1, 0, None, None, None)
                for i in range(4)]
    with pytest.raises(ValueError, match="no eligible instructions"):
        _adv_sample(attack="branch", trace=straight)
    with pytest.raises(ValueError, match="golden commit trace"):
        _adv_sample(trace=[])
    with pytest.raises(ValueError, match="golden commit trace"):
        _adv_sample(cache_geometry=None)
    with pytest.raises(ValueError, match="attack="):
        parse_fault_model("adversarial:attack=rowhammer")


def test_adversarial_campaign_rejects_incompatible_specs(cfg):
    adv = parse_fault_model("adversarial")
    with pytest.raises(ValueError, match="cache"):
        run_campaign(_spec(cfg, target="regfile_int", fault_model=adv))
    with pytest.raises(ValueError, match="transients only"):
        run_campaign(_spec(cfg, target="l1i", model=FaultModel.STUCK_AT_1,
                           fault_model=adv))
    with pytest.raises(ValueError, match="one directed flip"):
        run_campaign(_spec(cfg, target="l1i", flips_per_mask=2,
                           fault_model=adv))


def test_adversarial_campaign_reports_attack_success(cfg):
    spec = _spec(cfg, target="l1i", faults=8,
                 fault_model=parse_fault_model("adversarial:attack=branch"))
    result = run_campaign(spec)
    assert len(result.records) == 8
    summary = result.summary()
    assert summary["fault_model"] == "adversarial:attack=branch"
    # the InjectV success criterion is the SDC share of valid records —
    # numerically sdc_avf over the *directed* sample, which is the point
    # of reporting it next to AVF
    assert summary["attack_success"] == result.attack_success
    valid = result.valid_records
    assert result.attack_success == pytest.approx(
        sum(r.outcome is Outcome.SDC for r in valid) / len(valid))


def test_attack_success_absent_for_undirected_campaigns(cfg):
    summary = run_campaign(_spec(cfg, faults=4)).summary()
    assert "attack_success" not in summary and "fault_model" not in summary


# -------------------------------------------- journal provenance + resume


@pytest.fixture(scope="module")
def burst_journal(cfg, tmp_path_factory):
    """One journaled burst campaign shared by the provenance tests."""
    path = tmp_path_factory.mktemp("fm") / "burst.jsonl"
    spec = CampaignSpec(isa="rv", workload="crc32", target="regfile_int",
                        cfg=cfg, scale="tiny", faults=6, seed=9,
                        fault_model=parse_fault_model("burst:arity=2"))
    result = run_campaign(spec, journal=path)
    return spec, result, path


def test_burst_campaign_journals_its_generator(burst_journal):
    spec, result, path = burst_journal
    header = json.loads(path.read_text().splitlines()[0])
    assert header["spec"]["fault_model"] == {
        "name": "burst", "params": [["arity", "2"]]}
    for record in result.records:
        assert len(record.mask.flips) == 2
        assert len({f.cycle for f in record.mask.flips}) == 1
    assert result.summary()["fault_model"] == "burst:arity=2"


def test_resume_refuses_a_mismatched_generator(cfg, burst_journal, tmp_path):
    """The generator identity is in the spec fingerprint, so opening (or
    resuming) a journal under a different generator fails loudly."""
    spec, _, path = burst_journal
    copy = tmp_path / "burst.jsonl"
    copy.write_bytes(path.read_bytes())
    bare = _spec(cfg)
    with pytest.raises(JournalError, match="different"):
        CampaignJournal.open(copy, bare)
    with pytest.raises(JournalError, match="different"):
        run_campaign(bare, journal=copy, resume=copy)
    assert copy.read_bytes() == path.read_bytes()   # refused before writing
    # the matching spec still resumes cleanly
    resumed = run_campaign(spec, journal=copy, resume=copy)
    assert resumed.resumed == 6


def _rehash(header: dict) -> dict:
    """Recompute the header fingerprint after a spec edit, so the doctor's
    fingerprint gate passes and the provenance checks are what trips."""
    header["fingerprint"] = hashlib.sha256(
        json.dumps(header["spec"], sort_keys=True).encode()).hexdigest()
    return header


def _with_header(path, out_path, mutate):
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    mutate(header)
    lines[0] = json.dumps(_rehash(header))
    out_path.write_text("\n".join(lines) + "\n")
    return out_path


def test_doctor_validates_generator_provenance(burst_journal, tmp_path):
    from repro.core.doctor import diagnose_journal

    _, _, path = burst_journal
    assert diagnose_journal(path).ok

    forged = _with_header(
        path, tmp_path / "forged.jsonl",
        lambda h: h["spec"]["fault_model"].update(name="gauss"))
    report = diagnose_journal(forged)
    assert not report.ok
    assert any("fault_model is invalid" in p for p in report.problems)

    badparam = _with_header(
        path, tmp_path / "badparam.jsonl",
        lambda h: h["spec"]["fault_model"].update(params=[["arity", "one"]]))
    assert not diagnose_journal(badparam).ok


def test_doctor_warns_on_unnormalized_uniform_header(burst_journal, tmp_path):
    from repro.core.doctor import diagnose_journal

    _, _, path = burst_journal
    verbose = _with_header(
        path, tmp_path / "verbose.jsonl",
        lambda h: h["spec"].update(
            fault_model={"name": "uniform", "params": []}))
    report = diagnose_journal(verbose)
    assert any("uniform default" in w for w in report.warnings)


def test_doctor_flags_burst_shaped_record_violations(burst_journal, tmp_path):
    from repro.core.doctor import diagnose_journal

    _, _, path = burst_journal
    lines = path.read_text().splitlines()

    # a burst mask whose flips straddle two cycles is not a burst
    spread = json.loads(lines[1])
    spread["mask"]["flips"][1]["cycle"] += 1
    torn = tmp_path / "spread.jsonl"
    torn.write_text("\n".join([lines[0], json.dumps(spread)] + lines[2:])
                    + "\n")
    report = diagnose_journal(torn)
    assert not report.ok
    assert any("multiple cycles" in p for p in report.problems)

    # a single-flip mask under a burst header is equally forged
    single = json.loads(lines[1])
    single["mask"]["flips"] = single["mask"]["flips"][:1]
    lone = tmp_path / "single.jsonl"
    lone.write_text("\n".join([lines[0], json.dumps(single)] + lines[2:])
                    + "\n")
    report = diagnose_journal(lone)
    assert not report.ok
    assert any("single flip" in p for p in report.problems)


# --------------------------------------------------------------- telemetry


def test_generator_outcomes_live_equals_replayed(burst_journal):
    from repro.core.telemetry import CampaignAggregate, aggregate_from_journal

    spec, result, path = burst_journal
    live = CampaignAggregate()
    for record in result.records:
        live.fold(record, generator="burst")
    replayed, header = aggregate_from_journal(path)
    assert live.reconcilable() == replayed.reconcilable()
    doc = replayed.reconcilable()
    assert "generator_outcomes" in doc
    assert sum(doc["generator_outcomes"]["burst"].values()) == 6
    assert header["spec"]["fault_model"]["name"] == "burst"


def test_generator_outcomes_absent_for_default_campaigns(cfg, tmp_path):
    from repro.core.telemetry import Telemetry, aggregate_from_journal

    telemetry = Telemetry()
    path = tmp_path / "bare.jsonl"
    run_campaign(_spec(cfg, faults=4), journal=path, telemetry=telemetry)
    assert "generator_outcomes" not in telemetry.aggregate.reconcilable()
    replayed, _ = aggregate_from_journal(path)
    assert "generator_outcomes" not in replayed.reconcilable()


def test_prometheus_exports_generator_outcomes(burst_journal, tmp_path):
    from repro.core.telemetry import aggregate_from_journal, write_prometheus

    _, _, path = burst_journal
    agg, _ = aggregate_from_journal(path)
    out = tmp_path / "metrics.prom"
    write_prometheus(out, agg, {"target": "regfile_int"})
    text = out.read_text()
    assert "repro_fault_generator_outcomes_total{" in text
    assert 'generator="burst"' in text


def test_prometheus_omits_generator_series_for_default(cfg, tmp_path):
    from repro.core.telemetry import aggregate_from_journal, write_prometheus

    path = tmp_path / "bare.jsonl"
    run_campaign(_spec(cfg, faults=4), journal=path)
    agg, _ = aggregate_from_journal(path)
    out = tmp_path / "metrics.prom"
    write_prometheus(out, agg, {"target": "regfile_int"})
    assert "repro_fault_generator_outcomes_total" not in out.read_text()


# ------------------------------------------- liveness + protection interplay


def test_burst_masks_through_liveness_audit(cfg):
    """Multi-bit burst masks through the audit oracle: the analytic Masked
    claim must hold for every flip of every claimed mask."""
    spec = CampaignSpec(isa="rv", workload="qsort", target="regfile_int",
                        cfg=cfg, scale="tiny", faults=15, seed=21,
                        liveness="audit",
                        fault_model=parse_fault_model("burst:arity=2,span=4"))
    result = run_campaign(spec)
    assert result.liveness_disagreements == 0, (
        [r.error for r in result.records if r.sim_error_kind == "liveness"])
    assert result.liveness_skips > 0       # the claim path was exercised
    assert all(r.sim_error_kind != "liveness" for r in result.records)


def test_mask_provably_dead_requires_every_flip_dead():
    """A burst mask is claimed only when ALL its flips land in dead
    windows — one live bit disqualifies the whole mask."""
    from repro.core.liveness import LivenessMap, LivenessTrack

    class _DeadReg:
        structure_name = "regfile_int"
        KIND = "regfile"

        def build_windows(self):
            dead = LivenessTrack()
            dead.kill(100)                 # entry 3: dead through cycle 100
            return {3: dead}

    from repro.core.liveness import mask_provably_dead

    liveness = LivenessMap.from_recorders([_DeadReg()])
    both_dead = FaultMask(FaultModel.TRANSIENT, (
        FaultFlip("regfile_int", 3, 4, 50),
        FaultFlip("regfile_int", 3, 5, 50),
    ))
    one_live = FaultMask(FaultModel.TRANSIENT, (
        FaultFlip("regfile_int", 3, 4, 50),
        FaultFlip("regfile_int", 2, 4, 50),    # untracked entry: never dead
    ))
    assert mask_provably_dead(both_dead, liveness)
    assert not mask_provably_dead(one_live, liveness)
    assert not mask_provably_dead(both_dead, liveness,
                                  protected=frozenset({"regfile_int"}))
    stuck = FaultMask(FaultModel.STUCK_AT_0, (
        FaultFlip("regfile_int", 3, 4, 0),
        FaultFlip("regfile_int", 3, 5, 0),
    ))
    assert not mask_provably_dead(stuck, liveness)


def test_secded_double_bit_burst_raises_due_never_silent(cfg):
    """A 2-flip burst lands both flips in one code word at one cycle:
    SECDED must *detect* (DUE) every activated burst — never SDC/Crash."""
    spec = _spec(cfg, faults=20,
                 protection=ProtectionConfig.parse("regfile_int=secded"),
                 fault_model=parse_fault_model("burst:arity=2"))
    result = run_campaign(spec)
    outcomes = {r.outcome for r in result.records}
    assert Outcome.SDC not in outcomes and Outcome.CRASH not in outcomes
    assert Outcome.DUE in outcomes
    for r in result.records:
        if r.outcome is Outcome.DUE:
            assert r.detected_by == "secded:regfile_int"
            assert r.activated is False


def test_secded_triple_bit_burst_escapes_to_residual_sdc(cfg):
    """Three flips in one code word exceed SECDED's detection guarantee:
    the decode escapes silently and the corruption runs — residual SDC."""
    spec = _spec(cfg, workload="qsort", target="l1d", faults=24,
                 protection=ProtectionConfig.parse("l1d=secded"),
                 fault_model=parse_fault_model("burst:arity=3,span=3"))
    result = run_campaign(spec)
    sdc = [r for r in result.records if r.outcome is Outcome.SDC]
    assert sdc, "no triple-bit burst escaped to SDC"
    assert result.residual_sdc_avf > 0
    for r in sdc:
        assert r.detected_by is None       # escaped, not detected


def test_tmr_votes_out_double_bit_bursts(cfg):
    """A burst corrupts two positions of the *stored* copy only — both
    shadow copies outvote it, so TMR corrects every activated burst."""
    spec = _spec(cfg, faults=20,
                 protection=ProtectionConfig.parse("regfile_int=tmr"),
                 fault_model=parse_fault_model("burst:arity=2"))
    result = run_campaign(spec)
    outcomes = {r.outcome for r in result.records}
    for bad in (Outcome.SDC, Outcome.CRASH, Outcome.DUE):
        assert bad not in outcomes
    assert result.corrected > 0


# --------------------------------------------------------------------- CLI


def test_cli_fault_model_flag_runs_and_journals(tmp_path):
    journal = tmp_path / "run.jsonl"
    rc = cli_main([
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "4", "--seed", "3",
        "--fault-model", "burst:arity=2", "--journal", str(journal),
    ])
    assert rc == 0
    header = json.loads(journal.read_text().splitlines()[0])
    assert header["spec"]["fault_model"] == {
        "name": "burst", "params": [["arity", "2"]]}


def test_cli_explicit_uniform_is_byte_identical_to_unset(tmp_path):
    base = ["campaign", "--isa", "rv", "--workload", "crc32",
            "--target", "regfile_int", "--faults", "3", "--seed", "5"]
    unset = tmp_path / "unset.jsonl"
    explicit = tmp_path / "uniform.jsonl"
    assert cli_main(base + ["--journal", str(unset)]) == 0
    assert cli_main(base + ["--fault-model", "uniform",
                            "--journal", str(explicit)]) == 0
    assert unset.read_bytes() == explicit.read_bytes()
    assert "fault_model" not in json.loads(
        explicit.read_text().splitlines()[0])["spec"]


def test_cli_fault_model_rejects_bad_values(capsys):
    assert cli_main(["campaign", "--faults", "1",
                     "--fault-model", "gauss"]) == 2
    assert "unknown fault model" in capsys.readouterr().err
    assert cli_main(["campaign", "--faults", "1",
                     "--fault-model", "burst:arity=one"]) == 2
    assert "arity" in capsys.readouterr().err


def test_cli_accel_fault_model_flag(tmp_path, capsys):
    journal = tmp_path / "accel.jsonl"
    rc = cli_main([
        "accel-campaign", "--design", "gemm", "--component", "MATRIX1",
        "--faults", "3", "--seed", "2",
        "--fault-model", "error-map:rows=3/1", "--journal", str(journal),
    ])
    assert rc == 0
    capsys.readouterr()
    header = json.loads(journal.read_text().splitlines()[0])
    assert header["spec"]["fault_model"]["name"] == "error-map"
    assert cli_main(["accel-campaign", "--faults", "1",
                     "--fault-model", "burst"]) == 2
    assert "CPU campaigns only" in capsys.readouterr().err


# ------------------------------------------------------------------- accel


def test_accel_error_map_campaign_end_to_end(tmp_path):
    from repro.core.doctor import diagnose_journal

    journal = tmp_path / "accel-em.jsonl"
    spec = AccelCampaignSpec(design="gemm", component="MATRIX1", faults=6,
                             seed=4,
                             fault_model=parse_fault_model(
                                 "error-map:rows=8/1"))
    result = run_accel_campaign(spec, journal=journal)
    assert len(result.records) == 6
    assert result.summary()["fault_model"] == "error-map:rows=8/1"
    report = diagnose_journal(journal)
    assert report.ok, report.problems


def test_accel_rejects_cpu_only_generators():
    spec = AccelCampaignSpec(design="gemm", component="MATRIX1", faults=2,
                             fault_model=FaultModelSpec("adversarial"))
    with pytest.raises(ValueError, match="CPU campaigns only"):
        run_accel_campaign(spec)
