"""Telemetry tests: fold purity, journal reconciliation, Prometheus export.

The load-bearing property: :class:`CampaignAggregate` is a pure fold over
record fields, so the aggregate a live campaign computes and the aggregate
``repro tail`` folds from the journal afterwards agree exactly on the
:meth:`~CampaignAggregate.reconcilable` view — for clean journals, torn
tails, garbage lines, and resumed (twice-opened) journals alike.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.campaign import CampaignSpec, FaultRecord, run_campaign
from repro.core.faults import FaultMask, FaultModel
from repro.core.journal import CampaignJournal, JournalFollower
from repro.core.outcome import HVFClass, Outcome
from repro.core.presets import sim_config
from repro.core.telemetry import (
    CYCLE_BUCKETS,
    FAST_FORWARD,
    FROM_SCRATCH,
    CampaignAggregate,
    Histogram,
    ProgressPrinter,
    Telemetry,
    aggregate_from_journal,
    labels_from_spec,
    parse_prometheus,
    render_progress,
    to_prometheus,
)


def _rec(outcome=Outcome.MASKED, *, mask_id=0, cycles=100, retries=0,
         sim_error_kind=None, crash_reason=None, stopped_on_hvf=False,
         restored_from=0, early_exited=False):
    return FaultRecord(
        mask=FaultMask.single("l1d", 0, 0, 0, mask_id=mask_id),
        outcome=outcome,
        hvf=HVFClass.BENIGN if outcome is Outcome.MASKED else HVFClass.CORRUPTION,
        cycles=cycles,
        crash_reason=crash_reason,
        retries=retries,
        sim_error_kind=sim_error_kind,
        stopped_on_hvf=stopped_on_hvf,
        restored_from=restored_from,
        early_exited=early_exited,
    )


_MIXED = [
    _rec(Outcome.MASKED, mask_id=0, cycles=120),
    _rec(Outcome.MASKED, mask_id=1, cycles=3000, restored_from=64,
         early_exited=True),
    _rec(Outcome.SDC, mask_id=2, cycles=5000, retries=1,
         sim_error_kind="flaky"),
    _rec(Outcome.CRASH, mask_id=3, cycles=900, crash_reason="timeout"),
    _rec(Outcome.CRASH, mask_id=4, cycles=2048, crash_reason="hang",
         restored_from=128),
    _rec(Outcome.SIM_FAULT, mask_id=5, cycles=0, retries=1,
         sim_error_kind="integrity"),
    _rec(Outcome.SDC, mask_id=6, cycles=10**7, stopped_on_hvf=True),
]


# --------------------------------------------------------------------------
# Histogram
# --------------------------------------------------------------------------


def test_histogram_bucketing_and_overflow():
    h = Histogram((10.0, 100.0))
    for v in (1, 10, 11, 100, 5000):
        h.add(v)
    assert h.counts == [2, 2, 1]          # <=10, <=100, +Inf
    assert h.n == 5 and h.total == 5122
    assert h.to_dict()["le"] == [10.0, 100.0, "inf"]


def test_histogram_merge_requires_same_buckets():
    a, b = Histogram((1.0,)), Histogram((1.0,))
    a.add(0.5), b.add(2.0)
    a.merge(b)
    assert a.counts == [1, 1] and a.n == 2
    with pytest.raises(ValueError):
        a.merge(Histogram((2.0,)))


# --------------------------------------------------------------------------
# fold semantics
# --------------------------------------------------------------------------


def test_fold_counts_every_dimension():
    agg = CampaignAggregate.from_records(_MIXED, planned=10)
    assert agg.finished == 7
    assert agg.masked == 2 and agg.sdc == 2 and agg.crash == 2
    assert agg.quarantined == 1 and agg.n_valid == 6
    assert agg.retried == 2 and agg.retries_total == 2
    assert agg.timeouts == 1 and agg.hangs == 1
    assert agg.integrity_quarantined == 1
    assert agg.stopped_on_hvf == 1
    assert agg.sim_error_kinds == {"flaky": 1, "integrity": 1}
    # live-only extras read the non-journaled execution-detail fields
    assert agg.checkpoint_restores == 2
    assert agg.early_exits == 1


def test_fold_splits_cycle_histograms_by_path():
    agg = CampaignAggregate.from_records(_MIXED)
    assert (Outcome.MASKED.value, FAST_FORWARD) in agg.cycle_hist
    assert (Outcome.MASKED.value, FROM_SCRATCH) in agg.cycle_hist
    assert agg.cycle_hist[(Outcome.MASKED.value, FAST_FORWARD)].n == 1
    # wall histograms only exist when a live wall clock was supplied
    assert not agg.wall_hist
    agg.fold(_rec(mask_id=99), wall_s=0.01)
    assert agg.wall_hist[(Outcome.MASKED.value, FROM_SCRATCH)].n == 1


def test_reconcilable_merges_path_split():
    """The journal never records restored_from, so the reconcilable view
    must sum the fast-forward split away — total per outcome is preserved."""
    agg = CampaignAggregate.from_records(_MIXED)
    view = agg.reconcilable()
    masked = view["cycle_hist"][Outcome.MASKED.value]
    assert masked["count"] == 2
    assert masked["sum"] == 120 + 3000


# --------------------------------------------------------------------------
# journal fold == live fold
# --------------------------------------------------------------------------


def _spec(faults):
    return CampaignSpec(isa="rv", workload="crc32", target="regfile_int",
                        cfg=sim_config(), faults=faults, seed=1)


def _journal_with(tmp_path, records, name="j.jsonl", opens=1):
    path = tmp_path / name
    spec = _spec(len(records))
    splits = [records[: len(records) // 2], records[len(records) // 2:]]
    chunks = splits[:opens] if opens > 1 else [records]
    for chunk in chunks:
        with CampaignJournal.open(path, spec) as journal:
            for r in chunk:
                journal.append(r)
    return path


def test_journal_fold_matches_live_fold(tmp_path):
    path = _journal_with(tmp_path, _MIXED)
    live = CampaignAggregate.from_records(_MIXED)
    replayed, header = aggregate_from_journal(path)
    assert header is not None and replayed.planned == len(_MIXED)
    assert replayed.reconcilable() == live.reconcilable()
    # the replay can't see restored_from: everything folds as from-scratch
    assert replayed.checkpoint_restores == 0


def test_journal_fold_tolerates_torn_tail_and_garbage(tmp_path):
    path = _journal_with(tmp_path, _MIXED)
    with open(path, "a") as fh:
        fh.write("%% not json at all %%\n")
        fh.write('{"kind": "record", "mask"')       # torn mid-append
    live = CampaignAggregate.from_records(_MIXED)
    replayed, _ = aggregate_from_journal(path)
    assert replayed.reconcilable() == live.reconcilable()


def test_resumed_journal_folds_identically(tmp_path):
    """A journal written across two opens (interrupt + resume) folds to the
    same aggregate as a single-shot one."""
    single = aggregate_from_journal(_journal_with(tmp_path, _MIXED))[0]
    resumed = aggregate_from_journal(
        _journal_with(tmp_path, _MIXED, name="resumed.jsonl", opens=2))[0]
    assert resumed.reconcilable() == single.reconcilable()


_outcomes = st.sampled_from(list(Outcome))
_record_st = st.builds(
    lambda outcome, cycles, retries, kind, crash, hvf_stop: dict(
        outcome=outcome, cycles=cycles, retries=retries,
        sim_error_kind=kind, crash_reason=crash, stopped_on_hvf=hvf_stop,
    ),
    _outcomes,
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=0, max_value=3),
    st.sampled_from([None, "flaky", "deterministic", "integrity",
                     "harness_timeout"]),
    st.sampled_from([None, "timeout", "hang", "illegal"]),
    st.booleans(),
)


@settings(max_examples=25, deadline=None)
@given(st.lists(_record_st, min_size=0, max_size=12), st.booleans(),
       st.booleans())
def test_property_journal_fold_equals_live(tmp_path_factory, fields, torn,
                                           resumed):
    """For any record set, journal shape (clean / torn tail / resumed),
    the folded journal reconciles exactly with the live aggregate."""
    records = [_rec(f["outcome"], mask_id=i, cycles=f["cycles"],
                    retries=f["retries"], sim_error_kind=f["sim_error_kind"],
                    crash_reason=f["crash_reason"],
                    stopped_on_hvf=f["stopped_on_hvf"])
               for i, f in enumerate(fields)]
    tmp_path = tmp_path_factory.mktemp("prop")
    path = _journal_with(tmp_path, records, opens=2 if resumed else 1)
    if torn:
        with open(path, "a") as fh:
            fh.write('{"kind": "record", "truncat')
    live = CampaignAggregate.from_records(records)
    replayed, _ = aggregate_from_journal(path)
    assert replayed.reconcilable() == live.reconcilable()


# --------------------------------------------------------------------------
# JournalFollower
# --------------------------------------------------------------------------


def test_follower_polls_incrementally(tmp_path):
    path = tmp_path / "grow.jsonl"
    spec = _spec(3)
    journal = CampaignJournal.open(path, spec)
    follower = JournalFollower(path)
    assert follower.poll() == [] and follower.header is not None

    journal.append(_MIXED[0])
    assert len(follower.poll()) == 1
    assert follower.poll() == []                   # nothing new

    # a torn tail is left for the next poll, not consumed
    with open(path, "a") as fh:
        fh.write('{"kind": "record", "mask"')
    assert follower.poll() == []
    with open(path, "a") as fh:        # the append completes — to garbage
        fh.write(': 1}\n')
    assert follower.poll() == []
    journal.append(_MIXED[1])
    journal.close()
    assert len(follower.poll()) == 1
    assert follower.skipped == 1       # the completed-garbage line


def test_follower_missing_file_is_empty(tmp_path):
    follower = JournalFollower(tmp_path / "nope.jsonl")
    assert follower.poll() == [] and follower.header is None


# --------------------------------------------------------------------------
# Prometheus export
# --------------------------------------------------------------------------


def test_prometheus_counters_reconcile_with_aggregate():
    agg = CampaignAggregate.from_records(_MIXED, planned=10)
    agg.dispatched = 7
    text = to_prometheus(agg, {"isa": "rv", "workload": "crc32"})
    values = parse_prometheus(text)
    labels = 'isa="rv",workload="crc32"'
    assert values[f"repro_faults_planned{{{labels}}}"] == 10
    assert values[f"repro_faults_dispatched_total{{{labels}}}"] == 7
    assert values[f"repro_faults_finished_total{{{labels}}}"] == 7
    for out in Outcome:
        key = f'repro_fault_outcomes_total{{{labels},outcome="{out.value}"}}'
        assert values[key] == agg.outcomes[out.value]
    assert values[
        f'repro_fault_sim_error_kinds_total{{{labels},kind="integrity"}}'] == 1
    assert values[f"repro_fault_timeouts_total{{{labels}}}"] == 1
    assert values[f"repro_fault_hangs_total{{{labels}}}"] == 1
    assert values[f"repro_fault_checkpoint_restores_total{{{labels}}}"] == 2
    assert values[f"repro_fault_early_exits_total{{{labels}}}"] == 1


def test_prometheus_histogram_buckets_are_cumulative():
    agg = CampaignAggregate()
    for cycles in (100, 2000, 10**7):
        agg.fold(_rec(mask_id=cycles, cycles=cycles))
    text = to_prometheus(agg)
    values = parse_prometheus(text)
    key = 'repro_fault_cycles_bucket{outcome="masked",path="from_scratch"'
    assert values[f'{key},le="256"}}'] == 1
    assert values[f'{key},le="4096"}}'] == 2
    assert values[f'{key},le="+Inf"}}'] == 3
    assert values[
        'repro_fault_cycles_count{outcome="masked",path="from_scratch"}'] == 3
    # no wall clocks were supplied, so no wall histogram series exists
    assert not any(k.startswith("repro_fault_wall_seconds") for k in values)


def test_labels_from_spec_cpu_and_accel():
    assert labels_from_spec(
        {"isa": "rv", "workload": "crc32", "target": "l1d",
         "model": "transient", "seed": 1}
    ) == {"isa": "rv", "workload": "crc32", "target": "l1d",
          "model": "transient"}
    assert labels_from_spec(
        {"design": "fft", "component": "REAL", "model": "transient"}
    ) == {"design": "fft", "component": "REAL", "model": "transient"}


# --------------------------------------------------------------------------
# progress rendering
# --------------------------------------------------------------------------


def test_render_progress_line():
    agg = CampaignAggregate.from_records(_MIXED, planned=14)
    agg.resumed = 2
    line = render_progress(agg, elapsed_s=7.0)
    assert "9/14 faults" in line
    assert "1.00 faults/s" in line and "eta" in line
    assert "masked 2 sdc 2 crash 2 quarantined 1" in line
    assert "resumed 2" in line and "ff 2/7" in line


def test_progress_printer_throttles():
    ticks = iter([0.0, 0.1, 0.2, 10.0, 10.1])
    out = io.StringIO()
    printer = ProgressPrinter(stream=out, min_interval_s=1.0,
                              clock=lambda: next(ticks))
    agg = CampaignAggregate()
    printer.update(agg)              # t=0.0: prints
    printer.update(agg)              # t=0.1: throttled
    printer.update(agg)              # t=0.2: throttled
    printer.update(agg)              # t=10.0: prints
    printer.update(agg, force=True)  # t=10.1: forced
    assert len(out.getvalue().splitlines()) == 3


# --------------------------------------------------------------------------
# the live hub inside a real campaign
# --------------------------------------------------------------------------


def test_live_campaign_telemetry_reconciles(tmp_path):
    spec = _spec(4)
    events = []
    telemetry = Telemetry(progress=ProgressPrinter(stream=io.StringIO()),
                          metrics_out=tmp_path / "metrics.prom",
                          sinks=[events.append])
    journal = tmp_path / "run.jsonl"
    result = run_campaign(spec, journal=journal, telemetry=telemetry)

    agg = telemetry.aggregate
    assert agg.planned == 4 and agg.dispatched == 4 and agg.finished == 4
    assert agg.reconcilable() == CampaignAggregate.from_records(
        result.records).reconcilable()
    # replayed journal agrees with the live hub
    replayed, _ = aggregate_from_journal(journal)
    assert replayed.reconcilable() == agg.reconcilable()
    # every fault carried a live wall clock
    assert sum(h.n for h in agg.wall_hist.values()) == 4

    kinds = [e.kind for e in events]
    assert kinds[0] == "campaign_started" and kinds[-1] == "campaign_finished"
    assert kinds.count("fault_dispatched") == 4
    assert kinds.count("fault_finished") == 4

    # the exported snapshot reconciles with the hub's counters
    values = parse_prometheus((tmp_path / "metrics.prom").read_text())
    finished = [v for k, v in values.items()
                if k.startswith("repro_faults_finished_total")]
    assert finished == [4.0]
    labels = [k for k in values if k.startswith("repro_faults_planned")][0]
    assert 'workload="crc32"' in labels and 'target="regfile_int"' in labels


def test_telemetry_keeps_journal_byte_identical(tmp_path):
    spec = _spec(4)
    bare = tmp_path / "bare.jsonl"
    observed = tmp_path / "observed.jsonl"
    run_campaign(spec, journal=bare)
    telemetry = Telemetry(progress=ProgressPrinter(stream=io.StringIO()),
                          metrics_out=tmp_path / "metrics.prom")
    run_campaign(spec, journal=observed, telemetry=telemetry)
    assert bare.read_bytes() == observed.read_bytes()


def test_accel_campaign_telemetry_reconciles(tmp_path):
    from repro.accel.campaign import AccelCampaignSpec, run_accel_campaign

    spec = AccelCampaignSpec(design="fft", component="REAL", scale="tiny",
                             faults=3)
    bare = tmp_path / "bare.jsonl"
    observed = tmp_path / "observed.jsonl"
    run_accel_campaign(spec, journal=bare)
    telemetry = Telemetry(progress=ProgressPrinter(stream=io.StringIO()),
                          metrics_out=tmp_path / "metrics.prom")
    result = run_accel_campaign(spec, journal=observed, telemetry=telemetry)
    assert bare.read_bytes() == observed.read_bytes()

    agg = telemetry.aggregate
    assert agg.planned == 3 and agg.finished == 3
    assert agg.reconcilable() == CampaignAggregate.from_records(
        result.records).reconcilable()
    values = parse_prometheus((tmp_path / "metrics.prom").read_text())
    labels = [k for k in values if k.startswith("repro_faults_planned")][0]
    assert 'design="fft"' in labels and 'component="REAL"' in labels


def test_supervisor_events_feed_the_hub():
    telemetry = Telemetry()
    telemetry.supervisor_event("pool_respawn", {"respawns": 1})
    telemetry.supervisor_event("pool_respawn", {"respawns": 2})
    telemetry.supervisor_event("serial_degradation", {"respawns": 2})
    telemetry.supervisor_event("unknown_kind", {})      # ignored by design
    assert telemetry.aggregate.pool_respawns == 2
    assert telemetry.aggregate.serial_degradations == 1


def test_retry_dispatch_does_not_double_count():
    telemetry = Telemetry()
    telemetry.fault_dispatched(7, attempt=0)
    telemetry.fault_dispatched(7, attempt=1)           # retry of the same mask
    assert telemetry.aggregate.dispatched == 1
