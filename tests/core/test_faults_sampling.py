"""Tests for fault models, masks, and the Leveugle sampling machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.sampling import (
    error_margin_for,
    generate_masks,
    sample_size,
    uniform_accel_sites,
)


def test_fault_model_properties():
    assert not FaultModel.TRANSIENT.permanent
    assert FaultModel.STUCK_AT_0.permanent
    assert FaultModel.STUCK_AT_0.stuck_value == 0
    assert FaultModel.STUCK_AT_1.stuck_value == 1
    with pytest.raises(ValueError):
        FaultModel.TRANSIENT.stuck_value


def test_mask_construction():
    m = FaultMask.single("l1d", 3, 17, 100)
    assert not m.multi_bit
    assert m.structures == {"l1d"}
    assert m.first_cycle == 100
    with pytest.raises(ValueError):
        FaultMask(model=FaultModel.TRANSIENT, flips=())


def test_multi_bit_mask():
    flips = (FaultFlip("l1d", 0, 0, 5), FaultFlip("regfile_int", 2, 9, 8))
    m = FaultMask(model=FaultModel.TRANSIENT, flips=flips)
    assert m.multi_bit
    assert m.structures == {"l1d", "regfile_int"}
    assert m.first_cycle == 5


# ------------------------------------------------------------ sample size


def test_paper_sample_size():
    """1,000 faults ≈ 3% margin / 95% confidence for large populations."""
    n = sample_size(population=32 * 1024 * 8, error_margin=0.03, confidence=0.95)
    assert 1000 <= n <= 1120
    # and the reverse direction
    e = error_margin_for(1067, 32 * 1024 * 8)
    assert 0.028 <= e <= 0.032


def test_sample_size_small_population_caps():
    assert sample_size(population=100, error_margin=0.03) <= 100


@given(st.integers(min_value=1000, max_value=10**7))
def test_sample_size_monotone_in_margin(population):
    tight = sample_size(population, 0.01)
    loose = sample_size(population, 0.05)
    assert tight >= loose


@given(st.integers(min_value=100, max_value=10**6),
       st.integers(min_value=10, max_value=5000))
def test_error_margin_decreases_with_samples(population, n):
    n = min(n, population - 1)
    if n < 2:
        return
    bigger = error_margin_for(n, population)
    smaller = error_margin_for(n // 2 if n // 2 > 0 else 1, population)
    assert bigger <= smaller + 1e-12


def test_error_margin_full_census_is_zero():
    assert error_margin_for(100, 100) == 0.0


def test_bad_inputs():
    with pytest.raises(ValueError):
        sample_size(0)
    with pytest.raises(ValueError):
        sample_size(100, confidence=0.5)
    with pytest.raises(ValueError):
        error_margin_for(0, 100)


@pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.5])
def test_degenerate_prior_rejected(p):
    """p=0 used to divide by zero in sample_size and — worse — silently
    report margin 0.0 from error_margin_for, stopping an adaptive campaign
    after its first batch.  Both must reject the prior loudly."""
    with pytest.raises(ValueError, match="open interval"):
        sample_size(10_000, p=p)
    with pytest.raises(ValueError, match="open interval"):
        error_margin_for(100, 10_000, p=p)


def test_degenerate_prior_rejected_even_at_full_census():
    """The p check fires before the n >= population early return — a bad
    prior is a bug regardless of sample size."""
    with pytest.raises(ValueError, match="open interval"):
        error_margin_for(100, 100, p=0.0)


def test_adaptive_boundaries_reject_nonpositive_budget():
    from repro.core.sampling import AdaptiveSampling

    adaptive = AdaptiveSampling()
    for budget in (0, -5):
        with pytest.raises(ValueError, match="budget must be positive"):
            list(adaptive.boundaries(budget))
        with pytest.raises(ValueError, match="budget must be positive"):
            adaptive.next_boundary(0, budget)


# ------------------------------------------------------------ mask generation


def test_generate_masks_uniform_and_in_bounds():
    masks = generate_masks("l1d", entries=16, bits_per_entry=512, count=300,
                           window=(100, 1100), seed=3)
    assert len(masks) == 300
    assert len({m.mask_id for m in masks}) == 300
    for m in masks:
        (flip,) = m.flips
        assert 0 <= flip.entry < 16
        assert 0 <= flip.bit < 512
        assert 100 <= flip.cycle < 1100
    # crude uniformity: all entries hit at least once over 300 draws
    assert len({m.flips[0].entry for m in masks}) == 16


def test_generate_masks_deterministic_by_seed():
    a = generate_masks("sq", 8, 128, 50, (0, 500), seed=9)
    b = generate_masks("sq", 8, 128, 50, (0, 500), seed=9)
    c = generate_masks("sq", 8, 128, 50, (0, 500), seed=10)
    assert a == b
    assert a != c


def test_generate_masks_permanent_present_from_power_on():
    masks = generate_masks("l1i", 8, 512, 20, (50, 500),
                           model=FaultModel.STUCK_AT_1, seed=1)
    assert all(m.flips[0].cycle == 0 for m in masks)


def test_generate_masks_multibit():
    masks = generate_masks("l1d", 16, 512, 10, (0, 100), flips_per_mask=3, seed=2)
    assert all(len(m.flips) == 3 for m in masks)
    assert all(m.multi_bit for m in masks)


def test_generate_masks_rejects_empty_window():
    with pytest.raises(ValueError):
        generate_masks("l1d", 16, 512, 5, (100, 100))
    with pytest.raises(ValueError):
        generate_masks("l1d", 0, 512, 5, (0, 10))


# ------------------------------------------------------------------ dedup


def test_generate_masks_sites_are_distinct():
    """Draws are without replacement over (entry, bit, cycle) sites — the
    Leveugle margin assumes n *distinct* samples of the population."""
    masks = generate_masks("rf", 4, 8, 60, (0, 2), seed=3)
    sites = [(f.entry, f.bit, f.cycle) for m in masks for f in m.flips]
    assert len(sites) == len(set(sites)) == 60


def test_generate_masks_multibit_sites_distinct_across_masks():
    masks = generate_masks("l1d", 4, 4, 10, (0, 8), flips_per_mask=3, seed=5)
    sites = [(f.entry, f.bit, f.cycle) for m in masks for f in m.flips]
    assert len(sites) == len(set(sites)) == 30


def test_generate_masks_permanent_dedup_collapses_cycle_dimension():
    """Stuck-at faults are all timed at cycle 0, so the site population is
    entries * bits — exactly that many masks can be drawn, no more."""
    masks = generate_masks("rf", 4, 8, 32, (0, 100),
                           model=FaultModel.STUCK_AT_0, seed=1)
    assert len({(f.entry, f.bit) for m in masks for f in m.flips}) == 32
    with pytest.raises(ValueError, match="distinct fault sites"):
        generate_masks("rf", 4, 8, 33, (0, 100),
                       model=FaultModel.STUCK_AT_0, seed=1)


def test_generate_masks_rejects_oversized_sample():
    # 4*8*2 = 64 transient sites; 65 single-flip masks cannot all be distinct
    with pytest.raises(ValueError, match="distinct fault sites"):
        generate_masks("rf", 4, 8, 65, (0, 2), seed=1)


def test_generate_masks_seed_stability_regression():
    """Pinned draw sequence: journal resume matches masks by exact flips, so
    any change to the draw order silently invalidates every old journal.
    If this fails, the sampler changed behaviour — that is a breaking
    change, not a test to update casually.

    Note (fault-model registry PR): this pin covers the *rejection* regime
    (below 50% site saturation — here 5 of 320), which is still the exact
    historical stream.  At or above 50% saturation the sampler now uses a
    seeded full-population shuffle instead of coupon-collector rejection;
    that regime is pinned separately below."""
    masks = generate_masks("rf", 8, 4, 5, (10, 20), seed=42)
    assert [(f.entry, f.bit, f.cycle) for m in masks for f in m.flips] == [
        (1, 0, 14), (3, 1, 12), (1, 0, 19), (6, 0, 10), (1, 1, 13),
    ]


def test_generate_masks_smaller_count_is_prefix_of_larger():
    """An adaptive campaign that stops early used exactly the masks a
    fixed-budget campaign would have started with."""
    small = generate_masks("rf", 8, 4, 3, (10, 20), seed=42)
    large = generate_masks("rf", 8, 4, 5, (10, 20), seed=42)
    assert [m.flips for m in small] == [m.flips for m in large[:3]]


# ------------------------------------------------- high-saturation shuffle


def test_generate_masks_high_saturation_uses_shuffle_regime():
    """At >= 50% site saturation rejection sampling degenerates toward
    coupon-collector time; the sampler switches to a seeded shuffle of the
    full site enumeration.  Same distinct-draw guarantee, linear time —
    and pinned, because journals drawn in this regime resume too."""
    masks = generate_masks("rf", 2, 4, 6, (0, 1), seed=7)   # 6 of 8 sites
    assert [(f.entry, f.bit, f.cycle) for m in masks for f in m.flips] == [
        (1, 2, 0), (1, 3, 0), (0, 2, 0), (1, 0, 0), (0, 0, 0), (0, 3, 0),
    ]


def test_generate_masks_full_census_is_a_permutation():
    """count == population must terminate (the old rejection loop would
    coupon-collector forever on the last few sites) and cover every site
    exactly once."""
    masks = generate_masks("rf", 4, 4, 32, (0, 2), seed=5)
    sites = {(f.entry, f.bit, f.cycle) for m in masks for f in m.flips}
    assert sites == {(e, b, c)
                     for e in range(4) for b in range(4) for c in range(2)}


def test_generate_masks_prefix_property_within_shuffle_regime():
    small = generate_masks("rf", 4, 4, 17, (0, 2), seed=5)   # 17/32 > 50%
    large = generate_masks("rf", 4, 4, 32, (0, 2), seed=5)
    assert [m.flips for m in small] == [m.flips for m in large[:17]]


def test_generate_masks_shuffle_regime_deterministic_by_seed():
    a = generate_masks("rf", 4, 4, 20, (0, 2), seed=5)
    b = generate_masks("rf", 4, 4, 20, (0, 2), seed=5)
    c = generate_masks("rf", 4, 4, 20, (0, 2), seed=6)
    assert a == b and a != c


# ------------------------------------------------------ accel site stream


def test_uniform_accel_sites_rejection_stream_is_historical():
    """Below 50% saturation the extracted accel sampler must replay the
    exact historical per-mask rejection loop, byte for byte."""
    import random

    rng = random.Random(3)
    seen, expected = set(), []
    while len(expected) < 10:
        site = (rng.randrange(64), rng.randrange(10))
        if site not in seen:
            seen.add(site)
            expected.append(site)
    assert uniform_accel_sites(64, 10, 10, False, seed=3) == expected


def test_uniform_accel_sites_full_census_and_permanent_collapse():
    sites = uniform_accel_sites(8, 2, 16, False, seed=3)
    assert set(sites) == {(b, c) for b in range(8) for c in range(2)}
    stuck = uniform_accel_sites(8, 100, 8, True, seed=3)
    assert {c for _, c in stuck} == {0}
    assert len({b for b, _ in stuck}) == 8
    with pytest.raises(ValueError, match="distinct fault sites"):
        uniform_accel_sites(8, 2, 17, False)
    with pytest.raises(ValueError, match="distinct fault sites"):
        uniform_accel_sites(8, 100, 9, True)
