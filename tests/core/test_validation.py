"""The Listing-1 sanity check: injector coverage over the L1 data cache."""

import pytest

from repro.core.validation import build_l1d_validation, run_l1d_validation
from repro.cpu.core import OoOCore
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.interp import run_program


def test_validation_program_is_well_formed(cfg):
    prog = build_l1d_validation(cfg.l1d.size)
    ref = run_program(prog)
    assert ref.output == bytes(8)      # fault-free sum of a zero array is 0


def test_validation_golden_has_injection_window(cfg):
    isa = get_isa("rv")
    prog = build_l1d_validation(cfg.l1d.size)
    exe = compile_program(prog, isa)
    res = OoOCore.from_executable(exe, isa, cfg).run()
    assert res.ok
    assert res.checkpoint_cycle is not None and res.switch_cycle is not None
    assert res.switch_cycle - res.checkpoint_cycle > 100   # a real window


def test_validation_warm_cache_fully_resident(cfg):
    """After the warm-up loops every L1D line must be valid (pseudo-LRU
    filled all ways) — the precondition for the 100% coverage claim."""
    isa = get_isa("rv")
    prog = build_l1d_validation(cfg.l1d.size)
    exe = compile_program(prog, isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    while core.checkpoint_cycle is None and not core.halted:
        core.step()
    assert all(core.l1d.valid)


@pytest.mark.slow
def test_validation_coverage_is_high(cfg):
    """The paper's measured AVF for the validation program is 100%; with
    spill traffic sharing the cache we accept >= 90% visibility."""
    result = run_l1d_validation("rv", cfg, faults=24, seed=5)
    assert result.injected == 24
    assert result.coverage >= 0.9, f"coverage {result.coverage:.2f}"
