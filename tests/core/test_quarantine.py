"""Crash-quarantine and resume tests.

The fixture registers a test-only injection target whose ``flip()``
detonates — the stand-in for a fault-corrupted core raising an arbitrary
exception (IndexError from a clobbered queue index, KeyError from a
poisoned rename map).  The campaign engine must convert those into
quarantined records, never abort, label deterministic vs. flaky simulator
faults differently, and resume an interrupted campaign from its journal.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core import campaign as campaign_mod
from repro.core.campaign import (
    CampaignSpec,
    golden_run,
    masks_for_spec,
    run_campaign,
    run_one_fault,
)
from repro.core.faults import FaultMask
from repro.core.journal import CampaignJournal
from repro.core.outcome import HVFClass, Outcome
from repro.core.report import render_robustness, robustness_summary
from repro.core.targets import TARGETS, Target


class _Detonator:
    """A regfile-shaped structure whose bit accessors raise.

    ``fuse=None`` explodes on every flip attempt; ``fuse=N`` explodes N
    times and then behaves (the flip becomes a no-op against this dummy
    structure, so the run completes like a golden run — exactly what a
    "flaky" retry looks like).
    """

    size = 8
    width = 64
    free = frozenset()          # every entry occupied: flip always attempted

    def __init__(self, fuse: int | None = None):
        self.fuse = fuse
        self.flips_attempted = 0

    def flip_bit(self, entry: int, bit: int) -> None:
        self.flips_attempted += 1
        if self.fuse is None:
            raise IndexError(f"detonated on flip({entry}, {bit})")
        if self.fuse > 0:
            self.fuse -= 1
            raise IndexError(f"detonated on flip({entry}, {bit})")

    def force_bit(self, entry: int, bit: int, value: int) -> bool:
        self.flip_bit(entry, bit)
        return True


@pytest.fixture
def detonator():
    """Register the 'exploding' target; yields the structure for tuning."""
    struct = _Detonator(fuse=None)
    TARGETS["exploding"] = Target(
        "exploding", "regfile", lambda core: struct, "test-only detonator"
    )
    yield struct
    del TARGETS["exploding"]


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=6, seed=21,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


def _exploding_masks(n, start=0):
    return [FaultMask.single("exploding", i % 8, 3, cycle=50,
                             mask_id=start + i)
            for i in range(n)]


# --------------------------------------------------------------- quarantine


def test_deterministic_sim_fault_is_quarantined(cfg, detonator):
    spec = _spec(cfg, target="exploding", faults=1)
    record = run_one_fault(spec, _exploding_masks(1)[0])
    assert record.outcome is Outcome.SIM_FAULT and record.quarantined
    assert record.sim_error_kind == "deterministic"
    assert record.retries == 1                      # one retry was attempted
    assert "IndexError" in record.error
    assert "detonated" in record.error
    assert detonator.flips_attempted == 2           # first try + retry


def test_flaky_sim_fault_keeps_real_verdict(cfg, detonator):
    detonator.fuse = 1                              # explode once, then behave
    spec = _spec(cfg, target="exploding", faults=1)
    record = run_one_fault(spec, _exploding_masks(1)[0])
    assert record.outcome is not Outcome.SIM_FAULT  # retry produced a verdict
    assert record.sim_error_kind == "flaky"
    assert record.retries == 1
    assert "IndexError" in record.error             # first failure is kept


def test_campaign_completes_despite_sim_faults(cfg, detonator):
    spec = _spec(cfg, target="exploding", faults=4)
    res = run_campaign(spec, masks=_exploding_masks(4))
    assert len(res.records) == 4
    assert res.quarantined == 4
    assert res.valid_records == []
    assert res.avf is None                          # degenerate: undefined
    summary = res.summary()
    assert summary["quarantined"] == 4 and summary["retried"] == 4


def test_all_quarantined_campaign_renders_degenerate_report(cfg, detonator):
    """An all-quarantined campaign must make it all the way to a rendered
    report (the crash family this PR fixes: metrics raising ValueError on
    n_valid=0 aborted the whole sweep)."""
    from repro.core.metrics import avf, error_margin, hvf

    spec = _spec(cfg, target="exploding", faults=3)
    res = run_campaign(spec, masks=_exploding_masks(3))
    assert res.quarantined == 3
    assert avf(res.records) is None
    assert hvf(res.records) is None
    assert error_margin(res.records, population=10**6) is None
    summary = res.summary()
    assert summary["n_valid"] == 0
    health = robustness_summary(res.records)
    assert health["n_records"] == 3 and health["n_valid"] == 0
    note = render_robustness(res.records)
    assert "degenerate campaign" in note
    assert "n_valid=0" in note and "avf=None" in note


def test_quarantined_records_excluded_from_aggregates(cfg, detonator):
    """Quarantined runs must not move AVF/HVF, only the health counters."""
    spec = _spec(cfg)
    clean = run_campaign(spec)
    poisoned_masks = masks_for_spec(
        spec, golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    ) + _exploding_masks(3, start=spec.faults)   # mask_ids stay unique
    mixed = run_campaign(spec, masks=poisoned_masks)
    assert mixed.quarantined == 3
    assert mixed.avf == pytest.approx(clean.avf)
    assert mixed.hvf == pytest.approx(clean.hvf)
    health = robustness_summary(mixed.records)
    assert health["quarantined"] == 3
    assert health["deterministic_sim_faults"] == 3
    assert "quarantined" in render_robustness(mixed.records)
    assert render_robustness(clean.records) == ""


def test_sim_fault_keeps_hvf_benign(cfg, detonator):
    record = run_one_fault(_spec(cfg, target="exploding"),
                           _exploding_masks(1)[0])
    assert record.hvf is HVFClass.BENIGN


# ------------------------------------------------------------------ resume


def test_resume_skips_completed_masks(cfg, tmp_path):
    spec = _spec(cfg, faults=8)
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    masks = masks_for_spec(spec, golden)
    journal = tmp_path / "run.jsonl"

    # simulate an interrupt: only the first 5 masks made it to the journal
    partial = run_campaign(spec, masks=masks[:5], journal=journal)
    assert partial.resumed == 0 and len(partial.records) == 5

    full = run_campaign(spec, masks=masks, journal=journal, resume=journal)
    assert full.resumed == 5
    assert len(full.records) == 8
    # journal now holds every mask exactly once
    assert CampaignJournal.completed(journal, spec).keys() == set(range(8))

    # a third run resumes everything and re-runs nothing
    again = run_campaign(spec, masks=masks, resume=journal)
    assert again.resumed == 8
    assert [r.outcome for r in again.records] == [r.outcome for r in full.records]


def test_resume_matches_fresh_run(cfg, tmp_path):
    """A resumed campaign must agree with an uninterrupted one."""
    spec = _spec(cfg, faults=8)
    journal = tmp_path / "run.jsonl"
    fresh = run_campaign(spec)
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    masks = masks_for_spec(spec, golden)
    run_campaign(spec, masks=masks[:4], journal=journal)
    resumed = run_campaign(spec, masks=masks, journal=journal, resume=journal)
    assert [r.outcome for r in resumed.records] == [r.outcome for r in fresh.records]
    assert [r.cycles for r in resumed.records] == [r.cycles for r in fresh.records]


def test_resume_ignores_mismatched_mask(cfg, tmp_path):
    """A journal row whose mask differs from the regenerated sample is
    not trusted — that mask re-runs."""
    spec = _spec(cfg, faults=4)
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    masks = masks_for_spec(spec, golden)
    journal = tmp_path / "run.jsonl"
    alien = FaultMask.single("regfile_int", 0, 63, cycle=1,
                             mask_id=masks[0].mask_id)
    with CampaignJournal.open(journal, spec) as writer:
        writer.append(run_one_fault(spec, alien, golden))
    res = run_campaign(spec, masks=masks, resume=journal)
    assert res.resumed == 0                 # mismatched row was ignored


def test_duplicate_mask_ids_rejected_only_when_journaling(cfg, tmp_path):
    """Concatenated samples (duplicate mask_ids) stay legal for plain runs
    — the analysis figures rely on it — but journaling needs unique keys."""
    spec = _spec(cfg, faults=2)
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    masks = masks_for_spec(spec, golden)
    doubled = masks + masks                 # ids 0,1,0,1
    res = run_campaign(spec, masks=doubled)
    assert len(res.records) == 4
    assert [r.mask for r in res.records] == doubled
    with pytest.raises(ValueError, match="duplicate mask_id"):
        run_campaign(spec, masks=doubled, journal=tmp_path / "dup.jsonl")


def test_resume_nonexistent_journal_runs_everything(cfg, tmp_path):
    spec = _spec(cfg, faults=4)
    res = run_campaign(spec, resume=tmp_path / "never-written.jsonl")
    assert res.resumed == 0 and len(res.records) == 4


# ------------------------------------------------- watchdog budget (fix #1)


def test_records_carry_watchdog_budget(cfg):
    spec = _spec(cfg, faults=4)
    res = run_campaign(spec)
    golden = res.golden
    budget = golden.cycles * cfg.watchdog_factor + 10_000
    for r in res.records:
        assert r.max_cycles == budget
        assert r.cycles <= r.max_cycles


def test_stop_on_hvf_exit_is_flagged_not_timeout(cfg):
    spec = _spec(cfg, faults=30, stop_on_hvf=True)
    res = run_campaign(spec)
    hvf_stopped = [r for r in res.records if r.stopped_on_hvf]
    for r in hvf_stopped:
        # an early HVF exit is not a watchdog hang
        assert r.crash_reason != "timeout"
        assert r.hvf is HVFClass.CORRUPTION
    # non-stop_on_hvf campaigns never set the flag
    plain = run_campaign(_spec(cfg, faults=4))
    assert all(not r.stopped_on_hvf for r in plain.records)


# --------------------------------------- golden priming in workers (fix #2)


def test_golden_runs_at_most_once_per_worker(cfg):
    spec = _spec(cfg, faults=3)
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    masks = masks_for_spec(spec, golden)
    with ProcessPoolExecutor(
        max_workers=1,
        initializer=campaign_mod._worker_init,
        initargs=(spec,),
    ) as pool:
        records = list(pool.map(campaign_mod._worker,
                                [(spec, m) for m in masks]))
        misses = pool.submit(campaign_mod._probe_golden_misses).result()
    assert len(records) == 3
    # the initializer primed the cache (or fork inherited it): the fault
    # runs themselves must never recompute the golden simulation
    assert misses <= 1


def test_parallel_campaign_still_deterministic_with_journal(cfg, tmp_path):
    spec = _spec(cfg, faults=4)
    seq = run_campaign(spec)
    journal = tmp_path / "par.jsonl"
    par = run_campaign(spec, workers=2, journal=journal)
    assert [r.outcome for r in seq.records] == [r.outcome for r in par.records]
    assert CampaignJournal.completed(journal, spec).keys() == set(range(4))
