"""Offline journal-validation (``repro doctor``) tests.

Each test corrupts a real journal the way real incidents do — a spliced
header, a mid-file garbage line, a torn tail, a duplicated mask — and
asserts the doctor's verdict, plus the CLI's nonzero exit code on
corruption.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.campaign import CampaignSpec, run_campaign, run_one_fault
from repro.core.doctor import diagnose_journal
from repro.core.faults import FaultMask
from repro.core.journal import CampaignJournal
from repro.core.sanitizer import SanitizerPolicy

from tests.core.test_sanitizer import double_release_rat_reg


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=4, seed=11,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


@pytest.fixture
def journal(cfg, tmp_path):
    path = tmp_path / "run.jsonl"
    run_campaign(_spec(cfg), journal=path)
    return path


def test_valid_journal_is_ok(journal):
    report = diagnose_journal(journal)
    assert report.ok
    assert report.records == 4
    assert not report.torn_tail
    assert report.robustness["quarantined"] == 0
    assert "verdict: ok" in report.describe()


def test_missing_and_empty_files(tmp_path):
    report = diagnose_journal(tmp_path / "never-written.jsonl")
    assert not report.ok and "does not exist" in report.problems[0]
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert not diagnose_journal(empty).ok


def test_tampered_fingerprint_detected(journal):
    lines = journal.read_text().splitlines()
    header = json.loads(lines[0])
    header["spec"]["seed"] = 999          # splice: spec edited, hash stale
    lines[0] = json.dumps(header)
    journal.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(journal)
    assert not report.ok
    assert any("fingerprint" in p for p in report.problems)


def test_torn_tail_is_tolerated_but_interior_garbage_is_not(journal):
    body = journal.read_text()
    torn = journal.parent / "torn.jsonl"
    torn.write_text(body + '{"kind": "record", "mask": {"mask_')
    report = diagnose_journal(torn)
    assert report.ok and report.torn_tail
    assert any("torn" in w for w in report.warnings)

    lines = body.splitlines()
    lines.insert(2, "NOT JSON AT ALL")
    bad = journal.parent / "garbled.jsonl"
    bad.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(bad)
    assert not report.ok
    assert any("mid-journal" in p for p in report.problems)


def test_duplicate_mask_id_detected(journal):
    lines = journal.read_text().splitlines()
    lines.append(lines[1])                # replay a completed record
    journal.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(journal)
    assert not report.ok
    assert any("duplicate mask_id" in p for p in report.problems)


def test_overfull_sample_detected(cfg, journal):
    spec = _spec(cfg)
    extra = [
        run_one_fault(spec, FaultMask.single("regfile_int", i, 2, cycle=60,
                                             mask_id=100 + i))
        for i in range(2)
    ]
    with open(journal, "a") as fh:
        from repro.core.journal import record_to_dict
        for record in extra:
            fh.write(json.dumps(record_to_dict(record)) + "\n")
    report = diagnose_journal(journal)
    assert not report.ok
    assert any("distinct masks" in p for p in report.problems)


def test_integrity_reports_surface_in_diagnosis(cfg, tmp_path):
    path = tmp_path / "integrity.jsonl"
    spec = _spec(cfg, faults=1)
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=double_release_rat_reg)
    masks = [FaultMask.single("regfile_int", 0, 3, cycle=2000, mask_id=0)]
    run_campaign(spec, masks=masks, journal=path, sanitizer=policy)
    report = diagnose_journal(path)
    assert report.ok                      # quarantined, but journal is sound
    assert len(report.integrity_reports) == 1
    assert report.integrity_reports[0].check == "rename_free_bijection"
    assert report.robustness["integrity_quarantined"] == 1
    assert "integrity violation" in report.describe()


def test_mismatched_flip_structure_detected(cfg, tmp_path):
    path = tmp_path / "alien.jsonl"
    spec = _spec(cfg, faults=1)
    alien = FaultMask.single("lq", 0, 3, cycle=60, mask_id=0)
    with CampaignJournal.open(path, spec) as writer:
        writer.append(run_one_fault(spec, alien))
    report = diagnose_journal(path)
    assert not report.ok
    assert any("campaigns against" in p for p in report.problems)


def test_cli_exit_codes(journal, capsys):
    assert cli_main(["doctor", str(journal)]) == 0
    assert "verdict: ok" in capsys.readouterr().out

    assert cli_main(["doctor", str(journal), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] and payload["records"] == 4

    lines = journal.read_text().splitlines()
    lines.append(lines[1])                # duplicate record -> corrupt
    journal.write_text("\n".join(lines) + "\n")
    assert cli_main(["doctor", str(journal)]) == 1
    assert "CORRUPT" in capsys.readouterr().out


# ------------------------------------------------------------ liveness


@pytest.fixture
def liveness_journal(cfg, tmp_path):
    """A liveness=on campaign journal with at least one analytic record."""
    path = tmp_path / "liveness.jsonl"
    spec = _spec(cfg, faults=8, liveness="on")
    result = run_campaign(spec, journal=path)
    assert result.liveness_skips > 0      # the fixture must exercise claims
    return path


def _mutate_record(path, line_idx, **changes):
    lines = path.read_text().splitlines()
    data = json.loads(lines[line_idx])
    data.update(changes)
    lines[line_idx] = json.dumps(data)
    path.write_text("\n".join(lines) + "\n")


def _analytic_line(path):
    for i, line in enumerate(path.read_text().splitlines()):
        if i and json.loads(line).get("classified_by") == "liveness":
            return i
    raise AssertionError("no analytic record in journal")


def test_valid_liveness_journal_is_ok(liveness_journal):
    report = diagnose_journal(liveness_journal)
    assert report.ok, report.problems


def test_forged_liveness_provenance_on_sdc_fails(liveness_journal):
    """classified_by="liveness" stamped onto an SDC verdict is forged:
    analytic classification can only ever prove Masked."""
    idx = _analytic_line(liveness_journal)
    _mutate_record(liveness_journal, idx, outcome="sdc")
    report = diagnose_journal(liveness_journal)
    assert not report.ok
    assert any("can only ever prove masked" in p for p in report.problems)


def test_liveness_record_with_simulated_cycles_fails(liveness_journal):
    idx = _analytic_line(liveness_journal)
    _mutate_record(liveness_journal, idx, cycles=42, max_cycles=100)
    report = diagnose_journal(liveness_journal)
    assert not report.ok
    assert any("never simulate" in p for p in report.problems)


def test_liveness_record_claiming_activation_fails(liveness_journal):
    idx = _analytic_line(liveness_journal)
    _mutate_record(liveness_journal, idx, activated=True)
    report = diagnose_journal(liveness_journal)
    assert not report.ok
    assert any("never read" in p for p in report.problems)


def test_unknown_classifier_fails(liveness_journal):
    idx = _analytic_line(liveness_journal)
    _mutate_record(liveness_journal, idx, classified_by="oracle")
    report = diagnose_journal(liveness_journal)
    assert not report.ok
    assert any("unknown analytic classifier" in p for p in report.problems)


def test_liveness_provenance_without_liveness_spec_fails(cfg, tmp_path):
    """An analytic record spliced into a journal whose spec never enabled
    liveness is provenance from nowhere."""
    path = tmp_path / "plain.jsonl"
    run_campaign(_spec(cfg, faults=4, seed=11), journal=path)
    lines = path.read_text().splitlines()
    data = json.loads(lines[1])
    data.update(outcome="masked", classified_by="liveness", cycles=0,
                max_cycles=0, activated=False)
    lines[1] = json.dumps(data)
    path.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(path)
    assert not report.ok
    assert any("without a liveness mode" in p for p in report.problems)


def test_liveness_disagreement_under_non_audit_spec_fails(liveness_journal):
    """sim_error_kind="liveness" only ever arises in audit mode."""
    lines = liveness_journal.read_text().splitlines()
    data = json.loads(lines[1])
    data.update(outcome="sim_fault", sim_error_kind="liveness",
                classified_by=None)
    data.pop("classified_by")
    lines[1] = json.dumps(data)
    liveness_journal.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(liveness_journal)
    assert not report.ok
    assert any("not in audit mode" in p for p in report.problems)


def test_torn_tail_resume_rederives_analytic_classifications(cfg, tmp_path):
    """Kill the writer mid-append, resume, and the re-derived journal —
    including every analytic classification — is byte-identical to an
    uninterrupted run's."""
    spec = _spec(cfg, faults=8, liveness="on")
    reference = tmp_path / "reference.jsonl"
    run_campaign(spec, journal=reference)

    torn = tmp_path / "torn.jsonl"
    full = reference.read_text().splitlines()
    # keep header + first three records, then a torn half-record
    torn.write_text("\n".join(full[:4]) + "\n" + full[4][:25])
    report = diagnose_journal(torn)
    assert report.ok and report.torn_tail

    from repro.core.journal import repair_torn_tail
    assert repair_torn_tail(torn) > 0
    result = run_campaign(spec, journal=torn, resume=torn)
    assert result.resumed == 3
    assert torn.read_bytes() == reference.read_bytes()
    assert diagnose_journal(torn).ok
