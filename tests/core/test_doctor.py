"""Offline journal-validation (``repro doctor``) tests.

Each test corrupts a real journal the way real incidents do — a spliced
header, a mid-file garbage line, a torn tail, a duplicated mask — and
asserts the doctor's verdict, plus the CLI's nonzero exit code on
corruption.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.campaign import CampaignSpec, run_campaign, run_one_fault
from repro.core.doctor import diagnose_journal
from repro.core.faults import FaultMask
from repro.core.journal import CampaignJournal
from repro.core.sanitizer import SanitizerPolicy

from tests.core.test_sanitizer import double_release_rat_reg


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=4, seed=11,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


@pytest.fixture
def journal(cfg, tmp_path):
    path = tmp_path / "run.jsonl"
    run_campaign(_spec(cfg), journal=path)
    return path


def test_valid_journal_is_ok(journal):
    report = diagnose_journal(journal)
    assert report.ok
    assert report.records == 4
    assert not report.torn_tail
    assert report.robustness["quarantined"] == 0
    assert "verdict: ok" in report.describe()


def test_missing_and_empty_files(tmp_path):
    report = diagnose_journal(tmp_path / "never-written.jsonl")
    assert not report.ok and "does not exist" in report.problems[0]
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert not diagnose_journal(empty).ok


def test_tampered_fingerprint_detected(journal):
    lines = journal.read_text().splitlines()
    header = json.loads(lines[0])
    header["spec"]["seed"] = 999          # splice: spec edited, hash stale
    lines[0] = json.dumps(header)
    journal.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(journal)
    assert not report.ok
    assert any("fingerprint" in p for p in report.problems)


def test_torn_tail_is_tolerated_but_interior_garbage_is_not(journal):
    body = journal.read_text()
    torn = journal.parent / "torn.jsonl"
    torn.write_text(body + '{"kind": "record", "mask": {"mask_')
    report = diagnose_journal(torn)
    assert report.ok and report.torn_tail
    assert any("torn" in w for w in report.warnings)

    lines = body.splitlines()
    lines.insert(2, "NOT JSON AT ALL")
    bad = journal.parent / "garbled.jsonl"
    bad.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(bad)
    assert not report.ok
    assert any("mid-journal" in p for p in report.problems)


def test_duplicate_mask_id_detected(journal):
    lines = journal.read_text().splitlines()
    lines.append(lines[1])                # replay a completed record
    journal.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(journal)
    assert not report.ok
    assert any("duplicate mask_id" in p for p in report.problems)


def test_overfull_sample_detected(cfg, journal):
    spec = _spec(cfg)
    extra = [
        run_one_fault(spec, FaultMask.single("regfile_int", i, 2, cycle=60,
                                             mask_id=100 + i))
        for i in range(2)
    ]
    with open(journal, "a") as fh:
        from repro.core.journal import record_to_dict
        for record in extra:
            fh.write(json.dumps(record_to_dict(record)) + "\n")
    report = diagnose_journal(journal)
    assert not report.ok
    assert any("distinct masks" in p for p in report.problems)


def test_integrity_reports_surface_in_diagnosis(cfg, tmp_path):
    path = tmp_path / "integrity.jsonl"
    spec = _spec(cfg, faults=1)
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=double_release_rat_reg)
    masks = [FaultMask.single("regfile_int", 0, 3, cycle=2000, mask_id=0)]
    run_campaign(spec, masks=masks, journal=path, sanitizer=policy)
    report = diagnose_journal(path)
    assert report.ok                      # quarantined, but journal is sound
    assert len(report.integrity_reports) == 1
    assert report.integrity_reports[0].check == "rename_free_bijection"
    assert report.robustness["integrity_quarantined"] == 1
    assert "integrity violation" in report.describe()


def test_mismatched_flip_structure_detected(cfg, tmp_path):
    path = tmp_path / "alien.jsonl"
    spec = _spec(cfg, faults=1)
    alien = FaultMask.single("lq", 0, 3, cycle=60, mask_id=0)
    with CampaignJournal.open(path, spec) as writer:
        writer.append(run_one_fault(spec, alien))
    report = diagnose_journal(path)
    assert not report.ok
    assert any("campaigns against" in p for p in report.problems)


def test_cli_exit_codes(journal, capsys):
    assert cli_main(["doctor", str(journal)]) == 0
    assert "verdict: ok" in capsys.readouterr().out

    assert cli_main(["doctor", str(journal), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] and payload["records"] == 4

    lines = journal.read_text().splitlines()
    lines.append(lines[1])                # duplicate record -> corrupt
    journal.write_text("\n".join(lines) + "\n")
    assert cli_main(["doctor", str(journal)]) == 1
    assert "CORRUPT" in capsys.readouterr().out
