"""Directed injector tests: each early-termination path and enforcement."""

import pytest

from repro.core.campaign import golden_run
from repro.core.faults import FaultMask, FaultModel
from repro.core.injector import (
    ARMED,
    ESCAPED,
    MASKED_DISCARDED,
    MASKED_OVERWRITTEN,
    MASKED_UNUSED,
    READ,
    InjectionController,
)
from repro.core.targets import TARGETS, get_target
from repro.cpu.core import OoOCore
from repro.isa.base import get_isa


def _fresh_core(cfg, workload="crc32"):
    golden = golden_run("rv", workload, cfg, "tiny")
    return OoOCore.from_executable(golden.exe, get_isa("rv"), cfg), golden


def test_targets_registry_geometry(cfg):
    core, _ = _fresh_core(cfg)
    expected = {
        "regfile_int": (cfg.int_phys_regs, 64),
        "regfile_fp": (cfg.fp_phys_regs, 64),
        "l1i": (cfg.l1i.num_lines, cfg.l1i.line_size * 8),
        "l1d": (cfg.l1d.num_lines, cfg.l1d.line_size * 8),
        "l2": (cfg.l2.num_lines, cfg.l2.line_size * 8),
        # 192 = 64 addr + 128 data (pair stores); was 128 before the
        # coverage fix that exposed the upper data half
        "lq": (cfg.lq_entries, 192),
        "sq": (cfg.sq_entries, 192),
    }
    for name, geom in expected.items():
        assert get_target(name).geometry(core) == geom
    with pytest.raises(KeyError):
        get_target("rob_does_not_exist")


def test_uarch_targets_registry_geometry(cfg):
    ucfg = cfg.with_(mshr_entries=4, store_buffer_entries=4,
                     prefetcher_entries=8)
    core, _ = _fresh_core(ucfg)
    assert get_target("mshr").geometry(core) == (4, 65 + ucfg.lq_entries)
    assert get_target("store_buffer").geometry(core) == (4, 192)
    assert get_target("prefetcher").geometry(core) == (8, 84)


def test_unused_entry_is_masked_immediately(cfg):
    core, _ = _fresh_core(cfg)
    # pick a free physical register: guaranteed unused
    free_reg = core.prf_int.free[0]
    mask = FaultMask.single("regfile_int", free_reg, 5, cycle=0)
    controller = InjectionController(mask)
    controller.tick(core)
    assert controller.flips[0].status is MASKED_UNUSED
    assert controller.early_masked


def test_invalid_cache_line_is_masked(cfg):
    core, _ = _fresh_core(cfg)
    assert not core.l1d.valid[0]   # nothing ran yet
    mask = FaultMask.single("l1d", 0, 100, cycle=0)
    controller = InjectionController(mask)
    controller.tick(core)
    assert controller.flips[0].status is MASKED_UNUSED


def test_occupied_register_flip_arms_watch(cfg):
    core, _ = _fresh_core(cfg)
    mapped = core.rat_int[3]
    core.prf_int.values[mapped] = 0xF0
    mask = FaultMask.single("regfile_int", mapped, 0, cycle=0)
    controller = InjectionController(mask)
    core.injector = controller
    controller.tick(core)
    assert controller.flips[0].status is ARMED
    assert core.prf_int.values[mapped] == 0xF1
    # a read consumes the fault
    core.prf_int.read(mapped)
    assert controller.flips[0].status is READ
    assert controller.activated


def test_register_overwrite_masks(cfg):
    core, _ = _fresh_core(cfg)
    mapped = core.rat_int[3]
    mask = FaultMask.single("regfile_int", mapped, 0, cycle=0)
    controller = InjectionController(mask)
    core.injector = controller
    controller.tick(core)
    core.prf_int.write(mapped, 1234)       # overwritten before read
    assert controller.flips[0].status is MASKED_OVERWRITTEN
    assert controller.early_masked
    assert controller.masked_reason() == "masked_overwritten"


def test_cache_clean_eviction_discards_fault(cfg):
    core, _ = _fresh_core(cfg)
    core.l1d.read(0x10000, 8)              # fill a clean line
    line = core.l1d._find(0x10000)
    mask = FaultMask.single("l1d", line, 3, cycle=0)
    controller = InjectionController(mask)
    controller.tick(core)
    assert controller.flips[0].status is ARMED
    core.l1d.probe.on_evict(core.l1d, line, dirty=False)
    assert controller.flips[0].status is MASKED_DISCARDED


def test_cache_dirty_eviction_escapes(cfg):
    core, _ = _fresh_core(cfg)
    core.l1d.write(0x10000, 0xAA, 1)
    line = core.l1d._find(0x10000)
    bit = ((0x10000 % 64) + 32) * 8        # another byte in the same line
    mask = FaultMask.single("l1d", line, bit, cycle=0)
    controller = InjectionController(mask)
    controller.tick(core)
    controller.on_evict(core.l1d, line, dirty=True)
    assert controller.flips[0].status is ESCAPED
    assert not controller.early_masked     # corrupted data lives on in L2


def test_permanent_fault_reenforced_on_write(cfg):
    core, _ = _fresh_core(cfg)
    mapped = core.rat_int[4]
    mask = FaultMask.single(
        "regfile_int", mapped, 0, cycle=0, model=FaultModel.STUCK_AT_1
    )
    controller = InjectionController(mask)
    core.injector = controller
    controller.tick(core)
    assert core.prf_int.values[mapped] & 1
    core.prf_int.write(mapped, 0x1000)     # write tries to clear bit 0
    assert core.prf_int.values[mapped] & 1  # stuck-at re-enforced
    assert not controller.early_masked      # permanents never exit early


def test_permanent_cache_fault_survives_refill(cfg):
    core, _ = _fresh_core(cfg)
    core.l1d.read(0x10000, 8)
    line = core.l1d._find(0x10000)
    byte_off = 0x10000 % 64
    mask = FaultMask.single(
        "l1d", line, byte_off * 8, cycle=0, model=FaultModel.STUCK_AT_1
    )
    controller = InjectionController(mask)
    controller.tick(core)
    # a full-line refill rewrites the data; stuck bit must persist
    controller.on_fill(core.l1d, line)
    assert core.l1d.data[line][byte_off] & 1


def test_lsq_field_granularity(cfg):
    core, _ = _fresh_core(cfg)
    idx = core.lq.allocate(seq=1)
    core.lq.set_addr(idx, 0x10000, 8)
    mask = FaultMask.single("lq", idx, 70, cycle=0)  # data-field bit
    controller = InjectionController(mask)
    core.injector = controller
    controller.tick(core)
    assert controller.flips[0].status is ARMED
    core.lq.set_addr(idx, 0x10008, 8)      # addr write: data fault unaffected
    assert controller.flips[0].status is ARMED
    core.lq.set_data(idx, 42)              # data write: fault overwritten
    assert controller.flips[0].status is MASKED_OVERWRITTEN


def test_lsq_free_discards(cfg):
    core, _ = _fresh_core(cfg)
    idx = core.sq.allocate(seq=1)
    core.sq.set_addr(idx, 0x10000, 8)
    mask = FaultMask.single("sq", idx, 3, cycle=0)
    controller = InjectionController(mask)
    controller.tick(core)
    core.sq.free(idx)
    assert controller.flips[0].status is MASKED_DISCARDED


def test_multibit_mask_requires_all_masked_for_early_exit(cfg):
    core, _ = _fresh_core(cfg)
    free_reg = core.prf_int.free[0]
    mapped = core.rat_int[5]
    mask = FaultMask(
        model=FaultModel.TRANSIENT,
        flips=(
            FaultMask.single("regfile_int", free_reg, 0, 0).flips[0],
            FaultMask.single("regfile_int", mapped, 0, 0).flips[0],
        ),
    )
    controller = InjectionController(mask)
    core.injector = controller
    controller.tick(core)
    assert not controller.early_masked          # second flip is live
    core.prf_int.write(mapped, 0)
    assert controller.early_masked
    assert controller.masked_reason() == "masked_mixed"
