"""Cross-ISA differential tests.

The paper's heterogeneous-SoC comparisons (x86 vs Arm vs RISC-V AVF for the
same MiBench workload) are only meaningful if the three ISA models compute
the same thing: any drift in program output would silently skew every
cross-ISA figure.  These tests pin golden-output equality for all fifteen
workloads and classification agreement on a fixture where the verdict is
ISA-independent by construction.
"""

from __future__ import annotations

import pytest

from repro.core.campaign import (
    CampaignSpec,
    golden_run,
    masks_for_spec,
    run_one_fault,
)
from repro.core.outcome import HVFClass, Outcome
from repro.workloads import WORKLOAD_NAMES

ISAS = ["rv", "arm", "x86"]


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_golden_output_identical_across_isas(workload, cfg):
    outputs = {
        isa: golden_run(isa, workload, cfg, "tiny").output for isa in ISAS
    }
    assert outputs["rv"], f"{workload} produced no output"
    assert outputs["arm"] == outputs["rv"]
    assert outputs["x86"] == outputs["rv"]


def test_masked_classification_identical_across_isas(cfg):
    """FP-regfile faults in an integer-only workload are Masked on every
    ISA: the corrupted registers are never architecturally consumed.  A
    non-Masked record on any ISA means its model reads state it shouldn't."""
    for isa in ISAS:
        spec = CampaignSpec(isa=isa, workload="crc32", target="regfile_fp",
                            cfg=cfg, scale="tiny", faults=8, seed=7)
        golden = golden_run(isa, "crc32", cfg, "tiny")
        for mask in masks_for_spec(spec, golden):
            record = run_one_fault(spec, mask, golden)
            assert record.outcome is Outcome.MASKED, (isa, mask.mask_id)
            assert record.hvf is HVFClass.BENIGN, (isa, mask.mask_id)
