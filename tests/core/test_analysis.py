"""Tests for the figure drivers (reduced samples; shape + plumbing checks)."""

import pytest

from repro.analysis import figures

TINY = dict(faults=6, workloads=["crc32", "qsort"])


def test_per_structure_grid_shape():
    fig = figures.fig4_regfile_avf(**TINY)
    assert "Figure 4" in fig.figure
    # 2 workloads + 1 wAVF row per ISA, 3 ISAs
    assert len(fig.rows) == 9
    isas = {r["isa"] for r in fig.rows}
    assert isas == {"arm", "x86", "rv"}
    assert fig.text.count("wAVF") == 3


def test_grid_cache_reuses_campaigns():
    a = figures.fig4_regfile_avf(**TINY)
    b = figures.fig9_sdc_regfile(**TINY)   # same grid, different figure label
    assert a.rows == b.rows
    assert "Figure 9" in b.figure


def test_wavf_row_is_weighted_combination():
    from repro.core.metrics import weighted_avf

    fig = figures.fig6_l1d_avf(**TINY)
    for isa in ("rv",):
        per_wl = [r for r in fig.rows if r["isa"] == isa and r["workload"] != "wAVF"]
        wavf_row = next(
            r for r in fig.rows if r["isa"] == isa and r["workload"] == "wAVF"
        )
        expected = weighted_avf(
            [r["avf"] for r in per_wl], [r["golden_cycles"] for r in per_wl]
        )
        assert wavf_row["avf"] == pytest.approx(expected)


def test_permanent_figure_mixes_stuck_at_polarities():
    fig = figures.fig12_permanent_l1i(faults=4, workloads=["crc32"], isas=["rv"])
    assert len(fig.rows) == 1
    assert fig.rows[0]["model"] == "permanent"
    assert fig.rows[0]["faults"] == 4


def test_fig15_rows_tagged_with_prf_size():
    fig = figures.fig15_prf_sensitivity(sizes=(96, 192), faults=4,
                                        workloads=["crc32"])
    sizes = {r["prf_size"] for r in fig.rows}
    assert sizes == {96, 192}


def test_fig17_dse_rows():
    fig = figures.fig17_gemm_dse(fu_counts=(1, 8), faults=4, scale="tiny")
    by = {r["fu_count"]: r for r in fig.rows}
    assert by[1]["cycles"] > by[8]["cycles"]
    assert by[1]["area_units"] < by[8]["area_units"]


def test_fig18_hvf_invariant():
    fig = figures.fig18_hvf(faults=6, workloads=["crc32"],
                            targets=("regfile_int",))
    for row in fig.rows:
        assert row["hvf"] >= row["avf"] - 1e-9


def test_fig14_covers_table4():
    from repro.accel_designs import PAPER_TARGETS

    fig = figures.fig14_dsa_avf(faults=3, scale="tiny")
    cells = {(r["design"], r["component"]) for r in fig.rows}
    expected = {(d, c) for d, comps in PAPER_TARGETS.items() for c in comps}
    assert cells == expected


def test_env_knobs(monkeypatch):
    monkeypatch.setenv("MARVEL_FAULTS", "123")
    monkeypatch.setenv("MARVEL_WORKLOADS", "2")
    monkeypatch.setenv("MARVEL_SCALE", "default")
    assert figures.env_faults() == 123
    assert len(figures.env_workloads()) == 2
    assert figures.env_scale() == "default"
