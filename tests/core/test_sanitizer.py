"""Microarchitectural integrity sanitizer tests.

The corruptors below are the test doubles for simulator bugs: picklable
module-level callables planted via ``SanitizerPolicy.corruptor`` that walk
a live core into an *impossible* state (double-released physical register,
over-wide load data) or a wedged one (nothing can ever commit) mid-run.
The sanitizer must quarantine the former as ``SIM_FAULT/integrity`` —
never launder it into an AVF verdict — and the hang detector must classify
the latter as a deterministic ``Crash(hang)``.
"""

from types import SimpleNamespace

import pytest

from repro.core.campaign import (
    CampaignSpec,
    clear_caches,
    golden_run,
    run_campaign,
    run_one_fault,
)
from repro.core.checkpoint import NO_CHECKPOINTS
from repro.core.faults import FaultMask
from repro.core.injector import ARMED, ESCAPED, PENDING, READ
from repro.core.outcome import Outcome
from repro.core.report import render_robustness, robustness_summary
from repro.core.sanitizer import (
    ALL_STRUCTURES,
    CPU_CHECKS,
    FULL_SANITIZER,
    NO_SANITIZER,
    STRUCTURAL,
    VALUE,
    IntegrityReport,
    SanitizerPolicy,
    cpu_reach,
    hang_detected,
    should_suppress,
)


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=4, seed=7,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


#: a flip that stays PENDING while the corruptors below fire — the active
#: mask cannot explain the planted corruption, so it must escalate
def _pending_mask(mask_id=0):
    return FaultMask.single("regfile_int", 0, 3, cycle=2000, mask_id=mask_id)


# ------------------------------------------------------------- corruptors
# (module-level so they pickle into pool workers)


def double_release_rat_reg(core, n_prior_audits):
    """Plant a rename/free-list bijection break: a register the rename map
    still points at appears on the free list (the classic double release)."""
    if core.cycle >= 40:
        core.prf_int.free.append(core.rat_int[0])


def restored_only_corruptor(core, n_prior_audits):
    """Corrupt only a fast-forwarded run: the first audit of a from-scratch
    run happens at cycle 0, a restored run's at its restore cycle."""
    if n_prior_audits == 0 and core.cycle > 0:
        core.prf_int.free.append(core.rat_int[0])


def widen_lq_data(core, n_prior_audits):
    """Plant a value-check violation: a completed load carrying 101 bits."""
    for e in core.lq.entries:
        if e.valid and e.data_known and not e.pair:
            e.data |= 1 << 100
            return


def wedge_pipeline(core, n_prior_audits):
    """Walk the core into a commit livelock that violates no invariant:
    every in-flight completion is dropped and every ROB entry reset to
    WAIT with nothing left in the issue queue to wake it."""
    if core.cycle >= 120:
        core.inflight.clear()
        core.iq.clear()
        for e in core.rob:
            e.state = e.WAIT


# ------------------------------------------------------------ policy basics


def test_policy_validation():
    with pytest.raises(ValueError, match="unknown sanitize mode"):
        SanitizerPolicy(mode="bogus")
    with pytest.raises(ValueError, match="audit_stride"):
        SanitizerPolicy(audit_stride=0)
    assert FULL_SANITIZER.stride == 1
    assert not NO_SANITIZER.enabled
    assert SanitizerPolicy(mode="sampled", audit_stride=32).stride == 32


def test_integrity_report_roundtrip():
    report = IntegrityReport(
        check="rename_free_bijection", structure="prf/rat", kind=STRUCTURAL,
        cycle=192, detail="p7 double-released", mask_id=4, mode="full",
        divergence="deterministic",
    )
    assert IntegrityReport.from_dict(report.to_dict()) == report
    assert "deterministic" in report.describe()
    assert "cycle 192" in report.describe()


# --------------------------------------------------------------- suppression


def _flip_state(status, structure="regfile_int"):
    return SimpleNamespace(status=status,
                           flip=SimpleNamespace(structure=structure))


def test_cpu_reach_taint_rules():
    assert cpu_reach(None) == frozenset()
    assert cpu_reach(SimpleNamespace(flips=[_flip_state(READ)])) is ALL_STRUCTURES
    assert cpu_reach(SimpleNamespace(flips=[_flip_state(ESCAPED)])) is ALL_STRUCTURES
    assert cpu_reach(SimpleNamespace(flips=[_flip_state(ARMED, "lq")])) == {"lq"}
    assert cpu_reach(SimpleNamespace(flips=[_flip_state(PENDING)])) == frozenset()


def test_suppression_is_value_only_and_reach_scoped():
    lq_value = next(c for c in CPU_CHECKS if c.name == "lq_data_width")
    structural = next(c for c in CPU_CHECKS if c.kind == STRUCTURAL)
    assert should_suppress(lq_value, ALL_STRUCTURES)
    assert should_suppress(lq_value, frozenset({"lq"}))
    assert not should_suppress(lq_value, frozenset({"regfile_int"}))
    assert not should_suppress(lq_value, frozenset())
    # structural breaks are impossible regardless of the mask's reach
    assert not should_suppress(structural, ALL_STRUCTURES)


# --------------------------------------------------- clean goldens stay clean


def test_full_audit_clean_golden_every_isa(isa_name, cfg):
    """A fault-free run violates no invariant at stride 1 on any ISA —
    the false-positive floor of the whole registry."""
    clear_caches()
    golden = golden_run(isa_name, "crc32", cfg, "tiny",
                        sanitizer=FULL_SANITIZER)
    assert golden.cycles > 0


# ------------------------------------------------------- mutation escalation


def test_double_allocation_quarantined_as_integrity(cfg):
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=double_release_rat_reg)
    record = run_one_fault(_spec(cfg), _pending_mask(), sanitizer=policy)
    assert record.outcome is Outcome.SIM_FAULT
    assert record.sim_error_kind == "integrity"
    assert record.integrity is not None
    assert record.integrity.check == "rename_free_bijection"
    assert record.integrity.kind == STRUCTURAL
    assert record.integrity.mask_id == 0
    assert record.integrity.cycle >= 40
    assert "free and rename-mapped" in record.integrity.detail
    # differential escalation re-ran from scratch and reproduced it
    assert record.integrity.divergence == "deterministic"
    assert record.retries == 1


def test_checkpoint_divergence_is_labelled(cfg):
    """A violation that vanishes when the run is re-simulated from scratch
    indicts the checkpoint restore path, not the simulator proper."""
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=restored_only_corruptor)
    record = run_one_fault(_spec(cfg), _pending_mask(), sanitizer=policy)
    assert record.outcome is Outcome.SIM_FAULT
    assert record.sim_error_kind == "integrity"
    assert record.integrity.divergence == "checkpoint-divergence"
    assert record.retries == 1


def test_value_check_escalates_when_mask_cannot_reach(cfg):
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=widen_lq_data)
    record = run_one_fault(_spec(cfg), _pending_mask(),
                           checkpoints=NO_CHECKPOINTS, sanitizer=policy)
    assert record.outcome is Outcome.SIM_FAULT
    assert record.sim_error_kind == "integrity"
    assert record.integrity.check == "lq_data_width"
    assert record.integrity.kind == VALUE
    # without a fast-forward there is nothing to differentiate against
    assert record.integrity.divergence == "deterministic"
    assert record.retries == 0


def test_integrity_quarantine_excluded_from_avf(cfg):
    spec = _spec(cfg, faults=2)
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=double_release_rat_reg)
    masks = [_pending_mask(0), _pending_mask(1)]
    result = run_campaign(spec, masks=masks, sanitizer=policy)
    assert result.integrity_quarantined == 2
    assert result.valid_records == []
    assert result.avf is None
    health = robustness_summary(result.records)
    assert health["integrity_quarantined"] == 2
    assert "integrity" in render_robustness(result.records)


# ------------------------------------------------------------ hang detection


def test_hang_detected_is_stateless_and_gated():
    core = SimpleNamespace(halted=False, rob=[object()], cycle=5000,
                           last_commit_cycle=100, fetch_ready_at=0,
                           inflight=[], _div_busy=[], _fdiv_busy=[])
    assert hang_detected(core, 2048)
    assert not hang_detected(core, 0)                    # disabled
    core.inflight = [(9000, None)]                       # work outstanding
    assert not hang_detected(core, 2048)
    core.inflight = [(core.cycle + 1, None)]             # replay livelock
    assert hang_detected(core, 2048)
    core.rob = []                                        # nothing to commit
    assert not hang_detected(core, 2048)


def test_wedged_pipeline_classifies_as_hang(cfg):
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=wedge_pipeline)
    record = run_one_fault(_spec(cfg), _pending_mask(),
                           checkpoints=NO_CHECKPOINTS, sanitizer=policy,
                           hang_cycles=256)
    assert record.outcome is Outcome.CRASH
    assert record.crash_reason == "hang"
    # the detector fired in simulated time, far before the cycle watchdog
    assert record.cycles < record.max_cycles


def test_hang_identical_serial_vs_parallel(cfg):
    spec = _spec(cfg, faults=3)
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=wedge_pipeline)
    masks = [FaultMask.single("regfile_int", i, 5, cycle=200, mask_id=i)
             for i in range(3)]
    serial = run_campaign(spec, masks=masks, sanitizer=policy,
                          hang_cycles=256)
    parallel = run_campaign(spec, masks=masks, workers=2, sanitizer=policy,
                            hang_cycles=256)
    assert serial.records == parallel.records
    assert all(r.crash_reason == "hang" for r in serial.records)
    assert serial.hangs == 3
    health = robustness_summary(serial.records)
    assert health["hangs"] == 3 and health["timeouts"] == 0


# ------------------------------------------------ record/journal equivalence


def test_sampled_records_byte_identical_to_off(cfg, tmp_path):
    """For non-quarantined runs, auditing must be observation-only: the
    journal written under ``--sanitize=sampled`` is byte-for-byte the one
    written under ``--sanitize=off``."""
    spec = _spec(cfg, faults=8)
    off_path = tmp_path / "off.jsonl"
    sampled_path = tmp_path / "sampled.jsonl"
    off = run_campaign(spec, journal=off_path, sanitizer=NO_SANITIZER)
    sampled = run_campaign(spec, journal=sampled_path,
                           sanitizer=SanitizerPolicy(mode="sampled"))
    assert off.quarantined == 0 and sampled.quarantined == 0
    assert off_path.read_bytes() == sampled_path.read_bytes()


# --------------------------------------------- watchdog pressure (satellite)


def test_watchdog_pressure_uses_effective_budget():
    """A run fast-forwarded to cycle 800 of a 1000-cycle budget that stops
    at 950 used 150 of its 200 *effective* cycles — pressure 0.75, not the
    0.95 the original budget would claim."""
    record = SimpleNamespace(
        outcome=Outcome.SDC, crash_reason=None, retries=0,
        stopped_on_hvf=False, sim_error_kind=None, integrity=None,
        max_cycles=1000, restored_from=800, cycles=950,
    )
    health = robustness_summary([record])
    assert health["watchdog_pressure"] == pytest.approx(0.75)
