"""Run-journal tests: serialization round-trips, torn tails, spec identity."""

import json

import pytest

from repro.core.campaign import CampaignSpec, FaultRecord
from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.journal import (
    CampaignJournal,
    JournalError,
    mask_from_dict,
    mask_to_dict,
    record_from_dict,
    record_to_dict,
    spec_fingerprint,
)
from repro.core.outcome import HVFClass, Outcome


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=4, seed=7,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


def _mask(mask_id=0, bit=3):
    return FaultMask(
        model=FaultModel.TRANSIENT,
        flips=(FaultFlip("regfile_int", 5, bit, 120),
               FaultFlip("l1d", 2, 17, 250)),
        mask_id=mask_id,
    )


def _record(mask_id=0, outcome=Outcome.SDC, **kw):
    defaults = dict(
        mask=_mask(mask_id), outcome=outcome, hvf=HVFClass.CORRUPTION,
        cycles=1234, crash_reason=None, activated=True, max_cycles=40_000,
    )
    defaults.update(kw)
    return FaultRecord(**defaults)


def test_mask_roundtrip():
    mask = _mask()
    assert mask_from_dict(mask_to_dict(mask)) == mask
    stuck = FaultMask.single("l1i", 3, 9, 0, model=FaultModel.STUCK_AT_1,
                             mask_id=4)
    assert mask_from_dict(mask_to_dict(stuck)) == stuck


def test_record_roundtrip_all_fields():
    record = _record(
        masked_reason=None, retries=1, sim_error_kind="flaky",
        error="IndexError: boom", stopped_on_hvf=True,
    )
    clone = record_from_dict(record_to_dict(record))
    assert clone == record


def test_quarantined_record_roundtrip():
    record = _record(outcome=Outcome.SIM_FAULT, hvf=HVFClass.BENIGN,
                     cycles=0, sim_error_kind="deterministic",
                     error="KeyError: poisoned rename map")
    clone = record_from_dict(record_to_dict(record))
    assert clone.quarantined and clone.sim_error_kind == "deterministic"


def test_fingerprint_distinguishes_specs(cfg):
    a, b = _spec(cfg), _spec(cfg, seed=8)
    assert spec_fingerprint(a) == spec_fingerprint(_spec(cfg))
    assert spec_fingerprint(a) != spec_fingerprint(b)


def test_append_and_load(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    spec = _spec(cfg)
    with CampaignJournal.open(path, spec) as journal:
        journal.append(_record(0))
        journal.append(_record(1, outcome=Outcome.MASKED,
                               hvf=HVFClass.BENIGN,
                               masked_reason="masked_unused"))
    records = CampaignJournal.load(path, spec)
    assert [r.mask.mask_id for r in records] == [0, 1]
    assert records[1].masked_reason == "masked_unused"
    assert CampaignJournal.completed(path, spec).keys() == {0, 1}


def test_reopen_appends_after_header(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    spec = _spec(cfg)
    with CampaignJournal.open(path, spec) as journal:
        journal.append(_record(0))
    with CampaignJournal.open(path, spec) as journal:
        journal.append(_record(1))
    assert len(CampaignJournal.load(path, spec)) == 2
    # exactly one header line
    lines = path.read_text().splitlines()
    assert sum(1 for l in lines if json.loads(l)["kind"] == "header") == 1


def test_torn_trailing_line_is_tolerated(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    spec = _spec(cfg)
    with CampaignJournal.open(path, spec) as journal:
        journal.append(_record(0))
        journal.append(_record(1))
    with open(path, "a") as fh:
        fh.write('{"kind": "record", "mask": {"model": "trans')  # torn write
    records = CampaignJournal.load(path, spec)
    assert [r.mask.mask_id for r in records] == [0, 1]


def test_spec_mismatch_refuses_append_and_load(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    with CampaignJournal.open(path, _spec(cfg)) as journal:
        journal.append(_record(0))
    other = _spec(cfg, seed=99)
    with pytest.raises(JournalError):
        CampaignJournal.open(path, other)
    with pytest.raises(JournalError):
        CampaignJournal.load(path, other)


def test_load_missing_or_empty_file(tmp_path, cfg):
    assert CampaignJournal.load(tmp_path / "absent.jsonl") == []
    empty = tmp_path / "empty.jsonl"
    empty.touch()
    assert CampaignJournal.load(empty) == []


def test_bad_header_raises(tmp_path, cfg):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "record"}\n')
    with pytest.raises(JournalError):
        CampaignJournal.load(path)


def test_load_without_spec_skips_validation(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    with CampaignJournal.open(path, _spec(cfg)) as journal:
        journal.append(_record(0))
    assert len(CampaignJournal.load(path)) == 1
