"""Run-journal tests: serialization round-trips, torn tails, spec identity."""

import json

import pytest

from repro.core.campaign import CampaignSpec, FaultRecord
from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.journal import (
    CampaignJournal,
    JournalError,
    OrderedJournalWriter,
    contiguous_prefix,
    mask_from_dict,
    mask_to_dict,
    record_from_dict,
    record_to_dict,
    repair_torn_tail,
    spec_fingerprint,
)
from repro.core.outcome import HVFClass, Outcome


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=4, seed=7,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


def _mask(mask_id=0, bit=3):
    return FaultMask(
        model=FaultModel.TRANSIENT,
        flips=(FaultFlip("regfile_int", 5, bit, 120),
               FaultFlip("l1d", 2, 17, 250)),
        mask_id=mask_id,
    )


def _record(mask_id=0, outcome=Outcome.SDC, **kw):
    defaults = dict(
        mask=_mask(mask_id), outcome=outcome, hvf=HVFClass.CORRUPTION,
        cycles=1234, crash_reason=None, activated=True, max_cycles=40_000,
    )
    defaults.update(kw)
    return FaultRecord(**defaults)


def test_mask_roundtrip():
    mask = _mask()
    assert mask_from_dict(mask_to_dict(mask)) == mask
    stuck = FaultMask.single("l1i", 3, 9, 0, model=FaultModel.STUCK_AT_1,
                             mask_id=4)
    assert mask_from_dict(mask_to_dict(stuck)) == stuck


def test_record_roundtrip_all_fields():
    record = _record(
        masked_reason=None, retries=1, sim_error_kind="flaky",
        error="IndexError: boom", stopped_on_hvf=True,
    )
    clone = record_from_dict(record_to_dict(record))
    assert clone == record


def test_quarantined_record_roundtrip():
    record = _record(outcome=Outcome.SIM_FAULT, hvf=HVFClass.BENIGN,
                     cycles=0, sim_error_kind="deterministic",
                     error="KeyError: poisoned rename map")
    clone = record_from_dict(record_to_dict(record))
    assert clone.quarantined and clone.sim_error_kind == "deterministic"


def test_fingerprint_distinguishes_specs(cfg):
    a, b = _spec(cfg), _spec(cfg, seed=8)
    assert spec_fingerprint(a) == spec_fingerprint(_spec(cfg))
    assert spec_fingerprint(a) != spec_fingerprint(b)


def test_append_and_load(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    spec = _spec(cfg)
    with CampaignJournal.open(path, spec) as journal:
        journal.append(_record(0))
        journal.append(_record(1, outcome=Outcome.MASKED,
                               hvf=HVFClass.BENIGN,
                               masked_reason="masked_unused"))
    records = CampaignJournal.load(path, spec)
    assert [r.mask.mask_id for r in records] == [0, 1]
    assert records[1].masked_reason == "masked_unused"
    assert CampaignJournal.completed(path, spec).keys() == {0, 1}


def test_reopen_appends_after_header(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    spec = _spec(cfg)
    with CampaignJournal.open(path, spec) as journal:
        journal.append(_record(0))
    with CampaignJournal.open(path, spec) as journal:
        journal.append(_record(1))
    assert len(CampaignJournal.load(path, spec)) == 2
    # exactly one header line
    lines = path.read_text().splitlines()
    assert sum(1 for l in lines if json.loads(l)["kind"] == "header") == 1


def test_torn_trailing_line_is_tolerated(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    spec = _spec(cfg)
    with CampaignJournal.open(path, spec) as journal:
        journal.append(_record(0))
        journal.append(_record(1))
    with open(path, "a") as fh:
        fh.write('{"kind": "record", "mask": {"model": "trans')  # torn write
    records = CampaignJournal.load(path, spec)
    assert [r.mask.mask_id for r in records] == [0, 1]


def test_spec_mismatch_refuses_append_and_load(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    with CampaignJournal.open(path, _spec(cfg)) as journal:
        journal.append(_record(0))
    other = _spec(cfg, seed=99)
    with pytest.raises(JournalError):
        CampaignJournal.open(path, other)
    with pytest.raises(JournalError):
        CampaignJournal.load(path, other)


def test_load_missing_or_empty_file(tmp_path, cfg):
    assert CampaignJournal.load(tmp_path / "absent.jsonl") == []
    empty = tmp_path / "empty.jsonl"
    empty.touch()
    assert CampaignJournal.load(empty) == []


def test_bad_header_raises(tmp_path, cfg):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "record"}\n')
    with pytest.raises(JournalError):
        CampaignJournal.load(path)


def test_load_without_spec_skips_validation(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    with CampaignJournal.open(path, _spec(cfg)) as journal:
        journal.append(_record(0))
    assert len(CampaignJournal.load(path)) == 1


# ------------------------------------------------- ordered parallel writer


def test_ordered_writer_buffers_out_of_order_completions(tmp_path, cfg):
    """Records arriving 2, 0, 1 must hit the file as 0, 1, 2 — the journal
    bytes never depend on worker scheduling."""
    path = tmp_path / "run.jsonl"
    with OrderedJournalWriter(CampaignJournal.open(path, _spec(cfg))) as w:
        w.add(2, _record(2))
        assert w.written == 0 and w.buffered == 1
        w.add(0, _record(0))
        assert w.written == 1 and w.buffered == 1
        w.add(1, _record(1))
        assert w.written == 3 and w.buffered == 0
    loaded = CampaignJournal.load(path, _spec(cfg))
    assert [r.mask.mask_id for r in loaded] == [0, 1, 2]


def test_ordered_writer_matches_serial_journal_bytes(tmp_path, cfg):
    serial = tmp_path / "serial.jsonl"
    j = CampaignJournal.open(serial, _spec(cfg))
    for i in range(4):
        j.append(_record(i))
    j.close()

    shuffled = tmp_path / "shuffled.jsonl"
    with OrderedJournalWriter(CampaignJournal.open(shuffled, _spec(cfg))) as w:
        for i in (3, 1, 0, 2):
            w.add(i, _record(i))
    assert serial.read_bytes() == shuffled.read_bytes()


def test_ordered_writer_partial_flush_leaves_clean_prefix(tmp_path, cfg):
    """A kill with a hole in flight loses only the buffered suffix: the
    file holds the contiguous prefix, which resume can trust."""
    path = tmp_path / "run.jsonl"
    w = OrderedJournalWriter(CampaignJournal.open(path, _spec(cfg)))
    w.add(0, _record(0))
    w.add(2, _record(2))          # 1 never arrives (worker died)
    w.close()
    assert [r.mask.mask_id for r in CampaignJournal.load(path, _spec(cfg))] == [0]


def test_ordered_writer_rejects_duplicate_and_past_positions(tmp_path, cfg):
    w = OrderedJournalWriter(CampaignJournal.open(tmp_path / "j.jsonl", _spec(cfg)))
    w.add(0, _record(0))
    with pytest.raises(JournalError):
        w.add(0, _record(0))
    w.add(2, _record(2))
    with pytest.raises(JournalError):
        w.add(2, _record(2))
    w.close()


def test_ordered_writer_start_resumes_position_tracking(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    j = CampaignJournal.open(path, _spec(cfg))
    j.append(_record(0))
    j.append(_record(1))
    j.close()
    with OrderedJournalWriter(CampaignJournal.open(path, _spec(cfg)), start=2) as w:
        w.add(3, _record(3))
        w.add(2, _record(2))
    loaded = CampaignJournal.load(path, _spec(cfg))
    assert [r.mask.mask_id for r in loaded] == [0, 1, 2, 3]


# -------------------------------------------------------- torn-tail repair


def test_repair_torn_tail_truncates_partial_line(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    j = CampaignJournal.open(path, _spec(cfg))
    j.append(_record(0))
    j.append(_record(1))
    j.close()
    clean = path.read_bytes()
    path.write_bytes(clean + b'{"kind": "record", "trunc')   # SIGKILL mid-write
    removed = repair_torn_tail(path)
    assert removed == len(b'{"kind": "record", "trunc')
    assert path.read_bytes() == clean
    # appending after repair continues the byte-identical stream
    j = CampaignJournal.open(path, _spec(cfg))
    j.append(_record(2))
    j.close()
    assert [r.mask.mask_id for r in CampaignJournal.load(path, _spec(cfg))] == [0, 1, 2]


def test_repair_torn_tail_noop_on_clean_journal(tmp_path, cfg):
    path = tmp_path / "run.jsonl"
    j = CampaignJournal.open(path, _spec(cfg))
    j.append(_record(0))
    j.close()
    before = path.read_bytes()
    assert repair_torn_tail(path) == 0
    assert path.read_bytes() == before


def test_repair_torn_tail_missing_file_is_noop(tmp_path):
    assert repair_torn_tail(tmp_path / "absent.jsonl") == 0


# ------------------------------------------------------- contiguous prefix


def test_contiguous_prefix_stops_at_first_gap():
    masks = [_mask(i) for i in range(5)]
    done = {0: "r0", 1: "r1", 3: "r3"}      # 2 missing
    assert contiguous_prefix(masks, done) == 2
    assert contiguous_prefix(masks, {}) == 0
    assert contiguous_prefix(masks, {i: "r" for i in range(5)}) == 5
    assert contiguous_prefix([], {0: "r"}) == 0
