"""Differential fuzz suite for the bit-liveness pre-analysis.

The contract under test: a fault the :class:`LivenessMap` claims provably
Masked (the flip dies — is overwritten, refilled, or discarded — before
anything observes it) must classify as Masked when actually simulated, for
every ISA, every CPU target structure, and the accelerator designs.  The
``audit`` campaign mode is the oracle: it simulates every analytically
claimed site anyway and quarantines any disagreement as
``sim_error_kind="liveness"`` — so a clean audit run *is* the differential
verdict.  On top of that, ``on`` / off journals must agree
record-for-record on outcome: skipping the simulation may never change a
single verdict, only who computed it.
"""

from __future__ import annotations

import pytest

from repro.accel.campaign import AccelCampaignSpec, run_accel_campaign
from repro.accel_designs import PAPER_TARGETS
from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.journal import CampaignJournal
from repro.core.outcome import Outcome
from repro.core.targets import TARGETS

#: crc32 keeps its whole state in registers (no stores → an idle SQ);
#: qsort is store-heavy — together they exercise every structure's seams
WORKLOADS = ["crc32", "qsort"]

#: 2 workloads x 10 targets x 15 masks = 300 masks per ISA (>= 200);
#: the sweep iterates TARGETS, so mshr/store_buffer/prefetcher campaigns
#: (which auto-enable their structures) are fuzzed alongside the originals
FAULTS_PER_CAMPAIGN = 15

ACCEL_DESIGNS = ["gemm", "spmv"]


def _cpu_spec(cfg, isa, workload, target, liveness, faults=FAULTS_PER_CAMPAIGN,
              seed=1234):
    return CampaignSpec(isa=isa, workload=workload, target=target, cfg=cfg,
                        scale="tiny", faults=faults, seed=seed,
                        liveness=liveness)


# ------------------------------------------------------------ audit fuzz


def test_audit_fuzz_sweep_cpu(isa_name, cfg):
    """>= 200 masks per ISA across every CPU target: zero disagreements."""
    total = claimed = 0
    for workload in WORKLOADS:
        for target in TARGETS:
            result = run_campaign(
                _cpu_spec(cfg, isa_name, workload, target, "audit"))
            assert result.liveness_disagreements == 0, (
                f"{isa_name}/{workload}/{target}: simulation contradicted "
                f"an analytic Masked claim: "
                f"{[r.error for r in result.records if r.sim_error_kind == 'liveness']}"
            )
            # every analytic record carries the full provenance contract
            for record in result.records:
                if record.classified_by == "liveness":
                    assert record.outcome is Outcome.MASKED
                    assert record.cycles == 0 and record.max_cycles == 0
                    assert not record.activated
                    assert record.masked_reason == "dead_interval"
            total += len(result.records)
            claimed += result.liveness_skips
    assert total >= 200
    # the sweep must actually exercise the analytic path, not vacuously pass
    assert claimed > 0


@pytest.mark.parametrize("design", ACCEL_DESIGNS)
def test_audit_fuzz_sweep_accel(design):
    """Accelerator designs: audit across paper components, zero disagreements."""
    for component in PAPER_TARGETS[design]:
        spec = AccelCampaignSpec(design=design, component=component,
                                 faults=25, seed=77, liveness="audit")
        result = run_accel_campaign(spec)
        assert result.liveness_disagreements == 0, (
            f"{design}/{component}: "
            f"{[r.error for r in result.records if r.sim_error_kind == 'liveness']}"
        )


# ------------------------------------------------------------ on/off journals


@pytest.mark.parametrize("workload,target", [
    ("crc32", "regfile_int"),
    ("qsort", "l1d"),
    ("qsort", "sq"),
])
def test_on_off_journals_agree_record_for_record(cfg, tmp_path, workload,
                                                 target):
    """`on` skips simulation for claimed sites; the journaled outcome stream
    must still match an off-mode run mask for mask."""
    off_path = tmp_path / "off.jsonl"
    on_path = tmp_path / "on.jsonl"
    off = run_campaign(_cpu_spec(cfg, "rv", workload, target, None),
                       journal=off_path)
    on = run_campaign(_cpu_spec(cfg, "rv", workload, target, "on"),
                      journal=on_path)

    off_records = CampaignJournal.load(off_path, off.spec)
    on_records = CampaignJournal.load(on_path, on.spec)
    assert len(off_records) == len(on_records) == FAULTS_PER_CAMPAIGN
    for a, b in zip(off_records, on_records):
        assert a.mask.mask_id == b.mask.mask_id
        assert a.outcome is b.outcome, (
            f"mask {a.mask.mask_id}: off={a.outcome} on={b.outcome} "
            f"(classified_by={b.classified_by})"
        )
    # off-mode journals never carry liveness provenance
    assert all(r.classified_by is None for r in off_records)
    # skipped sites are exactly the analytically classified ones
    skipped = [r for r in on_records if r.classified_by == "liveness"]
    assert all(r.outcome is Outcome.MASKED and r.cycles == 0 for r in skipped)


def test_audit_and_on_journal_records_identical(cfg, tmp_path):
    """With zero disagreements, audit journals the exact record `on` would
    have (the analytic one), so the record streams are byte-identical —
    only the header's liveness field differs."""
    audit_path = tmp_path / "audit.jsonl"
    on_path = tmp_path / "on.jsonl"
    run_campaign(_cpu_spec(cfg, "rv", "crc32", "regfile_int", "audit"),
                 journal=audit_path)
    run_campaign(_cpu_spec(cfg, "rv", "crc32", "regfile_int", "on"),
                 journal=on_path)
    audit_lines = audit_path.read_text().splitlines()
    on_lines = on_path.read_text().splitlines()
    assert audit_lines[1:] == on_lines[1:]
    assert audit_lines[0] != on_lines[0]   # header spec: audit vs on


@pytest.mark.parametrize("design,component", [("gemm", "MATRIX3"),
                                              ("spmv", "OUT")])
def test_accel_on_off_outcomes_agree(design, component):
    spec_off = AccelCampaignSpec(design=design, component=component,
                                 faults=30, seed=5)
    spec_on = AccelCampaignSpec(design=design, component=component,
                                faults=30, seed=5, liveness="on")
    off = run_accel_campaign(spec_off)
    on = run_accel_campaign(spec_on)
    for a, b in zip(off.records, on.records):
        assert a.mask.mask_id == b.mask.mask_id
        assert a.outcome is b.outcome
    assert all(r.classified_by is None for r in off.records)


# ------------------------------------------------------------ mode plumbing


def test_unknown_liveness_mode_rejected(cfg):
    with pytest.raises(ValueError, match="unknown liveness mode"):
        run_campaign(_cpu_spec(cfg, "rv", "crc32", "regfile_int", "always"))
    with pytest.raises(ValueError, match="unknown liveness mode"):
        run_accel_campaign(AccelCampaignSpec(design="gemm",
                                             component="MATRIX3",
                                             liveness="bogus"))


def test_permanent_faults_never_claimed(cfg):
    """Permanent faults re-assert after every overwrite: liveness must not
    claim a single one even in on mode."""
    from repro.core.faults import FaultModel

    spec = CampaignSpec(isa="rv", workload="crc32", target="regfile_int",
                        cfg=cfg, scale="tiny", faults=10, seed=3,
                        model=FaultModel.STUCK_AT_0, liveness="on")
    result = run_campaign(spec)
    assert result.liveness_skips == 0


def test_summary_keys_only_when_enabled(cfg):
    on = run_campaign(_cpu_spec(cfg, "rv", "crc32", "regfile_int", "on",
                                faults=8))
    off = run_campaign(_cpu_spec(cfg, "rv", "crc32", "regfile_int", None,
                                 faults=8))
    assert on.summary()["liveness"] == "on"
    assert "liveness_skip_rate" in on.summary()
    assert "liveness_disagreements" not in on.summary()   # audit-only key
    assert not any(k.startswith("liveness") for k in off.summary())
    audit = run_campaign(_cpu_spec(cfg, "rv", "crc32", "regfile_int",
                                   "audit", faults=8))
    assert audit.summary()["liveness_disagreements"] == 0
