"""Adaptive sequential sampling: stopping rule, campaign integration.

The stopping decision is a pure function of the absolute batch boundaries
and the deterministic record stream, so everything here is reproducible:
the adaptive run's records are a strict prefix of the fixed-budget run's,
journals and all.
"""

import pytest
from hypothesis import given, strategies as st

from repro.accel.campaign import AccelCampaignSpec, run_accel_campaign
from repro.core.campaign import CampaignSpec, run_campaign
from repro.core.journal import CampaignJournal
from repro.core.sampling import AdaptiveSampling, error_margin_for
from repro.core.telemetry import Telemetry


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=10, seed=11,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


# A loose rule that a 10-fault budget can demonstrably beat: for any
# multi-KiB population, margin(n=5) ~ 0.438 < 0.44 <= margin(n<5).
LOOSE = AdaptiveSampling(target_margin=0.44, batch=5, min_faults=5)


# ------------------------------------------------------------ stopping rule


def test_boundaries_start_at_min_faults_and_end_at_budget():
    adp = AdaptiveSampling(target_margin=0.1, batch=50, min_faults=20)
    assert list(adp.boundaries(200)) == [20, 70, 120, 170, 200]
    assert list(adp.boundaries(20)) == [20]
    assert list(adp.boundaries(10)) == [10]      # budget below min_faults


def test_next_boundary_walks_forward():
    adp = AdaptiveSampling(target_margin=0.1, batch=30, min_faults=20)
    assert adp.next_boundary(0, 100) == 20
    assert adp.next_boundary(20, 100) == 50
    assert adp.next_boundary(99, 100) == 100
    assert adp.next_boundary(100, 100) is None


@given(budget=st.integers(1, 500), batch=st.integers(1, 100),
       min_faults=st.integers(1, 100))
def test_boundaries_are_increasing_and_exhaustive(budget, batch, min_faults):
    adp = AdaptiveSampling(target_margin=0.1, batch=batch,
                           min_faults=min_faults)
    bs = list(adp.boundaries(budget))
    assert bs[0] == min(min_faults, budget)
    assert bs[-1] == budget
    assert all(a < b for a, b in zip(bs, bs[1:]))
    assert all(0 < b <= budget for b in bs)


def test_satisfied_matches_error_margin():
    adp = AdaptiveSampling(target_margin=0.2, batch=5, min_faults=5)
    population = 8192
    # find the first n whose margin crosses the target and check both sides
    n = next(n for n in range(1, population)
             if error_margin_for(n, population) <= 0.2)
    assert adp.satisfied(n, population)
    assert not adp.satisfied(n - 1, population)
    assert not adp.satisfied(0, population)


def test_adaptive_sampling_validates_parameters():
    with pytest.raises(ValueError):
        AdaptiveSampling(target_margin=0.0)
    with pytest.raises(ValueError):
        AdaptiveSampling(target_margin=1.5)
    with pytest.raises(ValueError):
        AdaptiveSampling(batch=0)
    with pytest.raises(ValueError):
        AdaptiveSampling(confidence=0.80)


# ------------------------------------------------------ CPU campaign


def test_adaptive_stops_before_budget_and_is_prefix_of_fixed(cfg):
    spec = _spec(cfg)
    fixed = run_campaign(spec)
    adaptive = run_campaign(spec, adaptive=LOOSE)

    assert not fixed.stopped_early
    assert adaptive.stopped_early
    assert len(adaptive.records) == 5 < len(fixed.records) == 10
    assert adaptive.records == fixed.records[:5]
    # the achieved margin is real and at/below the target
    assert adaptive.error_margin is not None
    assert adaptive.error_margin <= LOOSE.target_margin
    assert adaptive.summary()["budget"] == 10
    assert adaptive.summary()["faults"] == 5


def test_adaptive_agrees_with_fixed_within_combined_margin(cfg):
    """The adaptive estimate is a sub-sample of the fixed one, so the two
    AVFs must agree within the sum of their achieved error margins."""
    spec = _spec(cfg, faults=20, seed=5)
    fixed = run_campaign(spec)
    adaptive = run_campaign(spec, adaptive=LOOSE)
    assert fixed.avf is not None and adaptive.avf is not None
    assert abs(adaptive.avf - fixed.avf) <= (
        adaptive.error_margin + fixed.error_margin
    )


def test_adaptive_journal_is_byte_prefix_of_fixed_journal(cfg, tmp_path):
    """Adaptive stopping is an execution detail: the journal it writes is
    byte-for-byte the first chunk of the fixed-budget campaign's."""
    spec = _spec(cfg)
    fixed_path = tmp_path / "fixed.jsonl"
    adaptive_path = tmp_path / "adaptive.jsonl"
    run_campaign(spec, journal=fixed_path)
    adaptive = run_campaign(spec, journal=adaptive_path, adaptive=LOOSE)

    fixed_bytes = fixed_path.read_bytes()
    adaptive_bytes = adaptive_path.read_bytes()
    assert len(adaptive_bytes) < len(fixed_bytes)
    assert fixed_bytes.startswith(adaptive_bytes)
    assert len(CampaignJournal.load(adaptive_path, spec)) == len(adaptive.records)


def test_adaptive_resume_reaches_identical_stop(cfg, tmp_path):
    """A campaign killed mid-flight and resumed stops at the same fault
    with the same records as an uninterrupted adaptive run."""
    spec = _spec(cfg)
    uninterrupted = run_campaign(spec, adaptive=LOOSE)

    path = tmp_path / "run.jsonl"
    # simulate the interrupted first attempt: only 3 of the 5 needed
    # records made it to the journal before the kill
    with CampaignJournal.open(path, spec) as j:
        for r in uninterrupted.records[:3]:
            j.append(r)
    resumed = run_campaign(spec, journal=path, resume=path, adaptive=LOOSE)

    assert resumed.stopped_early
    assert resumed.records == uninterrupted.records
    assert resumed.resumed == 3


def test_adaptive_with_parallel_workers_matches_serial(cfg):
    spec = _spec(cfg)
    serial = run_campaign(spec, adaptive=LOOSE)
    parallel = run_campaign(spec, workers=2, adaptive=LOOSE)
    assert parallel.records == serial.records
    assert parallel.stopped_early


def test_tight_margin_exhausts_budget(cfg):
    """A 3% target can never be met by 10 faults: the campaign runs the
    whole budget and reports stopped_early=False."""
    tight = AdaptiveSampling(target_margin=0.03, batch=5, min_faults=5)
    result = run_campaign(_spec(cfg), adaptive=tight)
    assert not result.stopped_early
    assert len(result.records) == 10


def test_adaptive_telemetry_counters(cfg):
    telemetry = Telemetry()
    run_campaign(_spec(cfg), adaptive=LOOSE, telemetry=telemetry)
    agg = telemetry.aggregate
    assert agg.adaptive_stops == 1
    assert agg.adaptive_faults_saved == 5
    assert agg.adaptive_margin is not None
    assert agg.adaptive_margin <= LOOSE.target_margin


# ------------------------------------------------------ accel campaign


def test_accel_adaptive_stops_early_and_is_prefix(tmp_path):
    spec = AccelCampaignSpec(design="gemm", component="MATRIX1",
                             scale="tiny", faults=10, seed=3)
    fixed = run_accel_campaign(spec)
    adaptive = run_accel_campaign(spec, adaptive=LOOSE)
    assert adaptive.stopped_early
    assert len(adaptive.records) == 5
    assert adaptive.records == fixed.records[:5]
    assert adaptive.error_margin <= LOOSE.target_margin


def test_accel_adaptive_journal_prefix_and_resume(tmp_path):
    spec = AccelCampaignSpec(design="gemm", component="MATRIX1",
                             scale="tiny", faults=10, seed=3)
    fixed_path = tmp_path / "fixed.jsonl"
    adaptive_path = tmp_path / "adaptive.jsonl"
    run_accel_campaign(spec, journal=fixed_path)
    run_accel_campaign(spec, journal=adaptive_path, adaptive=LOOSE)
    assert fixed_path.read_bytes().startswith(adaptive_path.read_bytes())

    resumed = run_accel_campaign(spec, journal=adaptive_path,
                                 resume=adaptive_path, adaptive=LOOSE)
    assert resumed.resumed == len(resumed.records) == 5
