"""Protection coverage DSE in the experiment matrix, plus sanitizer
invariants over the protection bookkeeping."""

import pytest

from repro.core.campaign import CampaignSpec, golden_run, run_campaign
from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.injector import CORRECTED, InjectionController
from repro.core.matrix import MatrixError, grid_from_dict
from repro.core.protection import ProtectionConfig
from repro.core.sanitizer import (
    FULL_SANITIZER,
    CoreAuditor,
    IntegrityViolation,
    SanitizerPolicy,
)


# --------------------------------------------------------- matrix DSE


def test_grid_protection_list_fans_out_scheme_cells():
    grid = grid_from_dict({
        "cpu": {
            "workloads": ["crc32"], "targets": ["regfile_int"], "faults": 3,
            "protection": {"regfile_int": ["none", "parity", "secded"]},
        },
    })
    assert {c.key for c in grid.cells} == {
        "cpu-rv-crc32-regfile_int",            # 'none' keeps the bare key
        "cpu-rv-crc32-regfile_int+parity",
        "cpu-rv-crc32-regfile_int+secded",
    }
    bare = next(c for c in grid.cells if c.key.endswith("regfile_int"))
    assert bare.spec.protection is None        # byte-identical journal
    prot = next(c for c in grid.cells if c.key.endswith("+secded"))
    assert prot.spec.protection.scheme_name_for("regfile_int") == "secded"


def test_grid_protection_scalar_assigns_one_scheme():
    grid = grid_from_dict({
        "cpu": {
            "workloads": ["crc32"], "targets": ["regfile_int", "lq"],
            "faults": 2, "protection": {"regfile_int": "tmr"},
        },
    })
    keys = {c.key for c in grid.cells}
    assert "cpu-rv-crc32-regfile_int+tmr" in keys
    assert "cpu-rv-crc32-lq" in keys           # unlisted target unprotected


def test_grid_accel_protection_table():
    grid = grid_from_dict({
        "accel": {
            "designs": ["gemm"], "components": ["MATRIX1"], "faults": 2,
            "protection": {"MATRIX1": ["none", "secded"]},
        },
    })
    assert {c.key for c in grid.cells} == {
        "accel-gemm-MATRIX1", "accel-gemm-MATRIX1+secded",
    }


@pytest.mark.parametrize("table", [
    {"regfile_int": "ecc9"},                   # unknown scheme
    {"regfile_int": []},                       # empty DSE list
])
def test_grid_rejects_bad_protection_tables(table):
    with pytest.raises(MatrixError):
        grid_from_dict({
            "cpu": {"workloads": ["crc32"], "targets": ["regfile_int"],
                    "faults": 2, "protection": table},
        })


def test_grid_rejects_protection_with_permanent_model():
    with pytest.raises(MatrixError, match="transient"):
        grid_from_dict({
            "cpu": {"workloads": ["crc32"], "targets": ["regfile_int"],
                    "faults": 2, "model": "stuck1",
                    "protection": {"regfile_int": "secded"}},
        })


# ------------------------------------------------- sanitizer invariants


def _armed_controller(cfg):
    golden = golden_run("rv", "crc32", cfg, "tiny")
    mask = FaultMask(FaultModel.TRANSIENT,
                     (FaultFlip("regfile_int", 0, 3, golden.window[0]),))
    return InjectionController(
        mask, protection=ProtectionConfig.parse("regfile_int=parity"))


def test_sanitizer_rejects_corrected_under_noncorrecting_scheme(cfg):
    """CORRECTED bookkeeping under a detect-only scheme is a simulator
    bug the auditor must escalate (STRUCTURAL, never suppressed)."""
    controller = _armed_controller(cfg)
    controller.flips[0].status = CORRECTED     # parity cannot correct
    auditor = CoreAuditor(SanitizerPolicy(mode="full", audit_stride=1),
                          controller=controller, mask=controller.mask)

    class _FakeCore:
        cycle = 0

    with pytest.raises(IntegrityViolation, match="protection_corrects"):
        auditor._audit_protection(_FakeCore())


def test_protected_campaign_clean_under_full_sanitizer(cfg):
    """In-vivo: a full-stride sanitizer must report zero integrity
    violations across a protected campaign — the protection lifecycle
    states are all legal."""
    spec = CampaignSpec(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=20, seed=9,
        protection=ProtectionConfig.parse("regfile_int=secded"),
    )
    result = run_campaign(spec, sanitizer=FULL_SANITIZER)
    assert all(r.sim_error_kind != "integrity" for r in result.records), [
        r.error for r in result.records if r.sim_error_kind == "integrity"
    ]
