"""Campaign determinism: identical record streams across execution modes.

A campaign is a statistical estimator; its records must depend only on
(spec, seed), never on how the campaign happened to be executed — serial,
parallel, resumed from a journal, with or without checkpoint fast-forward.
"""

from __future__ import annotations

import pytest

import repro.core.campaign as campaign_mod
from repro.core.campaign import (
    CampaignSpec,
    _LRUCache,
    golden_miss_count,
    golden_run,
    run_campaign,
)
from repro.core.checkpoint import NO_CHECKPOINTS, CheckpointPolicy
from repro.core.presets import sim_config


def _spec(**kw) -> CampaignSpec:
    base = dict(isa="rv", workload="crc32", target="regfile_int",
                cfg=sim_config(), scale="tiny", faults=6, seed=21)
    base.update(kw)
    return CampaignSpec(**base)


def test_serial_repeat_identical_with_and_without_checkpoints():
    spec = _spec()
    with_ckpt = run_campaign(spec).records
    assert run_campaign(spec).records == with_ckpt
    without = run_campaign(spec, checkpoints=NO_CHECKPOINTS).records
    assert without == with_ckpt
    assert run_campaign(spec, checkpoints=NO_CHECKPOINTS).records == without


def test_parallel_identical_to_serial():
    spec = _spec(faults=6, seed=4)
    serial = run_campaign(spec).records
    parallel = run_campaign(spec, workers=2).records
    assert parallel == serial
    # and the parallel path with checkpointing disabled agrees too
    assert run_campaign(spec, workers=2,
                        checkpoints=NO_CHECKPOINTS).records == serial


def test_resume_identical_across_checkpoint_policies(tmp_path):
    """A journal written with checkpointing on resumes bit-identically with
    it off (and vice versa): the policy is an execution detail, so it is
    deliberately excluded from the spec fingerprint."""
    spec = _spec(faults=5, seed=13)
    journal = tmp_path / "run.jsonl"
    fresh = run_campaign(spec, journal=journal).records

    resumed = run_campaign(spec, resume=journal,
                           checkpoints=NO_CHECKPOINTS)
    assert resumed.records == fresh
    assert resumed.resumed == spec.faults

    # partial journal: keep header + first 2 records, recompute the rest
    # from scratch with the opposite policy
    lines = journal.read_text().splitlines(keepends=True)
    partial = tmp_path / "partial.jsonl"
    partial.write_text("".join(lines[:3]))
    half = run_campaign(spec, resume=partial, checkpoints=NO_CHECKPOINTS)
    assert half.records == fresh
    assert half.resumed == 2


# ------------------------------------------------------------ golden cache


def test_golden_cache_lru_eviction(monkeypatch):
    cache = _LRUCache(2)
    monkeypatch.setattr(campaign_mod, "_GOLDEN_CACHE", cache)
    cfg = sim_config()

    golden_run("rv", "crc32", cfg, "tiny")
    golden_run("rv", "qsort", cfg, "tiny")
    assert len(cache) == 2
    # touching crc32 makes qsort the LRU victim of the next insert
    golden_run("rv", "crc32", cfg, "tiny")
    golden_run("rv", "fft", cfg, "tiny")
    assert len(cache) == 2
    keys = {k[1] for k in cache}
    assert keys == {"crc32", "fft"}

    # the evicted entry really is recomputed on the next request
    before = golden_miss_count()
    golden_run("rv", "qsort", cfg, "tiny")
    assert golden_miss_count() == before + 1
    # ... while a cached one is not
    golden_run("rv", "fft", cfg, "tiny")
    assert golden_miss_count() == before + 1


def test_lru_cache_primitive():
    cache = _LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refresh "a"
    cache.put("c", 3)                   # evicts "b"
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
