"""Protection-mechanism modeling: parity / SECDED / TMR, DUE, coverage.

Four layers of guarantees:

* **scheme math** — check-bit counts, decode verdicts, and fix-bit sets
  for every scheme, including virtual check-bit flips;
* **campaign semantics** — under SECDED every single-bit transient is
  corrected or masked (zero residual SDC, coverage 1.0), directed
  double-bit faults are *detected* (DUE), never silent;
* **serialization** — DUE / ``detected_by`` / ``corrected`` survive a
  journal round trip, the telemetry fold is replay-pure, and ``doctor``
  accepts protected journals while rejecting protection verdicts from
  unprotected specs;
* **byte identity** — a spec without protection fingerprints and journals
  exactly as it did before this layer existed.
"""

import json

import pytest

from repro.core.campaign import (
    CampaignSpec,
    golden_run,
    masks_for_spec,
    run_campaign,
    target_geometry,
)
from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.journal import CampaignJournal, spec_fingerprint, spec_to_dict
from repro.core.outcome import Outcome
from repro.core.protection import (
    CORRECT,
    DETECT,
    ESCAPE,
    MachineCheckError,
    Parity,
    ProtectionConfig,
    Secded,
    TMR,
    get_scheme,
    normalized,
)

SECDED_ALL = ProtectionConfig.parse("regfile_int=secded,l1d=secded,lq=secded")


def _spec(cfg, **kw):
    defaults = dict(
        isa="rv", workload="crc32", target="regfile_int", cfg=cfg,
        scale="tiny", faults=12, seed=31,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


# ------------------------------------------------------------ scheme math


def test_parity_is_one_bit_odd_detection():
    p = Parity()
    assert p.check_bits(64) == 1
    assert p.extended_bits(64) == 65
    assert p.decode({3}, 64).verdict == DETECT
    assert p.decode({64}, 64).verdict == DETECT          # check-bit flip
    assert p.decode({3, 7}, 64).verdict == ESCAPE        # even pattern
    assert p.decode({1, 2, 64}, 64).verdict == DETECT


@pytest.mark.parametrize("data,check", [(8, 5), (64, 8), (128, 9), (512, 11)])
def test_secded_check_bit_count(data, check):
    # smallest r with 2^r >= data + r + 1, plus overall parity
    assert Secded().check_bits(data) == check


def test_secded_decode_verdicts_and_fix_bits():
    s = Secded()
    one = s.decode({5}, 64)
    assert one.verdict == CORRECT and one.fix_bits == (5,)
    virt = s.decode({70}, 64)                            # check-bit flip
    assert virt.verdict == CORRECT and virt.fix_bits == ()
    assert s.decode({5, 70}, 64).verdict == DETECT
    assert s.decode({1, 2, 3}, 64).verdict == ESCAPE     # residual escape


def test_tmr_majority_vote():
    t = TMR()
    assert t.check_bits(64) == 128 and t.extended_bits(64) == 192
    # one corrupt stored copy: outvoted, storage repaired
    one = t.decode({9}, 64)
    assert one.verdict == CORRECT and one.fix_bits == (9,)
    # one corrupt shadow copy: outvoted, nothing to repair
    shadow = t.decode({64 + 9}, 64)
    assert shadow.verdict == CORRECT and shadow.fix_bits == ()
    # two corrupt shadow copies of one position: vote flips silently and
    # the corruption is materialized into the stored copy
    lost = t.decode({64 + 9, 128 + 9}, 64)
    assert lost.verdict == ESCAPE and lost.fix_bits == (9,)
    # independent single-copy corruptions across positions stay correctable
    multi = t.decode({3, 64 + 17}, 64)
    assert multi.verdict == CORRECT and multi.fix_bits == (3,)


def test_scheme_cost_model():
    assert get_scheme("none").area_overhead(64) == 0.0
    assert get_scheme("parity").area_overhead(64) == pytest.approx(1 / 64)
    assert get_scheme("secded").area_overhead(64) == pytest.approx(8 / 64)
    assert get_scheme("tmr").area_overhead(64) == pytest.approx(2.0)
    assert get_scheme("secded").latency_cycles == 1
    assert get_scheme("parity").latency_cycles == 0


def test_get_scheme_rejects_unknown():
    with pytest.raises(ValueError, match="unknown protection scheme"):
        get_scheme("hamming77")


# ---------------------------------------------------------------- config


def test_config_parse_and_lookup():
    cfg = ProtectionConfig.parse("l1d=secded, regfile_int=tmr")
    assert cfg.enabled
    assert cfg.scheme_name_for("l1d") == "secded"
    assert cfg.scheme_for("regfile_int").name == "tmr"
    assert cfg.scheme_for("sq") is None
    # accel structures match on the trailing component name
    assert ProtectionConfig.parse("MATRIX1=secded").scheme_for(
        "accel:gemm:MATRIX1").name == "secded"


@pytest.mark.parametrize("text", ["", "l1d", "l1d=ecc5", "l1d=secded,l1d=tmr"])
def test_config_parse_rejects_malformed(text):
    with pytest.raises(ValueError):
        ProtectionConfig.parse(text)


def test_normalized_collapses_all_none_config():
    assert normalized(ProtectionConfig.parse("l1d=none")) is None
    assert normalized(None) is None
    cfg = ProtectionConfig.parse("l1d=secded")
    assert normalized(cfg) is cfg


# ----------------------------------------------------- extended geometry


def test_target_geometry_extends_protected_words(cfg):
    golden = golden_run("rv", "crc32", cfg, "tiny")
    bare = _spec(cfg)
    prot = _spec(cfg, protection=ProtectionConfig.parse("regfile_int=secded"))
    from repro.cpu.core import OoOCore
    from repro.isa.base import get_isa

    core = OoOCore.from_executable(golden.exe, get_isa("rv"), cfg)
    entries, bits = target_geometry(bare, core)
    p_entries, p_bits = target_geometry(prot, core)
    assert p_entries == entries
    assert p_bits == bits + Secded().check_bits(bits)


# ------------------------------------------------- campaign end-to-end


def test_secded_fuzz_single_bit_transients_all_corrected_or_masked(cfg):
    """ISSUE acceptance: >=200 single-bit masks per ISA under SECDED never
    produce SDC, Crash, or DUE — every activated flip is corrected."""
    for isa in ("rv", "arm", "x86"):
        sdc = crash = due = 0
        exercised = 0
        for t_idx, target in enumerate(("regfile_int", "l1d", "lq")):
            spec = _spec(cfg, isa=isa, target=target, faults=68,
                         seed=500 + t_idx, protection=SECDED_ALL)
            result = run_campaign(spec)
            assert len(result.records) == 68
            for r in result.records:
                assert r.outcome in (Outcome.MASKED, Outcome.SIM_FAULT), (
                    f"{isa}/{target}: single-bit escape under SECDED: "
                    f"mask {r.mask.mask_id} -> {r.outcome}"
                )
            sdc += sum(r.outcome is Outcome.SDC for r in result.records)
            crash += sum(r.outcome is Outcome.CRASH for r in result.records)
            due += sum(r.outcome is Outcome.DUE for r in result.records)
            exercised += result.corrected
            assert result.residual_sdc_avf == 0.0
            assert result.coverage in (None, 1.0)
        assert sdc == crash == due == 0
        assert exercised > 0, f"{isa}: no flip ever reached a decoder"


def test_secded_directed_double_bit_is_due_never_silent(cfg):
    """Two flips in the same code word at the same cycle: SECDED must
    *detect* (DUE) every activated pattern — never SDC or Crash."""
    protection = ProtectionConfig.parse("regfile_int=secded")
    spec = _spec(cfg, protection=protection)
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    lo, hi = golden.window
    masks = []
    for i in range(24):
        entry = i % 16
        cycle = lo + (i * 7) % (hi - lo)
        b0, b1 = (i * 3) % 64, ((i * 3) % 64 + 13 + i) % 64
        if b0 == b1:
            b1 = (b1 + 1) % 64
        masks.append(FaultMask(FaultModel.TRANSIENT, (
            FaultFlip("regfile_int", entry, b0, cycle),
            FaultFlip("regfile_int", entry, b1, cycle),
        ), mask_id=i))
    result = run_campaign(spec, masks=masks)
    outcomes = {r.outcome for r in result.records}
    assert Outcome.SDC not in outcomes and Outcome.CRASH not in outcomes
    assert Outcome.DUE in outcomes           # at least one word was decoded
    for r in result.records:
        if r.outcome is Outcome.DUE:
            assert r.detected_by == "secded:regfile_int"
            assert r.activated is False      # detected, not consumed


def test_parity_check_bit_flip_raises_due_not_sdc(cfg):
    """A flip in the (virtual) parity bit itself is an odd pattern: the
    next decode must machine-check, and the journal must say parity did."""
    protection = ProtectionConfig.parse("regfile_int=parity")
    spec = _spec(cfg, protection=protection)
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    lo, _ = golden.window
    masks = [
        FaultMask(FaultModel.TRANSIENT,
                  (FaultFlip("regfile_int", entry, 64, lo + 2),),
                  mask_id=entry)
        for entry in range(12)
    ]
    result = run_campaign(spec, masks=masks)
    due = [r for r in result.records if r.outcome is Outcome.DUE]
    assert due, "no parity-bit flip was ever decoded"
    for r in result.records:
        assert r.outcome in (Outcome.DUE, Outcome.MASKED)
    for r in due:
        assert r.detected_by == "parity:regfile_int"


def test_protection_rejects_permanent_models(cfg):
    spec = _spec(cfg, model=FaultModel.STUCK_AT_1,
                 protection=ProtectionConfig.parse("regfile_int=secded"))
    with pytest.raises(ValueError, match="transient"):
        run_campaign(spec)


# ------------------------------------------------ journal / doctor / tail


def _protected_result(cfg, tmp_path, scheme="secded", faults=16, seed=31):
    journal = tmp_path / f"{scheme}.jsonl"
    spec = _spec(cfg, faults=faults, seed=seed,
                 protection=ProtectionConfig.parse(f"regfile_int={scheme}"))
    result = run_campaign(spec, journal=journal)
    return spec, result, journal


def test_due_and_corrected_survive_journal_round_trip(cfg, tmp_path):
    spec, result, journal = _protected_result(cfg, tmp_path, scheme="parity")
    loaded = CampaignJournal.load(journal)
    assert len(loaded) == len(result.records)
    by_id = {r.mask.mask_id: r for r in result.records}
    assert any(r.outcome is Outcome.DUE for r in loaded)
    for rec in loaded:
        live = by_id[rec.mask.mask_id]
        assert rec.outcome is live.outcome
        assert rec.detected_by == live.detected_by
        assert rec.masked_reason == live.masked_reason


def test_corrected_masked_reason_is_journaled(cfg, tmp_path):
    spec, result, journal = _protected_result(cfg, tmp_path, scheme="secded")
    assert result.corrected > 0
    loaded = CampaignJournal.load(journal)
    corrected = [r for r in loaded if r.masked_reason == "corrected"]
    assert len(corrected) == result.corrected
    for rec in corrected:
        assert rec.outcome is Outcome.MASKED and rec.detected_by is None


def test_telemetry_fold_is_replay_pure_for_protection(cfg, tmp_path):
    from repro.core.telemetry import CampaignAggregate, Telemetry

    telemetry = Telemetry()
    journal = tmp_path / "prot.jsonl"
    spec = _spec(cfg, faults=16,
                 protection=ProtectionConfig.parse("regfile_int=parity"))
    run_campaign(spec, journal=journal, telemetry=telemetry)
    replayed = CampaignAggregate()
    for record in CampaignJournal.load(journal):
        replayed.fold(record)
    live = telemetry.aggregate.reconcilable()
    assert live == replayed.reconcilable()
    assert replayed.due + replayed.corrected > 0
    assert "corrected" in live


def test_prometheus_exports_corrected_and_coverage(cfg, tmp_path):
    from repro.core.telemetry import CampaignAggregate, write_prometheus

    agg = CampaignAggregate()
    spec, result, journal = _protected_result(cfg, tmp_path, scheme="secded")
    for record in CampaignJournal.load(journal):
        agg.fold(record)
    out = tmp_path / "metrics.prom"
    write_prometheus(out, agg, {"target": "regfile_int"})
    text = out.read_text()
    assert "repro_fault_corrected_total" in text
    assert "repro_protection_coverage" in text


def test_doctor_accepts_protected_journals(cfg, tmp_path):
    from repro.core.doctor import diagnose_journal

    for scheme in ("parity", "secded"):
        _, _, journal = _protected_result(cfg, tmp_path, scheme=scheme)
        report = diagnose_journal(journal)
        assert report.ok, report.describe()


def test_doctor_flags_protection_verdicts_without_protection(cfg, tmp_path):
    """A DUE / detected_by / corrected record inside an *unprotected*
    spec's journal is a consistency violation the doctor must flag."""
    from repro.core.doctor import diagnose_journal

    spec = _spec(cfg, faults=4)
    journal = tmp_path / "bare.jsonl"
    run_campaign(spec, journal=journal)
    lines = journal.read_text().splitlines()
    doc = json.loads(lines[1])
    doc["outcome"] = "due"
    doc["detected_by"] = "secded:regfile_int"
    lines[1] = json.dumps(doc)
    forged = tmp_path / "forged.jsonl"
    forged.write_text("\n".join(lines) + "\n")
    report = diagnose_journal(forged)
    assert not report.ok
    assert any("protection" in p for p in report.problems)


def test_doctor_flags_due_without_detected_by(cfg, tmp_path):
    from repro.core.doctor import diagnose_journal

    _, _, journal = _protected_result(cfg, tmp_path, scheme="parity")
    lines = journal.read_text().splitlines()
    forged_lines, stripped = [], False
    for line in lines:
        doc = json.loads(line)
        if not stripped and doc.get("outcome") == "due":
            del doc["detected_by"]
            stripped = True
            line = json.dumps(doc)
        forged_lines.append(line)
    assert stripped, "parity journal produced no DUE record"
    forged = tmp_path / "forged.jsonl"
    forged.write_text("\n".join(forged_lines) + "\n")
    report = diagnose_journal(forged)
    assert not report.ok


# ----------------------------------------------------------- byte identity


def test_unprotected_spec_serializes_without_protection_key(cfg):
    spec = _spec(cfg)
    doc = spec_to_dict(spec)
    assert "protection" not in doc
    assert spec_fingerprint(spec) == spec_fingerprint(
        _spec(cfg, protection=None))


def test_all_none_protection_fingerprints_as_unprotected(cfg):
    bare = _spec(cfg)
    noop = _spec(cfg, protection=normalized(
        ProtectionConfig.parse("regfile_int=none")))
    assert spec_fingerprint(bare) == spec_fingerprint(noop)


def test_unprotected_journal_bytes_unchanged_by_protection_layer(
        cfg, tmp_path):
    """The protection layer must be invisible when off: no protection key
    in the header, no detected_by on any record."""
    journal = tmp_path / "bare.jsonl"
    run_campaign(_spec(cfg, faults=6), journal=journal)
    lines = journal.read_text().splitlines()
    header = json.loads(lines[0])
    assert "protection" not in header["spec"]
    for line in lines[1:]:
        doc = json.loads(line)
        assert "detected_by" not in doc


def test_unprotected_summary_has_no_protection_keys(cfg):
    summary = run_campaign(_spec(cfg, faults=4)).summary()
    for key in ("protection", "due_avf", "corrected", "coverage",
                "residual_sdc_avf"):
        assert key not in summary


# ------------------------------------------------------------------- CLI


def test_cli_protect_flag_runs_protected_campaign(capsys, tmp_path):
    from repro.cli import main

    journal = tmp_path / "run.jsonl"
    rc = main([
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "6", "--seed", "3",
        "--protect", "regfile_int=secded", "--journal", str(journal),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "coverage" in out and "secded" in out
    header = json.loads(journal.read_text().splitlines()[0])
    assert header["spec"]["protection"] == {
        "schemes": [["regfile_int", "secded"]]}


def test_cli_protect_rejects_bad_assignment(capsys):
    from repro.cli import main

    assert main(["campaign", "--faults", "1",
                 "--protect", "regfile_int=ecc9"]) == 2
    assert "unknown protection scheme" in capsys.readouterr().err


def test_cli_comma_target_list_runs_one_subcampaign_each(capsys, tmp_path):
    from repro.cli import main

    journal = tmp_path / "multi.jsonl"
    rc = main([
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int,l1d", "--faults", "3",
        "--journal", str(journal),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "== target regfile_int ==" in out and "== target l1d ==" in out
    for target in ("regfile_int", "l1d"):
        per = tmp_path / f"multi-{target}.jsonl"
        assert per.exists()
        header = json.loads(per.read_text().splitlines()[0])
        assert header["spec"]["target"] == target
    assert not journal.exists()          # the unsuffixed path is never used


def test_cli_single_target_journal_path_is_unsuffixed(tmp_path, capsys):
    from repro.cli import main

    journal = tmp_path / "one.jsonl"
    assert main([
        "campaign", "--isa", "rv", "--workload", "crc32",
        "--target", "regfile_int", "--faults", "2",
        "--journal", str(journal),
    ]) == 0
    capsys.readouterr()
    assert journal.exists()
