"""Tests for presets, checkpointing, outcome classification, capabilities,
reports, and the Listing-1 validation machinery."""

import pytest

from repro.core.capabilities import PRIOR_WORK, THIS_WORK, render_table1
from repro.core.checkpoint import (
    CheckpointError,
    quiesce,
    restore_checkpoint,
    take_checkpoint,
)
from repro.core.outcome import Classification, HVFClass, Outcome, classify
from repro.core.presets import get_preset, paper_config, sim_config
from repro.core.report import (
    render_bars,
    render_table,
    save_report,
    summaries_to_csv,
    summaries_to_json,
)
from repro.cpu.core import OoOCore, RunResult
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.workloads import build_workload


# ------------------------------------------------------------ presets


def test_paper_preset_matches_table2():
    cfg = paper_config()
    assert cfg.width == 8
    assert cfg.l1i.size == 32 * 1024 and cfg.l1i.num_sets == 128 and cfg.l1i.assoc == 4
    assert cfg.l1d.size == 32 * 1024
    assert cfg.l2.size == 1024 * 1024 and cfg.l2.num_sets == 2048 and cfg.l2.assoc == 8
    assert cfg.int_phys_regs == 128 and cfg.fp_phys_regs == 128
    assert (cfg.lq_entries, cfg.sq_entries, cfg.iq_entries, cfg.rob_entries) == (
        32, 32, 64, 128,
    )


def test_sim_preset_keeps_pipeline_geometry():
    sim, paper = sim_config(), paper_config()
    assert sim.rob_entries == paper.rob_entries
    assert sim.int_phys_regs == paper.int_phys_regs
    assert sim.l1i.size < paper.l1i.size
    assert sim.l1i.line_size == paper.l1i.line_size


def test_get_preset():
    assert get_preset("paper").name == "paper"
    assert get_preset("sim").name == "sim"
    with pytest.raises(KeyError):
        get_preset("nope")


def test_config_with_override():
    cfg = sim_config().with_(int_phys_regs=96)
    assert cfg.int_phys_regs == 96
    assert cfg.rob_entries == sim_config().rob_entries


# ------------------------------------------------------------ outcome


def _result(**kw):
    defaults = dict(output=b"ok", cycles=10, instructions=5, halted=True)
    defaults.update(kw)
    return RunResult(**defaults)


def test_classify_masked_silent():
    c = classify(_result(), b"ok", early_masked=False, masked_reason=None)
    assert c.outcome is Outcome.MASKED and c.hvf is HVFClass.BENIGN
    assert c.masked_reason == "masked_silent"


def test_classify_early_masked():
    c = classify(_result(), b"ok", early_masked=True, masked_reason="masked_unused")
    assert c.outcome is Outcome.MASKED and c.masked_reason == "masked_unused"


def test_classify_sdc():
    c = classify(_result(output=b"bad"), b"ok", False, None)
    assert c.outcome is Outcome.SDC and c.hvf is HVFClass.CORRUPTION


def test_classify_crash_beats_output():
    c = classify(_result(crashed="mem_fault", halted=False), b"ok", False, None)
    assert c.outcome is Outcome.CRASH
    assert c.crash_reason == "mem_fault"
    assert c.hvf is HVFClass.CORRUPTION


def test_classify_sw_masked_hw_corruption():
    """Fault visible at commit yet output intact: HVF corruption, AVF masked."""
    c = classify(_result(hvf_corrupt=True), b"ok", False, None)
    assert c.outcome is Outcome.MASKED and c.hvf is HVFClass.CORRUPTION


# ------------------------------------------------------------ checkpoint


def test_checkpoint_resume_equivalence(cfg):
    isa = get_isa("rv")
    exe = compile_program(build_workload("crc32", "tiny"), isa)
    reference = OoOCore.from_executable(exe, isa, cfg).run()

    core = OoOCore.from_executable(exe, isa, cfg)
    for _ in range(300):
        core.step()
    quiesce(core)
    ckpt = take_checkpoint(core)

    resumed = OoOCore.from_executable(exe, isa, cfg)
    restore_checkpoint(resumed, ckpt)
    res = resumed.run()
    assert res.ok
    assert res.output == reference.output


def test_checkpoint_requires_drained_pipeline(cfg):
    isa = get_isa("rv")
    exe = compile_program(build_workload("crc32", "tiny"), isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    for _ in range(300):
        core.step()
    if core.rob:
        with pytest.raises(CheckpointError):
            take_checkpoint(core)


def test_checkpoint_preserves_cache_contents(cfg):
    isa = get_isa("rv")
    exe = compile_program(build_workload("crc32", "tiny"), isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    for _ in range(500):
        core.step()
    quiesce(core)
    ckpt = take_checkpoint(core)
    valid_lines = list(core.l1d.valid)
    core.run()
    restore_checkpoint(core, ckpt)
    assert list(core.l1d.valid) == valid_lines


# ------------------------------------------------------------ capabilities


def test_this_work_covers_every_capability():
    from dataclasses import fields

    for f in fields(THIS_WORK):
        if f.type == "bool" or isinstance(getattr(THIS_WORK, f.name), bool):
            assert getattr(THIS_WORK, f.name) is True, f.name


def test_no_prior_work_matches_this_work():
    from dataclasses import fields

    for prior in PRIOR_WORK:
        missing = [
            f.name
            for f in fields(prior)
            if isinstance(getattr(prior, f.name), bool)
            and getattr(THIS_WORK, f.name)
            and not getattr(prior, f.name)
        ]
        assert missing, f"{prior.name} should lack something THIS_WORK has"


def test_render_table1():
    text = render_table1()
    assert "gem5-MARVEL" in text
    assert "GeFIN" in text
    assert len(text.splitlines()) == len(PRIOR_WORK) + 3


# ------------------------------------------------------------ report


def test_render_table_alignment():
    text = render_table(["a", "long_header"], [[1, 0.5], ["xx", 0.25]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "long_header" in lines[0]
    assert "0.500" in text and "0.250" in text


def test_render_bars():
    text = render_bars(["a", "bb"], [0.5, 1.0])
    assert "bb" in text and "#" in text
    assert render_bars([], []) == "(no data)"


def test_csv_json_roundtrip(tmp_path):
    rows = [{"isa": "rv", "avf": 0.25}, {"isa": "arm", "avf": 0.5}]
    csv_text = summaries_to_csv(rows)
    assert csv_text.splitlines()[0] == "isa,avf"
    import json

    assert json.loads(summaries_to_json(rows))[1]["isa"] == "arm"
    path = tmp_path / "out.csv"
    save_report(str(path), rows)
    assert path.read_text() == csv_text
    assert summaries_to_csv([]) == ""


def test_render_table_none_cells_render_na():
    text = render_table(["k", "v"], [["x", None], ["y", 0.5]])
    assert "n/a" in text and "0.500" in text


def test_render_matrix_grid_and_weighted_rows():
    from repro.core.report import render_matrix

    cells = [
        {"row": "rv/crc32", "col": "regfile_int", "avf": 0.2,
         "sdc_avf": 0.1, "crash_avf": 0.1, "error_margin": 0.3,
         "faults": 5, "budget": 10, "stopped_early": True,
         "golden_cycles": 1000},
        {"row": "rv/crc32", "col": "lq", "avf": None, "sdc_avf": None,
         "crash_avf": None, "error_margin": None, "faults": 4,
         "budget": 4, "stopped_early": False, "golden_cycles": 1000},
    ]
    text = render_matrix(cells)
    assert "regfile_int" in text and "lq" in text
    assert "5/10*" in text          # adaptive early stop marker
    assert "4/4" in text
    assert "n/a" in text            # undefined cell metrics
    assert "?" in text              # undefined heat-grid shade
    # the weighted row skips the undefined cell and says so
    assert "1 skipped" in text


def test_render_matrix_empty():
    from repro.core.report import render_matrix

    assert render_matrix([]) == "(no cells)"
