"""Full-SoC integration tests: CPU + MMRs + DMA + interrupts + readback."""

import pytest

from repro.soc.system import APERTURE_BASE, MMR_BASE, build_driver_program, build_soc


@pytest.mark.parametrize("isa_name", ["rv", "arm", "x86"])
def test_soc_gemm_all_isas(isa_name, cfg):
    soc = build_soc("gemm", isa_name=isa_name, cfg=cfg, scale="tiny")
    result = soc.run()
    assert result.ok
    assert result.accel_cycles > 0
    assert result.output != bytes(8)


def test_soc_checksum_isa_independent(cfg):
    outputs = {
        isa: build_soc("gemm", isa_name=isa, cfg=cfg, scale="tiny").run().output
        for isa in ("rv", "arm", "x86")
    }
    assert len(set(outputs.values())) == 1


@pytest.mark.parametrize("design", ["bfs", "spmv", "stencil2d"])
def test_soc_other_designs(design, cfg):
    result = build_soc(design, isa_name="rv", cfg=cfg, scale="tiny").run()
    assert result.ok
    assert result.accel_operations > 0


def test_soc_cpu_waits_for_accelerator(cfg):
    soc = build_soc("gemm", isa_name="rv", cfg=cfg, scale="tiny")
    result = soc.run()
    # the CPU cannot have finished before the accelerator completed
    assert result.cpu_cycles > result.accel_cycles


def test_soc_status_register_protocol(cfg):
    from repro.accel.mmr import STATUS_DONE

    soc = build_soc("gemm", isa_name="rv", cfg=cfg, scale="tiny")
    assert soc.mmr.status == 0
    result = soc.run()
    assert result.ok
    assert soc.mmr.status == STATUS_DONE


def test_soc_uses_platform_controller(cfg):
    from repro.accel.interrupts import GIC, PLIC

    assert isinstance(build_soc("gemm", isa_name="arm", cfg=cfg).controller, GIC)
    assert isinstance(build_soc("gemm", isa_name="rv", cfg=cfg).controller, PLIC)


def test_driver_program_structure(cfg):
    from repro.accel_designs import get_design
    from repro.kernel.ir import Op

    accel = get_design("gemm").instantiate()
    driver = build_driver_program(accel, "tiny")
    ops = [i.op for blk in driver.blocks for i in blk.instrs]
    assert Op.WFI in ops
    assert Op.CHECKPOINT in ops
    assert Op.OUT in ops


def test_soc_memory_map_constants():
    assert APERTURE_BASE > MMR_BASE
    # device space must live inside the physical map but above the data area
    from repro.kernel.ir import DEFAULT_MEMORY_MAP

    assert MMR_BASE < DEFAULT_MEMORY_MAP.size
    assert MMR_BASE > DEFAULT_MEMORY_MAP.data_base


def test_soc_accel_fault_injection_path(cfg):
    """A corrupted accelerator input observed through the full SoC flow."""
    from repro.accel.campaign import AccelInjector
    from repro.accel_designs import get_design
    from repro.core.faults import FaultMask
    from repro.soc.system import HeterogeneousSoC

    golden = build_soc("gemm", isa_name="rv", cfg=cfg, scale="tiny").run()

    accel = get_design("gemm").instantiate()
    mask = FaultMask.single("accel:gemm:MATRIX1", 0, 16, cycle=1)
    injector = AccelInjector(mask, accel.mem("MATRIX1"))
    soc = HeterogeneousSoC("rv", cfg, accel, scale="tiny", accel_injector=injector)
    faulty = soc.run()
    assert faulty.ok                      # data corruption, not a crash
    assert faulty.output != golden.output  # SDC visible at the host
