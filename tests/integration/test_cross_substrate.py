"""The grand equivalence suite: one semantic truth across four substrates.

The reference interpreter, the atomic CPUs (x3 ISAs), the cycle-level OoO
cores (x3 ISAs), and the accelerator dataflow engine must all agree
bit-for-bit on program results.  This pins down the whole stack: IR
semantics, compiler backends, encodings, decoders, pipeline, and the
dataflow scheduler.
"""

import pytest

from repro.accel_designs import DESIGNS, get_design
from repro.accel_designs.cpu_ports import CPU_PORTS
from repro.accel_designs.registry import reference_output
from repro.cpu.atomic import run_executable
from repro.cpu.core import OoOCore
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.interp import run_program
from repro.workloads import build_workload

SPOT_WORKLOADS = ["basicmath", "rijndael", "adpcme", "fft", "corners"]


@pytest.mark.parametrize("workload", SPOT_WORKLOADS)
def test_interp_atomic_ooo_agree(workload, isa_name, cfg):
    program = build_workload(workload, "tiny")
    ref = run_program(program)
    isa = get_isa(isa_name)
    exe = compile_program(program, isa)
    atomic = run_executable(exe, isa, max_instructions=3_000_000)
    ooo = OoOCore.from_executable(exe, isa, cfg).run()
    assert atomic.output == ref.output
    assert ooo.output == ref.output
    assert ooo.ok


@pytest.mark.parametrize("name", list(CPU_PORTS))
def test_cpu_ports_match_accelerator_results(name, cfg):
    """The same algorithm on CPU and DSA yields identical result bytes."""
    builder, design_name = CPU_PORTS[name]
    ref = reference_output(design_name, "tiny")

    # functional CPU path
    program = build_workload(name, "tiny")
    assert run_program(program).output == ref

    # cycle-level CPU path
    isa = get_isa("rv")
    exe = compile_program(program, isa)
    ooo = OoOCore.from_executable(exe, isa, cfg).run()
    assert ooo.ok and ooo.output == ref

    # accelerator path
    accel = get_design(design_name).instantiate()
    result, output = accel.run_standalone("tiny")
    assert result.ok and output == ref


def test_accelerator_is_faster_per_task(cfg):
    """The OPF premise (Observation 7): the DSA finishes the same kernel in
    far fewer cycles than the OoO CPU."""
    isa = get_isa("rv")
    for name, (builder, design_name) in CPU_PORTS.items():
        exe = compile_program(build_workload(name, "tiny"), isa)
        cpu = OoOCore.from_executable(exe, isa, cfg).run()
        accel = get_design(design_name).instantiate()
        result, _ = accel.run_standalone("tiny")
        assert result.cycles < cpu.cycles, name


def test_all_designs_two_scales_agree_with_reference():
    for name in DESIGNS:
        for scale in ("tiny", "default"):
            accel = get_design(name).instantiate()
            result, output = accel.run_standalone(scale)
            assert result.ok
            assert output == reference_output(name, scale), (name, scale)
