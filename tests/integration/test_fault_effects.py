"""Directed end-to-end fault-effect tests: the paper's observations as
executable assertions (at reduced statistical strength)."""

import pytest

from repro.core.campaign import CampaignSpec, golden_run, run_campaign
from repro.core.outcome import Outcome
from repro.core.presets import sim_config


@pytest.fixture(scope="module")
def qsort_campaigns():
    """Shared campaign bundle over qsort/rv for the observation tests."""
    cfg = sim_config()
    results = {}
    for target in ("regfile_int", "l1i", "l1d"):
        spec = CampaignSpec(
            isa="rv", workload="qsort", target=target, cfg=cfg,
            scale="tiny", faults=36, seed=33,
        )
        results[target] = run_campaign(spec)
    return results


def test_avf_is_probability(qsort_campaigns):
    for res in qsort_campaigns.values():
        assert 0.0 <= res.avf <= 1.0
        assert res.avf == pytest.approx(res.sdc_avf + res.crash_avf)


def test_hvf_dominates_avf(qsort_campaigns):
    """Figure 18's invariant: commit-visible corruption >= program-visible."""
    for res in qsort_campaigns.values():
        assert res.hvf >= res.avf - 1e-9


def test_l1i_faults_produce_crashes(qsort_campaigns):
    """Observation 5: corrupted instruction words tend to crash."""
    l1i = qsort_campaigns["l1i"]
    assert l1i.crash_avf > 0


def test_l1d_faults_are_sdc_dominant(qsort_campaigns):
    """Observation 5: data corruption propagates silently."""
    l1d = qsort_campaigns["l1d"]
    if l1d.avf > 0:
        assert l1d.sdc_avf >= l1d.crash_avf


def test_masked_runs_show_masking_reasons(qsort_campaigns):
    reasons = {
        r.masked_reason
        for res in qsort_campaigns.values()
        for r in res.records
        if r.outcome is Outcome.MASKED
    }
    assert "masked_unused" in reasons or "masked_overwritten" in reasons


def test_prf_size_sensitivity_direction():
    """Figure 15's mechanism: fewer physical registers -> higher occupancy.

    Tested structurally (occupancy at a fixed instant) rather than through
    full AVF campaigns to stay fast and deterministic.
    """
    from repro.cpu.core import OoOCore
    from repro.isa.base import get_isa

    cfg = sim_config()
    occupancy = {}
    for size in (96, 192):
        sized = cfg.with_(int_phys_regs=size)
        golden = golden_run("rv", "qsort", sized, "tiny")
        core = OoOCore.from_executable(golden.exe, get_isa("rv"), sized)
        samples = []
        while core.cycle < golden.cycles // 2:
            core.step()
            if core.cycle % 50 == 0:
                samples.append(1 - len(core.prf_int.free) / size)
        occupancy[size] = sum(samples) / len(samples)
    assert occupancy[96] > occupancy[192]


def test_cross_isa_campaigns_complete():
    """All three ISAs run the same campaign grid without failures."""
    cfg = sim_config()
    for isa in ("rv", "arm", "x86"):
        spec = CampaignSpec(
            isa=isa, workload="crc32", target="regfile_int", cfg=cfg,
            scale="tiny", faults=8, seed=2,
        )
        res = run_campaign(spec)
        assert len(res.records) == 8
