"""Property-based differential testing: random IR programs, four substrates.

Hypothesis generates random (but well-formed) IR programs; the reference
interpreter, the three compiled backends, and the accelerator dataflow
engine must agree on the output bytes.  This is the fuzzing layer over the
whole compilation/execution stack.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.atomic import run_executable
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.interp import run_program
from repro.kernel.ir import BinOp, Cond, ProgramBuilder

_INT_BINOPS = [
    BinOp.ADD, BinOp.SUB, BinOp.MUL, BinOp.AND, BinOp.OR, BinOp.XOR,
    BinOp.SHL, BinOp.SHRL, BinOp.SHRA, BinOp.SLT, BinOp.SLTU, BinOp.SEQ,
    BinOp.DIVU, BinOp.DIVS, BinOp.REMU, BinOp.REMS,
]


@st.composite
def straightline_program(draw):
    """A random straight-line program over a small value pool + memory."""
    b = ProgramBuilder("fuzz")
    buf = b.data_zeros("buf", 256)
    b.label("entry")
    base = b.la(buf)
    pool = [b.const(draw(st.integers(0, (1 << 64) - 1))) for _ in range(3)]
    n_ops = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_ops):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            op = draw(st.sampled_from(_INT_BINOPS))
            a = draw(st.sampled_from(pool))
            c = draw(st.sampled_from(pool))
            pool.append(b.bin(op, a, c))
        elif kind == 1:
            offset = draw(st.integers(0, 31)) * 8
            width = draw(st.sampled_from([1, 2, 4, 8]))
            b.store(draw(st.sampled_from(pool)), base, offset, width=width)
        elif kind == 2:
            offset = draw(st.integers(0, 31)) * 8
            width = draw(st.sampled_from([1, 2, 4, 8]))
            signed = draw(st.booleans())
            pool.append(b.load(base, offset, width=width, signed=signed))
        else:
            cond = draw(st.sampled_from(pool))
            x = draw(st.sampled_from(pool))
            y = draw(st.sampled_from(pool))
            pool.append(b.select(cond, x, y))
    for value in pool[-4:]:
        b.out(value, width=8)
    b.halt()
    return b.build()


@settings(max_examples=40, deadline=None)
@given(straightline_program())
def test_backends_agree_on_random_programs(program):
    ref = run_program(program)
    for isa_name in ("rv", "arm", "x86"):
        isa = get_isa(isa_name)
        exe = compile_program(program, isa)
        res = run_executable(exe, isa, max_instructions=500_000)
        assert res.output == ref.output, isa_name


@settings(max_examples=20, deadline=None)
@given(straightline_program())
def test_dataflow_engine_agrees_on_random_programs(program):
    """The accelerator engine runs the same straight-line IR against an SPM."""
    from repro.accel.dataflow import AddressMap, DataflowEngine, FUConfig
    from repro.accel.spm import ScratchpadMemory
    from repro.kernel.ir import Instr, Op

    ref = run_program(program)
    # rebind the data symbol to an SPM at the same address (LA -> CONST)
    spm = ScratchpadMemory("buf", 256, base=program.symbol_address("buf"))
    for blk in program.blocks:
        for i, ins in enumerate(blk.instrs):
            if ins.op is Op.LA:
                blk.instrs[i] = Instr(
                    Op.CONST, dest=ins.dest,
                    imm=program.symbol_address(ins.symbol),
                )
    engine = DataflowEngine(program, AddressMap([spm]), FUConfig.uniform(4))
    result = engine.run()
    assert result.ok
    assert result.output == ref.output
