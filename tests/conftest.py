"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.presets import sim_config
from repro.cpu.config import CacheConfig, CPUConfig


@pytest.fixture(scope="session")
def cfg() -> CPUConfig:
    """The scaled default configuration used across tests."""
    return sim_config()


@pytest.fixture(scope="session")
def small_cfg() -> CPUConfig:
    """An intentionally tiny configuration for structure-pressure tests."""
    return CPUConfig(
        name="test-small",
        width=4,
        rob_entries=32,
        iq_entries=16,
        lq_entries=8,
        sq_entries=8,
        int_phys_regs=64,
        fp_phys_regs=48,
        l1i=CacheConfig(512, line_size=64, assoc=2),
        l1d=CacheConfig(512, line_size=64, assoc=2),
        l2=CacheConfig(4096, line_size=64, assoc=4, hit_latency=8),
    )


ISAS = ["rv", "arm", "x86"]


@pytest.fixture(params=ISAS)
def isa_name(request) -> str:
    return request.param
