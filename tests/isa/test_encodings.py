"""Encoding/decoding tests: field round trips and decoder totality.

Decoder totality is load-bearing for the whole framework: instruction-cache
fault injection feeds *arbitrary corrupted bytes* into the decoders, which
must always return micro-ops (possibly ILLEGAL) and never raise.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import arm, riscv, x86
from repro.isa.base import UopKind, get_isa
from repro.kernel.ir import BinOp, Cond

# ------------------------------------------------------------ rv field codecs


@given(st.integers(min_value=-4096, max_value=4095))
def test_rv_b_imm_roundtrip(imm):
    imm &= ~1  # B-type immediates are even
    word = riscv.enc_b(riscv._BRANCH, 0, 1, 2, imm)
    from repro.kernel.ir import to_signed

    assert to_signed(riscv.dec_b_imm(word)) == imm


@given(st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1))
def test_rv_j_imm_roundtrip(imm):
    imm &= ~1
    word = riscv.enc_j(riscv._JAL, 0, imm)
    from repro.kernel.ir import to_signed

    assert to_signed(riscv.dec_j_imm(word)) == imm


@given(st.integers(min_value=-2048, max_value=2047))
def test_rv_s_imm_roundtrip(imm):
    word = riscv.enc_s(riscv._STORE, 3, 5, 6, imm)
    from repro.kernel.ir import to_signed

    assert to_signed(riscv.dec_s_imm(word)) == imm


def test_rv_add_decodes():
    word = riscv.enc_r(riscv._OP, 3, 0, 1, 2, 0)
    uops = riscv.decode(word.to_bytes(4, "little"), 0x1000, 0)
    assert len(uops) == 1
    u = uops[0]
    assert u.kind is UopKind.ALU and u.fn is BinOp.ADD
    assert u.dst == 3 and u.srcs == (1, 2)


def test_rv_branch_target():
    word = riscv.enc_b(riscv._BRANCH, riscv._BR_F3[Cond.LTU], 1, 2, 64)
    u = riscv.decode(word.to_bytes(4, "little"), 0x2000, 0)[0]
    assert u.kind is UopKind.BRANCH and u.cond is Cond.LTU
    assert u.target == 0x2040


def test_rv_all_zeros_is_illegal():
    assert riscv.decode(bytes(4), 0, 0)[0].kind is UopKind.ILLEGAL


def test_rv_sparse_opcode_space():
    """Most random rv words must NOT decode (sparse ISA, Observation 2)."""
    import random

    rng = random.Random(1)
    valid = sum(
        riscv.decode(rng.randrange(1 << 32).to_bytes(4, "little"), 0, 0)[0].kind
        is not UopKind.ILLEGAL
        for _ in range(2000)
    )
    assert valid / 2000 < 0.35


def test_arm_dense_opcode_space():
    """Most random arm words MUST decode (dense ISA, Observation 2)."""
    import random

    rng = random.Random(1)
    valid = sum(
        arm.decode(rng.randrange(1 << 32).to_bytes(4, "little"), 0, 0)[0].kind
        is not UopKind.ILLEGAL
        for _ in range(2000)
    )
    assert valid / 2000 > 0.85


def test_arm_decode_density_exceeds_rv():
    import random

    rng = random.Random(7)
    words = [rng.randrange(1 << 32).to_bytes(4, "little") for _ in range(1500)]
    arm_valid = sum(arm.decode(w, 0, 0)[0].kind is not UopKind.ILLEGAL for w in words)
    rv_valid = sum(riscv.decode(w, 0, 0)[0].kind is not UopKind.ILLEGAL for w in words)
    assert arm_valid > 2 * rv_valid


# ------------------------------------------------------------ arm specifics


def test_arm_movw_movk_sequence():
    w1 = arm.enc_movw("movw", 3, 0, 0x1234)
    w2 = arm.enc_movw("movk", 3, 2, 0xABCD)
    u1 = arm.decode(w1.to_bytes(4, "little"), 0, 0)[0]
    u2 = arm.decode(w2.to_bytes(4, "little"), 0, 0)[0]
    from repro.cpu.exec import compute

    v1 = compute(u1, []).value
    v2 = compute(u2, [v1]).value
    assert v2 == (0xABCD << 32) | 0x1234


def test_arm_stp_decodes_as_pair_store():
    w = arm.enc_stp(1, 2, 3, 4)   # str x1,x2 -> [x3 + 4*8]
    u = arm.decode(w.to_bytes(4, "little"), 0, 0)[0]
    assert u.kind is UopKind.STORE and u.fn == "pair"
    assert u.srcs == (3, 1, 2)
    assert u.imm == 32


def test_arm_shifted_operand():
    w = arm.enc_rrr("add", 0, 1, 2, sty=1, amt=4)  # add x0, x1, x2 lsr #4
    u = arm.decode(w.to_bytes(4, "little"), 0, 0)[0]
    assert u.rm_shift == ("lsr", 4)
    from repro.cpu.exec import compute

    assert compute(u, [100, 0x160]).value == 100 + (0x160 >> 4)


def test_arm_cmp_bcond_flags_flow():
    flags_reg = get_isa("arm").flags_reg
    cmp_word = arm.enc_rrr("cmp", 0, 1, 2)
    u = arm.decode(cmp_word.to_bytes(4, "little"), 0, 0)[0]
    assert u.dst == flags_reg
    bc = arm.enc_bcond(arm._COND_IDX[Cond.LT], 4)
    ub = arm.decode(bc.to_bytes(4, "little"), 0x100, 0)[0]
    assert ub.uses_flags and ub.srcs == (flags_reg,)
    assert ub.target == 0x110


# ------------------------------------------------------------ x86 specifics


def test_x86_variable_length():
    isa = get_isa("x86")
    assert isa.min_instr_bytes == 1 and isa.max_instr_bytes == 10
    hlt = x86.decode(b"\xf4", 0, 0)[0]
    assert hlt.size == 1 and hlt.fn.value == "halt"
    movabs = x86.decode(b"\xb9" + b"\x30" + (123456789).to_bytes(8, "little"), 0, 0)[0]
    assert movabs.size == 10 and movabs.imm == 123456789


def test_x86_load_op_cracks_to_two_uops():
    # add r2, [r5+16]
    raw = bytes([0x03, (2 << 4) | 5]) + (16).to_bytes(4, "little", signed=True)
    uops = x86.decode(raw, 0, 0)
    assert len(uops) == 2
    load, alu = uops
    temp = get_isa("x86").temp_reg
    assert load.kind is UopKind.LOAD and load.dst == temp and load.srcs == (5,)
    assert alu.kind is UopKind.ALU and alu.srcs == (2, temp) and alu.dst == 2
    assert load.first_of_instr and not alu.first_of_instr


def test_x86_truncated_instruction_is_illegal():
    raw = bytes([0x03, 0x25])  # load-op needs 6 bytes, only 2 present
    u = x86.decode(raw, 0, 0)[0]
    assert u.kind is UopKind.ILLEGAL
    assert u.size <= 2


def test_x86_unknown_opcode_is_one_byte_illegal():
    u = x86.decode(b"\xff\x00\x00", 0, 0)[0]
    assert u.kind is UopKind.ILLEGAL and u.size == 1


# ------------------------------------------------------------ totality fuzz


@settings(max_examples=300)
@given(st.binary(min_size=4, max_size=4))
def test_rv_decoder_total(data):
    uops = riscv.decode(data, 0x1000, 0)
    assert uops and uops[0].size >= 1


@settings(max_examples=300)
@given(st.binary(min_size=4, max_size=4))
def test_arm_decoder_total(data):
    uops = arm.decode(data, 0x1000, 0)
    assert uops and uops[0].size >= 1


@settings(max_examples=300)
@given(st.binary(min_size=1, max_size=12))
def test_x86_decoder_total(data):
    uops = x86.decode(data, 0x1000, 0)
    assert uops and 1 <= uops[0].size <= 10


@settings(max_examples=120)
@given(st.binary(min_size=4, max_size=4), st.sampled_from(["rv", "arm", "x86"]))
def test_decoded_uops_execute_without_python_errors(data, isa_name):
    """Any decodable uop must be executable over arbitrary operand values."""
    from repro.cpu.exec import compute

    isa = get_isa(isa_name)
    for uop in isa.decode(data, 0x1000, 0):
        if uop.kind in (UopKind.ILLEGAL, UopKind.SYS):
            continue
        compute(uop, [0x0123456789ABCDEF] * max(1, len(uop.srcs)))
