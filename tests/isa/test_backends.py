"""Backend equivalence: every workload, every ISA, atomic CPU == interpreter.

This is the architectural-correctness backbone: if a backend mis-lowers any
IR construct, some workload's machine-code output diverges from the golden
functional result.
"""

import pytest

from repro.cpu.atomic import run_executable
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.interp import run_program
from repro.workloads import WORKLOAD_NAMES, build_workload

ISAS = ["rv", "arm", "x86"]


@pytest.mark.parametrize("isa_name", ISAS)
@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_workload_machine_code_matches_interpreter(isa_name, workload):
    program = build_workload(workload, "tiny")
    ref = run_program(program)
    isa = get_isa(isa_name)
    exe = compile_program(program, isa)
    res = run_executable(exe, isa, max_instructions=3_000_000)
    assert res.output == ref.output
    assert res.halted


@pytest.mark.parametrize("isa_name", ISAS)
def test_checkpoint_markers_survive_compilation(isa_name):
    program = build_workload("crc32", "tiny")
    isa = get_isa(isa_name)
    exe = compile_program(program, isa)
    res = run_executable(exe, isa)
    assert res.checkpoint_hits == 1
    assert res.switch_hits == 1


def test_x86_spills_more_than_risc_isas():
    """16 GPRs vs 31: x86 must spill at least as much on every workload."""
    total = {isa: 0 for isa in ISAS}
    for workload in WORKLOAD_NAMES:
        program = build_workload(workload, "tiny")
        for isa_name in ISAS:
            total[isa_name] += compile_program(program, get_isa(isa_name)).spill_slots
    assert total["x86"] > total["rv"]
    assert total["x86"] > total["arm"]


def test_arm_emits_store_pairs():
    """The stp peephole must fire somewhere in the suite (qsort pushes pairs)."""
    program = build_workload("qsort", "tiny")
    exe = compile_program(program, get_isa("arm"))
    isa = get_isa("arm")
    found_pair = False
    pc = exe.entry
    mem = exe.initial_memory()
    while pc < exe.entry + len(exe.code):
        uop = isa.decode(mem, pc, pc)[0]
        if uop.fn == "pair":
            found_pair = True
            break
        pc += uop.size
    assert found_pair


def test_x86_emits_folded_load_ops():
    """The load-op peephole must fire somewhere in the suite."""
    from repro.isa.base import UopKind

    isa = get_isa("x86")
    found = False
    for workload in WORKLOAD_NAMES:
        exe = compile_program(build_workload(workload, "tiny"), isa)
        mem = exe.initial_memory()
        pc = exe.entry
        while pc < exe.entry + len(exe.code):
            uops = isa.decode(mem, pc, pc)
            if len(uops) == 2 and uops[0].kind is UopKind.LOAD:
                found = True
                break
            pc += uops[0].size
        if found:
            break
    assert found


@pytest.mark.parametrize("isa_name", ISAS)
def test_code_is_decodable_from_entry(isa_name):
    """Walking the code section from the entry decodes only valid instructions."""
    from repro.isa.base import UopKind

    isa = get_isa(isa_name)
    exe = compile_program(build_workload("sha", "tiny"), isa)
    mem = exe.initial_memory()
    pc = exe.entry
    count = 0
    while pc < exe.entry + len(exe.code):
        uops = isa.decode(mem, pc, pc)
        assert uops[0].kind is not UopKind.ILLEGAL, f"illegal at {pc:#x}"
        pc += uops[0].size
        count += 1
    assert count > 20


@pytest.mark.parametrize("isa_name", ISAS)
def test_const_materialization_wide_values(isa_name):
    """64-bit constant materialization round-trips through machine code."""
    from repro.kernel.ir import ProgramBuilder

    values = [0, 1, -1, 2047, -2048, 0xFFFF_FFFF, 0x8000_0000,
              0x5555_5555_5555_5555, 0xFFFF_FFFF_FFFF_FFFF, 1 << 63,
              0x1234_5678_9ABC_DEF0]
    b = ProgramBuilder("consts")
    b.label("entry")
    for v in values:
        b.out(b.const(v), width=8)
    b.halt()
    program = b.build()
    ref = run_program(program)
    isa = get_isa(isa_name)
    res = run_executable(compile_program(program, isa), isa)
    assert res.output == ref.output
