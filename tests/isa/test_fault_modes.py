"""Single-bit-flip decode behaviour: the microscopic mechanism behind the
paper's instruction-cache observations.

For every valid instruction in a compiled workload, flip each encoding bit
once and classify the decode result: same semantics, different-but-valid,
or illegal.  The cross-ISA distribution of these classes is exactly what
drives Figure 5 (Arm's dense space yields valid-but-different; RISC-V's
sparse space yields illegal → crash; x86's variable length desynchronizes).
"""

import pytest

from repro.isa.base import UopKind, get_isa
from repro.kernel.compiler import compile_program
from repro.workloads import build_workload


def _flip_stats(isa_name: str, workload: str = "sha") -> dict:
    isa = get_isa(isa_name)
    exe = compile_program(build_workload(workload, "tiny"), isa)
    mem = bytearray(exe.initial_memory())
    stats = {"same": 0, "different": 0, "illegal": 0, "total": 0}
    pc = exe.entry
    end = exe.entry + len(exe.code)
    while pc < end:
        uops = isa.decode(mem, pc, pc)
        size = uops[0].size
        baseline = [(u.kind, u.fn, u.dst, u.srcs, u.imm) for u in uops]
        for bit in range(size * 8):
            mem[pc + bit // 8] ^= 1 << (bit % 8)
            corrupted = isa.decode(mem, pc, pc)
            mem[pc + bit // 8] ^= 1 << (bit % 8)
            stats["total"] += 1
            if any(u.kind is UopKind.ILLEGAL for u in corrupted):
                stats["illegal"] += 1
            elif [(u.kind, u.fn, u.dst, u.srcs, u.imm) for u in corrupted] == baseline:
                stats["same"] += 1
            else:
                stats["different"] += 1
        pc += size
    return stats


@pytest.fixture(scope="module")
def flip_stats():
    return {isa: _flip_stats(isa) for isa in ("rv", "arm", "x86")}


def test_every_flip_classified(flip_stats):
    for isa, s in flip_stats.items():
        assert s["total"] == s["same"] + s["different"] + s["illegal"]
        assert s["total"] > 1000


def test_rv_flips_trap_more_than_arm(flip_stats):
    """Observation 2's mechanism: sparse RV encodings catch corruption as
    illegal instructions far more often than dense Arm encodings."""
    rv = flip_stats["rv"]["illegal"] / flip_stats["rv"]["total"]
    arm = flip_stats["arm"]["illegal"] / flip_stats["arm"]["total"]
    assert rv > 1.5 * arm


def test_arm_flips_mostly_stay_valid(flip_stats):
    arm = flip_stats["arm"]
    assert arm["different"] / arm["total"] > 0.5


def test_x86_flips_can_change_instruction_length():
    """The CISC fault mode: a flipped opcode bit changes the length and
    desynchronizes everything after it."""
    isa = get_isa("x86")
    exe = compile_program(build_workload("sha", "tiny"), isa)
    mem = bytearray(exe.initial_memory())
    length_changes = 0
    pc = exe.entry
    end = exe.entry + len(exe.code)
    while pc < end:
        size = isa.decode(mem, pc, pc)[0].size
        for bit in range(8):   # opcode byte only
            mem[pc] ^= 1 << bit
            new_size = isa.decode(mem, pc, pc)[0].size
            mem[pc] ^= 1 << bit
            if new_size != size:
                length_changes += 1
        pc += size
    assert length_changes > 50


def test_fixed_width_isas_never_change_length(flip_stats):
    for isa_name in ("rv", "arm"):
        isa = get_isa(isa_name)
        exe = compile_program(build_workload("crc32", "tiny"), isa)
        mem = bytearray(exe.initial_memory())
        pc = exe.entry
        for _ in range(20):
            for bit in range(32):
                mem[pc + bit // 8] ^= 1 << (bit % 8)
                assert isa.decode(mem, pc, pc)[0].size == 4
                mem[pc + bit // 8] ^= 1 << (bit % 8)
            pc += 4
