"""Workload-suite tests: determinism, semantic spot checks, registry."""

import pytest

from repro.kernel.interp import Interpreter, run_program
from repro.workloads import WORKLOAD_NAMES, WORKLOADS, build_workload
from repro.workloads._adpcm import decode_reference, encode_reference, synthetic_waveform
from repro.workloads._util import lcg_bytes, lcg_values, scaled, synthetic_image


def test_suite_has_the_papers_fifteen():
    assert len(WORKLOAD_NAMES) == 15
    for name in ("smooth", "edges", "corners", "adpcme", "adpcmd", "dijkstra"):
        assert name in WORKLOAD_NAMES


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_deterministic(name):
    a = WORKLOADS[name]("tiny")
    b = WORKLOADS[name]("tiny")
    assert run_program(a).output == run_program(b).output


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_has_injection_window_markers(name):
    prog = build_workload(name, "tiny")
    from repro.kernel.ir import Op

    ops = [i.op for blk in prog.blocks for i in blk.instrs]
    assert Op.CHECKPOINT in ops
    assert Op.SWITCH_CPU in ops
    assert Op.OUT in ops


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_default_scale_is_bigger(name):
    tiny = run_program(build_workload(name, "tiny"))
    default = run_program(build_workload(name, "default"))
    assert default.instructions > tiny.instructions


def test_build_workload_memoizes():
    assert build_workload("sha", "tiny") is build_workload("sha", "tiny")


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        build_workload("quake3")


# ------------------------------------------------------------ semantics


def test_qsort_actually_sorts():
    prog = build_workload("qsort", "tiny")
    interp = Interpreter(prog)
    interp.run()
    base = prog.symbol_address("arr")
    count = prog.symbols["arr"].size // 8
    values = [interp.read_mem(base + i * 8, 8, False) for i in range(count)]
    assert values == sorted(values)


def test_crc32_matches_zlib():
    import zlib

    prog = build_workload("crc32", "tiny")
    payload = lcg_bytes(83, 96)
    out = run_program(prog).output
    assert int.from_bytes(out, "little") == zlib.crc32(payload)


def test_dijkstra_distances_match_networkx():
    import networkx as nx

    prog = build_workload("dijkstra", "tiny")
    # rebuild the same matrix the workload generator used
    nodes, sources, inf = 8, 1, 1 << 30
    weights = lcg_values(41, nodes * nodes, 1, 64)
    absent = lcg_values(43, nodes * nodes, 0, 3)
    matrix = [
        inf if (absent[i] == 0 and i // nodes != i % nodes) else weights[i]
        for i in range(nodes * nodes)
    ]
    for i in range(nodes):
        matrix[i * nodes + i] = 0
    graph = nx.DiGraph()
    for u in range(nodes):
        for v in range(nodes):
            w = matrix[u * nodes + v]
            if w < inf:
                graph.add_edge(u, v, weight=w)
    lengths = nx.single_source_dijkstra_path_length(graph, 0)
    dist = [lengths.get(v, inf) for v in range(nodes)]
    check = 0
    for v in range(nodes):
        check = ((check << 2) + dist[v]) & ((1 << 64) - 1)
    out = run_program(prog).output
    assert int.from_bytes(out, "little") == check


def test_adpcm_roundtrip_reference():
    wave = synthetic_waveform(64)
    nibbles, _, _ = encode_reference(wave)
    decoded = decode_reference(nibbles)
    assert len(decoded) == len(wave)
    # ADPCM is lossy but must track the waveform
    err = sum(abs(a - b) for a, b in zip(wave, decoded)) / len(wave)
    assert err < 2000


def test_adpcmd_consumes_adpcme_stream():
    """The decoder workload's input is the encoder's reference bitstream."""
    prog_e = build_workload("adpcme", "tiny")
    prog_d = build_workload("adpcmd", "tiny")
    nibbles, _, _ = encode_reference(synthetic_waveform(48))
    stream = prog_d.symbols["stream"].data
    assert list(stream) == nibbles
    assert prog_e.symbols["pcm"].size == 48 * 2


def test_sha_output_is_five_words():
    out = run_program(build_workload("sha", "tiny")).output
    assert len(out) == 20


def test_bitcount_methods_agree():
    out = run_program(build_workload("bitcount", "tiny")).output
    a = int.from_bytes(out[0:4], "little")
    b = int.from_bytes(out[4:8], "little")
    c = int.from_bytes(out[8:12], "little")
    assert a == b == c
    values = lcg_values(23, 16, 0, 1 << 64)
    assert a == sum(bin(v).count("1") for v in values)


def test_search_finds_expected_matches():
    out = run_program(build_workload("search", "tiny")).output
    matches = int.from_bytes(out[:4], "little")
    assert matches == 3   # three real patterns present once each, one absent


# ------------------------------------------------------------ utilities


def test_lcg_determinism_and_range():
    a = lcg_values(5, 100, 10, 20)
    assert a == lcg_values(5, 100, 10, 20)
    assert all(10 <= v < 20 for v in a)
    assert lcg_values(5, 100, 10, 20) != lcg_values(6, 100, 10, 20)


def test_synthetic_image_properties():
    img = synthetic_image(16, 12, seed=7)
    assert len(img) == 192
    assert max(img) <= 255
    assert len(set(img)) > 10      # not constant


def test_scaled_helper():
    assert scaled("tiny", 1, 2) == 1
    assert scaled("default", 1, 2) == 2
    assert scaled("large", 1, 2) == 8
    assert scaled("large", 1, 2, large=5) == 5
