"""Tests for liveness analysis, linear-scan allocation, and compilation."""

import pytest

from repro.isa.base import get_isa
from repro.kernel.compiler import (
    Interval,
    build_intervals,
    compile_program,
    compute_liveness,
    linear_scan,
)
from repro.kernel.interp import run_program
from repro.kernel.ir import Cond, ProgramBuilder


def _loop_program():
    b = ProgramBuilder("lv")
    b.label("entry")
    i = b.var(0)
    acc = b.var(0)
    n = b.const(5)
    b.label("loop")
    b.add(acc, i, dest=acc)
    b.inc(i)
    b.br(Cond.LTU, i, n, "loop", "done")
    b.label("done")
    b.out(acc, width=8)
    b.halt()
    return b.build(), i, acc, n


def test_liveness_loop_carried_variables():
    prog, i, acc, n = _loop_program()
    liveness = compute_liveness(prog)
    live_in_loop, live_out_loop = liveness["loop"]
    # all three values must be live around the back edge
    assert {i, acc, n} <= live_in_loop
    assert {i, acc, n} <= live_out_loop
    # after the loop only acc matters
    live_in_done, _ = liveness["done"]
    assert acc in live_in_done
    assert i not in live_in_done


def test_intervals_cover_loop_span():
    prog, i, acc, n = _loop_program()
    intervals = {iv.vreg: iv for iv in build_intervals(prog, "i")}
    loop_end = sum(len(blk.instrs) for blk in prog.blocks[:2]) - 1
    assert intervals[i].end >= loop_end
    assert intervals[acc].end > intervals[n].start


def test_linear_scan_no_pressure():
    ivs = [Interval(None, s, s + 1) for s in range(6)]
    linear_scan(ivs, [1, 2])
    assert all(iv.reg in (1, 2) for iv in ivs)
    assert not any(iv.spilled for iv in ivs)


def test_linear_scan_spills_longest():
    # three overlapping intervals, two registers: the one ending last spills
    ivs = [Interval("a", 0, 10), Interval("b", 1, 100), Interval("c", 2, 5)]
    linear_scan(ivs, [1, 2])
    spilled = [iv for iv in ivs if iv.spilled]
    assert len(spilled) == 1
    assert spilled[0].vreg == "b"


def test_spill_slots_are_unique():
    ivs = [Interval(chr(97 + k), 0, 50) for k in range(6)]
    linear_scan(ivs, [1, 2])
    slots = [iv.slot for iv in ivs if iv.spilled]
    assert len(slots) == len(set(slots)) == 4


@pytest.mark.parametrize("isa_name", ["rv", "arm", "x86"])
def test_compiled_loop_matches_interpreter(isa_name):
    from repro.cpu.atomic import run_executable

    prog, *_ = _loop_program()
    ref = run_program(prog)
    isa = get_isa(isa_name)
    exe = compile_program(prog, isa)
    res = run_executable(exe, isa)
    assert res.output == ref.output


def test_high_pressure_program_spills_on_x86():
    """A program with ~20 simultaneously-live values must spill on x86
    (10 allocatable registers) but not on rv (24)."""
    def build():
        b = ProgramBuilder("pressure")
        b.label("entry")
        vals = [b.const(3 * k + 1) for k in range(20)]
        total = b.var(0)
        # use them all *after* creating them all, forcing overlap
        for v in vals:
            b.add(total, v, dest=total)
        b.out(total, width=8)
        b.halt()
        return b.build()

    ref = run_program(build())
    x86 = compile_program(build(), get_isa("x86"))
    rv = compile_program(build(), get_isa("rv"))
    assert x86.spill_slots > 0
    assert rv.spill_slots == 0

    from repro.cpu.atomic import run_executable

    assert run_executable(x86, get_isa("x86")).output == ref.output


def test_executable_image_layout():
    prog, *_ = _loop_program()
    exe = compile_program(prog, get_isa("rv"))
    image = exe.initial_memory()
    assert len(image) == prog.memmap.size
    assert image[exe.entry : exe.entry + 4] != bytes(4)
    # the prologue (spill-base setup) precedes the entry label
    assert exe.labels["entry"] >= exe.entry
    assert set(exe.labels) == {"entry", "loop", "done"}
    assert exe.labels["loop"] > exe.entry
