"""Unit tests for the mini-IR: builder, verifier, data segment, bit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.ir import (
    MASK64,
    BinOp,
    Cond,
    IRError,
    MemoryMap,
    Op,
    ProgramBuilder,
    bits_to_float,
    float_to_bits,
    to_signed,
    to_unsigned,
)


# ------------------------------------------------------------------ helpers


@given(st.integers(min_value=0, max_value=MASK64))
def test_signed_unsigned_roundtrip(value):
    assert to_unsigned(to_signed(value)) == value


@given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_unsigned_signed_roundtrip(value):
    assert to_signed(to_unsigned(value)) == value


@given(st.floats(allow_nan=False))
def test_float_bits_roundtrip(value):
    assert bits_to_float(float_to_bits(value)) == value


def test_float_bits_nan():
    bits = float_to_bits(float("nan"))
    assert bits_to_float(bits) != bits_to_float(bits)  # NaN != NaN


@given(st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_to_signed_16bit(value):
    s = to_signed(value, 16)
    assert -(1 << 15) <= s < (1 << 15)
    assert to_unsigned(s, 16) == value


# ------------------------------------------------------------------ builder


def _trivial_builder() -> ProgramBuilder:
    b = ProgramBuilder("t")
    b.label("entry")
    return b


def test_builder_simple_program():
    b = _trivial_builder()
    x = b.const(41)
    y = b.addi(x, 1)
    b.out(y, width=4)
    b.halt()
    prog = b.build()
    assert prog.name == "t"
    assert prog.entry.label == "entry"
    assert prog.instruction_count() == 5  # const, const(imm 1), add, out, halt


def test_builder_implicit_fallthrough_jump():
    b = _trivial_builder()
    x = b.const(1)
    b.label("next")           # entry has no terminator: implicit jump
    b.out(x, width=1)
    b.halt()
    prog = b.build()
    assert prog.entry.terminator.op is Op.JUMP
    assert prog.entry.terminator.taken == "next"


def test_builder_dest_reuse():
    b = _trivial_builder()
    v = b.var(3)
    b.addi(v, 4, dest=v)
    assert b._next_vreg >= 2
    b.halt()
    prog = b.build()
    adds = [i for blk in prog.blocks for i in blk.instrs if i.op is Op.BIN]
    assert adds[0].dest == v


def test_data_segment_layout_and_alignment():
    b = ProgramBuilder("d")
    b.data_bytes("a", b"\x01\x02\x03", align=8)
    b.data_words("b", [0x1122334455667788], width=8)
    b.data_zeros("c", 5)
    b.label("entry")
    b.halt()
    prog = b.build()
    assert prog.symbols["a"].offset == 0
    assert prog.symbols["b"].offset == 8   # aligned past the 3-byte blob
    seg = prog.data_segment()
    assert seg[0:3] == b"\x01\x02\x03"
    assert seg[8:16] == bytes.fromhex("8877665544332211")


def test_duplicate_symbol_rejected():
    b = ProgramBuilder("d")
    b.data_zeros("x", 8)
    with pytest.raises(IRError):
        b.data_zeros("x", 8)


def test_symbol_address_uses_memmap():
    b = ProgramBuilder("d")
    b.data_zeros("x", 8)
    b.label("entry")
    b.halt()
    prog = b.build()
    assert prog.symbol_address("x") == prog.memmap.data_base


# ------------------------------------------------------------------ verifier


def test_verifier_rejects_unknown_branch_target():
    b = _trivial_builder()
    x = b.const(0)
    b.br(Cond.EQ, x, x, "nowhere", "also_nowhere")
    with pytest.raises(IRError):
        b.build()


def test_verifier_rejects_unknown_symbol():
    b = _trivial_builder()
    b.la("ghost")
    b.halt()
    with pytest.raises(IRError):
        b.build()


def test_verifier_rejects_missing_terminator():
    b = _trivial_builder()
    b.const(1)
    with pytest.raises(IRError):
        b.build()


def test_verifier_rejects_duplicate_labels():
    b = _trivial_builder()
    b.halt()
    b.label("entry")
    b.halt()
    with pytest.raises(IRError):
        b.build()


def test_verifier_rejects_bad_width():
    b = _trivial_builder()
    base = b.const(0x10000)
    b.load(base, 0, width=3)
    b.halt()
    with pytest.raises(IRError):
        b.build()


# ------------------------------------------------------------------ misc


def test_binop_kind_classification():
    assert BinOp.FADD.is_float and not BinOp.FADD.result_is_int
    assert BinOp.FLT.is_float and BinOp.FLT.result_is_int
    assert not BinOp.ADD.is_float


def test_memmap_contains():
    mm = MemoryMap()
    assert mm.contains(0, 1)
    assert mm.contains(mm.size - 8, 8)
    assert not mm.contains(mm.size - 4, 8)
    assert not mm.contains(-1, 1)


def test_block_successors():
    b = _trivial_builder()
    x = b.const(0)
    b.br(Cond.EQ, x, x, "a", "b")
    b.label("a")
    b.jump("b")
    b.label("b")
    b.halt()
    prog = b.build()
    assert prog.entry.successors() == ["a", "b"]
    assert prog.block("a").successors() == ["b"]
    assert prog.block("b").successors() == []
