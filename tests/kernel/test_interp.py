"""Unit + property tests for the reference interpreter and eval_binop."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.interp import (
    INT64_MAX,
    INT64_MIN,
    InterpFault,
    Interpreter,
    eval_binop,
    eval_cond,
    fcvt_to_int,
    run_program,
)
from repro.kernel.ir import (
    MASK64,
    BinOp,
    Cond,
    ProgramBuilder,
    bits_to_float,
    float_to_bits,
    to_signed,
    to_unsigned,
)

u64 = st.integers(min_value=0, max_value=MASK64)


# ------------------------------------------------------------ eval_binop


@given(u64, u64)
def test_add_matches_python(a, b):
    assert eval_binop(BinOp.ADD, a, b) == (a + b) & MASK64


@given(u64, u64)
def test_sub_add_inverse(a, b):
    assert eval_binop(BinOp.ADD, eval_binop(BinOp.SUB, a, b), b) == a


@given(u64, u64)
def test_xor_self_inverse(a, b):
    assert eval_binop(BinOp.XOR, eval_binop(BinOp.XOR, a, b), b) == a


@given(u64)
def test_div_by_zero_semantics(a):
    assert eval_binop(BinOp.DIVU, a, 0) == MASK64
    assert eval_binop(BinOp.REMU, a, 0) == a
    assert eval_binop(BinOp.DIVS, a, 0) == MASK64
    assert eval_binop(BinOp.REMS, a, 0) == a


def test_signed_div_overflow():
    v = to_unsigned(INT64_MIN)
    assert eval_binop(BinOp.DIVS, v, to_unsigned(-1)) == v
    assert eval_binop(BinOp.REMS, v, to_unsigned(-1)) == 0


@given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
       st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
def test_signed_div_truncates_toward_zero(a, b):
    if b == 0:
        return
    got = to_signed(eval_binop(BinOp.DIVS, to_unsigned(a), to_unsigned(b)))
    expected = abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1)
    assert got == expected


@given(u64, st.integers(min_value=0, max_value=63))
def test_shift_pairs(a, n):
    left = eval_binop(BinOp.SHL, a, n)
    assert left == (a << n) & MASK64
    assert eval_binop(BinOp.SHRL, left, n) == (a << n & MASK64) >> n


@given(u64)
def test_sra_preserves_sign(a):
    out = eval_binop(BinOp.SHRA, a, 63)
    assert out == (MASK64 if a >> 63 else 0)


@given(u64, u64)
def test_slt_consistent_with_cond(a, b):
    assert bool(eval_binop(BinOp.SLT, a, b)) == eval_cond(Cond.LT, a, b)
    assert bool(eval_binop(BinOp.SLTU, a, b)) == eval_cond(Cond.LTU, a, b)
    assert bool(eval_binop(BinOp.SEQ, a, b)) == eval_cond(Cond.EQ, a, b)


@given(st.floats(allow_nan=False, allow_infinity=False, width=64),
       st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_fadd_matches_python(a, b):
    got = bits_to_float(eval_binop(BinOp.FADD, float_to_bits(a), float_to_bits(b)))
    expected = a + b
    assert got == expected or (got != got and expected != expected)


def test_fdiv_by_zero():
    one = float_to_bits(1.0)
    zero = float_to_bits(0.0)
    assert bits_to_float(eval_binop(BinOp.FDIV, one, zero)) == float("inf")
    assert bits_to_float(eval_binop(BinOp.FDIV, float_to_bits(-1.0), zero)) == float("-inf")


def test_fcvt_saturation():
    assert fcvt_to_int(float_to_bits(float("nan"))) == to_unsigned(INT64_MAX)
    assert fcvt_to_int(float_to_bits(1e300)) == to_unsigned(INT64_MAX)
    assert fcvt_to_int(float_to_bits(-1e300)) == to_unsigned(INT64_MIN)
    assert fcvt_to_int(float_to_bits(-3.9)) == to_unsigned(-3)


@given(u64, u64)
def test_cond_pairs_are_complements(a, b):
    assert eval_cond(Cond.EQ, a, b) != eval_cond(Cond.NE, a, b)
    assert eval_cond(Cond.LT, a, b) != eval_cond(Cond.GE, a, b)
    assert eval_cond(Cond.LTU, a, b) != eval_cond(Cond.GEU, a, b)


# ------------------------------------------------------------ interpreter


def _loop_program(n: int):
    b = ProgramBuilder("loop")
    b.label("entry")
    i = b.var(0)
    acc = b.var(0)
    limit = b.const(n)
    b.label("loop")
    b.add(acc, i, dest=acc)
    b.inc(i)
    b.br(Cond.LTU, i, limit, "loop", "done")
    b.label("done")
    b.out(acc, width=8)
    b.halt()
    return b.build()


def test_interp_loop_sum():
    r = run_program(_loop_program(10))
    assert int.from_bytes(r.output, "little") == sum(range(10))
    assert r.blocks_executed == 12  # entry + 10 loop + done


def test_interp_memory_roundtrip():
    b = ProgramBuilder("mem")
    buf = b.data_zeros("buf", 64)
    b.label("entry")
    base = b.la(buf)
    b.store(b.const(0xDEADBEEF), base, 8, width=4)
    v = b.load(base, 8, width=4, signed=False)
    b.out(v, width=4)
    sv = b.load(base, 8, width=4, signed=True)
    b.out(sv, width=8)
    b.halt()
    r = run_program(b.build())
    assert r.output[:4] == bytes.fromhex("efbeadde")
    assert int.from_bytes(r.output[4:], "little") == to_unsigned(to_signed(0xDEADBEEF, 32))


def test_interp_out_of_range_faults():
    b = ProgramBuilder("oob")
    b.label("entry")
    addr = b.const(0x2000_0000)
    b.load(addr, 0, width=8)
    b.halt()
    with pytest.raises(InterpFault):
        run_program(b.build())


def test_interp_instruction_budget():
    b = ProgramBuilder("spin")
    b.label("entry")
    b.label("loop")
    b.nop()
    b.jump("loop")
    with pytest.raises(InterpFault):
        Interpreter(b.build(), max_instructions=100).run()


def test_interp_select_and_fcvt():
    b = ProgramBuilder("sel")
    b.label("entry")
    c = b.const(1)
    a = b.const(7)
    d = b.const(9)
    picked = b.select(c, a, d)
    b.out(picked, width=1)
    f = b.fcvt(b.const(-5))
    back = b.fcvti(f)
    b.out(back, width=8)
    b.halt()
    r = run_program(b.build())
    assert r.output[0] == 7
    assert to_signed(int.from_bytes(r.output[1:], "little")) == -5
