"""Microarchitectural behaviour tests for the OoO core: drain policies,
queue occupancies, fetch-through-cache, and cross-config timing sanity."""

import pytest

from repro.cpu.core import OoOCore
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.ir import Cond, ProgramBuilder
from repro.workloads import build_workload


def _store_burst_program(n=64):
    """A store-dense loop to expose the ISA drain-rate difference."""
    b = ProgramBuilder("burst")
    buf = b.data_zeros("buf", 1024)
    b.label("entry")
    base = b.la(buf)
    i = b.var(0)
    limit = b.const(n)
    b.label("loop")
    off = b.shl(b.and_(i, b.const(63)), b.const(3))
    addr = b.add(base, off)
    for slot in range(8):      # 8 independent stores per iteration: the
        b.store(i, addr, slot * 64, width=8)   # drain rate becomes the limiter
    b.inc(i)
    b.br(Cond.LTU, i, limit, "loop", "done")
    b.label("done")
    b.out(i, width=4)
    b.halt()
    return b.build()


def _mean_sq_occupancy(isa_name: str, cfg) -> float:
    isa = get_isa(isa_name)
    exe = compile_program(_store_burst_program(), isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    samples = []
    while not core.halted and core.cycle < 100_000:
        core.step()
        samples.append(core.sq.occupancy())
    assert core.halted
    return sum(samples) / len(samples)


def test_arm_drains_store_queue_fastest(cfg):
    """Observation 4's mechanism: the weakly-ordered drain (2/cycle) keeps
    Arm's store queue emptier than the 1/cycle rv/x86 drains."""
    occ = {isa: _mean_sq_occupancy(isa, cfg) for isa in ("arm", "rv")}
    assert occ["arm"] < occ["rv"]


def test_store_drain_rate_knob(cfg):
    from repro.isa.base import get_isa as gi

    assert gi("arm").memory_model.store_drain_rate == 2
    assert gi("rv").memory_model.store_drain_rate == 1
    assert gi("x86").memory_model.store_drain_rate == 1
    assert gi("x86").memory_model.name == "tso"


def test_fetch_reads_through_l1i(cfg):
    """Fetch traffic must flow through the instruction cache (that's what
    makes L1I injection meaningful)."""
    isa = get_isa("rv")
    exe = compile_program(build_workload("crc32", "tiny"), isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    core.run()
    assert core.l1i.stats.accesses > core.instructions / 4
    assert core.l1i.stats.misses >= 1


def test_l1d_miss_latency_visible(cfg):
    """A cold-cache pointer chase must be slower than a warm one."""
    b = ProgramBuilder("chase")
    buf = b.data_zeros("buf", 2048)
    b.label("entry")
    base = b.la(buf)
    total = b.var(0)
    for rep in range(2):
        i = b.var(0)
        loop = f"loop{rep}"
        done = f"done{rep}"
        b.label(loop)
        v = b.load(b.add(base, b.shl(i, b.const(6))), 0, width=8)
        b.add(total, v, dest=total)
        b.inc(i)
        b.br(Cond.LTU, i, b.const(16), loop, done)
        b.label(done)
    b.out(total, width=4)
    b.halt()
    isa = get_isa("rv")
    core = OoOCore.from_executable(compile_program(b.build(), isa), isa, cfg)
    core.run()
    # 32 accesses over 16 lines: second pass hits
    assert core.l1d.stats.misses == 16
    assert core.l1d.stats.hits >= 16


def test_bigger_caches_do_not_change_architecture(cfg):
    from repro.core.presets import paper_config
    from repro.kernel.interp import run_program

    program = build_workload("dijkstra", "tiny")
    ref = run_program(program)
    isa = get_isa("rv")
    exe = compile_program(program, isa)
    small = OoOCore.from_executable(exe, isa, cfg).run()
    big = OoOCore.from_executable(exe, isa, paper_config()).run()
    assert small.output == big.output == ref.output
    # a 32KB L1D never misses on this footprint after compulsory fills
    assert big.stats["l1d"]["misses"] <= small.stats["l1d"]["misses"]


def test_watchdog_factor_config(cfg):
    assert cfg.watchdog_factor >= 2


def test_narrow_width_slows_execution(cfg):
    isa = get_isa("rv")
    exe = compile_program(build_workload("sha", "tiny"), isa)
    wide = OoOCore.from_executable(exe, isa, cfg).run()
    narrow_cfg = cfg.with_(width=1, int_alu_units=1, load_ports=1)
    narrow = OoOCore.from_executable(exe, isa, narrow_cfg).run()
    assert narrow.ok and narrow.output == wide.output
    assert narrow.cycles > wide.cycles * 1.5
