"""Unit tests for the set-associative write-back cache."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.cache import Cache, CacheProbe
from repro.cpu.config import CacheConfig
from repro.cpu.memory import MainMemory


def make_hierarchy(l1_size=512, assoc=2):
    mem = MainMemory(1 << 16, latency=50)
    l2 = Cache("l2", CacheConfig(4096, assoc=4, hit_latency=8), mem)
    l1 = Cache("l1", CacheConfig(l1_size, assoc=assoc, hit_latency=2), l2)
    return mem, l2, l1


def test_miss_then_hit():
    mem, l2, l1 = make_hierarchy()
    mem.write(0x100, 0xAB, 1)
    value, lat_miss = l1.read(0x100, 1)
    assert value == 0xAB
    assert lat_miss > l1.cfg.hit_latency
    value, lat_hit = l1.read(0x100, 1)
    assert value == 0xAB
    assert lat_hit == l1.cfg.hit_latency
    assert l1.stats.misses == 1 and l1.stats.hits == 1


def test_write_back_on_eviction():
    mem, l2, l1 = make_hierarchy(l1_size=256, assoc=2)  # 2 sets, 4 lines
    # two addresses mapping to the same set (stride = sets * line = 128)
    addrs = [0x0, 0x80, 0x100, 0x180]  # hmm: set = (addr//64) % 2
    same_set = [a for a in range(0, 0x400, 64) if (a // 64) % 2 == 0][:3]
    l1.write(same_set[0], 0x11, 1)
    l1.write(same_set[1], 0x22, 1)
    l1.write(same_set[2], 0x33, 1)   # evicts one dirty line -> L2
    total = l2.stats.accesses
    assert l1.stats.evictions >= 1
    assert l1.stats.writebacks >= 1
    # the evicted value is recoverable through L1 (refill from L2)
    v, _ = l1.read(same_set[0], 1)
    assert v == 0x11


def test_dirty_bit_and_flush():
    mem, l2, l1 = make_hierarchy()
    l1.write(0x40, 0xDEAD, 2)
    assert any(l1.dirty)
    l1.flush_all()          # L1 -> L2
    assert not any(l1.valid)
    l2.flush_all()          # L2 -> memory
    assert mem.read(0x40, 2) == 0xDEAD


def test_split_access_across_lines():
    mem, l2, l1 = make_hierarchy()
    mem.write_block(60, (0x1122334455667788).to_bytes(8, "little"))
    value, _ = l1.read(60, 8)   # crosses the 64B boundary
    assert value == 0x1122334455667788
    l1.write(124, 0xCAFEBABE12345678, 8)
    v2, _ = l1.read(124, 8)
    assert v2 == 0xCAFEBABE12345678


def test_flip_bit_corrupts_reads():
    mem, l2, l1 = make_hierarchy()
    l1.write(0x200, 0xFF00, 2)
    line = l1._find(0x200)
    l1.flip_bit(line, (0x200 % 64) * 8 + 8)   # flip bit 8 of the halfword
    v, _ = l1.read(0x200, 2)
    assert v == 0xFE00


def test_force_bit_reports_change():
    mem, l2, l1 = make_hierarchy()
    l1.write(0x200, 0x01, 1)
    line = l1._find(0x200)
    bit = (0x200 % 64) * 8
    assert l1.force_bit(line, bit, 0) is True    # 1 -> 0 changed
    assert l1.force_bit(line, bit, 0) is False   # already 0


def test_flip_bit_rejects_invalid_line():
    # forge the occupied()/flip-path disagreement the guard exists for: a
    # transient flip must never land on an invalid line silently
    mem, l2, l1 = make_hierarchy()
    l1.write(0x200, 0xFF, 1)
    line = l1._find(0x200)
    l1.valid[line] = False
    with pytest.raises(RuntimeError, match="invalid line"):
        l1.flip_bit(line, 0)
    # permanent faults are legal on invalid lines: a stuck-at cell is
    # broken from power-on regardless of the valid bit
    assert isinstance(l1.force_bit(line, 0, 0), bool)


def test_plru_prefers_untouched_way():
    mem, l2, l1 = make_hierarchy(l1_size=512, assoc=4)  # 2 sets, 4-way
    stride = l1.cfg.num_sets * l1.cfg.line_size
    addrs = [i * stride for i in range(4)]
    for a in addrs:
        l1.read(a, 1)
    # touch all but one repeatedly; the victim should be the cold one
    for _ in range(3):
        for a in addrs[:3]:
            l1.read(a, 1)
    l1.read(4 * stride, 1)  # forces an eviction
    survivors = [l1._find(a) for a in addrs[:3]]
    assert all(s is not None for s in survivors)


def test_probe_events_fire():
    events = []

    class Probe(CacheProbe):
        def on_read(self, cache, line, lo, hi):
            events.append(("r", line, lo, hi))

        def on_write(self, cache, line, lo, hi):
            events.append(("w", line, lo, hi))

        def on_fill(self, cache, line):
            events.append(("f", line))

        def on_evict(self, cache, line, dirty):
            events.append(("e", line, dirty))

    mem, l2, l1 = make_hierarchy()
    l1.probe = Probe()
    l1.write(0x40, 1, 1)
    l1.read(0x40, 1)
    kinds = [e[0] for e in events]
    assert "f" in kinds and "w" in kinds and "r" in kinds


def test_snapshot_restore_roundtrip():
    mem, l2, l1 = make_hierarchy()
    l1.write(0x40, 0x1234, 2)
    snap = l1.snapshot()
    l1.write(0x40, 0x9999, 2)
    l1.restore(snap)
    v, _ = l1.read(0x40, 2)
    assert v == 0x1234


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig(100, line_size=64, assoc=4)   # not a multiple
    cfg = CacheConfig(1024, line_size=64, assoc=4)
    assert cfg.num_lines == 16 and cfg.num_sets == 4


@given(st.integers(min_value=0, max_value=(1 << 20) - 1))
def test_addr_decomposition_consistent(addr):
    cfg = CacheConfig(1024, line_size=64, assoc=4)
    mem = MainMemory(1 << 20)
    c = Cache("c", cfg, mem)
    set_idx = c.addr_set(addr)
    tag = c.addr_tag(addr)
    line_addr = (tag * cfg.num_sets + set_idx) * cfg.line_size
    assert line_addr == addr - (addr % cfg.line_size)
    assert 0 <= set_idx < cfg.num_sets
