"""Unit tests for main memory, register files, LSQ, and branch predictor."""

import pytest

from repro.cpu.branch import BimodalPredictor
from repro.cpu.lsq import LSQueue
from repro.cpu.memory import MainMemory, MemoryFault, MMIORegion
from repro.cpu.regfile import PhysRegFile

# ------------------------------------------------------------ main memory


def test_memory_rw_and_bounds():
    mem = MainMemory(1024)
    mem.write(100, 0xDEADBEEF, 4)
    assert mem.read(100, 4) == 0xDEADBEEF
    with pytest.raises(MemoryFault):
        mem.read(1022, 4)
    with pytest.raises(MemoryFault):
        mem.write(-1, 0, 1)


def test_memory_mmio_dispatch():
    mem = MainMemory(1024)
    store = {}
    mem.add_mmio(MMIORegion(0x200, 0x240,
                            read=lambda a, w: store.get(a, 0),
                            write=lambda a, v, w: store.__setitem__(a, v)))
    mem.write(0x210, 77, 8)
    assert store[0x210] == 77
    assert mem.read(0x210, 8) == 77
    assert mem.is_mmio(0x200) and not mem.is_mmio(0x240)


def test_memory_snapshot_restore():
    mem = MainMemory(256)
    mem.write(10, 0x42, 1)
    snap = mem.snapshot()
    mem.write(10, 0x99, 1)
    mem.restore(snap)
    assert mem.read(10, 1) == 0x42


# ------------------------------------------------------------ regfile


def test_regfile_alloc_release_cycle():
    rf = PhysRegFile("t", 8)
    rf.free = [4, 5, 6, 7]
    regs = [rf.allocate() for _ in range(4)]
    assert sorted(regs) == [4, 5, 6, 7]
    assert rf.allocate() is None
    rf.release(5)
    assert rf.allocate() == 5


def test_regfile_allocate_clears_ready():
    rf = PhysRegFile("t", 4)
    rf.free = [2]
    reg = rf.allocate()
    assert rf.ready[reg] is False
    rf.write(reg, 123)
    assert rf.ready[reg] is True
    assert rf.read(reg) == 123


def test_regfile_flip_and_force():
    rf = PhysRegFile("t", 4)
    rf.write(1, 0b1000)
    rf.flip_bit(1, 3)
    assert rf.read(1) == 0
    assert rf.force_bit(1, 0, 1) is True
    assert rf.read(1) == 1
    assert rf.force_bit(1, 0, 1) is False


def test_regfile_probe_order_write_then_notify():
    observed = []

    class Probe:
        def on_reg_read(self, rf, reg):
            observed.append(("r", rf.values[reg]))

        def on_reg_write(self, rf, reg):
            observed.append(("w", rf.values[reg]))

    rf = PhysRegFile("t", 4)
    rf.probe = Probe()
    rf.write(0, 55)
    # write notification fires AFTER mutation (stuck-at enforcement relies on it)
    assert observed == [("w", 55)]
    rf.read(0)
    assert observed[-1] == ("r", 55)


# ------------------------------------------------------------ LSQ


def test_lsq_allocate_and_free():
    q = LSQueue("sq", 2)
    a = q.allocate(1)
    b = q.allocate(2)
    assert {a, b} == {0, 1}
    assert q.allocate(3) is None
    q.free(a)
    assert q.allocate(3) == a
    assert q.occupancy() == 2


def test_lsq_fields_and_flip():
    q = LSQueue("sq", 2)
    idx = q.allocate(1)
    q.set_addr(idx, 0x1000, 8)
    q.set_data(idx, 0xFF)
    q.flip_bit(idx, 4)            # addr bit 4
    assert q.entries[idx].addr == 0x1010
    q.flip_bit(idx, 64)           # data bit 0
    assert q.entries[idx].data == 0xFE


def test_lsq_force_bit():
    q = LSQueue("lq", 1)
    idx = q.allocate(1)
    q.set_addr(idx, 0, 8)
    assert q.force_bit(idx, 3, 1) is True
    assert q.entries[idx].addr == 8
    assert q.force_bit(idx, 3, 1) is False


def test_lsq_pair_data_holds_128_bits():
    q = LSQueue("sq", 1)
    idx = q.allocate(1)
    wide = (0xAAAA << 64) | 0xBBBB
    q.set_data(idx, wide)
    assert q.entries[idx].data == wide


def test_lsq_squash_respects_committed():
    q = LSQueue("sq", 4)
    a = q.allocate(1)
    b = q.allocate(5)
    q.entries[a].committed = True
    q.free_by_seq(0)
    assert q.entries[a].valid          # committed survives squash
    assert not q.entries[b].valid


def test_lsq_squash_seq_boundary_and_committed_payload():
    # contract: only *strictly younger* (seq > min_seq) uncommitted entries
    # are squashed, and a committed store keeps its payload intact
    q = LSQueue("sq", 4)
    at = q.allocate(3)                 # seq == min_seq: survives
    young = q.allocate(4)              # seq > min_seq, uncommitted: freed
    done = q.allocate(7)
    q.set_addr(done, 0x800, 8)
    q.set_data(done, 0xDEAD)
    q.entries[done].committed = True
    q.free_by_seq(3)
    assert q.entries[at].valid
    assert not q.entries[young].valid
    assert q.entries[done].valid
    assert q.entries[done].addr == 0x800 and q.entries[done].data == 0xDEAD


def test_lsq_flip_reaches_pair_store_upper_half():
    # regression for the coverage fix: entries are 192 bits wide (64 addr +
    # 128 data) so the second register of an Arm pair store is injectable
    q = LSQueue("sq", 1)
    assert q.BITS_PER_ENTRY == 192
    idx = q.allocate(1)
    wide = (0xAAAA << 64) | 0xBBBB
    q.set_data(idx, wide)
    q.flip_bit(idx, 128)               # bit 0 of the upper (pair) half
    assert q.entries[idx].data == ((0xAAAB << 64) | 0xBBBB)
    assert q.force_bit(idx, 191, 1) is True
    assert q.entries[idx].data >> 127 == 1


def test_lsq_probe_fields():
    events = []

    class Probe:
        def on_entry_read(self, q, i):
            events.append(("r", i))

        def on_entry_write(self, q, i, field):
            events.append(("w", i, field))

        def on_entry_free(self, q, i):
            events.append(("f", i))

    q = LSQueue("lq", 2)
    q.probe = Probe()
    idx = q.allocate(1)
    q.set_addr(idx, 8, 8)
    q.set_data(idx, 9)
    q.read_entry(idx)
    q.free(idx)
    assert events == [
        ("w", idx, "alloc"), ("w", idx, "addr"), ("w", idx, "data"),
        ("r", idx), ("f", idx),
    ]


# ------------------------------------------------------------ predictor


def test_predictor_learns_taken_loop():
    p = BimodalPredictor(64)
    pc = 0x1000
    for _ in range(4):
        p.update(pc, taken=True, mispredicted=False)
    assert p.predict(pc) is True
    for _ in range(4):
        p.update(pc, taken=False, mispredicted=True)
    assert p.predict(pc) is False
    assert p.mispredicts == 4


def test_predictor_counter_saturation():
    p = BimodalPredictor(64)
    pc = 0x4
    for _ in range(100):
        p.update(pc, True, False)
    assert p.table[p._index(pc)] == 3
    p.update(pc, False, False)
    assert p.predict(pc) is True   # hysteresis: one not-taken doesn't flip


def test_predictor_requires_power_of_two():
    with pytest.raises(ValueError):
        BimodalPredictor(100)
