"""Tests for the out-of-order core: correctness, speculation, traps, traces."""

import pytest

from repro.cpu.core import OoOCore
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.interp import run_program
from repro.kernel.ir import Cond, ProgramBuilder
from repro.workloads import build_workload

CORE_WORKLOADS = ["qsort", "sha", "fft", "patricia", "bitcount"]


@pytest.mark.parametrize("workload", CORE_WORKLOADS)
def test_ooo_matches_interpreter(isa_name, workload, cfg):
    program = build_workload(workload, "tiny")
    ref = run_program(program)
    isa = get_isa(isa_name)
    exe = compile_program(program, isa)
    res = OoOCore.from_executable(exe, isa, cfg).run()
    assert res.ok, res.crashed
    assert res.output == ref.output
    assert 0.2 < res.instructions / res.cycles < 8.0


def test_markers_recorded(cfg):
    isa = get_isa("rv")
    exe = compile_program(build_workload("crc32", "tiny"), isa)
    res = OoOCore.from_executable(exe, isa, cfg).run()
    assert res.checkpoint_cycle is not None
    assert res.switch_cycle is not None
    assert res.checkpoint_cycle < res.switch_cycle


def _tiny_program():
    b = ProgramBuilder("tiny")
    b.label("entry")
    acc = b.var(0)
    i = b.var(0)
    n = b.const(20)
    b.label("loop")
    b.add(acc, i, dest=acc)
    b.inc(i)
    b.br(Cond.LTU, i, n, "loop", "done")
    b.label("done")
    b.out(acc, width=4)
    b.halt()
    return b.build()


def test_illegal_instruction_crashes(cfg):
    isa = get_isa("rv")
    exe = compile_program(_tiny_program(), isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    # clobber an instruction in the loop with an undecodable word
    loop_pc = exe.labels["loop"]
    core.memory.write(loop_pc, 0x0000_0000, 4)
    res = core.run()
    assert res.crashed == "illegal_instruction"


def test_wild_store_crashes(cfg):
    b = ProgramBuilder("wild")
    b.label("entry")
    addr = b.const(0x4000_0000)
    b.store(b.const(1), addr, 0, width=8)
    b.halt()
    isa = get_isa("rv")
    exe = compile_program(b.build(), isa)
    res = OoOCore.from_executable(exe, isa, cfg).run()
    assert res.crashed == "mem_fault"


def test_wild_load_crashes(cfg):
    b = ProgramBuilder("wildload")
    b.label("entry")
    addr = b.const(0x7000_0000)
    v = b.load(addr, 0, width=8)
    b.out(v, width=8)
    b.halt()
    isa = get_isa("rv")
    exe = compile_program(b.build(), isa)
    res = OoOCore.from_executable(exe, isa, cfg).run()
    assert res.crashed == "mem_fault"


def test_timeout_reported(cfg):
    b = ProgramBuilder("spin")
    b.label("entry")
    b.label("loop")
    b.nop()
    b.jump("loop")
    isa = get_isa("rv")
    exe = compile_program(b.build(), isa)
    res = OoOCore.from_executable(exe, isa, cfg).run(max_cycles=2000)
    assert res.crashed == "timeout"
    assert not res.halted


def test_speculative_wrong_path_is_squashed(cfg):
    """A branchy loop must still commit the architecturally correct stream."""
    b = ProgramBuilder("brmix")
    b.label("entry")
    i = b.var(0)
    acc = b.var(0)
    n = b.const(64)
    b.label("loop")
    parity = b.and_(i, b.const(1))
    b.br(Cond.EQ, parity, b.const(0), "even", "odd")
    b.label("even")
    b.addi(acc, 3, dest=acc)
    b.jump("next")
    b.label("odd")
    b.addi(acc, 5, dest=acc)
    b.label("next")
    b.inc(i)
    b.br(Cond.LTU, i, n, "loop", "done")
    b.label("done")
    b.out(acc, width=4)
    b.halt()
    program = b.build()
    ref = run_program(program)
    isa = get_isa("rv")
    exe = compile_program(program, isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    res = core.run()
    assert res.output == ref.output
    assert core.predictor.mispredicts > 0   # alternation defeats bimodal


def test_store_load_forwarding_correctness(cfg):
    """Store immediately followed by a dependent load of the same address."""
    b = ProgramBuilder("fwd")
    buf = b.data_zeros("buf", 64)
    b.label("entry")
    base = b.la(buf)
    total = b.var(0)
    i = b.var(0)
    n = b.const(32)
    b.label("loop")
    b.store(b.addi(i, 100), base, 0, width=8)
    v = b.load(base, 0, width=8)
    b.add(total, v, dest=total)
    b.inc(i)
    b.br(Cond.LTU, i, n, "loop", "done")
    b.label("done")
    b.out(total, width=8)
    b.halt()
    program = b.build()
    ref = run_program(program)
    isa = get_isa("rv")
    res = OoOCore.from_executable(compile_program(program, isa), isa, cfg).run()
    assert res.output == ref.output


def test_commit_trace_record_and_compare(cfg):
    isa = get_isa("rv")
    exe = compile_program(_tiny_program(), isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    core.trace_mode = "record"
    golden = core.run()
    assert golden.commit_trace
    assert len(golden.commit_trace) == golden.instructions

    replay = OoOCore.from_executable(exe, isa, cfg)
    replay.trace_mode = "compare"
    replay.golden_trace = golden.commit_trace
    res = replay.run()
    assert not res.hvf_corrupt

    # a corrupted data value must trip the commit-stage comparison
    faulty = OoOCore.from_executable(exe, isa, cfg)
    faulty.trace_mode = "compare"
    faulty.golden_trace = golden.commit_trace
    while faulty.instructions < 20:           # let live state build up
        faulty.step()
    for phys in range(faulty.prf_int.size):   # corrupt everything in flight
        faulty.prf_int.values[phys] ^= 0xFF0
    res2 = faulty.run()
    assert res2.hvf_corrupt or res2.output != golden.output or res2.crashed


def test_determinism(cfg):
    isa = get_isa("rv")
    exe = compile_program(build_workload("dijkstra", "tiny"), isa)
    a = OoOCore.from_executable(exe, isa, cfg).run()
    b = OoOCore.from_executable(exe, isa, cfg).run()
    assert a.output == b.output
    assert a.cycles == b.cycles
    assert a.stats == b.stats


def test_wfi_wakes_on_interrupt(cfg):
    b = ProgramBuilder("wfi")
    b.label("entry")
    b.wfi()
    b.out(b.const(0x77), width=1)
    b.halt()
    isa = get_isa("rv")
    exe = compile_program(b.build(), isa)
    core = OoOCore.from_executable(exe, isa, cfg)
    for _ in range(200):
        core.step()
    assert core.wfi_sleep
    core.wake_interrupt()
    res = core.run(max_cycles=5000)
    assert res.ok and res.output == b"\x77"


def test_small_config_still_correct(small_cfg):
    """Resource pressure (tiny ROB/IQ/PRF) must not change architecture."""
    program = build_workload("sha", "tiny")
    ref = run_program(program)
    isa = get_isa("rv")
    exe = compile_program(program, isa)
    res = OoOCore.from_executable(exe, isa, small_cfg).run()
    assert res.ok and res.output == ref.output
