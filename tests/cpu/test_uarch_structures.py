"""Unit tests for the MSHR file, post-commit store buffer and stride
prefetcher — the non-blocking-L1D structures behind the ``mshr``,
``store_buffer`` and ``prefetcher`` injection targets."""

import pytest

from repro.cpu.mshr import MSHRFile
from repro.cpu.prefetch import (
    CONF_THRESHOLD,
    STRIDE_BITS,
    StridePrefetcher,
    _signed_stride,
)
from repro.cpu.storebuffer import StoreBuffer

LINE = 64


class RecordingProbe:
    def __init__(self):
        self.events = []

    def on_entry_read(self, q, i):
        self.events.append(("r", i))

    def on_entry_scan(self, q, i):
        self.events.append(("s", i))

    def on_entry_write(self, q, i, field):
        self.events.append(("w", i, field))

    def on_entry_free(self, q, i):
        self.events.append(("f", i))


class FakeL1D:
    def __init__(self):
        self.installs = []

    def write_block(self, addr, block):
        self.installs.append((addr, bytes(block)))


# ------------------------------------------------------------ MSHR


def make_mshr(entries=4, lq_entries=8):
    return MSHRFile("mshr", entries, LINE, lq_entries)


def test_mshr_allocate_lookup_merge():
    m = make_mshr()
    fill = bytes(range(LINE))
    idx = m.allocate(0x100, ready_at=10, lq_slot=2, fill=fill)
    assert idx is not None
    assert m.lookup(0x100) == idx          # secondary miss CAM-hits
    assert m.lookup(0x140) is None         # different block misses
    assert m.merge(idx, 5) == 10           # merged load pays the remainder
    e = m.entries[idx]
    assert e.targets == (1 << 2) | (1 << 5)
    assert e.addr == e.orig_addr == 0x100
    assert m.occupancy() == 1 and m.entry_valid(idx)


def test_mshr_full_file_exerts_backpressure():
    m = make_mshr(entries=2)
    assert m.allocate(0x000, 5, 0, b"") is not None
    assert m.allocate(0x040, 5, 1, b"") is not None
    assert m.allocate(0x080, 5, 2, b"") is None     # lockup: load replays


def test_mshr_retire_frees_only_ready_entries():
    m = make_mshr()
    l1d = FakeL1D()
    a = m.allocate(0x100, ready_at=10, lq_slot=0, fill=b"")
    b = m.allocate(0x140, ready_at=20, lq_slot=1, fill=b"")
    m.retire(15, l1d)
    assert not m.entries[a].valid and m.entries[b].valid
    m.retire(20, l1d)
    assert m.occupancy() == 0
    # golden retire: addresses untouched, nothing is ever redirected
    assert l1d.installs == []


def test_mshr_corrupted_addr_redirects_fill_at_retire():
    m = make_mshr()
    l1d = FakeL1D()
    fill = bytes(LINE)
    idx = m.allocate(0x100, ready_at=5, lq_slot=0, fill=fill)
    m.flip_bit(idx, 10)                    # addr bit 10: 0x100 -> 0x500
    m.retire(5, l1d)
    # the captured fill lands at the corrupted, block-aligned address
    assert l1d.installs == [(0x500, fill)]
    assert m.occupancy() == 0


def test_mshr_probe_event_order():
    m = make_mshr()
    m.probe = probe = RecordingProbe()
    idx = m.allocate(0x100, ready_at=3, lq_slot=0, fill=b"")
    m.lookup(0x100)
    m.merge(idx, 1)
    m.retire(3, FakeL1D())
    # alloc, CAM scan, merge = read-modify-write, retire = read then free
    assert probe.events == [
        ("w", idx, "alloc"), ("s", idx),
        ("r", idx), ("w", idx, "targets"),
        ("r", idx), ("f", idx),
    ]


def test_mshr_flip_and_force_cover_all_fields():
    m = make_mshr(lq_entries=8)
    assert m.BITS_PER_ENTRY == 65 + 8
    idx = m.allocate(0x100, 1, 0, b"")
    m.flip_bit(idx, 64)
    assert not m.entries[idx].valid        # valid bit dropped: record lost
    assert m.force_bit(idx, 64, 1) is True
    assert m.force_bit(idx, 64, 1) is False
    assert m.force_bit(idx, 67, 1) is True  # targets bit 2
    assert m.entries[idx].targets == (1 << 0) | (1 << 2)
    m.flip_bit(idx, 67)
    assert m.entries[idx].targets == 1


def test_mshr_snapshot_restore_round_trip():
    m = make_mshr()
    m.allocate(0x100, 9, 3, bytes(LINE))
    snap = m.snapshot()
    m.retire(9, FakeL1D())
    assert m.occupancy() == 0
    m.restore(snap)
    assert m.occupancy() == 1
    assert m.entries[0].ready_at == 9 and m.entries[0].targets == 1 << 3


# ------------------------------------------------------------ store buffer


def test_store_buffer_drains_in_program_order():
    sb = StoreBuffer("store_buffer", 4)
    sb.push(7, 0x20, 1, 8, False)
    sb.push(3, 0x10, 2, 8, False)
    sb.push(5, 0x18, 3, 8, False)
    order = []
    while (idx := sb.oldest()) is not None:
        order.append(sb.read_entry(idx).seq)
        sb.free(idx)
    assert order == [3, 5, 7]
    assert sb.last_drained_seq == 7


def test_store_buffer_full_rejects_push():
    sb = StoreBuffer("store_buffer", 1)
    assert sb.push(1, 0x10, 0, 8, False) == 0
    assert sb.push(2, 0x18, 0, 8, False) is None


def test_store_buffer_pair_data_injectable():
    sb = StoreBuffer("store_buffer", 1)
    assert sb.BITS_PER_ENTRY == 192        # matches the post-fix LSQ
    wide = (0xAAAA << 64) | 0xBBBB
    idx = sb.push(1, 0x10, wide, 8, True)
    sb.flip_bit(idx, 64 + 64)              # bit 0 of the pair's second half
    assert sb.entries[idx].data == ((0xAAAB << 64) | 0xBBBB)
    assert sb.force_bit(idx, 0, 1) is True  # addr bit 0
    assert sb.entries[idx].addr == 0x11


def test_store_buffer_probe_events_and_snapshot():
    sb = StoreBuffer("store_buffer", 2)
    sb.probe = probe = RecordingProbe()
    idx = sb.push(4, 0x10, 9, 8, False)
    sb.read_entry(idx)
    snap = sb.snapshot()
    sb.free(idx)
    assert probe.events == [("w", idx, "alloc"), ("r", idx), ("f", idx)]
    assert sb.occupancy() == 0
    sb.restore(snap)
    assert sb.occupancy() == 1 and sb.last_drained_seq == -1


# ------------------------------------------------------------ prefetcher


def test_prefetcher_learns_constant_stride():
    pf = StridePrefetcher("prefetcher", 16)
    pc, base, stride = 0x1000, 0x8000, 64
    issued = [pf.train(pc, base + i * stride) for i in range(5)]
    # needs two confirmations to cross CONF_THRESHOLD, then predicts ahead
    assert issued[:CONF_THRESHOLD + 1] == [None] * (CONF_THRESHOLD + 1)
    assert issued[-1] == base + 5 * stride
    assert pf.issued >= 1
    assert pf.entry_valid(pf._index(pc))


def test_prefetcher_negative_stride():
    pf = StridePrefetcher("prefetcher", 16)
    pc, base = 0x2000, 0x9000
    out = [pf.train(pc, base - i * 32) for i in range(6)]
    assert out[-1] == base - 6 * 32
    assert _signed_stride((-32) & ((1 << STRIDE_BITS) - 1)) == -32


def test_prefetcher_stride_change_resets_confidence():
    pf = StridePrefetcher("prefetcher", 16)
    pc = 0x3000
    for i in range(4):
        pf.train(pc, 0x1000 + i * 8)
    assert pf.train(pc, 0x5000) is None        # break the pattern
    idx = pf._index(pc)
    assert pf.entries[idx].conf < CONF_THRESHOLD or not pf.entries[idx].stride


def test_prefetcher_conf_flip_disables_prediction():
    pf = StridePrefetcher("prefetcher", 16)
    pc = 0x4000
    for i in range(5):
        pf.train(pc, 0x1000 + i * 16)
    idx = pf._index(pc)
    conf_lo = 64 + STRIDE_BITS
    for bit in range(conf_lo, pf.BITS_PER_ENTRY):
        pf.force_bit(idx, bit, 0)              # zero the confidence counter
    assert pf.train(pc, 0x1000 + 5 * 16) is None


def test_prefetcher_untouched_slots_stay_zero():
    pf = StridePrefetcher("prefetcher", 8)
    pf.train(0x1000, 0x100)
    for idx, e in enumerate(pf.entries):
        if idx == pf._index(0x1000):
            continue
        assert not e.trained
        assert e.last_addr == 0 and e.stride == 0 and e.conf == 0
        assert not pf.entry_valid(idx)


def test_prefetcher_probe_rmw_and_snapshot():
    pf = StridePrefetcher("prefetcher", 4)
    pf.probe = probe = RecordingProbe()
    pf.train(0x100, 0x8000)
    idx = pf._index(0x100)
    # a train is a read-modify-write: read fires before the rewrite
    assert probe.events == [("r", idx), ("w", idx, "alloc")]
    snap = pf.snapshot()
    pf.entries[idx].clear()
    pf.restore(snap)
    assert pf.entries[idx].trained and pf.entries[idx].last_addr == 0x8000
