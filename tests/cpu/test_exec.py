"""Unit tests for micro-op execution semantics (compute())."""

import pytest

from repro.cpu.exec import ExecError, apply_rm_shift, compute, load_value
from repro.isa.base import AluFn, MicroOp, UopKind, flags_satisfy, pack_flags
from repro.kernel.ir import BinOp, Cond, to_unsigned


def uop(**kw):
    return MicroOp(**kw)


def test_alu_reg_reg_and_imm_forms():
    add_rr = uop(kind=UopKind.ALU, fn=BinOp.ADD, srcs=(1, 2))
    assert compute(add_rr, [5, 7]).value == 12
    add_ri = uop(kind=UopKind.ALU, fn=BinOp.ADD, srcs=(1,), imm=-3)
    assert compute(add_ri, [5]).value == 2


def test_rm_shift_applied_to_second_operand():
    shifted = uop(kind=UopKind.ALU, fn=BinOp.ADD, srcs=(1, 2),
                  rm_shift=("lsl", 4))
    assert compute(shifted, [1, 2]).value == 1 + (2 << 4)
    asr = uop(kind=UopKind.ALU, fn=BinOp.ADD, srcs=(1, 2), rm_shift=("asr", 1))
    assert compute(asr, [0, to_unsigned(-8)]).value == to_unsigned(-4)
    assert apply_rm_shift(uop(kind=UopKind.ALU, fn=BinOp.ADD), 42) == 42


def test_movk_inserts_halfword():
    mk = uop(kind=UopKind.ALU, fn=AluFn.MOVK, srcs=(0,),
             imm=0xBEEF | (16 << 16))
    assert compute(mk, [0x11112222_33334444]).value == 0x11112222_BEEF4444


def test_cmp_and_flag_consumers():
    cmp = uop(kind=UopKind.ALU, fn=AluFn.CMP, srcs=(0, 1))
    flags = compute(cmp, [3, 9]).value
    assert flags == pack_flags(3, 9)
    assert flags_satisfy(Cond.LT, flags) and flags_satisfy(Cond.NE, flags)
    csel = uop(kind=UopKind.ALU, fn=AluFn.CSEL, srcs=(0, 1, 2), cond=Cond.LT)
    assert compute(csel, [111, 222, flags]).value == 111
    cset = uop(kind=UopKind.ALU, fn=AluFn.CSET, srcs=(0,), cond=Cond.GE)
    assert compute(cset, [flags]).value == 0


def test_madd_msub():
    madd = uop(kind=UopKind.MUL, fn=AluFn.MADD, srcs=(0, 1, 2))
    assert compute(madd, [3, 4, 100]).value == 112
    msub = uop(kind=UopKind.MUL, fn=AluFn.MSUB, srcs=(0, 1, 2))
    assert compute(msub, [3, 4, 100]).value == 88


def test_fcmp_flags():
    from repro.kernel.ir import float_to_bits

    fcmp = uop(kind=UopKind.FPU, fn=AluFn.FCMP, srcs=(0, 1))
    flags = compute(fcmp, [float_to_bits(1.5), float_to_bits(2.5)]).value
    assert flags_satisfy(Cond.LT, flags) and flags_satisfy(Cond.LTU, flags)
    eq = compute(fcmp, [float_to_bits(2.0), float_to_bits(2.0)]).value
    assert flags_satisfy(Cond.EQ, eq)


def test_load_store_address_generation():
    ld = uop(kind=UopKind.LOAD, srcs=(0,), imm=-16, width=4)
    assert compute(ld, [0x1010]).addr == 0x1000
    st = uop(kind=UopKind.STORE, srcs=(0, 1), imm=8, width=8)
    res = compute(st, [0x2000, 0xDEAD])
    assert res.addr == 0x2008 and res.store_data == 0xDEAD


def test_pair_store_packs_128_bits():
    stp = uop(kind=UopKind.STORE, fn="pair", srcs=(0, 1, 2), imm=0, width=8)
    res = compute(stp, [0x100, 0xAAAA, 0xBBBB])
    assert res.store_data == (0xBBBB << 64) | 0xAAAA


def test_branch_variants():
    beq = uop(kind=UopKind.BRANCH, cond=Cond.EQ, srcs=(0, 1), target=0x40)
    assert compute(beq, [5, 5]).taken is True
    cbz = uop(kind=UopKind.BRANCH, fn="cbz", srcs=(0,), target=0x40)
    assert compute(cbz, [0]).taken is True
    assert compute(cbz, [1]).taken is False
    flags = pack_flags(1, 2)
    bflag = uop(kind=UopKind.BRANCH, cond=Cond.GE, srcs=(9,),
                uses_flags=True, target=0x40)
    assert compute(bflag, [flags]).taken is False


def test_jump_direct_and_indirect():
    j = uop(kind=UopKind.JUMP, target=0x1234, pc=0x1000, size=4, dst=1)
    res = compute(j, [])
    assert res.target == 0x1234 and res.value == 0x1004
    jr = uop(kind=UopKind.JUMP, fn="indirect", srcs=(0,), imm=4, pc=0, size=4)
    assert compute(jr, [0x2001]).target == 0x2004  # low bit cleared


def test_load_value_extension():
    assert load_value(0xFF, 1, signed=True) == to_unsigned(-1)
    assert load_value(0xFF, 1, signed=False) == 0xFF
    assert load_value(0x8000, 2, signed=True) == to_unsigned(-32768)


def test_unknown_fn_raises():
    bad = uop(kind=UopKind.ALU, fn="nonsense", srcs=(0,))
    with pytest.raises(ExecError):
        compute(bad, [0])
