"""Tests for the atomic (functional) CPU model."""

import pytest

from repro.cpu.atomic import AtomicCPU, AtomicFault, run_executable
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.ir import Cond, ProgramBuilder


def _program():
    b = ProgramBuilder("p")
    buf = b.data_zeros("buf", 32)
    b.label("entry")
    base = b.la(buf)
    b.store(b.const(0x55), base, 0, width=1)
    v = b.load(base, 0, width=1, signed=False)
    b.out(v, width=1)
    b.halt()
    return b.build()


def test_single_stepping():
    isa = get_isa("rv")
    cpu = AtomicCPU.from_executable(compile_program(_program(), isa), isa)
    steps = 0
    while not cpu.halted:
        cpu.step()
        steps += 1
    assert cpu.output == b"\x55"
    assert steps == cpu.instructions


def test_zero_register_semantics():
    isa = get_isa("rv")
    cpu = AtomicCPU.from_executable(compile_program(_program(), isa), isa)
    cpu.write_reg(0, False, 12345)   # x0 write discarded
    assert cpu.read_reg(0, False) == 0
    arm = get_isa("arm")
    cpu2 = AtomicCPU.from_executable(compile_program(_program(), arm), arm)
    cpu2.write_reg(31, False, 7)     # XZR
    assert cpu2.read_reg(31, False) == 0


def test_illegal_instruction_fault():
    isa = get_isa("rv")
    exe = compile_program(_program(), isa)
    cpu = AtomicCPU.from_executable(exe, isa)
    cpu.memory[exe.entry : exe.entry + 4] = bytes(4)   # all-zeros word
    with pytest.raises(AtomicFault) as err:
        cpu.run()
    assert err.value.reason == "illegal instruction"


def test_out_of_range_memory_fault():
    b = ProgramBuilder("oob")
    b.label("entry")
    addr = b.const(0x0FFF_FFF0)
    b.load(addr, 0, width=8)
    b.halt()
    isa = get_isa("rv")
    cpu = AtomicCPU.from_executable(compile_program(b.build(), isa), isa)
    with pytest.raises(AtomicFault):
        cpu.run()


def test_instruction_budget():
    b = ProgramBuilder("spin")
    b.label("entry")
    b.label("loop")
    b.jump("loop")
    isa = get_isa("rv")
    exe = compile_program(b.build(), isa)
    with pytest.raises(AtomicFault):
        run_executable(exe, isa, max_instructions=50)


def test_atomic_vs_ooo_same_instruction_count(cfg):
    """Both models must commit exactly the same architectural stream."""
    from repro.cpu.core import OoOCore
    from repro.workloads import build_workload

    isa = get_isa("rv")
    exe = compile_program(build_workload("crc32", "tiny"), isa)
    atomic = run_executable(exe, isa)
    ooo = OoOCore.from_executable(exe, isa, cfg).run()
    assert atomic.instructions == ooo.instructions
