"""Protection modeling on accelerator scratchpad memories."""

import json

import pytest

from repro.accel.campaign import (
    ACCEL_WORD_BITS,
    AccelCampaignSpec,
    accel_population_bits,
    accel_scheme,
    accel_structure_name,
    run_accel_campaign,
)
from repro.core.faults import FaultModel
from repro.core.journal import CampaignJournal
from repro.core.outcome import Outcome
from repro.core.protection import ProtectionConfig, Secded


def _spec(**kw):
    defaults = dict(design="gemm", component="MATRIX1", scale="tiny",
                    faults=20, seed=5)
    defaults.update(kw)
    return AccelCampaignSpec(**defaults)


def test_structure_name_and_tail_matching():
    spec = _spec(protection=ProtectionConfig.parse("MATRIX1=secded"))
    assert accel_structure_name(spec) == "accel:gemm:MATRIX1"
    assert accel_scheme(spec).name == "secded"
    other = _spec(component="MATRIX2",
                  protection=ProtectionConfig.parse("MATRIX1=secded"))
    assert accel_scheme(other) is None


def test_population_bits_extend_with_check_bits():
    bare = _spec()
    prot = _spec(protection=ProtectionConfig.parse("MATRIX1=secded"))
    size = 512
    assert accel_population_bits(bare, size) == size * 8
    words = size // (ACCEL_WORD_BITS // 8)
    expected = words * Secded().extended_bits(ACCEL_WORD_BITS)
    assert accel_population_bits(prot, size) == expected


def test_population_bits_reject_unaligned_size():
    prot = _spec(protection=ProtectionConfig.parse("MATRIX1=secded"))
    with pytest.raises(ValueError, match="code word"):
        accel_population_bits(prot, 100)


def test_secded_accel_campaign_has_full_coverage(tmp_path):
    journal = tmp_path / "accel.jsonl"
    spec = _spec(protection=ProtectionConfig.parse("MATRIX1=secded"),
                 faults=30, seed=2)
    result = run_accel_campaign(spec, journal=journal)
    for r in result.records:
        assert r.outcome in (Outcome.MASKED, Outcome.SIM_FAULT)
    assert result.corrected > 0
    assert result.coverage in (None, 1.0)
    assert result.residual_sdc_avf == 0.0
    # round trip: corrected reasons survive the journal
    loaded = CampaignJournal.load(journal)
    assert sum(r.masked_reason == "corrected" for r in loaded) \
        == result.corrected


def test_parity_accel_campaign_raises_due_with_provenance(tmp_path):
    journal = tmp_path / "parity.jsonl"
    spec = _spec(protection=ProtectionConfig.parse("MATRIX1=parity"),
                 faults=30, seed=4)
    result = run_accel_campaign(spec, journal=journal)
    due = [r for r in result.records if r.outcome is Outcome.DUE]
    assert due, "no parity detection across 30 faults"
    for r in due:
        assert r.detected_by == "parity:accel:gemm:MATRIX1"
        assert r.activated is False
    for r in result.records:
        assert r.outcome in (Outcome.DUE, Outcome.MASKED, Outcome.SIM_FAULT)
    assert result.due_avf > 0.0
    # DUE records reload with provenance intact
    loaded = CampaignJournal.load(journal)
    assert {r.mask.mask_id for r in loaded if r.outcome is Outcome.DUE} \
        == {r.mask.mask_id for r in due}


def test_accel_protection_rejects_permanent_models():
    spec = _spec(model=FaultModel.STUCK_AT_1,
                 protection=ProtectionConfig.parse("MATRIX1=secded"))
    with pytest.raises(ValueError, match="transient"):
        run_accel_campaign(spec)


def test_unprotected_accel_journal_has_no_protection_artifacts(tmp_path):
    journal = tmp_path / "bare.jsonl"
    result = run_accel_campaign(_spec(faults=8), journal=journal)
    lines = journal.read_text().splitlines()
    assert "protection" not in json.loads(lines[0])["spec"]
    for line in lines[1:]:
        assert "detected_by" not in json.loads(line)
    summary = result.summary()
    for key in ("protection", "due_avf", "corrected", "coverage"):
        assert key not in summary


def test_doctor_accepts_protected_accel_journal(tmp_path):
    from repro.core.doctor import diagnose_journal

    journal = tmp_path / "prot.jsonl"
    spec = _spec(protection=ProtectionConfig.parse("MATRIX1=parity"),
                 faults=20, seed=4)
    run_accel_campaign(spec, journal=journal)
    report = diagnose_journal(journal)
    assert report.ok, report.describe()
