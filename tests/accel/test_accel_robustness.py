"""Accel-campaign quarantine + journal tests (mirror of the CPU driver's)."""

import pytest

import repro.accel.campaign as ac
from repro.accel.campaign import (
    AccelCampaignSpec,
    accel_golden,
    accel_masks,
    run_accel_campaign,
    run_one_accel_fault,
)
from repro.core.journal import CampaignJournal
from repro.core.outcome import Outcome


def _spec(**kw):
    defaults = dict(design="fft", component="REAL", scale="tiny", faults=4,
                    seed=3)
    defaults.update(kw)
    return AccelCampaignSpec(**defaults)


@pytest.fixture
def exploding_engine(monkeypatch):
    """Swap the dataflow engine for one that raises; golden is primed first
    (the golden cache keeps the patch from poisoning the reference run)."""
    spec = _spec()
    accel_golden(spec)
    real = ac.DataflowEngine
    state = {"fuse": None}          # None = always explode; N = N times

    class Exploding(real):
        def run(self):
            if state["fuse"] is None:
                raise KeyError("poisoned rename map")
            if state["fuse"] > 0:
                state["fuse"] -= 1
                raise KeyError("poisoned rename map")
            return super().run()

    monkeypatch.setattr(ac, "DataflowEngine", Exploding)
    return state


def test_accel_deterministic_quarantine(exploding_engine):
    spec = _spec()
    mask = accel_masks(spec, accel_golden(spec))[0]
    record = run_one_accel_fault(spec, mask)
    assert record.outcome is Outcome.SIM_FAULT
    assert record.sim_error_kind == "deterministic"
    assert "KeyError" in record.error and "poisoned" in record.error


def test_accel_flaky_keeps_verdict(exploding_engine):
    exploding_engine["fuse"] = 1
    spec = _spec()
    mask = accel_masks(spec, accel_golden(spec))[0]
    record = run_one_accel_fault(spec, mask)
    assert record.outcome is not Outcome.SIM_FAULT
    assert record.sim_error_kind == "flaky" and record.retries == 1


def test_accel_campaign_survives_and_reports(exploding_engine):
    res = run_accel_campaign(_spec())
    assert len(res.records) == 4
    assert res.quarantined == 4
    assert res.avf is None                    # no valid records: undefined
    summary = res.summary()
    assert summary["quarantined"] == 4 and summary["retried"] == 4


def test_accel_journal_resume(tmp_path):
    spec = _spec(faults=5)
    masks = accel_masks(spec, accel_golden(spec))
    journal = tmp_path / "accel.jsonl"
    partial = run_accel_campaign(spec, masks=masks[:3], journal=journal)
    assert partial.resumed == 0
    full = run_accel_campaign(spec, masks=masks, journal=journal,
                              resume=journal)
    assert full.resumed == 3 and len(full.records) == 5
    assert CampaignJournal.completed(journal, spec).keys() == set(range(5))
    fresh = run_accel_campaign(spec, masks=masks)
    assert [r.outcome for r in full.records] == [r.outcome for r in fresh.records]


def test_accel_records_carry_watchdog_budget():
    spec = _spec(faults=3)
    res = run_accel_campaign(spec)
    golden = accel_golden(spec)
    budget = golden.cycles * spec.watchdog_factor + 1000
    for r in res.records:
        assert r.max_cycles == budget
