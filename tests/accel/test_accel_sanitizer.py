"""Accelerator-side integrity sanitizer tests.

Mirrors the CPU suite: corruptors plant impossible SPM/scheduler states
(rewound access counters, stray bytes in never-written scratchpad regions),
a wedge starves the dataflow window to exercise the deterministic hang
detector, and a bounded fuzz sweep over two designs proves real injected
faults never false-positive through the fault-aware suppression.
"""

import pytest

from repro.accel.campaign import (
    AccelCampaignSpec,
    AccelReplayContext,
    accel_golden,
    accel_masks,
    run_accel_campaign,
    run_one_accel_fault,
)
from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.outcome import Outcome
from repro.core.sanitizer import FULL_SANITIZER, SanitizerPolicy

TERMINAL = {Outcome.MASKED, Outcome.SDC, Outcome.CRASH, Outcome.SIM_FAULT}


def _spec(**kw):
    defaults = dict(design="gemm", component="MATRIX1", scale="tiny",
                    faults=4, seed=5)
    defaults.update(kw)
    return AccelCampaignSpec(**defaults)


def _mask(design="gemm", component="MATRIX1", bit=8, cycle=10_000,
          model=FaultModel.TRANSIENT, mask_id=0):
    """Default flip cycle sits beyond the run: the mask stays uninjected,
    so nothing the corruptors plant is attributable to it."""
    return FaultMask(
        model=model,
        flips=(FaultFlip(f"accel:{design}:{component}", 0, bit, cycle),),
        mask_id=mask_id,
    )


# ------------------------------------------------------------- corruptors


def rewind_read_counter(engine, n_prior_audits):
    """Access counters only ever count up; running one backwards is an
    impossible state no data-bit flip can produce."""
    if n_prior_audits >= 1:
        engine.memmap.memories[0].reads = -1


def taint_untouched_byte(engine, n_prior_audits):
    """Plant a nonzero value in a never-written MATRIX2 byte while the
    active mask targets MATRIX1 — unreachable, must escalate."""
    mem = next(m for m in engine.memmap.memories if m.name == "MATRIX2")
    if mem.touched[-1] == 0:
        mem.data[-1] |= 0x80


class FireOnceTaint:
    """Stateful corruptor: taints only the first run it sees, so the
    differential re-run from a pristine instantiation comes back clean."""

    def __init__(self):
        self.fired = False

    def __call__(self, engine, n_prior_audits):
        if self.fired:
            return
        mem = next(m for m in engine.memmap.memories if m.name == "MATRIX2")
        if mem.touched[-1] == 0:
            mem.data[-1] |= 0x80
            self.fired = True


def wedge_dataflow(engine, n_prior_audits):
    """Starve the scheduler: every not-yet-started node gains a phantom
    dependency each cycle, so the window never drains."""
    for node in engine._window:
        if not node.started:
            node.pending += 1


# ------------------------------------------------------- mutation escalation


def test_counter_rewind_quarantined_as_integrity():
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=rewind_read_counter)
    record = run_one_accel_fault(_spec(), _mask(), sanitizer=policy)
    assert record.outcome is Outcome.SIM_FAULT
    assert record.sim_error_kind == "integrity"
    assert record.integrity is not None
    assert record.integrity.check == "spm_counter_monotonic"
    assert record.integrity.divergence == "deterministic"
    assert record.retries == 0


def test_untouched_byte_escalates_when_mask_cannot_reach():
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=taint_untouched_byte)
    record = run_one_accel_fault(_spec(), _mask(), sanitizer=policy)
    assert record.outcome is Outcome.SIM_FAULT
    assert record.sim_error_kind == "integrity"
    assert record.integrity.check == "spm_untouched_zero"
    assert record.integrity.structure == "MATRIX2"


def test_replay_context_divergence_is_labelled():
    """A violation that only appears when the replay context was reused
    indicts the reset path — the pristine re-run decides the label."""
    spec = _spec()
    policy = SanitizerPolicy(mode="sampled", audit_stride=16,
                             corruptor=FireOnceTaint())
    ctx = AccelReplayContext(spec)
    record = run_one_accel_fault(spec, _mask(), ctx, sanitizer=policy)
    assert record.outcome is Outcome.SIM_FAULT
    assert record.sim_error_kind == "integrity"
    assert record.integrity.divergence == "checkpoint-divergence"
    assert record.retries == 1


# --------------------------------------------------- fault-aware suppression


def test_permanent_fault_in_untouched_byte_is_suppressed():
    """A stuck-at-1 bit forced into a never-written byte of the *injected*
    memory is exactly what the mask predicts — the untouched-implies-zero
    check must stay quiet and the verdict must come from the output."""
    spec = _spec(model=FaultModel.STUCK_AT_1)
    golden = accel_golden(spec)
    assert golden.cycles > 0
    # discover a byte the whole golden run never writes
    from repro.accel_designs import get_design
    from repro.accel.dataflow import DataflowEngine
    accel = get_design(spec.design).instantiate(spec.fu)
    accel.load_inputs(spec.scale)
    DataflowEngine(accel.kernel(spec.scale), accel.memmap, accel.fu).run()
    touched = accel.mem(spec.component).touched
    untouched = max(i for i, t in enumerate(touched) if t == 0)
    mask = _mask(bit=untouched * 8, cycle=0, model=FaultModel.STUCK_AT_1)
    record = run_one_accel_fault(spec, mask, sanitizer=FULL_SANITIZER)
    assert record.sim_error_kind != "integrity"
    assert record.outcome in TERMINAL


# ------------------------------------------------------------ hang detection


def test_starved_dataflow_classifies_as_hang():
    policy = SanitizerPolicy(mode="full", corruptor=wedge_dataflow)
    record = run_one_accel_fault(_spec(), _mask(), sanitizer=policy,
                                 hang_cycles=64)
    assert record.outcome is Outcome.CRASH
    assert record.crash_reason == "hang"
    assert record.cycles < record.max_cycles


def test_hang_detector_disabled_falls_back_to_watchdog():
    policy = SanitizerPolicy(mode="full", corruptor=wedge_dataflow)
    record = run_one_accel_fault(_spec(), _mask(), sanitizer=policy,
                                 hang_cycles=0)
    assert record.outcome is Outcome.CRASH
    assert record.crash_reason == "timeout"


# ----------------------------------------------------------------- fuzzing


@pytest.mark.parametrize("design,component", [("gemm", "MATRIX1"),
                                              ("spmv", "VAL")])
def test_fuzz_accel_masks_always_classified_never_integrity(design, component):
    for model, count, seed in ((FaultModel.TRANSIENT, 32, 31),
                               (FaultModel.STUCK_AT_1, 8, 32)):
        spec = _spec(design=design, component=component, model=model,
                     faults=count, seed=seed)
        golden = accel_golden(spec)
        result = run_accel_campaign(spec, masks=accel_masks(spec, golden),
                                    sanitizer=FULL_SANITIZER)
        assert len(result.records) == count
        for record in result.records:
            assert record.outcome in TERMINAL
            assert record.sim_error_kind != "integrity", (
                f"{design}/{component}/{model.value}: sanitizer "
                f"false-positive on mask {record.mask.mask_id}: "
                f"{record.error}"
            )
