"""Tests for the dataflow engine's dynamic-renaming pipelined scheduler."""

import pytest

from repro.accel.dataflow import AddressMap, DataflowEngine, FUConfig
from repro.accel.spm import ScratchpadMemory
from repro.kernel.ir import BinOp, Cond, ProgramBuilder


def _accumulate_kernel(n: int):
    """A loop whose iterations are independent except for a cheap counter —
    the canonical pipelining candidate."""
    b = ProgramBuilder("acc")
    b.label("entry")
    base = b.const(0x40)
    nn = b.const(n)
    i = b.var(0)
    b.label("loop")
    v = b.load(b.add(base, b.shl(i, b.const(3))), 0, width=8)
    doubled = b.mul(v, b.const(3))
    b.store(doubled, b.add(base, b.shl(i, b.const(3))), 256, width=8)
    b.inc(i)
    b.br(Cond.LTU, i, nn, "loop", "done")
    b.label("done")
    b.halt()
    return b.build()


def _run(n=16, fu=None):
    spm = ScratchpadMemory("S", 512, base=0x40, ports=4)
    for i in range(n):
        spm.write(0x40 + i * 8, i + 1, 8)
    engine = DataflowEngine(
        _accumulate_kernel(n), AddressMap([spm]), fu or FUConfig.uniform(8)
    )
    result = engine.run()
    return engine, spm, result


def test_pipelined_loop_is_faster_than_serial_chain():
    """Cross-block pipelining: 16 iterations of a ~7-op body must take far
    fewer cycles than 16 x the body's critical path."""
    _, _, result = _run()
    serial_floor = 16 * 7
    assert result.ok
    assert result.cycles < serial_floor


def test_pipelined_results_still_correct():
    _, spm, result = _run()
    assert result.ok
    for i in range(16):
        assert spm.read(0x40 + 256 + i * 8, 8) == (i + 1) * 3


def test_renaming_isolates_iterations():
    """Reused vregs across iterations must not corrupt earlier values —
    the dynamic-renaming (SSA) property."""
    b = ProgramBuilder("ren")
    b.label("entry")
    base = b.const(0x40)
    i = b.var(0)
    b.label("loop")
    tmp = b.mul(i, b.const(1000))           # same vreg rewritten per iter
    b.store(tmp, b.add(base, b.shl(i, b.const(3))), 0, width=8)
    b.inc(i)
    b.br(Cond.LTU, i, b.const(8), "loop", "done")
    b.label("done")
    b.halt()
    spm = ScratchpadMemory("S", 64, base=0x40, ports=4)
    engine = DataflowEngine(b.build(), AddressMap([spm]), FUConfig.uniform(8))
    assert engine.run().ok
    for i in range(8):
        assert spm.read(0x40 + i * 8, 8) == i * 1000


def test_value_slots_grow_with_dynamic_instances():
    engine, _, result = _run(n=8)
    # one slot per dynamic destination: far more than static vregs
    assert len(engine.values) > engine.program.num_vregs


def test_mem_port_contention_slows_execution():
    wide = _run(fu=FUConfig.uniform(8))[2].cycles
    spm = ScratchpadMemory("S", 512, base=0x40, ports=1)
    for i in range(16):
        spm.write(0x40 + i * 8, i + 1, 8)
    engine = DataflowEngine(
        _accumulate_kernel(16), AddressMap([spm]), FUConfig.uniform(8)
    )
    narrow = engine.run()
    assert narrow.ok
    assert narrow.cycles > wide


def test_injector_early_mask_stops_engine():
    from repro.accel.campaign import AccelInjector
    from repro.core.faults import FaultMask

    spm = ScratchpadMemory("S", 512, base=0x40, ports=4)
    for i in range(16):
        spm.write(0x40 + i * 8, i + 1, 8)
    # fault in a byte that the kernel overwrites (output region) before reading
    mask = FaultMask.single("accel:S", 0, (256 + 8) * 8, cycle=1)
    injector = AccelInjector(mask, spm)
    engine = DataflowEngine(
        _accumulate_kernel(16), AddressMap([spm]), FUConfig.uniform(8)
    )
    engine.injector = injector
    result = engine.run()
    assert result.ok
    assert injector.early_masked
    assert result.operations < 16 * 7   # stopped before finishing everything
