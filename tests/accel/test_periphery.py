"""Tests for DMA, MMRs, interrupt controllers, and the config generator."""

import pytest

from repro.accel.configgen import ConfigError, fu_from_config, generate_soc, parse_yaml
from repro.accel.dma import DMAEngine
from repro.accel.interrupts import GIC, PLIC, controller_for_isa
from repro.accel.mmr import (
    MMR_SIZE,
    REG_ARG0,
    REG_CTRL,
    REG_STATUS,
    STATUS_DONE,
    STATUS_RUNNING,
    MMRBlock,
)
from repro.accel.spm import ScratchpadMemory

# ------------------------------------------------------------ DMA


def test_dma_transfer_in_and_cost():
    dma = DMAEngine(setup_cycles=10, bytes_per_cycle=8)
    spm = ScratchpadMemory("S", 64, base=0)
    cycles = dma.transfer_in(spm, 0, bytes(range(32)))
    assert cycles == 10 + 4
    assert spm.dump(0, 32) == bytes(range(32))
    assert dma.stats.transfers == 1 and dma.stats.bytes_moved == 32


def test_dma_transfer_out_notifies_probe():
    reads = []

    class Probe:
        def on_read(self, mem, lo, hi):
            reads.append((lo, hi))

        def on_write(self, mem, lo, hi):
            pass

    dma = DMAEngine()
    spm = ScratchpadMemory("S", 64, base=0)
    spm.probe = Probe()
    dma.transfer_out(spm, 0, 16)
    assert reads == [(0, 16)]


def test_dma_rejects_zero_rate():
    with pytest.raises(ValueError):
        DMAEngine(bytes_per_cycle=0)


# ------------------------------------------------------------ MMR


def test_mmr_start_protocol():
    started = []
    mmr = MMRBlock("t", base=0x1000, on_start=lambda m: started.append(True))
    mmr.write(0x1000 + REG_ARG0, 0x42, 8)
    assert mmr.arg(0) == 0x42
    assert mmr.status == 0
    mmr.write(0x1000 + REG_CTRL, 1, 8)
    assert started == [True]
    assert mmr.status == STATUS_RUNNING
    mmr.set_status(STATUS_DONE)
    assert mmr.read(0x1000 + REG_STATUS, 8) == STATUS_DONE


def test_mmr_subword_reads():
    mmr = MMRBlock("t", base=0)
    mmr.write(REG_ARG0, 0x1122334455667788, 8)
    assert mmr.read(REG_ARG0, 4) == 0x55667788
    assert mmr.read(REG_ARG0 + 4, 4) == 0x11223344


def test_mmr_as_region():
    mmr = MMRBlock("t", base=0x2000)
    region = mmr.as_mmio_region()
    assert region.start == 0x2000 and region.end == 0x2000 + MMR_SIZE


# ------------------------------------------------------------ interrupts


def test_gic_claim_complete_cycle():
    gic = GIC()
    gic.post(7)
    assert gic.pending()
    line = gic.claim()
    assert line == 7
    assert not gic.pending()       # active interrupt masks further delivery
    gic.post(9)
    assert gic.claim() is None     # still active
    gic.complete(7)
    assert gic.claim() == 9


def test_gic_priority_order():
    gic = GIC()
    gic.set_priority(3, 10)
    gic.set_priority(5, 1)
    gic.post(3)
    gic.post(5)
    assert gic.claim() == 5        # lower value = higher priority


def test_gic_disabled_line_not_delivered():
    gic = GIC()
    gic.enable(4, False)
    gic.post(4)
    assert not gic.pending()
    gic.enable(4, True)
    assert gic.pending()


def test_gic_line_range():
    with pytest.raises(ValueError):
        GIC(num_lines=8).post(8)


def test_plic_claim_clears_gateway():
    plic = PLIC()
    plic.set_priority(3, 5)
    plic.post(3)
    assert plic.pending()
    assert plic.claim() == 3
    assert not plic.pending()
    plic.complete(3)


def test_plic_threshold_masks():
    plic = PLIC()
    plic.set_priority(2, 1)
    plic.set_threshold(0, 3)
    plic.post(2)
    assert not plic.pending()      # priority 1 <= threshold 3
    plic.set_threshold(0, 0)
    assert plic.pending()


def test_plic_highest_priority_wins():
    plic = PLIC()
    plic.set_priority(2, 1)
    plic.set_priority(9, 7)
    plic.post(2)
    plic.post(9)
    assert plic.claim() == 9


def test_plic_source_zero_reserved():
    with pytest.raises(ValueError):
        PLIC().post(0)
    with pytest.raises(ValueError):
        PLIC().set_priority(1, 9)


def test_controller_templates():
    assert isinstance(controller_for_isa("arm"), GIC)
    assert isinstance(controller_for_isa("rv"), PLIC)
    assert isinstance(controller_for_isa("x86"), PLIC)
    with pytest.raises(ValueError):
        controller_for_isa("mips")


# ------------------------------------------------------------ configgen


def test_yaml_scalars_and_nesting():
    doc = parse_yaml(
        """
system:
  isa: rv
  threads: 4
  debug: true
  ratio: 0.5
  name: "my soc"
accelerator:
  design: gemm
"""
    )
    assert doc["system"]["isa"] == "rv"
    assert doc["system"]["threads"] == 4
    assert doc["system"]["debug"] is True
    assert doc["system"]["ratio"] == 0.5
    assert doc["system"]["name"] == "my soc"


def test_yaml_sequences():
    doc = parse_yaml(
        """
targets:
  - l1d
  - l1i
configs:
  - design: gemm
    fu: 4
  - design: bfs
    fu: 2
"""
    )
    assert doc["targets"] == ["l1d", "l1i"]
    assert doc["configs"][1]["design"] == "bfs"
    assert doc["configs"][0]["fu"] == 4


def test_yaml_comments_and_empty_values():
    doc = parse_yaml("a: 1  # trailing comment\nb:\nc: 2\n")
    assert doc == {"a": 1, "b": None, "c": 2}


def test_yaml_rejects_garbage():
    with pytest.raises(ConfigError):
        parse_yaml("system:\n  just a line without colon\n")


def test_fu_from_config():
    fu = fu_from_config({"alu": 2, "fpu": 16})
    assert fu.alu == 2 and fu.fpu == 16 and fu.mul == 2
    assert fu_from_config(None) is None


def test_generate_soc_end_to_end():
    soc = generate_soc(
        """
system:
  isa: rv
  preset: sim
  scale: tiny
accelerator:
  design: gemm
  fu:
    alu: 4
    fpu: 8
"""
    )
    result = soc.run()
    assert result.ok
    assert soc.accel.fu.fpu == 8


def test_generate_soc_validation():
    with pytest.raises(ConfigError):
        generate_soc("system:\n  isa: mips\naccelerator:\n  design: gemm\n")
    with pytest.raises(ConfigError):
        generate_soc("system:\n  isa: rv\naccelerator:\n  fu:\n    alu: 1\n")
