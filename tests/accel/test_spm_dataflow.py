"""Tests for scratchpads/register banks and the dataflow engine."""

import pytest

from repro.accel.dataflow import AddressMap, DataflowEngine, FUConfig
from repro.accel.spm import AccelMemFault, RegisterBank, ScratchpadMemory
from repro.kernel.ir import BinOp, Cond, ProgramBuilder

# ------------------------------------------------------------ SPM / RegBank


def test_spm_rw_and_bounds():
    spm = ScratchpadMemory("S", 64, base=0x100)
    spm.write(0x108, 0xBEEF, 2)
    assert spm.read(0x108, 2) == 0xBEEF
    assert spm.reads == 1 and spm.writes == 1
    with pytest.raises(AccelMemFault):
        spm.read(0x100 + 63, 2)
    with pytest.raises(AccelMemFault):
        spm.read(0xFF, 1)


def test_spm_touched_tracking_and_extent():
    spm = ScratchpadMemory("S", 64, base=0)
    assert spm.used_extent() == 0
    spm.write(10, 0xFF, 1)
    assert spm.byte_used(10) and not spm.byte_used(11)
    assert spm.used_extent() == 11
    spm.load_block(0, bytes(32))
    assert spm.used_extent() == 32


def test_spm_flip_and_force():
    spm = ScratchpadMemory("S", 8, base=0)
    spm.write(0, 0, 8)
    spm.flip_bit(12)
    assert spm.read(0, 8) == 1 << 12
    assert spm.force_bit(12, 0) is True
    assert spm.read(0, 8) == 0


def test_regbank_latency_properties():
    bank = RegisterBank("R", 32, base=0)
    assert bank.kind == "regbank"
    assert bank.read_latency > ScratchpadMemory("s", 8, 0).read_latency
    assert bank.delta >= 1


def test_address_map_routing():
    a = ScratchpadMemory("A", 64, base=0x40)
    b = RegisterBank("B", 32, base=0x80)
    amap = AddressMap([a, b])
    assert amap.find(0x50, 8) is a
    assert amap.find(0x80, 4) is b
    assert amap.find(0x7C, 8) is None    # straddles the gap
    assert amap.find(0x0, 1) is None     # address 0 unmapped
    assert amap.by_name["B"] is b


# ------------------------------------------------------------ dataflow engine


def _vector_add_kernel(base_a, base_b, base_c, n):
    b = ProgramBuilder("vadd")
    b.label("entry")
    a = b.const(base_a)
    bb = b.const(base_b)
    c = b.const(base_c)
    nn = b.const(n)
    i = b.var(0)
    b.label("loop")
    off = b.shl(i, b.const(3))
    x = b.load(b.add(a, off), 0, width=8)
    y = b.load(b.add(bb, off), 0, width=8)
    b.store(b.add(x, y), b.add(c, off), 0, width=8)
    b.inc(i)
    b.br(Cond.LTU, i, nn, "loop", "done")
    b.label("done")
    b.halt()
    return b.build()


def _setup_engine(fu=FUConfig(), n=8):
    mem_a = ScratchpadMemory("A", n * 8, base=0x40)
    mem_b = ScratchpadMemory("B", n * 8, base=0x40 + n * 8)
    mem_c = ScratchpadMemory("C", n * 8, base=0x40 + 2 * n * 8)
    for i in range(n):
        mem_a.write(mem_a.base + i * 8, i, 8)
        mem_b.write(mem_b.base + i * 8, 100 * i, 8)
    kernel = _vector_add_kernel(mem_a.base, mem_b.base, mem_c.base, n)
    engine = DataflowEngine(kernel, AddressMap([mem_a, mem_b, mem_c]), fu)
    return engine, mem_c


def test_dataflow_functional_correctness():
    engine, mem_c = _setup_engine()
    result = engine.run()
    assert result.ok
    for i in range(8):
        assert mem_c.read(mem_c.base + i * 8, 8) == i + 100 * i
    assert result.cycles > 0 and result.operations > 0


def test_dataflow_deterministic():
    r1 = _setup_engine()[0].run()
    r2 = _setup_engine()[0].run()
    assert (r1.cycles, r1.operations, r1.blocks) == (r2.cycles, r2.operations, r2.blocks)


def test_more_fus_never_slower():
    cycles = []
    for n in (1, 2, 4, 8):
        engine, _ = _setup_engine(FUConfig.uniform(n))
        cycles.append(engine.run().cycles)
    assert cycles == sorted(cycles, reverse=True)
    assert cycles[0] > cycles[-1]          # constraint actually binds


def test_unmapped_access_crashes():
    kernel_builder = ProgramBuilder("bad")
    kernel_builder.label("entry")
    addr = kernel_builder.const(0xDEAD000)
    kernel_builder.load(addr, 0, width=8)
    kernel_builder.halt()
    engine = DataflowEngine(kernel_builder.build(), AddressMap([]), FUConfig())
    result = engine.run()
    assert result.crashed == "mem_fault"


def test_watchdog_timeout():
    b = ProgramBuilder("spin")
    b.label("entry")
    b.label("loop")
    b.nop()
    b.jump("loop")
    engine = DataflowEngine(b.build(), AddressMap([]), FUConfig(), watchdog_cycles=500)
    result = engine.run()
    assert result.crashed == "timeout"


def test_memory_ordering_store_then_load():
    """A load after a store to the same cell must see the stored value even
    under aggressive dataflow scheduling."""
    spm = ScratchpadMemory("S", 64, base=0x40)
    b = ProgramBuilder("ord")
    b.label("entry")
    base = b.const(0x40)
    b.store(b.const(7), base, 0, width=8)
    v = b.load(base, 0, width=8)
    b.store(b.muli(v, 3), base, 8, width=8)
    b.halt()
    engine = DataflowEngine(b.build(), AddressMap([spm]), FUConfig.uniform(8))
    assert engine.run().ok
    assert spm.read(0x48, 8) == 21


def test_out_ops_are_ordered():
    b = ProgramBuilder("outs")
    b.label("entry")
    for value in (1, 2, 3, 4):
        b.out(b.const(value), width=1)
    b.halt()
    engine = DataflowEngine(b.build(), AddressMap([]), FUConfig.uniform(8))
    result = engine.run()
    assert result.output == b"\x01\x02\x03\x04"


def test_fu_config_helpers():
    fu = FUConfig.uniform(4)
    assert fu.alu == fu.mul == fu.fpu == 4 and fu.div == 2
    assert fu.total_units == 14
    assert FUConfig(alu=1, mul=1, fpu=1, div=1).scaled(4).alu == 4
