"""Tests for the 8 accelerator designs and DSA fault campaigns."""

import pytest

from repro.accel.campaign import (
    AccelCampaignSpec,
    accel_golden,
    accel_masks,
    run_accel_campaign,
    run_one_accel_fault,
)
from repro.accel.dataflow import FUConfig
from repro.accel_designs import DESIGNS, PAPER_TARGETS, get_design
from repro.accel_designs.registry import reference_output
from repro.core.faults import FaultMask, FaultModel
from repro.core.outcome import HVFClass, Outcome

DESIGN_NAMES = list(DESIGNS)


@pytest.mark.parametrize("name", DESIGN_NAMES)
def test_design_matches_reference(name):
    accel = get_design(name).instantiate()
    result, output = accel.run_standalone("tiny")
    assert result.ok
    assert output == reference_output(name, "tiny")


@pytest.mark.parametrize("name", DESIGN_NAMES)
def test_design_components_match_table4_roles(name):
    design = get_design(name)
    declared = {d.name for d in design.memories}
    assert set(PAPER_TARGETS[name]) <= declared
    assert set(design.output_memories) <= declared


def test_table4_regbank_roles():
    """BFS carries its graph in register banks; stencils keep coefficients
    in register banks — exactly the Table IV memory types."""
    kinds = {
        (d, m.name): m.kind
        for d in DESIGN_NAMES
        for m in get_design(d).memories
    }
    assert kinds[("bfs", "EDGES")] == "regbank"
    assert kinds[("bfs", "NODES")] == "regbank"
    assert kinds[("stencil2d", "FILTER")] == "regbank"
    assert kinds[("stencil3d", "C_VAR")] == "regbank"
    assert kinds[("fft", "REAL")] == "spm"


@pytest.mark.parametrize("name", DESIGN_NAMES)
def test_design_layout_no_overlap(name):
    accel = get_design(name).instantiate()
    spans = sorted(
        (m.base, m.base + m.size) for m in accel.memories.values()
    )
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
    assert spans[0][0] >= 0x40     # address 0 stays unmapped


def test_golden_cached():
    spec = AccelCampaignSpec(design="spmv", component="VAL", scale="tiny", faults=1)
    a = accel_golden(spec)
    b = accel_golden(spec)
    assert a is b
    assert a.cycles > 0 and a.output


def test_masks_in_bounds():
    spec = AccelCampaignSpec(design="fft", component="REAL", scale="tiny", faults=40)
    golden = accel_golden(spec)
    size = {m.name: m.size for m in get_design("fft").memories}["REAL"]
    for mask in accel_masks(spec, golden):
        assert 0 <= mask.flips[0].bit < size * 8
        assert 0 <= mask.flips[0].cycle < golden.cycles


def test_campaign_classification_consistency():
    spec = AccelCampaignSpec(design="mergesort", component="MAIN", scale="tiny",
                             faults=25, seed=3)
    res = run_accel_campaign(spec)
    assert len(res.records) == 25
    assert res.avf == pytest.approx(res.sdc_avf + res.crash_avf)
    for r in res.records:
        if r.outcome is Outcome.MASKED:
            assert r.hvf is HVFClass.BENIGN
        else:
            assert r.hvf is HVFClass.CORRUPTION   # HVF == AVF for DSA memories


def test_campaign_deterministic():
    spec = AccelCampaignSpec(design="gemm", component="MATRIX1", scale="tiny",
                             faults=10, seed=9)
    a = run_accel_campaign(spec)
    b = run_accel_campaign(spec)
    assert [r.outcome for r in a.records] == [r.outcome for r in b.records]


def test_bfs_faults_crash_not_sdc():
    """Fig 14's sharpest shape: BFS RegBank faults crash (indices)."""
    records = []
    for comp in ("EDGES", "NODES"):
        spec = AccelCampaignSpec(design="bfs", component=comp, scale="tiny",
                                 faults=40, seed=11)
        records += run_accel_campaign(spec).records
    crashes = sum(1 for r in records if r.outcome is Outcome.CRASH)
    sdcs = sum(1 for r in records if r.outcome is Outcome.SDC)
    assert crashes > 0
    assert crashes >= 5 * max(sdcs, 1) or sdcs == 0


def test_fft_faults_sdc_not_crash():
    spec = AccelCampaignSpec(design="fft", component="REAL", scale="tiny",
                             faults=40, seed=11)
    res = run_accel_campaign(spec)
    assert res.crash_avf == 0.0
    assert res.sdc_avf > 0.05


def test_directed_fault_in_input_data_is_sdc():
    """Flip a mantissa bit of a live GEMM input value at cycle 1: SDC."""
    spec = AccelCampaignSpec(design="gemm", component="MATRIX1", scale="tiny", faults=1)
    mask = FaultMask.single("accel:gemm:MATRIX1", 0, 16, cycle=1)
    record = run_one_accel_fault(spec, mask)
    assert record.outcome is Outcome.SDC


def test_directed_fault_in_unused_region_is_masked():
    """tiny-scale GEMM leaves the top of the default-sized SPM untouched."""
    design = get_design("gemm")
    size = {m.name: m.size for m in design.memories}["MATRIX1"]
    spec = AccelCampaignSpec(design="gemm", component="MATRIX1", scale="tiny", faults=1)
    mask = FaultMask.single("accel:gemm:MATRIX1", 0, size * 8 - 1, cycle=1)
    record = run_one_accel_fault(spec, mask)
    assert record.outcome is Outcome.MASKED
    assert record.masked_reason == "masked_unused"


def test_permanent_accel_fault():
    spec = AccelCampaignSpec(design="fft", component="REAL", scale="tiny",
                             faults=10, seed=4, model=FaultModel.STUCK_AT_1)
    res = run_accel_campaign(spec)
    assert len(res.records) == 10
    # stuck-at-1 on live float data corrupts some outputs
    assert res.avf > 0


def test_fu_sweep_changes_cycles():
    lo = AccelCampaignSpec(design="gemm", component="MATRIX1", scale="tiny",
                           faults=1, fu=FUConfig.uniform(1))
    hi = AccelCampaignSpec(design="gemm", component="MATRIX1", scale="tiny",
                           faults=1, fu=FUConfig.uniform(8))
    assert accel_golden(lo).cycles > accel_golden(hi).cycles
