"""SPMV accelerator: sparse matrix-vector multiply, CRS form (MachSuite
spmv/crs analog).

Table IV components: **VAL** (nonzero values, SPM — pure data: SDCs) and
**COLS** (column indices, SPM — consumed by address generation: corrupted
entries read wild vector elements or fall off the map).  Row delimiters and
the dense vector live in untargeted SPMs.
"""

from __future__ import annotations

from repro.accel.cluster import AccelDesign, MemDecl
from repro.accel.dataflow import FUConfig
from repro.accel_designs._common import det_floats, pack_f64, pack_u32
from repro.kernel.ir import BinOp, Cond, Program, ProgramBuilder
from repro.workloads._util import lcg_values

_NNZ_PER_ROW = 4


def _rows(scale: str) -> int:
    return 16 if scale == "tiny" else 32


def _matrix(scale: str) -> tuple[list[float], list[int], list[int]]:
    n = _rows(scale)
    vals = det_floats(503, n * _NNZ_PER_ROW)
    cols = lcg_values(509, n * _NNZ_PER_ROW, 0, n)
    rowdelim = [r * _NNZ_PER_ROW for r in range(n + 1)]
    return vals, cols, rowdelim


def _vector(scale: str) -> list[float]:
    return det_floats(521, _rows(scale))


def build_kernel(mem: dict[str, int], scale: str) -> Program:
    n = _rows(scale)
    b = ProgramBuilder(f"spmv_accel_{n}")
    b.label("entry")
    val = b.const(mem["VAL"])
    cols = b.const(mem["COLS"])
    rowd = b.const(mem["ROWDELIM"])
    vec = b.const(mem["VEC"])
    out = b.const(mem["OUT"])
    nn = b.const(n)

    r = b.var(0)
    b.label("row_loop")
    begin = b.load(b.add(rowd, b.shl(r, b.const(2))), 0, width=4, signed=False)
    end = b.load(b.add(rowd, b.shl(r, b.const(2))), 4, width=4, signed=False)
    acc = b.fvar(0.0)
    k = b.mov(begin)
    b.label("nnz_loop")
    b.br(Cond.GEU, k, end, "store_row", "nnz_body")
    b.label("nnz_body")
    v = b.fload(b.add(val, b.shl(k, b.const(3))), 0)
    col = b.load(b.add(cols, b.shl(k, b.const(2))), 0, width=4, signed=False)
    x = b.fload(b.add(vec, b.shl(col, b.const(3))), 0)
    b.bin(BinOp.FADD, acc, b.bin(BinOp.FMUL, v, x), dest=acc)
    b.inc(k)
    b.jump("nnz_loop")
    b.label("store_row")
    b.store(acc, b.add(out, b.shl(r, b.const(3))), 0, width=8)
    b.inc(r)
    b.br(Cond.LTU, r, nn, "row_loop", "done")
    b.label("done")
    b.halt()
    return b.build()


def inputs(scale: str) -> dict[str, bytes]:
    n = _rows(scale)
    vals, cols, rowdelim = _matrix(scale)
    return {
        "VAL": pack_f64(vals),
        "COLS": pack_u32(cols),
        "ROWDELIM": pack_u32(rowdelim),
        "VEC": pack_f64(_vector(scale)),
        "OUT": bytes(n * 8),
    }


def reference_output(scale: str) -> bytes:
    n = _rows(scale)
    vals, cols, rowdelim = _matrix(scale)
    vec = _vector(scale)
    out = []
    for r in range(n):
        acc = 0.0
        for k in range(rowdelim[r], rowdelim[r + 1]):
            acc += vals[k] * vec[cols[k]]
        out.append(acc)
    return pack_f64(out)


def design() -> AccelDesign:
    n = 32
    nnz = n * _NNZ_PER_ROW
    return AccelDesign(
        name="spmv",
        memories=[
            MemDecl("VAL", nnz * 8, "spm"),
            MemDecl("COLS", nnz * 4, "spm"),
            MemDecl("ROWDELIM", (n + 1) * 4, "spm"),
            MemDecl("VEC", n * 8, "spm"),
            MemDecl("OUT", n * 8, "spm"),
        ],
        build_kernel=build_kernel,
        inputs=inputs,
        output_memories=["OUT"],
        fu=FUConfig(alu=8, mul=4, fpu=4, div=1),
        operations_per_run=lambda scale: float(2 * _rows(scale) * _NNZ_PER_ROW),
        description="CRS sparse matrix-vector multiply",
    )
