"""STENCIL2D accelerator: 3x3 convolution over a 2-D grid (MachSuite
stencil/stencil2d analog).

Table IV components: **ORIG** (input grid, SPM), **SOL** (output grid, SPM)
and **FILTER** (the 3x3 coefficient register bank — tiny but consumed by
every output point, so per-bit vulnerability is high).
"""

from __future__ import annotations

from repro.accel.cluster import AccelDesign, MemDecl
from repro.accel.dataflow import FUConfig
from repro.accel_designs._common import det_floats, pack_f64
from repro.kernel.ir import BinOp, Cond, Program, ProgramBuilder


def _dim(scale: str) -> int:
    return 8 if scale == "tiny" else 16


_FILTER = [0.0625, 0.125, 0.0625, 0.125, 0.25, 0.125, 0.0625, 0.125, 0.0625]


def build_kernel(mem: dict[str, int], scale: str) -> Program:
    n = _dim(scale)
    b = ProgramBuilder(f"stencil2d_accel_{n}")
    b.label("entry")
    orig = b.const(mem["ORIG"])
    sol = b.const(mem["SOL"])
    filt = b.const(mem["FILTER"])
    lim = b.const(n - 1)
    row_bytes = b.const(n * 8)

    r = b.var(1)
    b.label("row")
    c = b.var(1)
    b.label("col")
    acc = b.fvar(0.0)
    # fully unrolled 3x3 tap loop — stencils are the classic unroll target
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            roff = b.mul(b.addi(r, dr), row_bytes)
            addr = b.add(orig, b.add(roff, b.shl(b.addi(c, dc), b.const(3))))
            pix = b.fload(addr, 0)
            coeff = b.fload(
                b.add(filt, b.const(((dr + 1) * 3 + (dc + 1)) * 8)), 0
            )
            b.bin(BinOp.FADD, acc, b.bin(BinOp.FMUL, pix, coeff), dest=acc)
    out_addr = b.add(sol, b.add(b.mul(r, row_bytes), b.shl(c, b.const(3))))
    b.store(acc, out_addr, 0, width=8)
    b.inc(c)
    b.br(Cond.LT, c, lim, "col", "row_next")
    b.label("row_next")
    b.inc(r)
    b.br(Cond.LT, r, lim, "row", "done")
    b.label("done")
    b.halt()
    return b.build()


def _grid(scale: str) -> list[float]:
    n = _dim(scale)
    return det_floats(601, n * n, lo=0.0, hi=100.0)


def inputs(scale: str) -> dict[str, bytes]:
    n = _dim(scale)
    return {
        "ORIG": pack_f64(_grid(scale)),
        "SOL": bytes(n * n * 8),
        "FILTER": pack_f64(_FILTER),
    }


def reference_output(scale: str) -> bytes:
    n = _dim(scale)
    grid = _grid(scale)
    sol = [0.0] * (n * n)
    for r in range(1, n - 1):
        for c in range(1, n - 1):
            acc = 0.0
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    acc += grid[(r + dr) * n + c + dc] * _FILTER[(dr + 1) * 3 + dc + 1]
            sol[r * n + c] = acc
    return pack_f64(sol)


def design() -> AccelDesign:
    n = 16
    return AccelDesign(
        name="stencil2d",
        memories=[
            MemDecl("ORIG", n * n * 8, "spm"),
            MemDecl("SOL", n * n * 8, "spm"),
            MemDecl("FILTER", 9 * 8, "regbank"),
        ],
        build_kernel=build_kernel,
        inputs=inputs,
        output_memories=["SOL"],
        fu=FUConfig(alu=8, mul=4, fpu=6, div=1),
        operations_per_run=lambda scale: float(18 * (_dim(scale) - 2) ** 2),
        description="3x3 convolution with coefficient register bank",
    )
