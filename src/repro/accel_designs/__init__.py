"""MachSuite-analog accelerator designs (the paper's Table IV set).

Eight designs — BFS, FFT, GEMM, MD_KNN, MERGESORT, SPMV, STENCIL2D,
STENCIL3D — with the same component roles the paper injects into
(index-carrying register banks vs data scratchpads, input-once vs
streaming-write memories) at scaled sizes.
"""

from repro.accel_designs.registry import DESIGNS, PAPER_TARGETS, get_design

__all__ = ["DESIGNS", "PAPER_TARGETS", "get_design"]
