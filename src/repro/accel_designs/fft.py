"""FFT accelerator: radix-2 DIT transform (MachSuite fft/strided analog).

Table IV components: **REAL** and **IMG** scratchpads holding the working
signal (also the output).  Twiddle factors live in an untargeted ROM-like
SPM.  Faults in either SPM corrupt pure data — every non-masked effect is
an SDC (Figure 14), with REAL/IMG nearly symmetric.
"""

from __future__ import annotations

import math

from repro.accel.cluster import AccelDesign, MemDecl
from repro.accel.dataflow import FUConfig
from repro.accel_designs._common import det_floats, pack_f64
from repro.kernel.ir import BinOp, Cond, Program, ProgramBuilder


def _n(scale: str) -> int:
    return 32 if scale == "tiny" else 64


def _twiddles(n: int) -> tuple[list[float], list[float]]:
    tw_re, tw_im = [], []
    log_n = n.bit_length() - 1
    for s in range(1, log_n + 1):
        half = 1 << (s - 1)
        for k in range(half):
            angle = -2.0 * math.pi * k / (1 << s)
            tw_re.append(math.cos(angle))
            tw_im.append(math.sin(angle))
    return tw_re, tw_im


def build_kernel(mem: dict[str, int], scale: str) -> Program:
    n = _n(scale)
    log_n = n.bit_length() - 1
    b = ProgramBuilder(f"fft_accel_{n}")
    b.label("entry")
    reb = b.const(mem["REAL"])
    imb = b.const(mem["IMG"])
    twrb = b.const(mem["TWID_RE"])
    twib = b.const(mem["TWID_IM"])
    nn = b.const(n)

    # data arrives bit-reverse-permuted via DMA; run the butterfly stages
    stage = b.var(1)
    tw_base = b.var(0)
    b.label("stage_loop")
    m = b.shl(b.const(1), stage)
    half = b.shr(m, b.const(1))
    grp = b.var(0)
    b.label("group_loop")
    k = b.var(0)
    b.label("bfly")
    tw_idx = b.add(tw_base, k)
    wr = b.fload(b.add(twrb, b.shl(tw_idx, b.const(3))), 0)
    wi = b.fload(b.add(twib, b.shl(tw_idx, b.const(3))), 0)
    top8 = b.shl(b.add(grp, k), b.const(3))
    bot8 = b.shl(b.add(b.add(grp, k), half), b.const(3))
    ar = b.fload(b.add(reb, top8), 0)
    ai = b.fload(b.add(imb, top8), 0)
    br_ = b.fload(b.add(reb, bot8), 0)
    bi = b.fload(b.add(imb, bot8), 0)
    tr = b.bin(BinOp.FSUB, b.bin(BinOp.FMUL, wr, br_), b.bin(BinOp.FMUL, wi, bi))
    ti = b.bin(BinOp.FADD, b.bin(BinOp.FMUL, wr, bi), b.bin(BinOp.FMUL, wi, br_))
    b.store(b.bin(BinOp.FADD, ar, tr), b.add(reb, top8), 0, width=8)
    b.store(b.bin(BinOp.FADD, ai, ti), b.add(imb, top8), 0, width=8)
    b.store(b.bin(BinOp.FSUB, ar, tr), b.add(reb, bot8), 0, width=8)
    b.store(b.bin(BinOp.FSUB, ai, ti), b.add(imb, bot8), 0, width=8)
    b.inc(k)
    b.br(Cond.LTU, k, half, "bfly", "group_next")
    b.label("group_next")
    b.add(grp, m, dest=grp)
    b.br(Cond.LTU, grp, nn, "group_loop", "stage_next")
    b.label("stage_next")
    b.add(tw_base, half, dest=tw_base)
    b.inc(stage)
    b.br(Cond.LTU, stage, b.const(log_n + 1), "stage_loop", "done")
    b.label("done")
    b.halt()
    return b.build()


def _bitrev_signal(scale: str) -> list[float]:
    n = _n(scale)
    log_n = n.bit_length() - 1
    signal = det_floats(223, n)
    out = [0.0] * n
    for i in range(n):
        r = 0
        for bit in range(log_n):
            if i & (1 << bit):
                r |= 1 << (log_n - 1 - bit)
        out[i] = signal[r]
    return out


def inputs(scale: str) -> dict[str, bytes]:
    n = _n(scale)
    tw_re, tw_im = _twiddles(n)
    return {
        "REAL": pack_f64(_bitrev_signal(scale)),
        "IMG": bytes(n * 8),
        "TWID_RE": pack_f64(tw_re),
        "TWID_IM": pack_f64(tw_im),
    }


def reference_output(scale: str) -> bytes:
    n = _n(scale)
    re = _bitrev_signal(scale)
    im = [0.0] * n
    tw_re, tw_im = _twiddles(n)
    tw_base = 0
    stage = 1
    log_n = n.bit_length() - 1
    while stage <= log_n:
        m = 1 << stage
        half = m >> 1
        for grp in range(0, n, m):
            for k in range(half):
                wr, wi = tw_re[tw_base + k], tw_im[tw_base + k]
                top, bot = grp + k, grp + k + half
                tr = wr * re[bot] - wi * im[bot]
                ti = wr * im[bot] + wi * re[bot]
                re[top], re[bot] = re[top] + tr, re[top] - tr
                im[top], im[bot] = im[top] + ti, im[top] - ti
        tw_base += half
        stage += 1
    return pack_f64(re) + pack_f64(im)


def design() -> AccelDesign:
    n = 64
    return AccelDesign(
        name="fft",
        memories=[
            MemDecl("IMG", n * 8, "spm"),
            MemDecl("REAL", n * 8, "spm"),
            MemDecl("TWID_RE", (n - 1) * 8, "spm"),
            MemDecl("TWID_IM", (n - 1) * 8, "spm"),
        ],
        build_kernel=build_kernel,
        inputs=inputs,
        output_memories=["REAL", "IMG"],
        fu=FUConfig(alu=8, mul=4, fpu=6, div=1),
        operations_per_run=lambda scale: 5.0 * _n(scale) * (_n(scale).bit_length() - 1),
        description="radix-2 DIT FFT over REAL/IMG scratchpads",
    )
