"""BFS accelerator: breadth-first traversal (MachSuite bfs/queue analog).

Table IV components: **EDGES** and **NODES** register banks, holding the CSR
graph — edge targets and per-node (edge_begin, edge_count) records.  Both
carry *indices consumed by the accelerator's address generation*, which is
why nearly all BFS fault effects are crashes (out-of-range scratchpad
accesses or traversal blow-ups caught by the watchdog) in Figure 14.
"""

from __future__ import annotations

from repro.accel.cluster import AccelDesign, MemDecl
from repro.accel.dataflow import FUConfig
from repro.accel_designs._common import pack_u32
from repro.kernel.ir import Cond, Program, ProgramBuilder
from repro.workloads._util import lcg_values

_INF = 0xFFFFFFFF


def _graph(scale: str) -> tuple[int, list[int], list[int]]:
    """Deterministic connected digraph in CSR form: (n, node_recs, edges)."""
    n = 16 if scale == "tiny" else 32
    degree = 4
    targets = lcg_values(211, n * degree, 0, n)
    edges: list[int] = []
    node_recs: list[int] = []
    for v in range(n):
        node_recs.append(len(edges))         # edge_begin
        node_recs.append(degree)             # edge_count
        edges.append((v + 1) % n)            # ring edge keeps it connected
        edges.extend(targets[v * degree : v * degree + degree - 1])
    return n, node_recs, edges


def build_kernel(mem: dict[str, int], scale: str) -> Program:
    n, _, edges = _graph(scale)
    b = ProgramBuilder(f"bfs_accel_{n}")
    b.label("entry")
    nodes_base = b.const(mem["NODES"])
    edges_base = b.const(mem["EDGES"])
    level_base = b.const(mem["LEVEL"])
    queue_base = b.const(mem["QUEUE"])
    nn = b.const(n)
    inf = b.const(_INF)

    # init levels to INF, push root (node 0)
    i0 = b.var(0)
    b.label("init")
    b.store(inf, b.add(level_base, b.shl(i0, b.const(2))), 0, width=4)
    b.inc(i0)
    b.br(Cond.LTU, i0, nn, "init", "seed")
    b.label("seed")
    b.store(b.const(0), level_base, 0, width=4)       # level[0] = 0
    b.store(b.const(0), queue_base, 0, width=4)       # queue[0] = node 0
    head = b.var(0)
    tail = b.var(1)

    b.label("bfs_loop")
    b.br(Cond.GEU, head, tail, "done", "visit")
    b.label("visit")
    node = b.load(b.add(queue_base, b.shl(head, b.const(2))), 0, width=4, signed=False)
    b.inc(head)
    lvl = b.load(b.add(level_base, b.shl(node, b.const(2))), 0, width=4, signed=False)
    nrec = b.add(nodes_base, b.shl(node, b.const(3)))
    begin = b.load(nrec, 0, width=4, signed=False)
    count = b.load(nrec, 4, width=4, signed=False)
    e = b.var(0)
    b.label("edge_loop")
    b.br(Cond.GEU, e, count, "bfs_loop", "edge_body")
    b.label("edge_body")
    eidx = b.add(begin, e)
    tgt = b.load(b.add(edges_base, b.shl(eidx, b.const(2))), 0, width=4, signed=False)
    tlvl_addr = b.add(level_base, b.shl(tgt, b.const(2)))
    tlvl = b.load(tlvl_addr, 0, width=4, signed=False)
    b.br(Cond.LTU, tlvl, inf, "edge_next", "discover")
    b.label("discover")
    newlvl = b.addi(lvl, 1)
    b.store(newlvl, tlvl_addr, 0, width=4)
    b.store(tgt, b.add(queue_base, b.shl(tail, b.const(2))), 0, width=4)
    b.inc(tail)
    b.label("edge_next")
    b.inc(e)
    b.jump("edge_loop")

    b.label("done")
    b.halt()
    return b.build()


def inputs(scale: str) -> dict[str, bytes]:
    n, node_recs, edges = _graph(scale)
    return {
        "NODES": pack_u32(node_recs),
        "EDGES": pack_u32(edges),
        "LEVEL": bytes(n * 4),
        "QUEUE": bytes(n * 4 * 2),
    }


def reference_output(scale: str) -> bytes:
    n, node_recs, edges = _graph(scale)
    level = [_INF] * n
    level[0] = 0
    queue = [0]
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        begin, count = node_recs[2 * v], node_recs[2 * v + 1]
        for e in range(count):
            t = edges[begin + e]
            if level[t] == _INF:
                level[t] = level[v] + 1
                queue.append(t)
    return pack_u32(level)


def design() -> AccelDesign:
    n = 32  # default-scale sizing for the memory map
    degree = 4
    return AccelDesign(
        name="bfs",
        memories=[
            MemDecl("EDGES", n * degree * 4, "regbank", ports=2),
            MemDecl("NODES", n * 2 * 4, "regbank", ports=2),
            MemDecl("LEVEL", n * 4, "spm"),
            MemDecl("QUEUE", n * 4 * 2, "spm"),
        ],
        build_kernel=build_kernel,
        inputs=inputs,
        output_memories=["LEVEL"],
        fu=FUConfig(alu=8, mul=4, fpu=1, div=1),
        operations_per_run=lambda scale: float(
            (16 if scale == "tiny" else 32) * degree
        ),
        description="CSR breadth-first search; RegBanks hold graph indices",
    )
