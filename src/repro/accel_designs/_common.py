"""Shared helpers for accelerator design kernels."""

from __future__ import annotations

import struct

from repro.kernel.ir import ProgramBuilder
from repro.workloads._util import lcg_values


def pack_u32(values: list[int]) -> bytes:
    return b"".join(struct.pack("<I", v & 0xFFFFFFFF) for v in values)


def pack_u64(values: list[int]) -> bytes:
    return b"".join(struct.pack("<Q", v & ((1 << 64) - 1)) for v in values)


def pack_f64(values: list[float]) -> bytes:
    return b"".join(struct.pack("<d", v) for v in values)


def det_floats(seed: int, count: int, lo: float = -4.0, hi: float = 4.0) -> list[float]:
    """Deterministic doubles in [lo, hi)."""
    raw = lcg_values(seed, count, 0, 1 << 20)
    span = hi - lo
    return [lo + (v / float(1 << 20)) * span for v in raw]


def accel_builder(name: str) -> ProgramBuilder:
    """A ProgramBuilder for an accelerator kernel (no data segment)."""
    return ProgramBuilder(name)


def scale_factor(scale: str) -> int:
    """Kernel size scaling: 'tiny' halves the default problem sizes."""
    return 1 if scale == "tiny" else 2
