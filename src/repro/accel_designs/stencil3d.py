"""STENCIL3D accelerator: 7-point stencil over a 3-D grid (MachSuite
stencil/stencil3d analog).

Table IV components: **ORIG**/**SOL** scratchpads and **C_VAR**, an 8-byte
register bank holding the two stencil coefficients — the smallest injection
target in the suite, yet consumed by every interior point.
"""

from __future__ import annotations

from repro.accel.cluster import AccelDesign, MemDecl
from repro.accel.dataflow import FUConfig
from repro.accel_designs._common import det_floats, pack_f64
from repro.kernel.ir import BinOp, Cond, Program, ProgramBuilder


def _dim(scale: str) -> int:
    return 5 if scale == "tiny" else 8


def _coeffs() -> list[float]:
    return [0.5, 0.0833]  # centre weight, neighbour weight (packed in C_VAR)


def build_kernel(mem: dict[str, int], scale: str) -> Program:
    n = _dim(scale)
    b = ProgramBuilder(f"stencil3d_accel_{n}")
    b.label("entry")
    orig = b.const(mem["ORIG"])
    sol = b.const(mem["SOL"])
    cvar = b.const(mem["C_VAR"])
    lim = b.const(n - 1)
    plane = b.const(n * n * 8)
    row = b.const(n * 8)

    # C_VAR is 8 bytes in Table IV: two fixed-point (x1e4) u32 coefficients
    ten_k = b.fconst(10000.0)

    z = b.var(1)
    b.label("zloop")
    y = b.var(1)
    b.label("yloop")
    x = b.var(1)
    b.label("xloop")
    # coefficients re-fetched per point, like unhoisted LLVM-IR loads in a
    # SALAM datapath (keeps the C_VAR register bank architecturally live)
    c0_raw = b.load(cvar, 0, width=4, signed=False)
    c0 = b.bin(BinOp.FDIV, b.fcvt(c0_raw), ten_k)
    c1_raw = b.load(cvar, 4, width=4, signed=False)
    c1 = b.bin(BinOp.FDIV, b.fcvt(c1_raw), ten_k)
    center_off = b.add(
        b.add(b.mul(z, plane), b.mul(y, row)), b.shl(x, b.const(3))
    )
    centre = b.fload(b.add(orig, center_off), 0)
    acc = b.bin(BinOp.FMUL, centre, c0)
    neigh = b.fvar(0.0)
    for dz, dy, dx in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
        off = b.add(
            b.add(b.mul(b.addi(z, dz), plane), b.mul(b.addi(y, dy), row)),
            b.shl(b.addi(x, dx), b.const(3)),
        )
        v = b.fload(b.add(orig, off), 0)
        b.bin(BinOp.FADD, neigh, v, dest=neigh)
    b.bin(BinOp.FADD, acc, b.bin(BinOp.FMUL, neigh, c1), dest=acc)
    b.store(acc, b.add(sol, center_off), 0, width=8)
    b.inc(x)
    b.br(Cond.LT, x, lim, "xloop", "ynext")
    b.label("ynext")
    b.inc(y)
    b.br(Cond.LT, y, lim, "yloop", "znext")
    b.label("znext")
    b.inc(z)
    b.br(Cond.LT, z, lim, "zloop", "done")
    b.label("done")
    b.halt()
    return b.build()


def _grid(scale: str) -> list[float]:
    n = _dim(scale)
    return det_floats(701, n * n * n, lo=0.0, hi=50.0)


def _cvar_bytes() -> bytes:
    import struct

    c0, c1 = _coeffs()
    return struct.pack("<II", int(c0 * 10000), int(c1 * 10000))


def inputs(scale: str) -> dict[str, bytes]:
    n = _dim(scale)
    return {
        "ORIG": pack_f64(_grid(scale)),
        "SOL": bytes(n * n * n * 8),
        "C_VAR": _cvar_bytes(),
    }


def reference_output(scale: str) -> bytes:
    import struct

    n = _dim(scale)
    grid = _grid(scale)
    raw = _cvar_bytes()
    c0_fp, c1_fp = struct.unpack("<II", raw)
    c0, c1 = c0_fp / 10000.0, c1_fp / 10000.0
    sol = [0.0] * (n * n * n)
    for z in range(1, n - 1):
        for y in range(1, n - 1):
            for x in range(1, n - 1):
                idx = z * n * n + y * n + x
                neigh = (
                    grid[idx + n * n] + grid[idx - n * n]
                    + grid[idx + n] + grid[idx - n]
                    + grid[idx + 1] + grid[idx - 1]
                )
                sol[idx] = grid[idx] * c0 + neigh * c1
    return pack_f64(sol)


def design() -> AccelDesign:
    n = 8
    return AccelDesign(
        name="stencil3d",
        memories=[
            MemDecl("ORIG", n * n * n * 8, "spm"),
            MemDecl("SOL", n * n * n * 8, "spm"),
            MemDecl("C_VAR", 8, "regbank"),
        ],
        build_kernel=build_kernel,
        inputs=inputs,
        output_memories=["SOL"],
        fu=FUConfig(alu=8, mul=4, fpu=6, div=1),
        operations_per_run=lambda scale: float(9 * (_dim(scale) - 2) ** 3),
        description="7-point 3-D stencil with coefficient register bank",
    )
