"""GEMM accelerator: dense matrix multiply (MachSuite gemm/ncubed analog).

Components mirror Table IV: MATRIX1 (input A, SPM, DMA'd once), MATRIX2
(input B, SPM, untargeted in the paper), MATRIX3 (output C, SPM, written
continuously by the datapath).  The inner dot-product loop is unrolled 8×,
giving the functional-unit sweep of Figure 17 real parallelism to harvest.
"""

from __future__ import annotations

from repro.accel.cluster import AccelDesign, MemDecl
from repro.accel.dataflow import FUConfig
from repro.accel_designs._common import det_floats, pack_f64
from repro.kernel.ir import BinOp, Cond, Program, ProgramBuilder

_UNROLL = 8


def _dim(scale: str) -> int:
    return 8 if scale == "tiny" else 16


def build_kernel(mem: dict[str, int], scale: str) -> Program:
    n = _dim(scale)
    b = ProgramBuilder(f"gemm_accel_{n}")
    b.label("entry")
    a_base = b.const(mem["MATRIX1"])
    b_base = b.const(mem["MATRIX2"])
    c_base = b.const(mem["MATRIX3"])
    nn = b.const(n)
    row_bytes = b.const(n * 8)

    i = b.var(0)
    b.label("row")
    j = b.var(0)
    b.label("col")
    acc = b.fvar(0.0)
    a_row = b.add(a_base, b.mul(i, row_bytes))
    k = b.var(0)
    b.label("dot")
    # 8-way unrolled multiply-accumulate
    partials = []
    for u in range(_UNROLL):
        ku = b.addi(k, u)
        av = b.fload(b.add(a_row, b.shl(ku, b.const(3))), 0)
        brow = b.add(b_base, b.mul(ku, row_bytes))
        bv = b.fload(b.add(brow, b.shl(j, b.const(3))), 0)
        partials.append(b.bin(BinOp.FMUL, av, bv))
    # reduction tree
    while len(partials) > 1:
        partials = [
            b.bin(BinOp.FADD, partials[t], partials[t + 1])
            for t in range(0, len(partials), 2)
        ]
    b.bin(BinOp.FADD, acc, partials[0], dest=acc)
    b.addi(k, _UNROLL, dest=k)
    b.br(Cond.LTU, k, nn, "dot", "store_c")
    b.label("store_c")
    c_addr = b.add(c_base, b.add(b.mul(i, row_bytes), b.shl(j, b.const(3))))
    b.store(acc, c_addr, 0, width=8)
    b.inc(j)
    b.br(Cond.LTU, j, nn, "col", "row_next")
    b.label("row_next")
    b.inc(i)
    b.br(Cond.LTU, i, nn, "row", "done")
    b.label("done")
    b.halt()
    return b.build()


def inputs(scale: str) -> dict[str, bytes]:
    n = _dim(scale)
    a = det_floats(101, n * n)
    bm = det_floats(103, n * n)
    return {
        "MATRIX1": pack_f64(a),
        "MATRIX2": pack_f64(bm),
        "MATRIX3": bytes(n * n * 8),   # zero-initialized output
    }


def reference_output(scale: str) -> bytes:
    """Functional GEMM for test oracles."""
    n = _dim(scale)
    a = det_floats(101, n * n)
    bm = det_floats(103, n * n)
    c = [0.0] * (n * n)
    for i in range(n):
        for j in range(n):
            acc = 0.0
            for k in range(n):
                acc += a[i * n + k] * bm[k * n + j]
            c[i * n + j] = acc
    return pack_f64(c)


def design() -> AccelDesign:
    n_default = _dim("default")
    return AccelDesign(
        name="gemm",
        memories=[
            MemDecl("MATRIX1", n_default * n_default * 8, "spm"),
            MemDecl("MATRIX2", n_default * n_default * 8, "spm"),
            MemDecl("MATRIX3", n_default * n_default * 8, "spm"),
        ],
        build_kernel=build_kernel,
        inputs=inputs,
        output_memories=["MATRIX3"],
        fu=FUConfig(alu=8, mul=4, fpu=8, div=1),
        operations_per_run=lambda scale: 2.0 * _dim(scale) ** 3,
        description="dense matrix multiply, 8x unrolled dot product",
    )
