"""MERGESORT accelerator: bottom-up merge sort (MachSuite sort/merge analog).

Table IV components: **MAIN** (the array being sorted) and **TEMP** (the
merge staging buffer), both SPMs.  TEMP's AVF sits well below MAIN's: its
cells are rewritten by the continuous merge-write stream, so most faults
are overwritten before being consumed (Figure 14's MERGESORT asymmetry).
"""

from __future__ import annotations

from repro.accel.cluster import AccelDesign, MemDecl
from repro.accel.dataflow import FUConfig
from repro.accel_designs._common import pack_u64
from repro.kernel.ir import BinOp, Cond, Program, ProgramBuilder
from repro.workloads._util import lcg_values


def _count(scale: str) -> int:
    return 32 if scale == "tiny" else 64


def _values(scale: str) -> list[int]:
    return lcg_values(401, _count(scale), 0, 1 << 32)


def build_kernel(mem: dict[str, int], scale: str) -> Program:
    n = _count(scale)
    b = ProgramBuilder(f"mergesort_accel_{n}")
    b.label("entry")
    main = b.const(mem["MAIN"])
    temp = b.const(mem["TEMP"])
    nn = b.const(n)

    width = b.var(1)
    b.label("pass_loop")
    lo = b.var(0)
    b.label("merge_loop")
    mid = b.add(lo, width)
    hi = b.add(mid, width)
    # clamp mid/hi to n
    mle = b.bin(BinOp.SLTU, nn, mid)
    b.select(mle, nn, mid, dest=mid)
    hle = b.bin(BinOp.SLTU, nn, hi)
    b.select(hle, nn, hi, dest=hi)

    a = b.mov(lo)
    c = b.mov(mid)
    out = b.mov(lo)
    b.label("pick_loop")
    b.br(Cond.GEU, out, hi, "copy_back", "pick")
    b.label("pick")
    a_done = b.bin(BinOp.SLTU, a, mid)
    c_done = b.bin(BinOp.SLTU, c, hi)
    b.br(Cond.EQ, a_done, b.const(0), "take_c", "check_c")
    b.label("check_c")
    b.br(Cond.EQ, c_done, b.const(0), "take_a", "compare")
    b.label("compare")
    va = b.load(b.add(main, b.shl(a, b.const(3))), 0, width=8)
    vc = b.load(b.add(main, b.shl(c, b.const(3))), 0, width=8)
    b.br(Cond.LTU, vc, va, "take_c", "take_a")
    b.label("take_a")
    va2 = b.load(b.add(main, b.shl(a, b.const(3))), 0, width=8)
    b.store(va2, b.add(temp, b.shl(out, b.const(3))), 0, width=8)
    b.inc(a)
    b.jump("advance")
    b.label("take_c")
    vc2 = b.load(b.add(main, b.shl(c, b.const(3))), 0, width=8)
    b.store(vc2, b.add(temp, b.shl(out, b.const(3))), 0, width=8)
    b.inc(c)
    b.label("advance")
    b.inc(out)
    b.jump("pick_loop")

    b.label("copy_back")
    cb = b.mov(lo)
    b.label("copy_loop")
    b.br(Cond.GEU, cb, hi, "merge_next", "copy_body")
    b.label("copy_body")
    tv = b.load(b.add(temp, b.shl(cb, b.const(3))), 0, width=8)
    b.store(tv, b.add(main, b.shl(cb, b.const(3))), 0, width=8)
    b.inc(cb)
    b.jump("copy_loop")

    b.label("merge_next")
    b.add(lo, b.shl(width, b.const(1)), dest=lo)
    b.br(Cond.LTU, lo, nn, "merge_loop", "pass_next")
    b.label("pass_next")
    b.shl(width, b.const(1), dest=width)
    b.br(Cond.LTU, width, nn, "pass_loop", "done")
    b.label("done")
    b.halt()
    return b.build()


def inputs(scale: str) -> dict[str, bytes]:
    n = _count(scale)
    return {"MAIN": pack_u64(_values(scale)), "TEMP": bytes(n * 8)}


def reference_output(scale: str) -> bytes:
    return pack_u64(sorted(_values(scale)))


def design() -> AccelDesign:
    n = 64
    return AccelDesign(
        name="mergesort",
        memories=[
            MemDecl("MAIN", n * 8, "spm"),
            MemDecl("TEMP", n * 8, "spm"),
        ],
        build_kernel=build_kernel,
        inputs=inputs,
        output_memories=["MAIN"],
        fu=FUConfig(alu=8, mul=4, fpu=1, div=1),
        operations_per_run=lambda scale: float(
            _count(scale) * max(1, _count(scale).bit_length() - 1)
        ),
        description="bottom-up merge sort over MAIN with TEMP staging",
    )
