"""CPU ports of the four Figure-16 algorithms (GEMM, BFS, FFT, KNN).

For the paper's performance-aware CPU-vs-DSA comparison (Section V-G), the
same four algorithms are "properly implemented to run and modelled in both
computing systems".  These builders produce mini-IR programs for the OoO
CPU that consume the *same inputs* as the accelerator designs and emit the
*same result bytes* (via the output port), so AVF and OPF are measured over
identical computations.

Registered as workloads ``gemm_cpu`` / ``bfs_cpu`` / ``fft_cpu`` /
``knn_cpu``.
"""

from __future__ import annotations

from repro.accel_designs import bfs as bfs_mod
from repro.accel_designs import fft as fft_mod
from repro.accel_designs import gemm as gemm_mod
from repro.accel_designs import md_knn as knn_mod
from repro.kernel.ir import BinOp, Cond, Program, ProgramBuilder
from repro.workloads.suite import register_workload


def _emit_buffer(b: ProgramBuilder, base, nbytes: int) -> None:
    """OUT every 8-byte word of a buffer (the CPU-side result channel)."""
    count = b.const(nbytes // 8)
    i = b.var(0)
    b.label("emit_loop")
    v = b.load(b.add(base, b.shl(i, b.const(3))), 0, width=8)
    b.out(v, width=8)
    b.inc(i)
    b.br(Cond.LTU, i, count, "emit_loop", "emit_done")
    b.label("emit_done")
    b.halt()


def build_gemm_cpu(scale: str = "tiny") -> Program:
    n = gemm_mod._dim(scale)
    blobs = gemm_mod.inputs(scale)
    b = ProgramBuilder(f"gemm_cpu_{n}")
    a_sym = b.data_bytes("A", blobs["MATRIX1"])
    b_sym = b.data_bytes("B", blobs["MATRIX2"])
    c_sym = b.data_zeros("C", n * n * 8)

    b.label("entry")
    b.checkpoint()
    a = b.la(a_sym)
    bb = b.la(b_sym)
    c = b.la(c_sym)
    nn = b.const(n)
    row = b.const(n * 8)
    i = b.var(0)
    b.label("rows")
    j = b.var(0)
    b.label("cols")
    acc = b.fvar(0.0)
    arow = b.add(a, b.mul(i, row))
    k = b.var(0)
    b.label("dot")
    av = b.fload(b.add(arow, b.shl(k, b.const(3))), 0)
    bv = b.fload(b.add(bb, b.add(b.mul(k, row), b.shl(j, b.const(3)))), 0)
    b.bin(BinOp.FADD, acc, b.bin(BinOp.FMUL, av, bv), dest=acc)
    b.inc(k)
    b.br(Cond.LTU, k, nn, "dot", "store")
    b.label("store")
    b.store(acc, b.add(c, b.add(b.mul(i, row), b.shl(j, b.const(3)))), 0, width=8)
    b.inc(j)
    b.br(Cond.LTU, j, nn, "cols", "next_row")
    b.label("next_row")
    b.inc(i)
    b.br(Cond.LTU, i, nn, "rows", "emit")
    b.label("emit")
    b.switch_cpu()
    _emit_buffer(b, b.la(c_sym), n * n * 8)
    return b.build()


def build_bfs_cpu(scale: str = "tiny") -> Program:
    n, node_recs, edges = bfs_mod._graph(scale)
    b = ProgramBuilder(f"bfs_cpu_{n}")
    nodes_sym = b.data_words("nodes", node_recs, width=4)
    edges_sym = b.data_words("edges", edges, width=4)
    level_sym = b.data_zeros("level", n * 4)
    queue_sym = b.data_zeros("queue", n * 4 * 2)

    b.label("entry")
    b.checkpoint()
    nodes = b.la(nodes_sym)
    edgs = b.la(edges_sym)
    level = b.la(level_sym)
    queue = b.la(queue_sym)
    nn = b.const(n)
    inf = b.const(0xFFFFFFFF)

    i0 = b.var(0)
    b.label("init")
    b.store(inf, b.add(level, b.shl(i0, b.const(2))), 0, width=4)
    b.inc(i0)
    b.br(Cond.LTU, i0, nn, "init", "seed")
    b.label("seed")
    b.store(b.const(0), level, 0, width=4)
    b.store(b.const(0), queue, 0, width=4)
    head = b.var(0)
    tail = b.var(1)
    b.label("loop")
    b.br(Cond.GEU, head, tail, "emit", "visit")
    b.label("visit")
    node = b.load(b.add(queue, b.shl(head, b.const(2))), 0, width=4, signed=False)
    b.inc(head)
    lvl = b.load(b.add(level, b.shl(node, b.const(2))), 0, width=4, signed=False)
    nrec = b.add(nodes, b.shl(node, b.const(3)))
    begin = b.load(nrec, 0, width=4, signed=False)
    count = b.load(nrec, 4, width=4, signed=False)
    e = b.var(0)
    b.label("edge")
    b.br(Cond.GEU, e, count, "loop", "body")
    b.label("body")
    tgt = b.load(b.add(edgs, b.shl(b.add(begin, e), b.const(2))), 0, width=4, signed=False)
    taddr = b.add(level, b.shl(tgt, b.const(2)))
    tlvl = b.load(taddr, 0, width=4, signed=False)
    b.br(Cond.LTU, tlvl, inf, "edge_next", "discover")
    b.label("discover")
    b.store(b.addi(lvl, 1), taddr, 0, width=4)
    b.store(tgt, b.add(queue, b.shl(tail, b.const(2))), 0, width=4)
    b.inc(tail)
    b.label("edge_next")
    b.inc(e)
    b.jump("edge")
    b.label("emit")
    b.switch_cpu()
    _emit_buffer(b, b.la(level_sym), n * 4)
    return b.build()


def build_fft_cpu(scale: str = "tiny") -> Program:
    n = fft_mod._n(scale)
    log_n = n.bit_length() - 1
    blobs = fft_mod.inputs(scale)
    b = ProgramBuilder(f"fft_cpu_{n}")
    re_sym = b.data_bytes("re", blobs["REAL"])
    im_sym = b.data_bytes("im", blobs["IMG"])
    twr_sym = b.data_bytes("twr", blobs["TWID_RE"])
    twi_sym = b.data_bytes("twi", blobs["TWID_IM"])

    b.label("entry")
    b.checkpoint()
    reb = b.la(re_sym)
    imb = b.la(im_sym)
    twrb = b.la(twr_sym)
    twib = b.la(twi_sym)
    nn = b.const(n)

    stage = b.var(1)
    tw_base = b.var(0)
    b.label("stage")
    m = b.shl(b.const(1), stage)
    half = b.shr(m, b.const(1))
    grp = b.var(0)
    b.label("group")
    k = b.var(0)
    b.label("bfly")
    tw = b.add(tw_base, k)
    wr = b.fload(b.add(twrb, b.shl(tw, b.const(3))), 0)
    wi = b.fload(b.add(twib, b.shl(tw, b.const(3))), 0)
    top8 = b.shl(b.add(grp, k), b.const(3))
    bot8 = b.shl(b.add(b.add(grp, k), half), b.const(3))
    ar = b.fload(b.add(reb, top8), 0)
    ai = b.fload(b.add(imb, top8), 0)
    br_ = b.fload(b.add(reb, bot8), 0)
    bi = b.fload(b.add(imb, bot8), 0)
    tr = b.bin(BinOp.FSUB, b.bin(BinOp.FMUL, wr, br_), b.bin(BinOp.FMUL, wi, bi))
    ti = b.bin(BinOp.FADD, b.bin(BinOp.FMUL, wr, bi), b.bin(BinOp.FMUL, wi, br_))
    b.store(b.bin(BinOp.FADD, ar, tr), b.add(reb, top8), 0, width=8)
    b.store(b.bin(BinOp.FADD, ai, ti), b.add(imb, top8), 0, width=8)
    b.store(b.bin(BinOp.FSUB, ar, tr), b.add(reb, bot8), 0, width=8)
    b.store(b.bin(BinOp.FSUB, ai, ti), b.add(imb, bot8), 0, width=8)
    b.inc(k)
    b.br(Cond.LTU, k, half, "bfly", "group_next")
    b.label("group_next")
    b.add(grp, m, dest=grp)
    b.br(Cond.LTU, grp, nn, "group", "stage_next")
    b.label("stage_next")
    b.add(tw_base, half, dest=tw_base)
    b.inc(stage)
    b.br(Cond.LTU, stage, b.const(log_n + 1), "stage", "emit_re")

    b.label("emit_re")
    b.switch_cpu()
    count = b.const(n)
    i = b.var(0)
    b.label("er_loop")
    v = b.load(b.add(reb, b.shl(i, b.const(3))), 0, width=8)
    b.out(v, width=8)
    b.inc(i)
    b.br(Cond.LTU, i, count, "er_loop", "emit_im")
    b.label("emit_im")
    j = b.var(0)
    b.label("ei_loop")
    v2 = b.load(b.add(imb, b.shl(j, b.const(3))), 0, width=8)
    b.out(v2, width=8)
    b.inc(j)
    b.br(Cond.LTU, j, count, "ei_loop", "fin")
    b.label("fin")
    b.halt()
    return b.build()


def build_knn_cpu(scale: str = "tiny") -> Program:
    n = knn_mod._atoms(scale)
    blobs = knn_mod.inputs(scale)
    b = ProgramBuilder(f"knn_cpu_{n}")
    pos_sym = b.data_bytes("pos", blobs["POS"])
    nl_sym = b.data_bytes("nl", blobs["NLADDR"])
    fx_sym = b.data_zeros("fx", n * 8)

    b.label("entry")
    b.checkpoint()
    pos = b.la(pos_sym)
    nl = b.la(nl_sym)
    fx = b.la(fx_sym)
    nn = b.const(n)
    knn = b.const(knn_mod._NEIGHBOURS)
    half = b.fconst(0.5)
    one = b.fconst(1.0)

    i = b.var(0)
    b.label("atoms")
    i3 = b.muli(i, 24)
    xi = b.fload(b.add(pos, i3), 0)
    yi = b.fload(b.add(pos, i3), 8)
    zi = b.fload(b.add(pos, i3), 16)
    force = b.fvar(0.0)
    j = b.var(0)
    b.label("neigh")
    nidx = b.add(b.mul(i, knn), j)
    ja = b.load(b.add(nl, b.shl(nidx, b.const(2))), 0, width=4, signed=False)
    j3 = b.muli(ja, 24)
    dx = b.bin(BinOp.FSUB, xi, b.fload(b.add(pos, j3), 0))
    dy = b.bin(BinOp.FSUB, yi, b.fload(b.add(pos, j3), 8))
    dz = b.bin(BinOp.FSUB, zi, b.fload(b.add(pos, j3), 16))
    r2 = b.bin(
        BinOp.FADD,
        b.bin(BinOp.FADD, b.bin(BinOp.FMUL, dx, dx), b.bin(BinOp.FMUL, dy, dy)),
        b.bin(BinOp.FMUL, dz, dz),
    )
    inv = b.bin(BinOp.FDIV, one, r2)
    r6 = b.bin(BinOp.FMUL, b.bin(BinOp.FMUL, inv, inv), inv)
    pot = b.bin(BinOp.FSUB, r6, b.bin(BinOp.FMUL, inv, half))
    b.bin(BinOp.FADD, force, b.bin(BinOp.FMUL, pot, dx), dest=force)
    b.inc(j)
    b.br(Cond.LTU, j, knn, "neigh", "store")
    b.label("store")
    b.store(force, b.add(fx, b.shl(i, b.const(3))), 0, width=8)
    b.inc(i)
    b.br(Cond.LTU, i, nn, "atoms", "emit")
    b.label("emit")
    b.switch_cpu()
    _emit_buffer(b, b.la(fx_sym), n * 8)
    return b.build()


#: maps CPU workload name -> (builder, matching accelerator design)
CPU_PORTS = {
    "gemm_cpu": (build_gemm_cpu, "gemm"),
    "bfs_cpu": (build_bfs_cpu, "bfs"),
    "fft_cpu": (build_fft_cpu, "fft"),
    "knn_cpu": (build_knn_cpu, "md_knn"),
}

for _name, (_builder, _design) in CPU_PORTS.items():
    register_workload(_name, _builder)
