"""MD_KNN accelerator: molecular-dynamics k-nearest-neighbour force kernel
(MachSuite md/knn analog).

Table IV components: **NLADDR** (neighbour-list indices, SPM — corrupted
entries become wild position reads: crash-capable) and **FORCEX**
(per-atom force output, SPM — pure data: SDCs).  Atom positions live in an
untargeted SPM.
"""

from __future__ import annotations

from repro.accel.cluster import AccelDesign, MemDecl
from repro.accel.dataflow import FUConfig
from repro.accel_designs._common import det_floats, pack_f64, pack_u32
from repro.kernel.ir import BinOp, Cond, Program, ProgramBuilder
from repro.workloads._util import lcg_values

_NEIGHBOURS = 8


def _atoms(scale: str) -> int:
    return 16 if scale == "tiny" else 32


def _positions(scale: str) -> list[float]:
    return det_floats(307, _atoms(scale) * 3, lo=0.5, hi=7.5)


def _neighbour_list(scale: str) -> list[int]:
    n = _atoms(scale)
    raw = lcg_values(311, n * _NEIGHBOURS, 0, n - 1)
    # neighbour j of atom i, skipping i itself
    return [v if v < i else v + 1 for i in range(n) for v in raw[i * _NEIGHBOURS : (i + 1) * _NEIGHBOURS]]


def build_kernel(mem: dict[str, int], scale: str) -> Program:
    n = _atoms(scale)
    b = ProgramBuilder(f"md_knn_accel_{n}")
    b.label("entry")
    pos = b.const(mem["POS"])
    nl = b.const(mem["NLADDR"])
    fx = b.const(mem["FORCEX"])
    nn = b.const(n)
    knn = b.const(_NEIGHBOURS)

    i = b.var(0)
    b.label("atom_loop")
    i3 = b.muli(i, 24)
    xi = b.fload(b.add(pos, i3), 0)
    yi = b.fload(b.add(pos, i3), 8)
    zi = b.fload(b.add(pos, i3), 16)
    force = b.fvar(0.0)
    j = b.var(0)
    b.label("neigh_loop")
    nidx = b.add(b.mul(i, knn), j)
    jatom = b.load(b.add(nl, b.shl(nidx, b.const(2))), 0, width=4, signed=False)
    j3 = b.muli(jatom, 24)
    xj = b.fload(b.add(pos, j3), 0)
    yj = b.fload(b.add(pos, j3), 8)
    zj = b.fload(b.add(pos, j3), 16)
    dx = b.bin(BinOp.FSUB, xi, xj)
    dy = b.bin(BinOp.FSUB, yi, yj)
    dz = b.bin(BinOp.FSUB, zi, zj)
    r2 = b.bin(
        BinOp.FADD,
        b.bin(BinOp.FADD, b.bin(BinOp.FMUL, dx, dx), b.bin(BinOp.FMUL, dy, dy)),
        b.bin(BinOp.FMUL, dz, dz),
    )
    # Lennard-Jones-flavoured force magnitude: 1/r^6 - 0.5/r^3
    inv_r2 = b.bin(BinOp.FDIV, b.fconst(1.0), r2)
    r6 = b.bin(BinOp.FMUL, b.bin(BinOp.FMUL, inv_r2, inv_r2), inv_r2)
    r3 = b.bin(BinOp.FMUL, inv_r2, b.fconst(0.5))
    pot = b.bin(BinOp.FSUB, r6, r3)
    fx_c = b.bin(BinOp.FMUL, pot, dx)
    b.bin(BinOp.FADD, force, fx_c, dest=force)
    b.inc(j)
    b.br(Cond.LTU, j, knn, "neigh_loop", "store_force")
    b.label("store_force")
    b.store(force, b.add(fx, b.shl(i, b.const(3))), 0, width=8)
    b.inc(i)
    b.br(Cond.LTU, i, nn, "atom_loop", "done")
    b.label("done")
    b.halt()
    return b.build()


def inputs(scale: str) -> dict[str, bytes]:
    n = _atoms(scale)
    return {
        "POS": pack_f64(_positions(scale)),
        "NLADDR": pack_u32(_neighbour_list(scale)),
        "FORCEX": bytes(n * 8),
    }


def reference_output(scale: str) -> bytes:
    n = _atoms(scale)
    pos = _positions(scale)
    nl = _neighbour_list(scale)
    forces = []
    for i in range(n):
        xi, yi, zi = pos[3 * i : 3 * i + 3]
        force = 0.0
        for j in range(_NEIGHBOURS):
            ja = nl[i * _NEIGHBOURS + j]
            xj, yj, zj = pos[3 * ja : 3 * ja + 3]
            dx, dy, dz = xi - xj, yi - yj, zi - zj
            r2 = dx * dx + dy * dy + dz * dz
            inv_r2 = 1.0 / r2
            pot = inv_r2 * inv_r2 * inv_r2 - inv_r2 * 0.5
            force += pot * dx
        forces.append(force)
    return pack_f64(forces)


def design() -> AccelDesign:
    n = 32
    return AccelDesign(
        name="md_knn",
        memories=[
            MemDecl("NLADDR", n * _NEIGHBOURS * 4, "spm"),
            MemDecl("FORCEX", n * 8, "spm"),
            MemDecl("POS", n * 3 * 8, "spm"),
        ],
        build_kernel=build_kernel,
        inputs=inputs,
        output_memories=["FORCEX"],
        fu=FUConfig(alu=8, mul=4, fpu=6, div=2),
        operations_per_run=lambda scale: float(_atoms(scale) * _NEIGHBOURS * 12),
        description="k-nearest-neighbour LJ force kernel",
    )
