"""Design registry + the Table IV injection-target index."""

from __future__ import annotations

from repro.accel.cluster import AccelDesign
from repro.accel_designs import (
    bfs,
    fft,
    gemm,
    md_knn,
    mergesort,
    spmv,
    stencil2d,
    stencil3d,
)

_MODULES = {
    "bfs": bfs,
    "fft": fft,
    "gemm": gemm,
    "md_knn": md_knn,
    "mergesort": mergesort,
    "spmv": spmv,
    "stencil2d": stencil2d,
    "stencil3d": stencil3d,
}

DESIGNS: dict[str, AccelDesign] = {name: mod.design() for name, mod in _MODULES.items()}

#: the components the paper injects into per design (Table IV)
PAPER_TARGETS: dict[str, list[str]] = {
    "bfs": ["EDGES", "NODES"],
    "fft": ["IMG", "REAL"],
    "gemm": ["MATRIX1", "MATRIX3"],
    "md_knn": ["NLADDR", "FORCEX"],
    "mergesort": ["MAIN", "TEMP"],
    "spmv": ["VAL", "COLS"],
    "stencil2d": ["ORIG", "SOL", "FILTER"],
    "stencil3d": ["ORIG", "SOL", "C_VAR"],
}


def get_design(name: str) -> AccelDesign:
    try:
        return DESIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown accelerator design {name!r}; available: {', '.join(DESIGNS)}"
        ) from None


def reference_output(name: str, scale: str) -> bytes:
    """Functional reference result bytes for a design (test oracle)."""
    return _MODULES[name].reference_output(scale)
