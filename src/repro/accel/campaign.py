"""SFI campaigns against accelerator memories (the paper's Section V-E).

Mirrors the CPU campaign flow: golden standalone run → uniform fault sample
over one component's bits and the kernel's cycle span → one run per fault →
Masked / SDC / Crash classification.  For SPM/RegBank targets the paper
notes HVF and AVF coincide (any consumed corruption is architecturally
visible), so records carry ``hvf = CORRUPTION`` exactly for non-masked runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.accel.cluster import Accelerator
from repro.accel.dataflow import DataflowEngine, FUConfig
from repro.accel.spm import ScratchpadMemory
from repro.accel_designs import get_design
from repro.core.faultmodels import FaultModelSpec, accel_sample, validate_for
from repro.core.faults import FaultMask, FaultModel
from repro.core.journal import CampaignJournal
from repro.core.liveness import (
    LivenessMap,
    attach_accel_recorder,
    mask_provably_dead,
)
from repro.core.outcome import HVFClass, Outcome
from repro.core.campaign import (
    FaultRecord,
    SimulatorFault,
    liveness_masked_record,
    quarantine_record,
)
from repro.core.protection import (
    CORRECT,
    DETECT,
    MachineCheckError,
    ProtectionConfig,
    ProtectionScheme,
)
from repro.core.sampling import AdaptiveSampling, error_margin_for
from repro.core.sanitizer import (
    DEFAULT_HANG_CYCLES,
    DEFAULT_SANITIZER,
    AccelAuditor,
    IntegrityViolation,
    SanitizerPolicy,
)


@dataclass(frozen=True)
class AccelCampaignSpec:
    """A DSA fault campaign (picklable)."""

    design: str
    component: str
    scale: str = "tiny"
    model: FaultModel = FaultModel.TRANSIENT
    faults: int = 100
    seed: int = 1
    fu: FUConfig | None = None
    watchdog_factor: int = 8
    #: per-structure protection assignment; None = unprotected.  Kept None
    #: (never an all-``none`` config) so the spec fingerprint — and every
    #: journal byte — of an unprotected campaign is identical to pre-
    #: protection output (see ``repro.core.journal.spec_to_dict``).
    protection: ProtectionConfig | None = None
    #: bit-liveness pre-analysis mode (None = off, "on", "audit") — same
    #: semantics and byte-identity contract as the CPU
    #: :class:`repro.core.campaign.CampaignSpec`.
    liveness: str | None = None
    #: fault-generator selection (None = uniform default) — same
    #: byte-identity and fingerprint-provenance contract as the CPU spec;
    #: accelerator campaigns accept single-flip generators only
    #: (``uniform``, ``error-map``).
    fault_model: FaultModelSpec | None = None


#: protected accelerator memories decode in 8-byte (64-bit) code words —
#: the natural SPM access grain, and the same word width the CPU regfile
#: schemes default to
ACCEL_WORD_BITS = 64


def accel_structure_name(spec: AccelCampaignSpec) -> str:
    """The mask structure name accel flips carry."""
    return f"accel:{spec.design}:{spec.component}"


def accel_scheme(spec: AccelCampaignSpec) -> ProtectionScheme | None:
    """The active protection scheme for the spec's component, if any."""
    if spec.protection is None:
        return None
    return spec.protection.scheme_for(accel_structure_name(spec))


def accel_population_bits(spec: AccelCampaignSpec, size: int) -> int:
    """Injectable bits of one component: raw bytes, protection-extended.

    A protected memory's fault population includes the (virtual) check
    bits of every :data:`ACCEL_WORD_BITS`-bit code word; an unprotected
    one is exactly ``size * 8``, byte-identical to pre-protection output.
    """
    scheme = accel_scheme(spec)
    if scheme is None:
        return size * 8
    word_bytes = ACCEL_WORD_BITS // 8
    if size % word_bytes:
        raise ValueError(
            f"{spec.component}: size {size} is not a multiple of the "
            f"{word_bytes}-byte protection code word"
        )
    return (size // word_bytes) * scheme.extended_bits(ACCEL_WORD_BITS)


class AccelInjector:
    """Applies one fault mask to a live accelerator memory.

    With a protection ``scheme``, the memory decodes in
    :data:`ACCEL_WORD_BITS`-bit code words: flips at or beyond the data
    bits (``mem.size * 8``) are *virtual check bits* — word-major, never
    materialized in storage — and any access overlapping the flip's word
    runs the scheme decoder.  Correctable patterns repair in place
    (``CORRECTED``); detectable ones raise
    :class:`~repro.core.protection.MachineCheckError` (``DETECTED`` →
    ``Outcome.DUE``).
    """

    (UNINJECTED, ARMED, READ, MASKED_UNUSED, MASKED_OVERWRITTEN,
     CORRECTED, DETECTED) = range(7)

    def __init__(self, mask: FaultMask, mem: ScratchpadMemory,
                 scheme: ProtectionScheme | None = None,
                 structure: str = ""):
        if len(mask.flips) != 1:
            raise ValueError("accelerator campaigns use single-flip masks")
        if scheme is not None and mask.model is not FaultModel.TRANSIENT:
            raise ValueError(
                "protection modeling supports transient faults only "
                f"(got {mask.model.value})"
            )
        self.mask = mask
        self.flip = mask.flips[0]
        self.mem = mem
        self.scheme = scheme
        self.structure = structure or self.flip.structure
        self.state = self.UNINJECTED
        self.data_total = mem.size * 8
        if scheme is not None:
            check = scheme.check_bits(ACCEL_WORD_BITS)
            if self.flip.bit < self.data_total:
                self.word = self.flip.bit // ACCEL_WORD_BITS
                self.local_bit = self.flip.bit % ACCEL_WORD_BITS
            else:
                off = self.flip.bit - self.data_total
                self.word = off // check
                self.local_bit = ACCEL_WORD_BITS + off % check
        mem.probe = self

    @property
    def byte(self) -> int:
        return self.flip.bit // 8

    @property
    def virtual(self) -> bool:
        """A check-bit flip: bookkeeping-only, never stored."""
        return self.scheme is not None and self.flip.bit >= self.data_total

    def _word_range(self) -> tuple[int, int]:
        """Byte range of the protected code word the flip belongs to."""
        lo = self.word * (ACCEL_WORD_BITS // 8)
        return lo, lo + ACCEL_WORD_BITS // 8

    def tick(self, engine: DataflowEngine) -> None:
        if self.state is not self.UNINJECTED or engine.cycle < self.flip.cycle:
            return
        if self.mask.model is FaultModel.TRANSIENT:
            if self.scheme is not None:
                # protection decodes whole words: the unused fast path only
                # applies when the entire code word is untouched
                lo, hi = self._word_range()
                if not any(self.mem.byte_used(b) for b in range(lo, hi)):
                    self.state = self.MASKED_UNUSED
                    return
                if not self.virtual:
                    self.mem.flip_bit(self.flip.bit)
            else:
                if not self.mem.byte_used(self.byte):
                    self.state = self.MASKED_UNUSED
                    return
                self.mem.flip_bit(self.flip.bit)
        else:
            self.mem.force_bit(self.flip.bit, self.mask.model.stuck_value)
        self.state = self.ARMED

    # ------------------------------------------------------------ protection

    def _overlaps_word(self, lo: int, hi: int) -> bool:
        wlo, whi = self._word_range()
        return lo < whi and wlo < hi

    def _decode(self, escape_state: int, written=None) -> None:
        """Run the word's error pattern through the scheme decoder.

        ``written(local_bit)`` marks bits a concurrent write already
        replaced (the probe fires after the mutation): corrections skip
        them, and an escaped pattern they cover is simply overwritten.
        """
        decode = self.scheme.decode({self.local_bit}, ACCEL_WORD_BITS)
        base = self.word * ACCEL_WORD_BITS
        for b in decode.fix_bits:
            if written is None or not written(b):
                self.mem.flip_bit(base + b)
        if decode.verdict == CORRECT:
            self.state = self.CORRECTED
        elif decode.verdict == DETECT:
            self.state = self.DETECTED
            raise MachineCheckError(f"{self.scheme.name}:{self.structure}")
        elif written is not None and (self.virtual or written(self.local_bit)):
            self.state = self.MASKED_OVERWRITTEN
        else:
            self.state = escape_state

    def finish(self) -> None:
        """End-of-run patrol scrub: decode a still-armed protected word.

        :meth:`ScratchpadMemory.dump` fires no probe, so without this a
        resident detectable error in an output word would be read out
        silently instead of raising its machine check (DUE)."""
        if self.scheme is not None and self.state == self.ARMED:
            self._decode(self.ARMED)

    # ------------------------------------------------------------ probe

    def on_read(self, mem, lo: int, hi: int) -> None:
        if self.state != self.ARMED:
            return
        if self.scheme is not None:
            if self._overlaps_word(lo, hi):
                self._decode(self.READ)
            return
        if lo <= self.byte < hi:
            self.state = self.READ

    def on_write(self, mem, lo: int, hi: int) -> None:
        if self.scheme is not None and self.state == self.ARMED:
            if self._overlaps_word(lo, hi):
                # read-modify-write: the decoder sees the old word before
                # the merge, then the re-encode erases covered flips
                self._decode(
                    self.READ,
                    written=lambda b: (b < ACCEL_WORD_BITS
                                       and lo <= self.word * 8 + b // 8 < hi),
                )
            return
        if not (lo <= self.byte < hi):
            return
        if self.mask.model.permanent:
            if self.state != self.UNINJECTED:
                mem.force_bit(self.flip.bit, self.mask.model.stuck_value)
        elif self.state == self.ARMED:
            self.state = self.MASKED_OVERWRITTEN

    # ------------------------------------------------------------ verdicts

    @property
    def early_masked(self) -> bool:
        return self.mask.model is FaultModel.TRANSIENT and self.state in (
            self.MASKED_UNUSED,
            self.MASKED_OVERWRITTEN,
            self.CORRECTED,
        )

    def masked_reason(self) -> str | None:
        return {
            self.MASKED_UNUSED: "masked_unused",
            self.MASKED_OVERWRITTEN: "masked_overwritten",
            self.CORRECTED: "corrected",
        }.get(self.state)


@dataclass
class AccelGolden:
    cycles: int            # kernel execution cycles (injection window)
    total_cycles: int      # incl. DMA
    output: bytes
    operations: int
    #: bit-liveness dead-window map over every local memory (None when the
    #: golden run was simulated without liveness recording)
    liveness: LivenessMap | None = field(default=None, repr=False)


@dataclass
class AccelCampaignResult:
    spec: AccelCampaignSpec
    records: list[FaultRecord]
    golden: AccelGolden
    population_bits: int
    #: masks satisfied from a resume journal instead of fresh simulation
    resumed: int = 0
    #: adaptive sequential sampling stopped the campaign before the fixed
    #: fault budget (``spec.faults``); ``error_margin`` is the achieved one
    stopped_early: bool = False

    @property
    def valid_records(self) -> list[FaultRecord]:
        return [r for r in self.records if r.outcome is not Outcome.SIM_FAULT]

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.records if r.outcome is outcome)

    @property
    def quarantined(self) -> int:
        return self.count(Outcome.SIM_FAULT)

    @property
    def retried(self) -> int:
        return sum(1 for r in self.records if r.retries)

    @property
    def timeouts(self) -> int:
        return sum(1 for r in self.records if r.crash_reason == "timeout")

    @property
    def hangs(self) -> int:
        return sum(1 for r in self.records if r.crash_reason == "hang")

    @property
    def integrity_quarantined(self) -> int:
        return sum(1 for r in self.records if r.sim_error_kind == "integrity")

    @property
    def liveness_skips(self) -> int:
        """Records classified analytically by the liveness pre-analysis."""
        return sum(1 for r in self.records if r.classified_by == "liveness")

    @property
    def liveness_disagreements(self) -> int:
        """Audit-mode quarantines where simulation contradicted the claim."""
        return sum(1 for r in self.records if r.sim_error_kind == "liveness")

    @property
    def avf(self) -> float | None:
        """``None`` for a degenerate campaign (no valid record to judge)."""
        valid = self.valid_records
        if not valid:
            return None
        return 1 - sum(1 for r in valid if r.outcome is Outcome.MASKED) / len(valid)

    @property
    def sdc_avf(self) -> float | None:
        valid = self.valid_records
        return self.count(Outcome.SDC) / len(valid) if valid else None

    @property
    def crash_avf(self) -> float | None:
        valid = self.valid_records
        return self.count(Outcome.CRASH) / len(valid) if valid else None

    @property
    def due_avf(self) -> float | None:
        """Detected-uncorrectable share of the AVF (machine checks)."""
        valid = self.valid_records
        return self.count(Outcome.DUE) / len(valid) if valid else None

    @property
    def corrected(self) -> int:
        """Runs whose flip the protection scheme repaired in place."""
        return sum(1 for r in self.records if r.masked_reason == "corrected")

    @property
    def coverage(self) -> float | None:
        """``(corrected + DUE) / (corrected + DUE + SDC + CRASH)``."""
        caught = self.corrected + self.count(Outcome.DUE)
        exercised = caught + self.count(Outcome.SDC) + self.count(Outcome.CRASH)
        return caught / exercised if exercised else None

    @property
    def residual_sdc_avf(self) -> float | None:
        """SDC remaining *despite* protection (multi-bit escapes)."""
        return self.sdc_avf

    @property
    def error_margin(self) -> float | None:
        """Achieved margin of the valid sample (``None`` when it is empty)."""
        n = len(self.valid_records)
        if n == 0:
            return None
        return error_margin_for(n, self.population_bits)

    def summary(self) -> dict:
        out = {
            "design": self.spec.design,
            "component": self.spec.component,
            "model": self.spec.model.value,
            "faults": len(self.records),
            "budget": self.spec.faults,
            "n_valid": len(self.valid_records),
            "avf": self.avf,
            "sdc_avf": self.sdc_avf,
            "crash_avf": self.crash_avf,
            "error_margin": self.error_margin,
            "stopped_early": self.stopped_early,
            "golden_cycles": self.golden.cycles,
            "quarantined": self.quarantined,
            "retried": self.retried,
            "timeouts": self.timeouts,
            "resumed": self.resumed,
        }
        if self.spec.protection is not None and self.spec.protection.enabled:
            # protection-only keys: an unprotected summary renders exactly
            # as it always has
            scheme = accel_scheme(self.spec)
            out["protection"] = scheme.name if scheme is not None else "none"
            out["due_avf"] = self.due_avf
            out["corrected"] = self.corrected
            out["coverage"] = self.coverage
            out["residual_sdc_avf"] = self.residual_sdc_avf
        if self.spec.liveness is not None:
            # liveness-only keys: an unset summary renders exactly as it
            # always has
            out["liveness"] = self.spec.liveness
            out["liveness_skips"] = self.liveness_skips
            out["liveness_skip_rate"] = (
                self.liveness_skips / len(self.records)
                if self.records else None
            )
            if self.spec.liveness == "audit":
                out["liveness_disagreements"] = self.liveness_disagreements
        if self.spec.fault_model is not None:
            # fault-model-only key: a default-generator summary renders
            # exactly as it always has
            out["fault_model"] = self.spec.fault_model.describe()
        return out


class AccelReplayContext:
    """Reusable post-DMA accelerator state for back-to-back fault runs.

    Instantiating a design and re-DMAing its inputs dominates the cost of
    short accelerator fault runs.  The context does both exactly once,
    snapshots every local memory (data + touched map + access counters,
    :meth:`ScratchpadMemory.snapshot`), and :meth:`reset` restores the
    snapshot — so each fault run starts from the identical armed state a
    fresh instantiation would reach, without paying for it.
    """

    def __init__(self, spec: AccelCampaignSpec):
        self.spec = spec
        self.accel = get_design(spec.design).instantiate(spec.fu)
        self.dma_in = self.accel.load_inputs(spec.scale)
        self._snaps = {
            name: mem.snapshot() for name, mem in self.accel.memories.items()
        }

    def reset(self) -> Accelerator:
        """Restore every memory to its freshly-loaded state, drop probes."""
        for name, mem in self.accel.memories.items():
            mem.restore(self._snaps[name])
            mem.probe = None
        return self.accel


_ACCEL_GOLDEN_CACHE: dict[tuple, AccelGolden] = {}


def accel_golden(spec: AccelCampaignSpec, *, liveness: bool = False) -> AccelGolden:
    """Fault-free reference run, cached per (design, scale, fu).

    With ``liveness=True`` every local memory gets a bit-liveness recorder
    (see :mod:`repro.core.liveness`) and ``AccelGolden.liveness`` carries
    the dead-window map, keyed by ``accel:<design>:<memory>`` structure
    names so it serves any component of the design.  A cached golden
    without the map is re-simulated once to collect it.
    """
    key = (spec.design, spec.scale, spec.fu)
    cached = _ACCEL_GOLDEN_CACHE.get(key)
    if cached is not None and (not liveness or cached.liveness is not None):
        return cached
    accel = get_design(spec.design).instantiate(spec.fu)
    dma_in = accel.load_inputs(spec.scale)
    engine = DataflowEngine(accel.kernel(spec.scale), accel.memmap, accel.fu)
    # arm the recorders only now: the DMA precedes cycle 0, and taping its
    # writes would falsely claim cycle-0 flips as dead
    recorders = (
        [
            attach_accel_recorder(mem, engine, f"accel:{spec.design}:{name}")
            for name, mem in accel.memories.items()
        ]
        if liveness else None
    )
    result = engine.run()
    if not result.ok:
        raise RuntimeError(f"golden accel run failed: {result.crashed}")
    output = b""
    for name in accel.design.output_memories:
        mem = accel.memories[name]
        output += mem.dump(0, mem.used_extent())
    golden = AccelGolden(
        cycles=result.cycles,
        total_cycles=result.cycles + dma_in,
        output=output,
        operations=result.operations,
        liveness=(
            LivenessMap.from_recorders(recorders)
            if recorders is not None
            else (cached.liveness if cached is not None else None)
        ),
    )
    _ACCEL_GOLDEN_CACHE[key] = golden
    return golden


def accel_masks(spec: AccelCampaignSpec, golden: AccelGolden) -> list[FaultMask]:
    """Single-flip sample over one component's bits × kernel cycles.

    Dispatches through the fault-model registry
    (:mod:`repro.core.faultmodels`); an unset ``fault_model`` draws the
    historical uniform stream byte-for-byte.  Like
    :func:`repro.core.sampling.generate_masks`, draws are without
    replacement over ``(bit, cycle)`` sites so the sample size honestly
    reflects ``error_margin_for``'s distinct-sample assumption.
    """
    design = get_design(spec.design)
    size = {d.name: d.size for d in design.memories}[spec.component]
    total_bits = accel_population_bits(spec, size)
    return accel_sample(
        spec.fault_model,
        structure=accel_structure_name(spec),
        total_bits=total_bits,
        cycles=golden.cycles,
        count=spec.faults,
        model=spec.model,
        seed=spec.seed,
    )


def _simulate_one_accel(spec: AccelCampaignSpec, mask: FaultMask,
                        golden: AccelGolden,
                        ctx: AccelReplayContext | None = None,
                        sanitizer: SanitizerPolicy | None = None,
                        hang_cycles: int = DEFAULT_HANG_CYCLES) -> FaultRecord:
    """One injected accelerator run, unguarded (simulator bugs raise
    :class:`SimulatorFault` for :func:`run_one_accel_fault` to quarantine,
    sanitizer hits raise :class:`IntegrityViolation` for it to escalate)."""
    max_cycles = golden.cycles * spec.watchdog_factor + 1000
    try:
        if ctx is not None:
            accel = ctx.reset()
        else:
            accel = get_design(spec.design).instantiate(spec.fu)
            accel.load_inputs(spec.scale)
        injector = AccelInjector(mask, accel.mem(spec.component),
                                 scheme=accel_scheme(spec),
                                 structure=accel_structure_name(spec))
        engine = DataflowEngine(
            accel.kernel(spec.scale),
            accel.memmap,
            accel.fu,
            watchdog_cycles=max_cycles,
            hang_cycles=hang_cycles,
        )
        engine.injector = injector
        auditor = (
            AccelAuditor(sanitizer, injector, mask)
            if sanitizer is not None and sanitizer.enabled else None
        )
        engine.sanitizer = auditor
        result = engine.run()
        if result.ok:
            # patrol scrub before the output dump (dump() fires no probe):
            # a resident detectable error must machine-check, not read out
            injector.finish()
        if auditor is not None:
            auditor.audit(engine)   # final audit of the terminal state
    except MachineCheckError as exc:
        # protection flagged an uncorrectable error: a first-class DUE —
        # the machine *knows* it failed, unlike an SDC
        return FaultRecord(
            mask=mask,
            outcome=Outcome.DUE,
            hvf=HVFClass.CORRUPTION,
            cycles=engine.cycle,
            activated=False,
            max_cycles=max_cycles,
            detected_by=exc.detected_by,
        )
    except IntegrityViolation:
        # impossible state caught mid-run — escalate upstream untouched
        raise
    except Exception as exc:
        raise SimulatorFault(exc, snapshot={
            "design": spec.design,
            "component": spec.component,
            "mask_id": mask.mask_id,
        }) from exc

    if injector.early_masked and result.ok:
        outcome, reason = Outcome.MASKED, injector.masked_reason()
        hvf = HVFClass.BENIGN
        output = golden.output
    elif not result.ok:
        outcome, reason, hvf = Outcome.CRASH, None, HVFClass.CORRUPTION
        output = b""
    else:
        output = b""
        for name in accel.design.output_memories:
            mem = accel.memories[name]
            output += mem.dump(0, mem.used_extent())
        if output == golden.output:
            outcome = Outcome.MASKED
            reason = injector.masked_reason() or "masked_silent"
            hvf = HVFClass.BENIGN
        else:
            outcome, reason, hvf = Outcome.SDC, None, HVFClass.CORRUPTION
    return FaultRecord(
        mask=mask,
        outcome=outcome,
        hvf=hvf,
        cycles=result.cycles,
        masked_reason=reason,
        crash_reason=result.crashed,
        activated=injector.state == AccelInjector.READ,
        max_cycles=max_cycles,
    )


def _escalate_accel_integrity(
    spec: AccelCampaignSpec,
    mask: FaultMask,
    golden: AccelGolden,
    ctx: AccelReplayContext | None,
    sanitizer: SanitizerPolicy | None,
    hang_cycles: int,
    violation: IntegrityViolation,
) -> FaultRecord:
    """Differential escalation, accelerator flavor: when the failing run
    reused an :class:`AccelReplayContext`, re-simulate once from a pristine
    instantiation — a clean pristine run labels the violation
    ``checkpoint-divergence`` (the snapshot/reset replay path is the
    suspect), a dirty one ``deterministic``.  The mask is quarantined
    either way."""
    retries = 0
    if ctx is not None:
        retries = 1
        try:
            _simulate_one_accel(spec, mask, golden, None,
                                sanitizer=sanitizer, hang_cycles=hang_cycles)
        except (IntegrityViolation, SimulatorFault):
            divergence = "deterministic"
        else:
            divergence = "checkpoint-divergence"
    else:
        divergence = "deterministic"
    report = replace(violation.report, divergence=divergence)
    return quarantine_record(mask, "integrity", report.describe(),
                             retries=retries, integrity=report)


def _liveness_claim_accel(spec: AccelCampaignSpec, mask: FaultMask,
                          golden: AccelGolden) -> FaultRecord | None:
    """The analytic record for ``mask``, or None when simulation is needed."""
    if spec.liveness is None or golden.liveness is None:
        return None
    protected = (
        frozenset({accel_structure_name(spec)})
        if accel_scheme(spec) is not None else frozenset()
    )
    if mask_provably_dead(mask, golden.liveness, protected=protected):
        return liveness_masked_record(mask)
    return None


def _simulate_accel_with_retry(
    spec: AccelCampaignSpec,
    mask: FaultMask,
    golden: AccelGolden,
    ctx: AccelReplayContext | None,
    san: SanitizerPolicy,
    hang_cycles: int,
) -> FaultRecord:
    """The supervised simulate path: quarantine boundary + one retry."""
    try:
        return _simulate_one_accel(spec, mask, golden, ctx,
                                   sanitizer=san, hang_cycles=hang_cycles)
    except IntegrityViolation as viol:
        return _escalate_accel_integrity(spec, mask, golden, ctx, san,
                                         hang_cycles, viol)
    except SimulatorFault as first:
        first_text = first.describe()
    try:
        # retry from a pristine instantiation: if the context itself is the
        # corruption vector, the fresh build either succeeds (flaky) or
        # reproduces the fault deterministically
        record = _simulate_one_accel(spec, mask, golden,
                                     sanitizer=san, hang_cycles=hang_cycles)
    except IntegrityViolation as viol:
        return _escalate_accel_integrity(spec, mask, golden, None, san,
                                         hang_cycles, viol)
    except SimulatorFault as second:
        return quarantine_record(
            mask, "deterministic", second.describe(), retries=1
        )
    return replace(record, retries=record.retries + 1,
                   sim_error_kind="flaky", error=first_text)


def run_one_accel_fault(spec: AccelCampaignSpec, mask: FaultMask,
                        ctx: AccelReplayContext | None = None, *,
                        sanitizer: SanitizerPolicy | None = None,
                        hang_cycles: int = DEFAULT_HANG_CYCLES) -> FaultRecord:
    """Simulate one accelerator fault with the crash-quarantine boundary:
    a simulator exception is retried once with the same mask, then
    quarantined — never aborting the campaign (same policy as the CPU
    driver's :func:`repro.core.campaign.run_one_fault`).  Sanitizer hits
    take the differential escalation path and quarantine as
    ``sim_error_kind="integrity"``.

    With ``spec.liveness`` set, the golden run's dead-window map is
    consulted first, exactly like the CPU driver: ``"on"`` returns the
    analytic record for a provably-dead site without simulating, and
    ``"audit"`` simulates it anyway, quarantining any disagreement with
    ``sim_error_kind="liveness"``."""
    golden = accel_golden(spec, liveness=spec.liveness is not None)
    san = sanitizer if sanitizer is not None else DEFAULT_SANITIZER
    analytic = _liveness_claim_accel(spec, mask, golden)
    if analytic is not None and spec.liveness == "on":
        return analytic
    record = _simulate_accel_with_retry(spec, mask, golden, ctx, san,
                                        hang_cycles)
    if analytic is None:
        return record
    if record.outcome is Outcome.SIM_FAULT:
        return record   # a simulator failure is not evidence either way
    if record.outcome is Outcome.MASKED:
        return analytic  # agreement: journal the exact bytes "on" would have
    return quarantine_record(
        mask, "liveness",
        f"liveness pre-analysis claimed mask {mask.mask_id} provably Masked "
        f"but simulation produced {record.outcome.value}"
        + (f" ({record.crash_reason})" if record.crash_reason else ""),
    )


def run_accel_campaign(
    spec: AccelCampaignSpec,
    masks: list[FaultMask] | None = None,
    *,
    journal: str | Path | None = None,
    resume: str | Path | None = None,
    sanitizer: SanitizerPolicy | None = None,
    hang_cycles: int = DEFAULT_HANG_CYCLES,
    telemetry=None,
    adaptive: AdaptiveSampling | None = None,
) -> AccelCampaignResult:
    """Run a DSA fault-injection campaign (journaled + resumable like the
    CPU driver: see :func:`repro.core.campaign.run_campaign`).

    ``sanitizer``/``hang_cycles`` mirror the CPU driver: invariant audits
    at the policy stride (default sampled) and a deterministic
    dataflow-progress hang detector (0 disables).  ``telemetry`` is the
    same observational :class:`repro.core.telemetry.Telemetry` hub the CPU
    driver accepts; journals are byte-identical with it on or off.
    ``adaptive`` is the same sequential stopping rule the CPU driver
    takes: stop at the first batch boundary whose achieved error margin
    over the valid records reaches the target, making ``spec.faults`` a
    budget rather than an exact count."""
    if (spec.protection is not None and spec.protection.enabled
            and spec.model is not FaultModel.TRANSIENT):
        raise ValueError(
            "protection modeling supports transient faults only; run "
            f"permanent-fault campaigns unprotected (model={spec.model.value})"
        )
    if spec.liveness not in (None, "on", "audit"):
        raise ValueError(
            f"unknown liveness mode {spec.liveness!r}; "
            "use None (off), 'on' or 'audit'"
        )
    validate_for(spec.fault_model, accel=True, model=spec.model)
    golden = accel_golden(spec, liveness=spec.liveness is not None)
    if masks is None:
        masks = accel_masks(spec, golden)
    if journal is not None or resume is not None:
        # mask_id is the journal/resume key; duplicates would collide
        if len({m.mask_id for m in masks}) != len(masks):
            raise ValueError("duplicate mask_id in fault sample")

    design = get_design(spec.design)
    size = {d.name: d.size for d in design.memories}[spec.component]
    population_bits = accel_population_bits(spec, size)

    done: dict[int, FaultRecord] = {}
    if resume is not None and Path(resume).exists():
        journaled = CampaignJournal.completed(resume, spec)
        done = {
            m.mask_id: journaled[m.mask_id]
            for m in masks
            if m.mask_id in journaled and journaled[m.mask_id].mask == m
        }

    if telemetry is not None:
        telemetry.campaign_started(
            planned=len(masks), resumed=len(done),
            labels={"design": spec.design, "component": spec.component,
                    "model": spec.model.value},
        )

    writer = CampaignJournal.open(journal, spec) if journal is not None else None
    records: list[FaultRecord] = []
    resumed = 0
    stopped_early = False
    ctx = AccelReplayContext(spec)

    def n_valid() -> int:
        return sum(1 for r in records if r.outcome is not Outcome.SIM_FAULT)

    try:
        boundaries = (
            list(adaptive.boundaries(len(masks))) if adaptive is not None
            else [len(masks)]
        )
        for boundary in boundaries:
            for m in masks[len(records):boundary]:
                if m.mask_id in done:
                    records.append(done[m.mask_id])
                    resumed += 1
                    continue
                if telemetry is not None:
                    telemetry.fault_dispatched(m.mask_id)
                started = time.perf_counter()
                record = run_one_accel_fault(spec, m, ctx, sanitizer=sanitizer,
                                             hang_cycles=hang_cycles)
                if writer is not None:
                    writer.append(record)
                if telemetry is not None:
                    telemetry.fault_finished(
                        record, wall_s=time.perf_counter() - started,
                        generator=(spec.fault_model.name
                                   if spec.fault_model else None))
                records.append(record)
            if adaptive is not None and adaptive.satisfied(
                n_valid(), population_bits
            ):
                stopped_early = boundary < len(masks)
                break
        if stopped_early and telemetry is not None:
            telemetry.adaptive_stop(
                done=len(records), budget=len(masks),
                margin=error_margin_for(
                    n_valid(), population_bits, adaptive.confidence
                ),
            )
    finally:
        if writer is not None:
            writer.close()
        if telemetry is not None:
            telemetry.campaign_finished()

    return AccelCampaignResult(
        spec=spec,
        records=records,
        golden=golden,
        population_bits=population_bits,
        resumed=resumed,
        stopped_early=stopped_early,
    )
