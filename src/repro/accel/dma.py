"""DMA engine: timed block transfers between host memory and SPMs/RegBanks.

gem5-SALAM's designs move inputs in and results out over DMA; the paper's
SPM fault analysis leans on this (input SPMs are written *once* by the DMA
at initialization, output SPMs continuously by the datapath — Figure 14's
GEMM input-vs-output asymmetry).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DMAStats:
    transfers: int = 0
    bytes_moved: int = 0
    cycles: int = 0


class DMAEngine:
    """A simple burst-transfer engine: fixed setup cost + bytes/cycle."""

    def __init__(self, setup_cycles: int = 20, bytes_per_cycle: int = 16):
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.setup_cycles = setup_cycles
        self.bytes_per_cycle = bytes_per_cycle
        self.stats = DMAStats()

    def _cost(self, nbytes: int) -> int:
        cycles = self.setup_cycles + (nbytes + self.bytes_per_cycle - 1) // self.bytes_per_cycle
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        self.stats.cycles += cycles
        return cycles

    def transfer_in(self, mem, offset: int, blob: bytes) -> int:
        """Host → accelerator memory; returns cycles consumed."""
        mem.load_block(offset, blob)
        return self._cost(len(blob))

    def transfer_out(self, mem, offset: int, size: int) -> int:
        """Accelerator memory → host; returns cycles consumed.

        The data itself is read by the caller via ``mem.dump``; this models
        only the timing (and notifies the probe that the bytes were read —
        a fault in data that is DMA'd out has, by definition, been consumed).
        """
        if mem.probe:
            mem.probe.on_read(mem, offset, offset + size)
        return self._cost(size)

    def transfer_host_to_host(self, src: bytes) -> int:
        """Host-to-host staging copy (used by the SoC driver path)."""
        return self._cost(len(src))
