"""Accelerator-local memories: scratchpads (SPMs) and register banks.

These are the paper's DSA injection targets (Section IV-E): high-speed
storage next to the functional units, holding the inputs, outputs and
intermediates of the accelerated algorithm.  Register banks play the same
role but are slower, with a delta delay between a write and the moment the
written data is readable.

Contents are real bytearrays; injected bit flips propagate by computation.
"""

from __future__ import annotations

from dataclasses import dataclass


class AccelMemFault(Exception):
    """Access outside the memory (a DSA-side crash cause)."""

    def __init__(self, name: str, addr: int, width: int):
        super().__init__(f"{name}: access out of range: +{addr:#x}/{width}")
        self.name = name


class MemProbe:
    """Observer for byte-level events (armed by the DSA injector)."""

    def on_read(self, mem: "ScratchpadMemory", lo: int, hi: int) -> None: ...

    def on_write(self, mem: "ScratchpadMemory", lo: int, hi: int) -> None: ...


class ScratchpadMemory:
    """A byte-addressable scratchpad with a fixed number of access ports."""

    kind = "spm"
    read_latency = 1
    write_latency = 1

    def __init__(self, name: str, size: int, base: int, ports: int = 2):
        self.name = name
        self.size = size
        self.base = base
        self.ports = ports
        self.data = bytearray(size)
        self.probe: MemProbe | None = None
        #: bytes ever written — an untouched cell is "unused" for masking
        self.touched = bytearray(size)
        self.reads = 0
        self.writes = 0

    # -------------------------------------------------------------- access

    def contains(self, addr: int, width: int = 1) -> bool:
        return self.base <= addr and addr + width <= self.base + self.size

    def _offset(self, addr: int, width: int) -> int:
        off = addr - self.base
        if off < 0 or off + width > self.size:
            raise AccelMemFault(self.name, off, width)
        return off

    def read(self, addr: int, width: int) -> int:
        off = self._offset(addr, width)
        self.reads += 1
        if self.probe:
            self.probe.on_read(self, off, off + width)
        return int.from_bytes(self.data[off : off + width], "little")

    def write(self, addr: int, value: int, width: int) -> None:
        off = self._offset(addr, width)
        self.writes += 1
        self.data[off : off + width] = (value & ((1 << (width * 8)) - 1)).to_bytes(
            width, "little"
        )
        for i in range(off, off + width):
            self.touched[i] = 1
        if self.probe:
            self.probe.on_write(self, off, off + width)

    def load_block(self, offset: int, block: bytes) -> None:
        """Raw initialization (DMA backend); marks bytes as touched."""
        if offset < 0 or offset + len(block) > self.size:
            raise AccelMemFault(self.name, offset, len(block))
        self.data[offset : offset + len(block)] = block
        for i in range(offset, offset + len(block)):
            self.touched[i] = 1
        if self.probe:
            self.probe.on_write(self, offset, offset + len(block))

    def dump(self, offset: int = 0, size: int | None = None) -> bytes:
        size = self.size if size is None else size
        return bytes(self.data[offset : offset + size])

    # ------------------------------------------------------------ injection

    @property
    def num_bits(self) -> int:
        return self.size * 8

    def flip_bit(self, bit: int) -> None:
        self.data[bit // 8] ^= 1 << (bit % 8)

    def force_bit(self, bit: int, value: int) -> bool:
        byte = bit // 8
        mask = 1 << (bit % 8)
        old = self.data[byte]
        new = (old | mask) if value else (old & ~mask)
        self.data[byte] = new
        return new != old

    def byte_used(self, byte: int) -> bool:
        return bool(self.touched[byte])

    def used_extent(self) -> int:
        """One past the highest byte ever written (0 if untouched)."""
        for i in range(self.size - 1, -1, -1):
            if self.touched[i]:
                return i + 1
        return 0

    def snapshot(self) -> dict:
        return {
            "data": bytes(self.data),
            "touched": bytes(self.touched),
            "reads": self.reads,
            "writes": self.writes,
        }

    def restore(self, snap: dict) -> None:
        self.data[:] = snap["data"]
        self.touched[:] = snap["touched"]
        self.reads = snap.get("reads", 0)
        self.writes = snap.get("writes", 0)


class RegisterBank(ScratchpadMemory):
    """Slower sibling of the SPM with a write-to-read delta delay.

    The engine models the delta by adding ``delta`` cycles to reads; ports
    default lower than SPMs.
    """

    kind = "regbank"
    read_latency = 2
    write_latency = 1
    delta = 1

    def __init__(self, name: str, size: int, base: int, ports: int = 1):
        super().__init__(name, size, base, ports)
