"""Automatic configuration script generator (paper Section III-C2).

gem5-SALAM builds accelerator-rich SoCs from a single YAML system
description; the paper's RISC-V port swaps the Arm template for a RISC-V
full-system one.  This module provides the same workflow: a small YAML
subset parser (mappings, sequences, scalars — no external dependency) and a
generator that instantiates the SoC from the description, selecting the
per-ISA platform template (interrupt controller, memory map).

Example description::

    system:
      isa: rv
      preset: sim
      scale: tiny
    accelerator:
      design: gemm
      fu:
        alu: 4
        mul: 2
        fpu: 8
        div: 1
"""

from __future__ import annotations

from repro.accel.dataflow import FUConfig


class ConfigError(Exception):
    """Malformed system description."""


def parse_yaml(text: str):
    """Parse the YAML subset: nested mappings, block sequences, scalars."""
    lines = []
    for raw in text.splitlines():
        stripped = raw.split("#", 1)[0].rstrip()
        if stripped.strip():
            lines.append(stripped)
    value, rest = _parse_block(lines, 0, _indent(lines[0]) if lines else 0)
    if rest != len(lines):
        raise ConfigError(f"trailing content at line {rest + 1}")
    return value


def _indent(line: str) -> int:
    return len(line) - len(line.lstrip(" "))


def _scalar(token: str):
    token = token.strip()
    if token in ("true", "True"):
        return True
    if token in ("false", "False"):
        return False
    if token.startswith(("'", '"')) and token.endswith(token[0]) and len(token) >= 2:
        return token[1:-1]
    try:
        return int(token, 0)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _parse_block(lines: list[str], start: int, indent: int):
    """Parse one block (mapping or sequence) at the given indent level."""
    if start >= len(lines):
        raise ConfigError("empty block")
    if lines[start].lstrip().startswith("- "):
        return _parse_sequence(lines, start, indent)
    return _parse_mapping(lines, start, indent)


def _parse_mapping(lines: list[str], start: int, indent: int):
    result: dict = {}
    i = start
    while i < len(lines):
        line = lines[i]
        ind = _indent(line)
        if ind < indent:
            break
        if ind > indent:
            raise ConfigError(f"unexpected indent at line {i + 1}: {line!r}")
        body = line.strip()
        if ":" not in body:
            raise ConfigError(f"expected 'key: value' at line {i + 1}: {line!r}")
        key, _, rest = body.partition(":")
        key = key.strip()
        rest = rest.strip()
        if rest:
            result[key] = _scalar(rest)
            i += 1
        else:
            if i + 1 >= len(lines) or _indent(lines[i + 1]) <= indent:
                result[key] = None
                i += 1
                continue
            value, i = _parse_block(lines, i + 1, _indent(lines[i + 1]))
            result[key] = value
    return result, i


def _parse_sequence(lines: list[str], start: int, indent: int):
    result: list = []
    i = start
    while i < len(lines):
        line = lines[i]
        ind = _indent(line)
        if ind < indent or not line.lstrip().startswith("- "):
            break
        item_body = line.strip()[2:]
        if ":" in item_body:
            # inline first key of a mapping item: re-materialize and parse
            sub = [" " * (ind + 2) + item_body]
            j = i + 1
            while j < len(lines) and _indent(lines[j]) > ind:
                sub.append(lines[j])
                j += 1
            value, _ = _parse_mapping(sub, 0, ind + 2)
            result.append(value)
            i = j
        else:
            result.append(_scalar(item_body))
            i += 1
    return result, i


# --------------------------------------------------------------------------
# generation
# --------------------------------------------------------------------------


def fu_from_config(section: dict | None) -> FUConfig | None:
    if not section:
        return None
    return FUConfig(
        alu=int(section.get("alu", 4)),
        mul=int(section.get("mul", 2)),
        fpu=int(section.get("fpu", 4)),
        div=int(section.get("div", 1)),
    )


def generate_soc(text: str):
    """Instantiate a :class:`HeterogeneousSoC` from a YAML description."""
    from repro.core.presets import get_preset
    from repro.soc.system import build_soc

    config = parse_yaml(text)
    system = config.get("system") or {}
    accel = config.get("accelerator") or {}
    if "design" not in accel:
        raise ConfigError("accelerator.design is required")
    isa = system.get("isa", "rv")
    if isa not in ("rv", "arm", "x86"):
        raise ConfigError(f"unknown isa {isa!r}")
    cfg = get_preset(system.get("preset", "sim"))
    return build_soc(
        accel["design"],
        isa_name=isa,
        cfg=cfg,
        scale=system.get("scale", "tiny"),
        fu=fu_from_config(accel.get("fu")),
    )
