"""Memory-mapped registers (MMRs): the accelerator's host-facing interface.

gem5-SALAM accelerators are memory-mapped devices: the host writes argument
and control registers, sets the START bit, and receives a completion
interrupt; status is also pollable.  :class:`MMRBlock` provides exactly
that surface and plugs into :class:`repro.cpu.memory.MainMemory` as an
MMIO region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.cpu.memory import MMIORegion

# register offsets (8 bytes each)
REG_CTRL = 0x00      # write 1 to start
REG_STATUS = 0x08    # 0 idle, 1 running, 2 done, 3 error
REG_ARG0 = 0x10
REG_ARG1 = 0x18
REG_ARG2 = 0x20
REG_ARG3 = 0x28
MMR_SIZE = 0x40

STATUS_IDLE = 0
STATUS_RUNNING = 1
STATUS_DONE = 2
STATUS_ERROR = 3


@dataclass
class MMRBlock:
    """Control/status/argument registers of one accelerator."""

    name: str
    base: int
    on_start: Callable | None = None     # called when CTRL bit 0 is written
    regs: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for off in range(0, MMR_SIZE, 8):
            self.regs.setdefault(off, 0)

    # -------------------------------------------------------------- access

    def read(self, addr: int, width: int) -> int:
        off = (addr - self.base) & ~0x7
        value = self.regs.get(off, 0)
        shift = (addr - self.base - off) * 8
        return (value >> shift) & ((1 << (width * 8)) - 1)

    def write(self, addr: int, value: int, width: int) -> None:
        off = (addr - self.base) & ~0x7
        if off == REG_CTRL and value & 1:
            self.regs[REG_STATUS] = STATUS_RUNNING
            if self.on_start is not None:
                self.on_start(self)
            return
        self.regs[off] = value & ((1 << 64) - 1)

    # -------------------------------------------------------------- helpers

    def arg(self, index: int) -> int:
        return self.regs[REG_ARG0 + 8 * index]

    def set_status(self, status: int) -> None:
        self.regs[REG_STATUS] = status

    @property
    def status(self) -> int:
        return self.regs[REG_STATUS]

    def as_mmio_region(self) -> MMIORegion:
        return MMIORegion(
            start=self.base,
            end=self.base + MMR_SIZE,
            read=self.read,
            write=self.write,
            name=f"mmr:{self.name}",
        )
