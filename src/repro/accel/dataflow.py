"""Dynamic dataflow execution engine (gem5-SALAM's LLVM runtime analog).

Executes a mini-IR kernel ("the LLVM IR of the accelerated C function") as a
dependence graph, one basic block at a time:

* within a block, operations fire as soon as their register operands are
  produced and a functional unit of the right class is free — the
  *hardware resource model* of Section V-H: users constrain the number of
  parallel functional units and the engine schedules around them;
* memory operations additionally arbitrate for their target memory's ports
  (SPMs/RegBanks each have a fixed port count; RegBank reads pay the delta
  delay);
* memory ordering is conservative: a load waits for all earlier stores in
  the block, a store for all earlier memory operations.

Because operand values come straight out of SPM/RegBank bytearrays, injected
faults propagate through the datapath with no extra machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.spm import AccelMemFault, RegisterBank, ScratchpadMemory


class AccelTimeout(Exception):
    """Kernel exceeded its cycle watchdog (a hang — classified as Crash)."""


class AccelHang(Exception):
    """Deterministic hang: the dataflow window made no progress (no issue,
    no completion, nothing in flight) for ``hang_cycles`` simulated cycles.
    Fires long before the wall-clock watchdog and at the same simulated
    cycle on every host, so the Crash verdict is reproducible."""


class _EarlyMaskStop(Exception):
    """The injector proved the fault harmless; no need to finish the run."""


_HALT = object()
from repro.kernel.interp import eval_binop, eval_cond, fcvt_to_int
from repro.kernel.ir import (
    MASK64,
    BinOp,
    Op,
    Program,
    float_to_bits,
    to_signed,
    to_unsigned,
)


@dataclass(frozen=True)
class FUConfig:
    """Functional-unit pool sizes (the Section V-H DSE knobs)."""

    alu: int = 4
    mul: int = 2
    fpu: int = 4
    div: int = 1

    def scaled(self, factor: int) -> "FUConfig":
        """All pools multiplied by ``factor`` (≥1 each)."""
        return FUConfig(
            alu=max(1, self.alu * factor),
            mul=max(1, self.mul * factor),
            fpu=max(1, self.fpu * factor),
            div=max(1, self.div * factor),
        )

    @staticmethod
    def uniform(n: int) -> "FUConfig":
        return FUConfig(alu=n, mul=n, fpu=n, div=max(1, n // 2))

    @property
    def total_units(self) -> int:
        return self.alu + self.mul + self.fpu + self.div


# Specialized-datapath latencies: an HLS-style engine chains short operators
# (no fetch/decode/issue overhead), so FP ops complete in 2 cycles where the
# general-purpose pipeline needs 4 — one source of the DSA speed advantage.
_LATENCY = {"alu": 1, "mul": 2, "fpu": 2, "div": 8, "fdiv": 8}

_MUL_OPS = {BinOp.MUL}
_DIV_OPS = {BinOp.DIVS, BinOp.DIVU, BinOp.REMS, BinOp.REMU}
_FPU_OPS = {BinOp.FADD, BinOp.FSUB, BinOp.FMUL, BinOp.FLT, BinOp.FEQ}
_FDIV_OPS = {BinOp.FDIV}


def _op_class(instr) -> str:
    if instr.op is Op.BIN:
        if instr.binop in _MUL_OPS:
            return "mul"
        if instr.binop in _DIV_OPS:
            return "div"
        if instr.binop in _FDIV_OPS:
            return "fdiv"
        if instr.binop in _FPU_OPS:
            return "fpu"
        return "alu"
    if instr.op in (Op.FCVT, Op.FCVTI):
        return "fpu"
    if instr.op in (Op.LOAD, Op.STORE):
        return "mem"
    return "alu"


class AddressMap:
    """Routes accelerator addresses to SPMs/RegBanks."""

    def __init__(self, memories: list[ScratchpadMemory]):
        self.memories = list(memories)
        self.by_name = {m.name: m for m in memories}

    def find(self, addr: int, width: int) -> ScratchpadMemory | None:
        for mem in self.memories:
            if mem.contains(addr, width):
                return mem
        return None


@dataclass
class AccelResult:
    """Outcome of one kernel execution on the dataflow engine."""

    cycles: int
    operations: int
    blocks: int
    crashed: str | None = None
    output: bytes = b""

    @property
    def ok(self) -> bool:
        return self.crashed is None


class _Node:
    """One dynamic operation instance.

    Destinations are *renamed* to fresh value slots at fetch (the dynamic
    twin of LLVM's SSA form), so WAR/WAW hazards cannot exist — only true
    (RAW) dependences and memory ordering gate execution, exactly like
    gem5-SALAM's dynamic graph engine.
    """

    __slots__ = (
        "idx", "instr", "pending", "dependents", "pending_start",
        "start_dependents", "started", "done", "is_terminator",
        "src_slots", "dst_slot",
    )

    def __init__(self, idx, instr):
        self.idx = idx
        self.instr = instr
        self.pending = 0                 # completion-gated deps (true RAW)
        self.dependents: list["_Node"] = []
        self.pending_start = 0           # issue-gated deps (memory ordering)
        self.start_dependents: list["_Node"] = []
        self.started = False
        self.done = False
        self.is_terminator = instr.op in (Op.JUMP, Op.BR, Op.HALT)
        self.src_slots: tuple[int, ...] = ()
        self.dst_slot: int | None = None

    @property
    def ready(self) -> bool:
        return not self.started and self.pending == 0 and self.pending_start == 0


class DataflowEngine:
    """Executes one kernel program against an :class:`AddressMap`."""

    def __init__(
        self,
        program: Program,
        memmap: AddressMap,
        fu: FUConfig = FUConfig(),
        watchdog_cycles: int = 10_000_000,
        hang_cycles: int = 2048,
    ):
        program.verify()
        self.program = program
        self.memmap = memmap
        self.fu = fu
        self.watchdog = watchdog_cycles
        self.hang_cycles = hang_cycles
        self.values: list[int] = []
        self.cycle = 0
        self.operations = 0
        self.blocks_executed = 0
        self.output = bytearray()
        self.injector = None          # optional AccelInjector
        self.sanitizer = None         # optional AccelAuditor
        self._blocks = {b.label: b for b in program.blocks}
        self._window: list[_Node] = []
        self._completing: dict[int, list[_Node]] = {}
        self._last_progress = 0

    # ------------------------------------------------------------ scheduling
    #
    # A continuous cross-block dataflow scheduler: the terminator of a block
    # fires as soon as its *own* operands are ready, the successor block's
    # operations enter the window immediately, and older operations keep
    # executing — loop iterations pipeline exactly as in gem5-SALAM's
    # dynamic LLVM runtime.  Register (RAW/WAW/WAR) and memory ordering
    # dependences persist across block boundaries.

    def _fetch_block(self, block) -> list["_Node"]:
        """Append a block's ops to the window with dynamic renaming."""
        nodes = [_Node(self._next_id + i, ins) for i, ins in enumerate(block.instrs)]
        self._next_id += len(nodes)

        def add_edge(src: "_Node", dst: "_Node") -> None:
            """True dependence: dst consumes src's RESULT."""
            if src is dst or src.done:
                return
            if dst not in src.dependents:
                src.dependents.append(dst)
                dst.pending += 1

        def add_start_edge(src: "_Node", dst: "_Node") -> None:
            """Memory ordering: writes land at issue, so issue order is the
            required order."""
            if src is dst or src.started:
                return
            if dst not in src.start_dependents:
                src.start_dependents.append(dst)
                dst.pending_start += 1

        for node in nodes:
            ins = node.instr
            slots = []
            for vreg in ins.sources():
                slot = self._rename.get(vreg)
                if slot is None:             # read-before-write: a zero slot
                    slot = self._new_slot()
                    self._rename[vreg] = slot
                slots.append(slot)
                writer = self._slot_writer.get(slot)
                if writer is not None:
                    add_edge(writer, node)                      # RAW
            node.src_slots = tuple(slots)
            if ins.dest is not None:
                slot = self._new_slot()
                node.dst_slot = slot
                self._rename[ins.dest] = slot
                self._slot_writer[slot] = node
            if ins.op is Op.LOAD:
                for store in self._mem_stores:
                    add_start_edge(store, node)
                self._mem_any.append(node)
            elif ins.op in (Op.STORE, Op.OUT):
                for mem_op in self._mem_any:
                    add_start_edge(mem_op, node)
                self._mem_stores.append(node)
                self._mem_any.append(node)
        # prune issued nodes from the memory-ordering windows
        self._mem_stores = [n for n in self._mem_stores if not n.started]
        self._mem_any = [n for n in self._mem_any if not n.started]
        return nodes

    def _new_slot(self) -> int:
        self.values.append(0)
        return len(self.values) - 1

    def run(self) -> AccelResult:
        crashed = None
        self._next_id = 0
        self._rename: dict = {}
        self._slot_writer: dict = {}
        self.values: list[int] = []
        self._mem_stores: list = []
        self._mem_any: list = []
        window: list[_Node] = list(self._fetch_block(self.program.entry))
        self._window = window
        self.blocks_executed = 1
        completing: dict[int, list[_Node]] = {}
        self._completing = completing
        self._last_progress = self.cycle
        halted = False

        try:
            while window:
                self.cycle += 1
                if self.cycle > self.watchdog:
                    raise AccelTimeout
                if self.injector is not None:
                    self.injector.tick(self)
                    if self.injector.early_masked:
                        raise _EarlyMaskStop
                if self.sanitizer is not None:
                    self.sanitizer.on_cycle(self)
                # complete
                completed = completing.pop(self.cycle, ())
                for node in completed:
                    node.done = True
                    for dep in node.dependents:
                        dep.pending -= 1
                # issue
                budget = {
                    "alu": self.fu.alu, "mul": self.fu.mul, "fpu": self.fu.fpu,
                    "div": self.fu.div, "fdiv": self.fu.div,
                }
                mem_ports: dict[str, int] = {}
                issued = 0
                for node in window:
                    if not node.ready:
                        continue
                    cls = _op_class(node.instr)
                    if cls == "mem":
                        latency = self._issue_mem(node, mem_ports)
                        if latency is None:
                            continue
                    else:
                        if budget[cls] <= 0:
                            continue
                        budget[cls] -= 1
                        latency = _LATENCY[cls]
                        result = self._execute(node)
                        if result is _HALT:
                            halted = True
                        elif isinstance(result, str):
                            # the branch direction is known at issue: fetch
                            # the successor block into the window immediately
                            window.extend(self._fetch_block(self._blocks[result]))
                            self.blocks_executed += 1
                    node.started = True
                    for dep in node.start_dependents:
                        dep.pending_start -= 1
                    self.operations += 1
                    issued += 1
                    completing.setdefault(self.cycle + latency, []).append(node)
                if completed or issued:
                    self._last_progress = self.cycle
                elif (self.hang_cycles
                      and self.cycle - self._last_progress >= self.hang_cycles
                      and not any(t > self.cycle for t in completing)):
                    # window is non-empty, nothing is in flight, and no node
                    # has fired for a full hang window: deterministic deadlock
                    raise AccelHang
                window = [n for n in window if not n.done]
                self._window = window
        except _EarlyMaskStop:
            pass
        except AccelTimeout:
            crashed = "timeout"
        except AccelHang:
            crashed = "hang"
        except AccelMemFault:
            crashed = "mem_fault"
        return AccelResult(
            cycles=self.cycle,
            operations=self.operations,
            blocks=self.blocks_executed,
            crashed=crashed,
            output=bytes(self.output),
        )

    def _issue_mem(self, node: "_Node", mem_ports: dict[str, int]) -> int | None:
        ins = node.instr
        values = self.values
        addr = (values[node.src_slots[0]] + ins.offset) & MASK64
        mem = self.memmap.find(addr, ins.width)
        if mem is None:
            raise AccelMemFault("unmapped", addr, ins.width)
        used = mem_ports.get(mem.name, 0)
        if used >= mem.ports:
            return None
        mem_ports[mem.name] = used + 1
        if ins.op is Op.LOAD:
            raw = mem.read(addr, ins.width)
            if ins.signed:
                raw = to_unsigned(to_signed(raw, ins.width * 8))
            values[node.dst_slot] = raw
            latency = mem.read_latency
            if isinstance(mem, RegisterBank):
                latency += mem.delta
        else:
            mem.write(addr, values[node.src_slots[1]], ins.width)
            latency = mem.write_latency
        return latency

    # ------------------------------------------------------------ semantics

    def _execute(self, node: "_Node"):
        ins = node.instr
        op = ins.op
        values = self.values
        src = node.src_slots
        if op is Op.BIN:
            values[node.dst_slot] = eval_binop(ins.binop, values[src[0]], values[src[1]])
        elif op is Op.CONST:
            values[node.dst_slot] = to_unsigned(ins.imm)
        elif op is Op.FCONST:
            values[node.dst_slot] = float_to_bits(ins.imm)
        elif op is Op.MOV:
            values[node.dst_slot] = values[src[0]]
        elif op is Op.SELECT:
            # sources() order is (a, b, c)
            chosen = src[0] if values[src[2]] != 0 else src[1]
            values[node.dst_slot] = values[chosen]
        elif op is Op.FCVT:
            values[node.dst_slot] = float_to_bits(float(to_signed(values[src[0]])))
        elif op is Op.FCVTI:
            values[node.dst_slot] = fcvt_to_int(values[src[0]])
        elif op is Op.OUT:
            value = to_unsigned(values[src[0]], ins.width * 8)
            self.output += value.to_bytes(ins.width, "little")
        elif op in (Op.CHECKPOINT, Op.SWITCH_CPU, Op.WFI, Op.NOP):
            pass
        elif op is Op.JUMP:
            return ins.taken
        elif op is Op.BR:
            if eval_cond(ins.cond, values[src[0]], values[src[1]]):
                return ins.taken
            return ins.fallthrough
        elif op is Op.HALT:
            return _HALT
        elif op is Op.LA:
            raise AccelMemFault("LA unsupported in accelerator kernels", 0, 0)
        else:  # pragma: no cover
            raise AccelMemFault(f"unsupported op {op}", 0, 0)
        return None
