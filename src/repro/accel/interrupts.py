"""Interrupt controller models: Arm GIC and RISC-V PLIC analogs.

The paper's RISC-V port of gem5-SALAM hinges on translating the Arm GIC
plumbing to the RISC-V PLIC (Section III-C1).  Both models here share the
same device-side API (``post``/``clear`` a line) and CPU-side API
(``pending``/``claim``/``complete``), differing in the architectural
details software sees:

* **GIC**: banked per-CPU interface, acknowledge returns the interrupt ID,
  priority masking, end-of-interrupt on the CPU interface.
* **PLIC**: global gateway with per-source priority and per-context
  threshold; claim atomically clears the pending bit at the gateway.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class InterruptController:
    """Common device-facing surface."""

    def post(self, line: int) -> None:
        raise NotImplementedError

    def clear(self, line: int) -> None:
        raise NotImplementedError

    def pending(self, context: int = 0) -> bool:
        raise NotImplementedError

    def claim(self, context: int = 0) -> int | None:
        raise NotImplementedError

    def complete(self, line: int, context: int = 0) -> None:
        raise NotImplementedError


@dataclass
class GIC(InterruptController):
    """Arm Generic Interrupt Controller (distributor + CPU interface) analog."""

    num_lines: int = 64
    num_cpus: int = 1
    priorities: dict[int, int] = field(default_factory=dict)
    _pending: set = field(default_factory=set)
    _active: dict = field(default_factory=dict)   # cpu -> line
    _enabled: set = field(default_factory=set)

    def __post_init__(self) -> None:
        self._enabled = set(range(self.num_lines))

    def enable(self, line: int, enabled: bool = True) -> None:
        (self._enabled.add if enabled else self._enabled.discard)(line)

    def set_priority(self, line: int, priority: int) -> None:
        self.priorities[line] = priority

    def post(self, line: int) -> None:
        if not 0 <= line < self.num_lines:
            raise ValueError(f"GIC line {line} out of range")
        self._pending.add(line)

    def clear(self, line: int) -> None:
        self._pending.discard(line)

    def _best(self) -> int | None:
        candidates = [l for l in self._pending if l in self._enabled]
        if not candidates:
            return None
        return min(candidates, key=lambda l: (self.priorities.get(l, 128), l))

    def pending(self, context: int = 0) -> bool:
        return self._best() is not None and context not in self._active

    def claim(self, context: int = 0) -> int | None:
        """IAR read: acknowledge the highest-priority pending interrupt."""
        if context in self._active:
            return None
        line = self._best()
        if line is None:
            return None
        self._pending.discard(line)
        self._active[context] = line
        return line

    def complete(self, line: int, context: int = 0) -> None:
        """EOIR write."""
        if self._active.get(context) == line:
            del self._active[context]


@dataclass
class PLIC(InterruptController):
    """RISC-V Platform-Level Interrupt Controller analog."""

    num_sources: int = 64
    num_contexts: int = 1
    priorities: dict[int, int] = field(default_factory=dict)
    thresholds: dict[int, int] = field(default_factory=dict)
    _gateway_pending: set = field(default_factory=set)
    _claimed: dict = field(default_factory=dict)  # context -> set of lines

    def set_priority(self, source: int, priority: int) -> None:
        if priority < 0 or priority > 7:
            raise ValueError("PLIC priorities are 0..7")
        self.priorities[source] = priority

    def set_threshold(self, context: int, threshold: int) -> None:
        self.thresholds[context] = threshold

    def post(self, source: int) -> None:
        if not 1 <= source < self.num_sources:
            raise ValueError(f"PLIC source {source} out of range (0 is reserved)")
        self._gateway_pending.add(source)

    def clear(self, source: int) -> None:
        self._gateway_pending.discard(source)

    def _eligible(self, context: int) -> list[int]:
        threshold = self.thresholds.get(context, 0)
        return [
            s
            for s in self._gateway_pending
            if self.priorities.get(s, 1) > threshold
        ]

    def pending(self, context: int = 0) -> bool:
        return bool(self._eligible(context))

    def claim(self, context: int = 0) -> int | None:
        """Claim register read: highest priority wins, ties break on ID."""
        eligible = self._eligible(context)
        if not eligible:
            return None
        source = max(eligible, key=lambda s: (self.priorities.get(s, 1), -s))
        self._gateway_pending.discard(source)
        self._claimed.setdefault(context, set()).add(source)
        return source

    def complete(self, source: int, context: int = 0) -> None:
        self._claimed.get(context, set()).discard(source)


def controller_for_isa(isa_name: str) -> InterruptController:
    """The platform interrupt controller each ISA's SoC template uses."""
    if isa_name == "arm":
        return GIC()
    if isa_name in ("rv", "x86"):
        # the paper ports GIC→PLIC for RISC-V; our x86 SoC template reuses
        # the PLIC-style global controller (an IOAPIC stand-in)
        return PLIC()
    raise ValueError(f"no interrupt controller template for ISA {isa_name!r}")
