"""gem5-SALAM analog: LLVM-IR-style dataflow accelerator modelling.

* :mod:`repro.accel.spm` — scratchpad memories and register banks (the DSA
  injection targets),
* :mod:`repro.accel.dataflow` — the dynamic dataflow execution engine with a
  constrained functional-unit pool,
* :mod:`repro.accel.dma`, :mod:`repro.accel.mmr` — DMA engines and
  memory-mapped control registers,
* :mod:`repro.accel.interrupts` — GIC (Arm) and PLIC (RISC-V) interrupt
  controller models,
* :mod:`repro.accel.cluster` — accelerator instances and clusters,
* :mod:`repro.accel.configgen` — the YAML-subset automatic configuration
  script generator (Section III-C2),
* :mod:`repro.accel.campaign` — SFI campaigns against DSA memories.
"""

from repro.accel.cluster import Accelerator, AccelDesign, MemDecl
from repro.accel.dataflow import AccelResult, DataflowEngine, FUConfig
from repro.accel.spm import RegisterBank, ScratchpadMemory

__all__ = [
    "AccelDesign",
    "AccelResult",
    "Accelerator",
    "DataflowEngine",
    "FUConfig",
    "MemDecl",
    "RegisterBank",
    "ScratchpadMemory",
]
