"""Accelerator designs, instances, and clusters (gem5-SALAM's Compute Unit
plus Communications Interface).

An :class:`AccelDesign` is the static description (memories, kernel builder,
DMA plan, default FU pool).  An :class:`Accelerator` is a live instance:
instantiated memories, a dataflow engine, MMRs and an interrupt line.

Standalone execution (``Accelerator.run_standalone``) models the full paper
flow at device level: DMA the inputs into the SPMs/RegBanks, execute the
kernel on the dataflow engine, DMA the results back, and report cycles
including the transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.accel.dataflow import AccelResult, AddressMap, DataflowEngine, FUConfig
from repro.accel.dma import DMAEngine
from repro.accel.spm import RegisterBank, ScratchpadMemory
from repro.kernel.ir import Program

#: base of the accelerator-local address space
ACCEL_BASE = 0x0

@dataclass(frozen=True)
class MemDecl:
    """Declaration of one accelerator-local memory (Table IV rows)."""

    name: str
    size: int
    kind: str = "spm"          # 'spm' | 'regbank'
    ports: int = 4             # banked dual-ported SPMs are the HLS norm

    def instantiate(self, base: int) -> ScratchpadMemory:
        cls = RegisterBank if self.kind == "regbank" else ScratchpadMemory
        ports = self.ports if self.kind == "spm" else max(1, self.ports // 2)
        return cls(self.name, self.size, base, ports)


@dataclass
class AccelDesign:
    """Static description of one accelerator (a MachSuite design analog)."""

    name: str
    memories: list[MemDecl]
    #: build_kernel(mem_bases: dict[str, int], scale: str) -> Program
    build_kernel: Callable
    #: inputs(scale) -> dict[mem_name, bytes] (DMA'd in before the run)
    inputs: Callable
    #: memories whose contents are the architectural result (DMA'd out)
    output_memories: list[str]
    fu: FUConfig = field(default_factory=FUConfig)
    #: logical operation count per kernel execution (for OPS/OPF)
    operations_per_run: Callable = lambda scale: 1.0
    description: str = ""

    def layout(self) -> dict[str, int]:
        """Assign base addresses (64B aligned, contiguous)."""
        bases = {}
        cursor = ACCEL_BASE + 0x40  # keep address 0 unmapped: null-ish faults
        for decl in self.memories:
            bases[decl.name] = cursor
            cursor += (decl.size + 63) // 64 * 64
        return bases

    def instantiate(self, fu: FUConfig | None = None) -> "Accelerator":
        return Accelerator(self, fu or self.fu)


class Accelerator:
    """A live accelerator instance."""

    def __init__(self, design: AccelDesign, fu: FUConfig):
        self.design = design
        self.fu = fu
        bases = design.layout()
        self.memories = {
            decl.name: decl.instantiate(bases[decl.name]) for decl in design.memories
        }
        self.memmap = AddressMap(list(self.memories.values()))
        self.bases = bases
        self.dma = DMAEngine()
        self.irq_line: Callable | None = None   # set by the SoC / controller
        self.kernel_cache: dict[str, Program] = {}

    def kernel(self, scale: str) -> Program:
        if scale not in self.kernel_cache:
            self.kernel_cache[scale] = self.design.build_kernel(self.bases, scale)
        return self.kernel_cache[scale]

    def mem(self, name: str) -> ScratchpadMemory:
        return self.memories[name]

    # ------------------------------------------------------------ standalone

    def load_inputs(self, scale: str) -> int:
        """DMA all design inputs into the local memories; returns cycles."""
        cycles = 0
        for name, blob in self.design.inputs(scale).items():
            cycles += self.dma.transfer_in(self.memories[name], 0, blob)
        return cycles

    def run_standalone(
        self, scale: str = "default", watchdog_cycles: int = 2_000_000,
        preloaded: bool = False,
    ) -> tuple[AccelResult, bytes]:
        """DMA-in → execute → DMA-out; returns (result, output bytes).

        ``output`` is the concatenated contents of the design's output
        memories after execution — what the host would read back.  With
        ``preloaded=True`` the caller has already loaded (and possibly
        corrupted) the input memories.
        """
        dma_in = 0 if preloaded else self.load_inputs(scale)
        engine = DataflowEngine(
            self.kernel(scale), self.memmap, self.fu, watchdog_cycles
        )
        result = engine.run()
        output = b""
        dma_out = 0
        if result.ok:
            for name in self.design.output_memories:
                mem = self.memories[name]
                extent = mem.used_extent()
                blob = mem.dump(0, extent)
                dma_out += self.dma.transfer_out(mem, 0, extent)
                output += blob
        total = AccelResult(
            cycles=result.cycles + dma_in + dma_out,
            operations=result.operations,
            blocks=result.blocks,
            crashed=result.crashed,
            output=output,
        )
        if self.irq_line is not None:
            self.irq_line()
        return total, output
