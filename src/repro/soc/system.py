"""Full heterogeneous SoC: OoO CPU + memory-mapped accelerator + interrupts.

Models the paper's Figure 1 flow end to end:

1. the host program (compiled for any of the three ISAs) writes the
   accelerator's memory-mapped CTRL register,
2. the accelerator DMAs its inputs from preloaded buffers, executes the
   kernel on the dataflow engine, and DMAs results back,
3. completion is posted on an interrupt line through the platform
   controller (GIC for Arm hosts, PLIC for RISC-V — the paper's port),
4. the CPU, parked in WFI, wakes, reads the results back through the
   scratchpad aperture, and emits a checksum through its output port.

Accelerator execution is event-based: the kernel's cycle count is computed
when CTRL is written and the interrupt fires that many CPU cycles later, so
CPU and DSA time advance on a common clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.cluster import Accelerator
from repro.accel.dataflow import DataflowEngine
from repro.accel.interrupts import controller_for_isa
from repro.accel.mmr import MMRBlock, STATUS_DONE, STATUS_ERROR
from repro.accel_designs import get_design
from repro.cpu.config import CPUConfig
from repro.cpu.core import OoOCore
from repro.cpu.memory import MainMemory, MMIORegion
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.ir import Cond, ProgramBuilder

#: SoC physical map: accelerator MMRs and scratchpad apertures
MMR_BASE = 0x000E_0000
APERTURE_BASE = 0x000E_1000
ACCEL_IRQ_LINE = 5


@dataclass
class SoCResult:
    output: bytes
    cpu_cycles: int
    accel_cycles: int
    accel_operations: int
    halted: bool
    crashed: str | None = None

    @property
    def ok(self) -> bool:
        return self.halted and self.crashed is None


class HeterogeneousSoC:
    """One CPU plus one accelerator instance behind MMRs and an IRQ line."""

    def __init__(
        self,
        isa_name: str,
        cfg: CPUConfig,
        accel: Accelerator,
        scale: str = "tiny",
        injector=None,
        accel_injector=None,
    ):
        self.isa = get_isa(isa_name)
        self.cfg = cfg
        self.accel = accel
        self.scale = scale
        self.accel_injector = accel_injector
        self.controller = controller_for_isa(isa_name)
        self.accel_cycles = 0
        self.accel_operations = 0
        self.accel_crashed: str | None = None
        self._irq_at: int | None = None

        driver = build_driver_program(accel, scale)
        exe = compile_program(driver, self.isa)
        self.memory = MainMemory(exe.memmap.size, latency=cfg.mem_latency)
        self.memory.load_image(exe.initial_memory())
        self.mmr = MMRBlock("accel0", MMR_BASE, on_start=self._on_start)
        self.memory.add_mmio(self.mmr.as_mmio_region())
        self._map_apertures()
        self.core = OoOCore(self.isa, cfg, self.memory, exe.entry, injector=injector)

    def _map_apertures(self) -> None:
        """Expose each accelerator memory as an uncached CPU aperture."""
        offset = 0
        self.aperture_of: dict[str, int] = {}
        for name, mem in self.accel.memories.items():
            base = APERTURE_BASE + offset

            def read(addr, width, mem=mem, base=base):
                return mem.read(mem.base + (addr - base), width)

            def write(addr, value, width, mem=mem, base=base):
                mem.write(mem.base + (addr - base), value, width)

            self.memory.add_mmio(
                MMIORegion(base, base + mem.size, read, write, f"aperture:{name}")
            )
            self.aperture_of[name] = base
            offset += (mem.size + 0xFF) // 0x100 * 0x100

    # ------------------------------------------------------------ accel side

    def _on_start(self, mmr: MMRBlock) -> None:
        """CTRL written: run DMA-in + kernel + DMA-out, schedule the IRQ."""
        dma_in = self.accel.load_inputs(self.scale)
        engine = DataflowEngine(
            self.accel.kernel(self.scale),
            self.accel.memmap,
            self.accel.fu,
            watchdog_cycles=2_000_000,
        )
        if self.accel_injector is not None:
            engine.injector = self.accel_injector
        result = engine.run()
        self.accel_cycles = dma_in + result.cycles
        self.accel_operations = result.operations
        self.accel_crashed = result.crashed
        self._done_status = STATUS_ERROR if result.crashed else STATUS_DONE
        self._irq_at = self.core.cycle + self.accel_cycles

    # ------------------------------------------------------------ run

    def run(self, max_cycles: int = 3_000_000) -> SoCResult:
        crashed = None
        from repro.cpu.core import CrashError

        try:
            while not self.core.halted and self.core.cycle < max_cycles:
                if self._irq_at is not None and self.core.cycle >= self._irq_at:
                    self._irq_at = None
                    self.mmr.set_status(self._done_status)
                    self.controller.post(ACCEL_IRQ_LINE)
                    if self.controller.pending():
                        line = self.controller.claim()
                        self.core.wake_interrupt()
                        self.controller.complete(line)
                self.core.step()
            if not self.core.halted:
                crashed = "timeout"
        except CrashError as exc:
            crashed = exc.reason
        return SoCResult(
            output=bytes(self.core.output),
            cpu_cycles=self.core.cycle,
            accel_cycles=self.accel_cycles,
            accel_operations=self.accel_operations,
            halted=self.core.halted,
            crashed=crashed or self.accel_crashed,
        )


def build_driver_program(accel: Accelerator, scale: str):
    """The host-side driver: start the accelerator, WFI, read back, checksum."""
    b = ProgramBuilder(f"driver_{accel.design.name}")
    b.label("entry")
    b.checkpoint()
    ctrl = b.const(MMR_BASE)
    b.store(b.const(1), ctrl, 0, width=8)       # CTRL.start
    # park until the completion interrupt; a spurious wake re-enters WFI
    b.label("wait")
    b.wfi()
    status = b.load(ctrl, 8, width=8)
    b.br(Cond.LTU, status, b.const(2), "wait", "readback")

    b.label("readback")
    # checksum every output memory through its aperture
    check = b.var(0)
    offset = 0
    for name, mem in accel.memories.items():
        if name not in accel.design.output_memories:
            offset += (mem.size + 0xFF) // 0x100 * 0x100
            continue
        base = b.const(APERTURE_BASE + offset)
        count = b.const(mem.size // 8)
        i = b.var(0)
        loop = f"sum_{name}"
        done = f"done_{name}"
        b.label(loop)
        v = b.load(b.add(base, b.shl(i, b.const(3))), 0, width=8)
        rolled = b.or_(b.shl(check, b.const(5)), b.shr(check, b.const(59)))
        b.add(rolled, v, dest=check)
        b.inc(i)
        b.br(Cond.LTU, i, count, loop, done)
        b.label(done)
        offset += (mem.size + 0xFF) // 0x100 * 0x100
    b.switch_cpu()
    b.out(check, width=8)
    b.halt()
    return b.build()


def build_soc(
    design_name: str,
    isa_name: str = "rv",
    cfg: CPUConfig | None = None,
    scale: str = "tiny",
    fu=None,
) -> HeterogeneousSoC:
    """Convenience constructor: SoC with one named accelerator design."""
    from repro.core.presets import sim_config

    accel = get_design(design_name).instantiate(fu)
    return HeterogeneousSoC(isa_name, cfg or sim_config(), accel, scale)
