"""Heterogeneous SoC integration: CPU + accelerator cluster + interconnect."""

from repro.soc.system import HeterogeneousSoC, SoCResult, build_soc

__all__ = ["HeterogeneousSoC", "SoCResult", "build_soc"]
