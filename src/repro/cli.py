"""Command-line interface: ``python -m repro <command>``.

The paper's campaign controller is script-driven (Figure 2's "running
scripts"); this CLI is that entry point:

* ``campaign``       — CPU-structure fault-injection campaign,
* ``accel-campaign`` — DSA-memory fault-injection campaign,
* ``matrix``         — declarative experiment grid (TOML) as one queue,
* ``serve``          — coordinate a distributed (sharded) grid campaign,
* ``work``           — claim and run shards of a distributed campaign,
* ``merge``          — rebuild canonical cell journals from shard journals,
* ``figure``         — regenerate one paper figure,
* ``soc``            — run the heterogeneous SoC flow,
* ``list``           — available ISAs / workloads / targets / designs,
* ``validate``       — the Listing-1 injector sanity check,
* ``doctor``         — offline-validate a campaign journal or a distributed
  output directory,
* ``tail``           — follow / summarize a campaign journal or a whole
  matrix output directory (live or done).
"""

from __future__ import annotations

import argparse
import sys


def _add_sanitizer_args(p) -> None:
    p.add_argument("--sanitize", default="sampled",
                   choices=["off", "sampled", "full"],
                   help="microarchitectural invariant auditing: 'sampled' "
                        "audits every --audit-stride cycles, 'full' every "
                        "cycle; impossible states quarantine the run as "
                        "SIM_FAULT/integrity (default: sampled)")
    p.add_argument("--audit-stride", type=int, default=None, metavar="N",
                   help="cycles between sanitizer audits in sampled mode "
                        "(default: 64)")
    p.add_argument("--hang-cycles", type=int, default=None, metavar="K",
                   help="deterministic hang detector: classify Crash(hang) "
                        "after K simulated cycles without commit/dataflow "
                        "progress (default: 2048; 0 disables)")


def _add_telemetry_args(p) -> None:
    p.add_argument("--progress", action="store_true",
                   help="print live progress (done/total, faults/sec, ETA) "
                        "to stderr while the campaign runs")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write a Prometheus-textfile metrics snapshot here "
                        "when the campaign finishes")


def _telemetry_from_args(args, metrics_out=None):
    """Build a Telemetry hub when any observability flag is set."""
    if metrics_out is None:
        metrics_out = args.metrics_out
    if not (args.progress or metrics_out):
        return None
    from repro.core.telemetry import ProgressPrinter, Telemetry

    return Telemetry(
        progress=ProgressPrinter() if args.progress else None,
        metrics_out=metrics_out,
    )


def _add_protect_arg(p) -> None:
    p.add_argument("--protect", metavar="STRUCT=SCHEME[,...]",
                   help="attach protection schemes to structures, e.g. "
                        "'l1d=secded,regfile_int=tmr'; schemes: none, "
                        "parity, secded, tmr.  Detected-uncorrectable "
                        "errors classify as DUE; corrected flips count "
                        "toward coverage (transient model only)")


def _add_liveness_arg(p) -> None:
    p.add_argument("--liveness", default="off",
                   choices=["off", "on", "audit"],
                   help="bit-liveness pre-analysis: 'on' classifies faults "
                        "landing entirely inside a golden dead interval as "
                        "Masked analytically (no simulation); 'audit' "
                        "simulates them anyway and quarantines any "
                        "disagreement (default: off)")


def _liveness_from_args(args) -> str | None:
    return None if args.liveness == "off" else args.liveness


def _protection_from_args(args):
    if not getattr(args, "protect", None):
        return None
    from repro.core.protection import ProtectionConfig, normalized

    return normalized(ProtectionConfig.parse(args.protect))


def _add_fault_model_arg(p) -> None:
    p.add_argument("--fault-model", metavar="NAME[:K=V,...]",
                   help="fault-generator strategy: 'uniform' (default), "
                        "'burst:arity=2,span=4' (correlated multi-bit), "
                        "'error-map:rows=4/2/1' or 'error-map:map=FILE.toml' "
                        "(per-row weighted), 'adversarial:attack=branch' "
                        "(directed instruction attacks, cache targets). "
                        "Recorded in the journal/spec fingerprint")


def _fault_model_from_args(args):
    if not getattr(args, "fault_model", None):
        return None
    from repro.core.faultmodels import parse_fault_model

    return parse_fault_model(args.fault_model)


def _per_target_path(path, tag, multi):
    """Derive a per-sub-campaign output path; untouched for single runs."""
    if not path or not multi:
        return path
    import os

    root, ext = os.path.splitext(path)
    return f"{root}-{tag}{ext}"


def _add_adaptive_args(p) -> None:
    p.add_argument("--adaptive", action="store_true",
                   help="adaptive sequential sampling: dispatch faults in "
                        "batches and stop once the achieved error margin "
                        "reaches --target-margin; --faults becomes the "
                        "budget (upper bound)")
    p.add_argument("--target-margin", type=float, default=0.03, metavar="E",
                   help="error-margin target for --adaptive (default: 0.03)")
    p.add_argument("--batch", type=int, default=50, metavar="N",
                   help="faults dispatched between --adaptive margin checks "
                        "(default: 50)")


def _adaptive_from_args(args):
    if not args.adaptive:
        return None
    from repro.core.sampling import AdaptiveSampling

    return AdaptiveSampling(target_margin=args.target_margin,
                            batch=args.batch)


def _sanitizer_from_args(args):
    from repro.core.sanitizer import (
        DEFAULT_AUDIT_STRIDE,
        DEFAULT_HANG_CYCLES,
        SanitizerPolicy,
    )

    stride = (args.audit_stride if args.audit_stride is not None
              else DEFAULT_AUDIT_STRIDE)
    hang = (args.hang_cycles if args.hang_cycles is not None
            else DEFAULT_HANG_CYCLES)
    return SanitizerPolicy(mode=args.sanitize, audit_stride=stride), hang


def _add_campaign(sub) -> None:
    p = sub.add_parser("campaign", help="run a CPU SFI campaign")
    p.add_argument("--isa", default="rv", choices=["rv", "arm", "x86"])
    p.add_argument("--workload", default="qsort")
    p.add_argument("--target", default="regfile_int",
                   help="injection target, or a comma-separated list to run "
                        "one journaled sub-campaign per target")
    p.add_argument("--faults", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scale", default="tiny")
    p.add_argument("--preset", default="sim", choices=["sim", "paper"])
    p.add_argument("--model", default="transient",
                   choices=["transient", "stuck0", "stuck1"])
    p.add_argument("--flips-per-mask", type=int, default=1)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--csv", help="write per-campaign summary CSV here")
    p.add_argument("--journal", metavar="PATH",
                   help="append per-fault records to this JSONL run journal")
    p.add_argument("--resume", metavar="PATH",
                   help="skip masks already completed in this journal "
                        "(typically the same path as --journal)")
    p.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="per-fault wall-clock budget for parallel workers "
                        "(default: derived from the golden cycle count)")
    p.add_argument("--checkpoint-stride", type=int, default=None,
                   metavar="CYCLES",
                   help="cycles between golden-run checkpoints; fault runs "
                        "fast-forward from the nearest one at-or-before the "
                        "injection cycle (default: adaptive; 0 disables "
                        "checkpointing entirely)")
    p.add_argument("--no-early-exit", action="store_true",
                   help="disable the golden-trace re-convergence early exit "
                        "(fault runs always simulate to completion)")
    p.add_argument("--mshr-entries", type=int, default=None, metavar="N",
                   help="L1D MSHR file size; >0 makes the L1D non-blocking "
                        "(default: 0, blocking L1D; auto-sized when the "
                        "mshr is itself the injection target)")
    p.add_argument("--store-buffer-entries", type=int, default=None,
                   metavar="N",
                   help="post-commit store buffer size (default: 0, stores "
                        "drain straight from the SQ; auto-sized when the "
                        "store_buffer is itself the injection target)")
    p.add_argument("--prefetcher-entries", type=int, default=None,
                   metavar="N",
                   help="stride-prefetcher table size (default: 0, no "
                        "prefetching; auto-sized when the prefetcher is "
                        "itself the injection target)")
    _add_fault_model_arg(p)
    _add_protect_arg(p)
    _add_liveness_arg(p)
    _add_adaptive_args(p)
    _add_sanitizer_args(p)
    _add_telemetry_args(p)


def _add_accel(sub) -> None:
    p = sub.add_parser("accel-campaign", help="run a DSA SFI campaign")
    p.add_argument("--design", default="gemm")
    p.add_argument("--component", default="MATRIX1")
    p.add_argument("--faults", type=int, default=100)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--scale", default="default")
    p.add_argument("--model", default="transient",
                   choices=["transient", "stuck0", "stuck1"])
    p.add_argument("--fu", type=int, help="uniform functional-unit count")
    p.add_argument("--journal", metavar="PATH",
                   help="append per-fault records to this JSONL run journal")
    p.add_argument("--resume", metavar="PATH",
                   help="skip masks already completed in this journal")
    _add_fault_model_arg(p)
    _add_protect_arg(p)
    _add_liveness_arg(p)
    _add_adaptive_args(p)
    _add_sanitizer_args(p)
    _add_telemetry_args(p)


def _add_matrix(sub) -> None:
    p = sub.add_parser(
        "matrix",
        help="run a declarative experiment grid (TOML) as one campaign queue",
    )
    p.add_argument("grid", metavar="GRID.toml",
                   help="experiment grid: [cpu] isas × workloads × targets "
                        "and/or [accel] designs × components, plus optional "
                        "[adaptive] and [report] sections")
    p.add_argument("--out", default="matrix-out", metavar="DIR",
                   help="output directory for per-cell journals and "
                        "manifest.json (default: matrix-out)")
    p.add_argument("--resume", action="store_true",
                   help="continue a previous run of the identical grid from "
                        "its cell journals (torn tails repaired)")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--csv", help="write the per-cell summary CSV here")
    _add_sanitizer_args(p)
    _add_telemetry_args(p)


def _add_serve(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="coordinate a distributed grid campaign over a shared "
             "filesystem (shards + leases + auto-merge)",
    )
    p.add_argument("grid", metavar="GRID.toml",
                   help="experiment grid file (same format as `repro "
                        "matrix`)")
    p.add_argument("--out", default="matrix-out", metavar="DIR",
                   help="shared output directory workers coordinate through "
                        "(default: matrix-out)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="local `repro work` processes to spawn; 0 "
                        "coordinates workers launched elsewhere (other "
                        "hosts sharing the filesystem)")
    p.add_argument("--shard-size", type=int, default=25, metavar="N",
                   help="mask-index range per shard (default: 25)")
    p.add_argument("--ttl", type=float, default=60.0, metavar="SECONDS",
                   help="lease time-to-live; a worker silent this long is "
                        "presumed dead and its shard reclaimed (default: 60)")
    p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="coordinator poll / incremental-merge interval "
                        "(default: 0.5)")
    p.add_argument("--stall-timeout", type=float, default=900.0,
                   metavar="SECONDS",
                   help="abort when no shard makes progress for this long "
                        "(default: 900)")
    _add_sanitizer_args(p)
    _add_telemetry_args(p)


def _add_work(sub) -> None:
    p = sub.add_parser(
        "work",
        help="claim and run shards of a distributed campaign until none "
             "remain (exit 3 = degraded: filesystem lost, lease left to "
             "expire)",
    )
    p.add_argument("out", metavar="DIR",
                   help="the `repro serve` output directory (shared "
                        "filesystem)")
    p.add_argument("--worker-id", default=None, metavar="ID",
                   help="stable worker identity (default: host-pid)")
    p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="idle poll interval (default: 0.5)")
    p.add_argument("--plan-wait", type=float, default=60.0,
                   metavar="SECONDS",
                   help="how long to wait for plan.json to appear "
                        "(default: 60)")
    p.add_argument("--max-shards", type=int, default=None, metavar="N",
                   help="exit after completing N shards (default: run "
                        "until the campaign is done)")
    _add_sanitizer_args(p)


def _add_merge(sub) -> None:
    p = sub.add_parser(
        "merge",
        help="rebuild canonical cells/*.jsonl byte-identically from the "
             "shard journals (exit 1 while cells are still incomplete)",
    )
    p.add_argument("out", metavar="DIR",
                   help="the distributed campaign output directory")
    p.add_argument("--json", action="store_true",
                   help="emit the merge result as JSON instead of text")


def _add_doctor(sub) -> None:
    p = sub.add_parser("doctor",
                       help="offline-validate a campaign run journal or a "
                            "distributed output directory")
    p.add_argument("journal", metavar="PATH",
                   help="JSONL journal written by --journal, or a "
                        "`repro serve` output directory (validates shard/"
                        "lease consistency and every merged cell journal)")
    p.add_argument("--json", action="store_true",
                   help="emit the diagnosis as JSON instead of text")


def _add_tail(sub) -> None:
    p = sub.add_parser("tail",
                       help="follow / summarize a campaign run journal or "
                            "a matrix output directory")
    p.add_argument("journal", metavar="PATH",
                   help="JSONL journal written by --journal (in-flight or "
                        "finished), or a matrix/distributed output "
                        "directory (aggregates shards/*.jsonl and "
                        "cells/*.jsonl with records deduplicated)")
    p.add_argument("--follow", "-f", action="store_true",
                   help="keep polling the journal and print live progress "
                        "until the campaign completes")
    p.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                   help="poll interval with --follow (default: 1.0)")
    p.add_argument("--json", action="store_true",
                   help="emit the final aggregate as JSON instead of a table")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="also write a Prometheus-textfile snapshot of the "
                        "folded aggregate")


def _add_figure(sub) -> None:
    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("number", type=int, help="paper figure number (4-18)")
    p.add_argument("--faults", type=int, default=None)


def _add_soc(sub) -> None:
    p = sub.add_parser("soc", help="run the heterogeneous SoC flow")
    p.add_argument("--isa", default="rv", choices=["rv", "arm", "x86"])
    p.add_argument("--design", default="gemm")
    p.add_argument("--scale", default="tiny")


def _add_validate(sub) -> None:
    p = sub.add_parser("validate", help="Listing-1 injector sanity check")
    p.add_argument("--isa", default="rv", choices=["rv", "arm", "x86"])
    p.add_argument("--faults", type=int, default=30)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="gem5-MARVEL reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_campaign(sub)
    _add_accel(sub)
    _add_matrix(sub)
    _add_serve(sub)
    _add_work(sub)
    _add_merge(sub)
    _add_doctor(sub)
    _add_tail(sub)
    _add_figure(sub)
    _add_soc(sub)
    _add_validate(sub)
    sub.add_parser("list", help="available ISAs/workloads/targets/designs")
    return parser


def _model(name: str):
    from repro.core.faults import FaultModel

    return {"transient": FaultModel.TRANSIENT, "stuck0": FaultModel.STUCK_AT_0,
            "stuck1": FaultModel.STUCK_AT_1}[name]


def cmd_campaign(args) -> int:
    from repro.core.campaign import CampaignSpec, run_campaign
    from repro.core.checkpoint import CheckpointPolicy
    from repro.core.presets import get_preset
    from repro.core.report import (
        render_liveness,
        render_protection,
        render_robustness,
        render_table,
        save_report,
    )

    targets = [t.strip() for t in args.target.split(",") if t.strip()]
    if not targets:
        print("error: empty --target", file=sys.stderr)
        return 2
    try:
        protection = _protection_from_args(args)
        fault_model = _fault_model_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    multi = len(targets) > 1
    checkpoints = CheckpointPolicy(
        stride=args.checkpoint_stride,
        early_exit=not args.no_early_exit,
    )
    sanitizer, hang_cycles = _sanitizer_from_args(args)
    cfg = get_preset(args.preset)
    uarch_sizes = {
        name: value
        for name, value in (
            ("mshr_entries", args.mshr_entries),
            ("store_buffer_entries", args.store_buffer_entries),
            ("prefetcher_entries", args.prefetcher_entries),
        )
        if value is not None
    }
    if uarch_sizes:
        cfg = cfg.with_(**uarch_sizes)
    summaries = []
    for target in targets:
        spec = CampaignSpec(
            isa=args.isa, workload=args.workload, target=target,
            cfg=cfg, scale=args.scale, faults=args.faults,
            seed=args.seed, model=_model(args.model),
            flips_per_mask=args.flips_per_mask,
            protection=protection,
            liveness=_liveness_from_args(args),
            fault_model=fault_model,
        )
        metrics_out = _per_target_path(args.metrics_out, target, multi)
        telemetry = _telemetry_from_args(args, metrics_out=metrics_out)
        journal = _per_target_path(args.journal, target, multi)
        resume = _per_target_path(args.resume, target, multi)
        try:
            result = run_campaign(
                spec, workers=args.workers,
                journal=journal, resume=resume, timeout_s=args.timeout,
                checkpoints=checkpoints, sanitizer=sanitizer,
                hang_cycles=hang_cycles,
                telemetry=telemetry, adaptive=_adaptive_from_args(args),
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        summary = result.summary()
        if multi:
            print(f"== target {target} ==")
        print(render_table(["metric", "value"], sorted(summary.items())))
        if result.stopped_early:
            print(f"adaptive stop: {len(result.records)}/{spec.faults} "
                  f"faults, achieved margin {result.error_margin:.4f}")
        if result.resumed:
            print(f"resumed {result.resumed}/{len(result.records)} masks "
                  f"from {resume}")
        health = render_robustness(result.records)
        if health:
            print(f"WARNING: {health}", file=sys.stderr)
        if metrics_out:
            print(f"wrote {metrics_out}")
        summaries.append(summary)
    if protection is not None:
        print(render_protection(summaries))
    if _liveness_from_args(args) is not None:
        print(render_liveness(summaries))
    if args.csv:
        save_report(args.csv, summaries)
        print(f"wrote {args.csv}")
    return 0


def cmd_accel(args) -> int:
    from repro.accel.campaign import AccelCampaignSpec, run_accel_campaign
    from repro.accel.dataflow import FUConfig
    from repro.core.report import (
        render_liveness,
        render_protection,
        render_robustness,
        render_table,
    )

    try:
        protection = _protection_from_args(args)
        fault_model = _fault_model_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec = AccelCampaignSpec(
        design=args.design, component=args.component, scale=args.scale,
        faults=args.faults, seed=args.seed, model=_model(args.model),
        fu=FUConfig.uniform(args.fu) if args.fu else None,
        protection=protection,
        liveness=_liveness_from_args(args),
        fault_model=fault_model,
    )
    sanitizer, hang_cycles = _sanitizer_from_args(args)
    telemetry = _telemetry_from_args(args)
    try:
        result = run_accel_campaign(
            spec, journal=args.journal, resume=args.resume,
            sanitizer=sanitizer, hang_cycles=hang_cycles,
            telemetry=telemetry, adaptive=_adaptive_from_args(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = result.summary()
    print(render_table(["metric", "value"], sorted(summary.items())))
    if protection is not None:
        print(render_protection([summary]))
    if spec.liveness is not None:
        print(render_liveness([summary]))
    if result.stopped_early:
        print(f"adaptive stop: {len(result.records)}/{spec.faults} faults, "
              f"achieved margin {result.error_margin:.4f}")
    if result.resumed:
        print(f"resumed {result.resumed}/{len(result.records)} masks "
              f"from {args.resume}")
    health = render_robustness(result.records)
    if health:
        print(f"WARNING: {health}", file=sys.stderr)
    if args.metrics_out:
        print(f"wrote {args.metrics_out}")
    return 0


def cmd_matrix(args) -> int:
    from repro.core.matrix import MatrixError, load_grid, run_matrix
    from repro.core.report import save_report

    try:
        grid = load_grid(args.grid)
    except (MatrixError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sanitizer, hang_cycles = _sanitizer_from_args(args)
    telemetry = _telemetry_from_args(args)
    try:
        result = run_matrix(
            grid, args.out, workers=args.workers, resume=args.resume,
            sanitizer=sanitizer, hang_cycles=hang_cycles, telemetry=telemetry,
        )
    except MatrixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    print(f"manifest: {result.manifest_path}")
    if result.stopped_early:
        print(f"adaptive sampling stopped {result.stopped_early}/"
              f"{len(result.cells)} cells before budget")
    if args.csv:
        save_report(args.csv, result.cells)
        print(f"wrote {args.csv}")
    if args.metrics_out:
        print(f"wrote {args.metrics_out}")
    return 0


def _sanitizer_worker_args(args) -> list[str]:
    """Re-encode parsed sanitizer flags for spawned `repro work` processes."""
    out = ["--sanitize", args.sanitize]
    if args.audit_stride is not None:
        out += ["--audit-stride", str(args.audit_stride)]
    if args.hang_cycles is not None:
        out += ["--hang-cycles", str(args.hang_cycles)]
    return out


def _fold_distributed(out_dir):
    """Fold every merged/shard record (deduplicated) plus file-derived
    shard counters into one :class:`CampaignAggregate`."""
    from repro.core.shard import DirectoryFollower, fold_shard_counters
    from repro.core.telemetry import CampaignAggregate

    follower = DirectoryFollower(out_dir)
    agg = CampaignAggregate()
    for record in follower.poll():
        agg.fold(record)
    agg.planned = follower.planned()
    agg.shard = fold_shard_counters(out_dir)
    return agg, follower


def cmd_serve(args) -> int:
    from repro.core.matrix import MatrixError, load_grid
    from repro.core.report import render_table
    from repro.core.shard import ShardError, serve
    from repro.core.telemetry import write_prometheus

    try:
        load_grid(args.grid)
    except (MatrixError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    on_progress = None
    if args.progress:
        def on_progress(merged, done, total) -> None:
            converged = sum(1 for c in merged.cells.values()
                            if c["status"] != "running")
            print(f"shards {done}/{total} | cells settled "
                  f"{converged}/{len(merged.cells)}", file=sys.stderr)

    try:
        result = serve(
            args.grid, args.out, workers=args.workers,
            shard_size=args.shard_size, ttl_s=args.ttl, poll_s=args.poll,
            stall_timeout_s=args.stall_timeout,
            worker_args=tuple(_sanitizer_worker_args(args)),
            on_progress=on_progress,
        )
    except ShardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    rows = [
        (key, c["status"], f"{c['faults_done']}/{c['budget']}")
        for key, c in sorted(result.cells.items())
    ]
    print(render_table(["cell", "status", "faults"], rows))
    agg, _follower = _fold_distributed(args.out)
    shard = agg.shard or {}
    print(f"lease expirations {shard.get('lease_expirations', 0)} | "
          f"shards stolen {shard.get('shards_stolen', 0)} | "
          f"merge conflicts {shard.get('merge_conflicts', 0)}")
    print(f"manifest: {result.manifest_path}")
    if args.metrics_out:
        write_prometheus(args.metrics_out, agg)
        print(f"wrote {args.metrics_out}")
    return 0


def cmd_work(args) -> int:
    from repro.core.shard import ShardError, run_worker

    sanitizer, hang_cycles = _sanitizer_from_args(args)
    try:
        result = run_worker(
            args.out, worker_id=args.worker_id, sanitizer=sanitizer,
            hang_cycles=hang_cycles, poll_s=args.poll,
            plan_wait_s=args.plan_wait, max_shards=args.max_shards,
        )
    except ShardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    extras = []
    if result.resumed:
        extras.append(f"resumed {result.resumed}")
    if result.reclaims:
        extras.append(f"reclaimed {result.reclaims}")
    if result.splits_published:
        extras.append(f"split {result.splits_published}")
    if result.steals_requested:
        extras.append(f"steal-requests {result.steals_requested}")
    if result.degraded:
        extras.append("DEGRADED (lease left to expire)")
    print(f"worker {result.worker}: {result.shards_completed} shards, "
          f"{result.faults_run} faults"
          + (f" | {' '.join(extras)}" if extras else ""))
    return 3 if result.degraded else 0


def cmd_merge(args) -> int:
    import json

    from repro.core.report import render_table
    from repro.core.shard import (
        ShardError,
        fold_shard_counters,
        merge_shards,
    )

    try:
        result = merge_shards(args.out)
        counters = fold_shard_counters(args.out)
    except ShardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "complete": result.complete,
            "conflicts": result.conflicts,
            "cells": result.cells,
            "counters": counters,
            "manifest": str(result.manifest_path),
        }, indent=2))
    else:
        rows = [
            (key, c["status"], f"{c['faults_done']}/{c['budget']}",
             c["conflicts"])
            for key, c in sorted(result.cells.items())
        ]
        print(render_table(["cell", "status", "faults", "conflicts"], rows))
        print(f"lease expirations {counters['lease_expirations']} | "
              f"shards stolen {counters['shards_stolen']} | "
              f"merge conflicts {counters['merge_conflicts']}")
        print(f"manifest: {result.manifest_path}")
    return 0 if result.complete else 1


_FIGURES = {
    4: "fig4_regfile_avf", 5: "fig5_l1i_avf", 6: "fig6_l1d_avf",
    7: "fig7_lq_avf", 8: "fig8_sq_avf", 9: "fig9_sdc_regfile",
    10: "fig10_sdc_l1i", 11: "fig11_sdc_l1d", 12: "fig12_permanent_l1i",
    13: "fig13_permanent_l1d", 14: "fig14_dsa_avf",
    15: "fig15_prf_sensitivity", 16: "fig16_opf", 17: "fig17_gemm_dse",
    18: "fig18_hvf",
}


def cmd_figure(args) -> int:
    from repro.analysis import figures

    name = _FIGURES.get(args.number)
    if name is None:
        print(f"no driver for figure {args.number}; available: "
              f"{sorted(_FIGURES)}", file=sys.stderr)
        return 2
    kwargs = {"faults": args.faults} if args.faults else {}
    fig = getattr(figures, name)(**kwargs)
    print(fig.figure)
    print(fig.text)
    return 0


def cmd_soc(args) -> int:
    from repro.soc.system import build_soc

    soc = build_soc(args.design, isa_name=args.isa, scale=args.scale)
    result = soc.run()
    status = "ok" if result.ok else f"FAILED ({result.crashed})"
    print(f"{status}: cpu={result.cpu_cycles} cycles, "
          f"dsa={result.accel_cycles} cycles, result={result.output.hex()}")
    return 0 if result.ok else 1


def cmd_validate(args) -> int:
    from repro.core.presets import sim_config
    from repro.core.validation import run_l1d_validation

    result = run_l1d_validation(args.isa, sim_config(), faults=args.faults)
    print(f"L1D validation ({args.isa}): {result.visible}/{result.injected} "
          f"visible — coverage {result.coverage:.1%} (paper: 100%)")
    return 0 if result.coverage >= 0.9 else 1


def cmd_doctor(args) -> int:
    import json
    import os

    from repro.core.doctor import diagnose_distributed, diagnose_journal

    if os.path.isdir(args.journal):
        report = diagnose_distributed(args.journal)
    else:
        report = diagnose_journal(args.journal)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    return 0 if report.ok else 1


def cmd_tail(args) -> int:
    import json
    import os
    import time

    from repro.core.journal import JournalFollower
    from repro.core.report import render_table
    from repro.core.telemetry import (
        CampaignAggregate,
        labels_from_spec,
        render_progress,
        write_prometheus,
    )

    if not os.path.exists(args.journal):
        print(f"{args.journal}: no such journal", file=sys.stderr)
        return 1
    if os.path.isdir(args.journal):
        return _tail_directory(args)

    follower = JournalFollower(args.journal)
    agg = CampaignAggregate()

    def poll() -> None:
        # the header line precedes every record in the file, so the
        # generator attribution is available before the first fold
        records = list(follower.poll())
        spec = (follower.header or {}).get("spec") or {}
        fm = spec.get("fault_model")
        generator = fm.get("name") if isinstance(fm, dict) else None
        for record in records:
            agg.fold(record, generator=generator)
        if isinstance(spec.get("faults"), int):
            agg.planned = spec["faults"]

    started = time.monotonic()
    poll()
    while args.follow and not (agg.planned and agg.finished >= agg.planned):
        print(render_progress(agg, time.monotonic() - started),
              file=sys.stderr)
        time.sleep(args.interval)
        poll()

    if follower.header is None:
        print(f"{args.journal}: no journal header (not a campaign journal?)",
              file=sys.stderr)
        return 1
    if args.json:
        doc = agg.to_dict()
        doc["skipped_lines"] = follower.skipped
        print(json.dumps(doc, indent=2))
    else:
        doc = agg.to_dict()
        rows = sorted(
            (k, v) for k, v in doc.items() if isinstance(v, (int, float))
        )
        rows += [(f"outcome[{out}]", n)
                 for out, n in sorted(doc["outcomes"].items())]
        print(render_table(["metric", "value"], rows))
        print(render_progress(agg))
    if args.metrics_out:
        spec = follower.header.get("spec") or {}
        write_prometheus(args.metrics_out, agg, labels_from_spec(spec))
        print(f"wrote {args.metrics_out}")
    return 0


def _tail_directory(args) -> int:
    """``repro tail`` over a matrix / distributed output directory.

    Aggregates ``shards/*.jsonl`` and ``cells/*.jsonl`` together, counting
    each logical record once (reclaimed generations and merged copies
    deduplicate), with the file-derived shard counters reconciled in.
    """
    import json
    import time

    from repro.core.report import render_table
    from repro.core.shard import (
        DirectoryFollower,
        ShardError,
        ShardStore,
        StoreDegraded,
        fold_shard_counters,
    )
    from repro.core.telemetry import (
        CampaignAggregate,
        render_progress,
        write_prometheus,
    )

    follower = DirectoryFollower(args.journal)
    agg = CampaignAggregate()

    def poll() -> None:
        for record in follower.poll():
            agg.fold(record)
        agg.planned = follower.planned()

    def campaign_done() -> bool:
        store = ShardStore(args.journal)
        try:
            plan = store.load_plan()
        except (ShardError, StoreDegraded):
            return False
        shards = store.all_shards(plan)
        done = store.done_ids()
        return bool(shards) and all(s.id in done for s in shards)

    started = time.monotonic()
    poll()
    while args.follow and not campaign_done():
        print(render_progress(agg, time.monotonic() - started),
              file=sys.stderr)
        time.sleep(args.interval)
        poll()
    poll()
    try:
        agg.shard = fold_shard_counters(args.journal)
    except (ShardError, StoreDegraded):
        pass                    # plain matrix dir: no shard substrate

    if args.json:
        doc = agg.to_dict()
        doc["skipped_lines"] = follower.skipped
        doc["deduplicated"] = follower.duplicates
        print(json.dumps(doc, indent=2))
    else:
        doc = agg.to_dict()
        rows = sorted(
            (k, v) for k, v in doc.items() if isinstance(v, (int, float))
        )
        rows += [(f"outcome[{out}]", n)
                 for out, n in sorted(doc["outcomes"].items())]
        if agg.shard is not None:
            rows += sorted(
                (f"shard[{k}]", v) for k, v in agg.shard.items()
            )
        print(render_table(["metric", "value"], rows))
        print(render_progress(agg))
    if args.metrics_out:
        write_prometheus(args.metrics_out, agg)
        print(f"wrote {args.metrics_out}")
    return 0


def cmd_list(args) -> int:
    from repro.accel_designs import DESIGNS, PAPER_TARGETS
    from repro.core.targets import TARGETS
    from repro.isa.base import isa_names
    from repro.workloads import WORKLOAD_NAMES

    print("ISAs:      ", ", ".join(isa_names()))
    print("workloads: ", ", ".join(WORKLOAD_NAMES))
    print("targets:   ", ", ".join(TARGETS))
    print("designs:   ", ", ".join(
        f"{d}({'/'.join(PAPER_TARGETS[d])})" for d in DESIGNS))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "campaign": cmd_campaign,
        "accel-campaign": cmd_accel,
        "matrix": cmd_matrix,
        "serve": cmd_serve,
        "work": cmd_work,
        "merge": cmd_merge,
        "doctor": cmd_doctor,
        "tail": cmd_tail,
        "figure": cmd_figure,
        "soc": cmd_soc,
        "validate": cmd_validate,
        "list": cmd_list,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
