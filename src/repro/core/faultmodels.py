"""Pluggable fault-model registry: named, parameterized mask generators.

Every campaign used to draw its sample from one hard-coded generator —
uniform IID single-bit (or IID multi-bit) faults over the target's
``(entry, bit, cycle)`` sites.  Real fault processes are richer: measured
undervolted-SRAM errors are spatially correlated and per-row non-uniform
("Hardware Versus Software Fault Injection of Modern Undervolted SRAMs",
PAPERS.md), and InjectV-style security campaigns *aim* faults at specific
instructions instead of sampling them.  This module makes the generator a
named strategy selected per campaign:

* ``uniform`` — the default.  Delegates to the exact pre-registry
  samplers, so a campaign that never mentions a fault model journals
  byte-identical output to pre-registry releases;
* ``burst`` — spatially-correlated multi-bit transients: ``arity`` flips
  within a ``span``-wide window of adjacent bits (or adjacent entries),
  all struck at one timestamp, drawn without replacement over bursts;
* ``error-map`` — per-row non-uniform error rates (the undervolted-SRAM
  shape): rows are weighted by an inline ``rows=w0/w1/...`` list or a
  TOML map file, sites are drawn row-weighted but still without
  replacement;
* ``adversarial`` — InjectV-style directed campaigns against an
  instruction cache: instruction-skip / opcode-corruption / branch-flip
  site selectors derived from the golden commit trace, reported with an
  ``attack_success`` metric next to AVF.

A generator's identity — name *and* parameters — is part of the campaign
spec, so it lands in the journal header and the spec fingerprint:
``--resume`` refuses a journal drawn by a different generator, and
``repro doctor`` validates the provenance offline.  ``error-map`` files
are inlined into the params at parse time (see :func:`resolve`) so the
fingerprint is content-sensitive and the journal self-contained.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.sampling import generate_masks, uniform_accel_sites

#: generator used when a spec carries no fault model at all
DEFAULT_GENERATOR = "uniform"

#: bounded-retry budget multiplier for without-replacement draws; generous
#: because dispatch only rejection-samples well below saturation
_MAX_ATTEMPTS_PER_MASK = 200


# --------------------------------------------------------------------------
# the spec: a (name, params) pair that lives inside campaign specs
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultModelSpec:
    """A named fault generator plus its parameters (picklable, hashable).

    ``params`` is a sorted tuple of ``(key, value)`` string pairs: the
    canonical form that serializes identically through ``asdict`` → JSON →
    journal header → doctor re-hash, whatever order the user typed them in.
    """

    name: str
    params: tuple[tuple[str, str], ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self, "params",
            tuple(sorted((str(k), str(v)) for k, v in self.params)),
        )

    def param_dict(self) -> dict[str, str]:
        return dict(self.params)

    def describe(self) -> str:
        """Canonical ``name:k=v,...`` form (round-trips through parse)."""
        if not self.params:
            return self.name
        return self.name + ":" + ",".join(f"{k}={v}" for k, v in self.params)

    @classmethod
    def parse(cls, text: str) -> "FaultModelSpec":
        """Parse ``name[:k=v,...]`` (the ``--fault-model`` argument)."""
        text = text.strip()
        name, _, rest = text.partition(":")
        name = name.strip()
        if not name:
            raise ValueError("empty fault-model name")
        params = []
        for part in rest.split(",") if rest else []:
            part = part.strip()
            if not part:
                continue
            key, eq, value = part.partition("=")
            if not eq or not key.strip():
                raise ValueError(
                    f"malformed fault-model parameter {part!r} "
                    "(expected key=value)"
                )
            params.append((key.strip(), value.strip()))
        return cls(name=name, params=tuple(params))


def fault_model_from_dict(data) -> FaultModelSpec:
    """Rebuild a :class:`FaultModelSpec` from its journal-header form.

    The header stores ``{"name": ..., "params": [[k, v], ...]}`` (the
    JSON round-trip of ``dataclasses.asdict``); anything else is treated
    as forged provenance and raises ``ValueError``.
    """
    if not isinstance(data, dict):
        raise ValueError(f"fault_model must be a table, got {type(data).__name__}")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError("fault_model carries no generator name")
    raw = data.get("params", [])
    if not isinstance(raw, (list, tuple)):
        raise ValueError("fault_model params must be a list of [key, value] pairs")
    params = []
    for pair in raw:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ValueError(f"malformed fault_model param {pair!r}")
        params.append((str(pair[0]), str(pair[1])))
    return FaultModelSpec(name=name, params=tuple(params))


# --------------------------------------------------------------------------
# sampling contexts: what a generator gets to see
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CpuSampleContext:
    """Geometry + golden-run facts for a CPU-structure sample."""

    structure: str
    entries: int
    bits_per_entry: int
    count: int
    window: tuple[int, int]
    model: FaultModel
    seed: int
    flips_per_mask: int = 1
    #: target kind ('regfile' | 'cache' | 'lsq' | 'mshr' | 'store_buffer'
    #: | 'prefetcher'); generators that only make sense on one kind
    #: (adversarial → cache) check it
    target_kind: str | None = None
    #: (line_size, num_sets, assoc) of a cache target — how a program
    #: address maps onto (entry, bit) sites
    cache_geometry: tuple[int, int, int] | None = None
    #: golden commit trace rows (pc, raw, dst, value, addr, store_data,
    #: taken); the adversarial generator derives its site selectors here
    commit_trace: list | None = None


@dataclass(frozen=True)
class AccelSampleContext:
    """Geometry for an accelerator-memory sample (flat bit space)."""

    structure: str
    total_bits: int
    cycles: int
    count: int
    model: FaultModel
    seed: int


# --------------------------------------------------------------------------
# generator base + helpers
# --------------------------------------------------------------------------


class FaultGenerator:
    """One named mask-generation strategy.

    Subclasses declare their parameter schema (``param_help``) and
    implement :meth:`cpu_masks` and/or :meth:`accel_masks`; dispatch
    validates parameters and side support before calling either.
    """

    name: str = ""
    supports_cpu: bool = True
    supports_accel: bool = False
    #: parameter name -> help text; unknown parameters are rejected
    param_help: dict[str, str] = {}

    def validate(self, params: dict[str, str]) -> None:
        unknown = sorted(set(params) - set(self.param_help))
        if unknown:
            raise ValueError(
                f"fault model {self.name!r} does not take parameter(s) "
                f"{', '.join(unknown)} "
                f"(known: {', '.join(sorted(self.param_help)) or 'none'})"
            )
        self._validate(params)

    def _validate(self, params: dict[str, str]) -> None:
        pass

    def cpu_masks(self, params: dict[str, str],
                  ctx: CpuSampleContext) -> list[FaultMask]:
        raise NotImplementedError  # pragma: no cover

    def accel_masks(self, params: dict[str, str],
                    ctx: AccelSampleContext) -> list[FaultMask]:
        raise NotImplementedError  # pragma: no cover


def _int_param(params: dict[str, str], key: str, default: int,
               minimum: int = 1) -> int:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"fault-model parameter {key}={raw!r} is not an "
                         "integer") from None
    if value < minimum:
        raise ValueError(f"fault-model parameter {key}={value} must be "
                         f">= {minimum}")
    return value


def _float_param(params: dict[str, str], key: str, default: float) -> float:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"fault-model parameter {key}={raw!r} is not a "
                         "number") from None
    if value < 0:
        raise ValueError(f"fault-model parameter {key}={value} must be >= 0")
    return value


def _weights_param(params: dict[str, str]) -> list[float]:
    raw = params.get("rows", "")
    weights = []
    for i, part in enumerate(p for p in raw.split("/") if p.strip()):
        try:
            w = float(part)
        except ValueError:
            raise ValueError(
                f"error-map row weight {part!r} (position {i}) is not a "
                "number") from None
        if w < 0:
            raise ValueError(f"error-map row weight {w} (position {i}) "
                             "must be >= 0")
        weights.append(w)
    return weights


def _drawn_without_replacement(count: int, draw_one, describe: str):
    """``count`` distinct draws via ``draw_one(rng_attempt)``; bounded.

    ``draw_one`` returns a tuple of site keys (hashable); a duplicate is
    retried up to the attempt budget, then the sample is declared
    unplaceable with a clear error instead of spinning forever.
    """
    seen: set = set()
    out = []
    budget = max(1000, count * _MAX_ATTEMPTS_PER_MASK)
    attempts = 0
    while len(out) < count:
        attempts += 1
        if attempts > budget:
            raise ValueError(
                f"cannot place {count} distinct {describe} "
                f"(placed {len(out)} after {attempts - 1} attempts); "
                "reduce the fault count or widen the site population"
            )
        candidate = draw_one()
        key = tuple(candidate)
        if key in seen:
            continue
        seen.add(key)
        out.append(candidate)
    return out


# --------------------------------------------------------------------------
# uniform: the pre-registry sampler, byte-for-byte
# --------------------------------------------------------------------------


class UniformGenerator(FaultGenerator):
    """IID uniform draws over all sites — the historical default.

    Delegates to the exact pre-registry samplers
    (:func:`repro.core.sampling.generate_masks` and the accelerator
    ``(bit, cycle)`` stream), so an unset / ``uniform`` spec produces
    byte-identical journals to releases that predate the registry.
    """

    name = "uniform"
    supports_accel = True
    param_help: dict[str, str] = {}

    def cpu_masks(self, params, ctx):
        return generate_masks(
            structure=ctx.structure,
            entries=ctx.entries,
            bits_per_entry=ctx.bits_per_entry,
            count=ctx.count,
            window=ctx.window,
            model=ctx.model,
            seed=ctx.seed,
            flips_per_mask=ctx.flips_per_mask,
        )

    def accel_masks(self, params, ctx):
        sites = uniform_accel_sites(
            total_bits=ctx.total_bits,
            cycles=ctx.cycles,
            count=ctx.count,
            permanent=ctx.model.permanent,
            seed=ctx.seed,
        )
        return [
            FaultMask(
                model=ctx.model,
                flips=(FaultFlip(structure=ctx.structure, entry=0,
                                 bit=bit, cycle=cycle),),
                mask_id=mask_id,
            )
            for mask_id, (bit, cycle) in enumerate(sites)
        ]


# --------------------------------------------------------------------------
# burst: spatially-correlated multi-bit transients
# --------------------------------------------------------------------------


class BurstGenerator(FaultGenerator):
    """``arity`` correlated flips inside a ``span``-wide adjacency window.

    The undervolted-SRAM measurements show multi-bit upsets cluster in
    physically adjacent cells; this models that as one *burst* per mask:
    ``arity`` distinct flips drawn from a window of ``span`` adjacent bits
    (``axis=bit``) or ``span`` adjacent entries/rows (``axis=entry``),
    all struck at a single timestamp.  Bursts are drawn without
    replacement over their constituent flip sites.
    """

    name = "burst"
    param_help = {
        "arity": "flips per burst (default 2)",
        "span": "adjacency window the flips land in (default = arity)",
        "axis": "'bit' = adjacent bits in one entry, "
                "'entry' = same bit in adjacent entries (default bit)",
    }

    def _validate(self, params):
        arity = _int_param(params, "arity", 2, minimum=2)
        span = _int_param(params, "span", arity, minimum=2)
        if span < arity:
            raise ValueError(
                f"burst span={span} cannot hold arity={arity} distinct flips")
        axis = params.get("axis", "bit")
        if axis not in ("bit", "entry"):
            raise ValueError(
                f"burst axis={axis!r} unknown (use 'bit' or 'entry')")

    def cpu_masks(self, params, ctx):
        if ctx.flips_per_mask != 1:
            raise ValueError(
                "the burst fault model sets its own multi-bit arity; "
                "leave flips_per_mask at 1")
        arity = _int_param(params, "arity", 2)
        span = _int_param(params, "span", arity)
        axis = params.get("axis", "bit")
        extent = ctx.bits_per_entry if axis == "bit" else ctx.entries
        if span > extent:
            raise ValueError(
                f"burst span={span} exceeds the {axis} extent ({extent}) "
                f"of {ctx.structure}")
        lo, hi = ctx.window
        if hi <= lo:
            raise ValueError(f"empty injection window {ctx.window}")
        if ctx.entries <= 0 or ctx.bits_per_entry <= 0:
            raise ValueError("structure geometry must be positive")
        rng = random.Random(ctx.seed)
        taken: set[tuple[int, int, int]] = set()
        masks: list[FaultMask] = []
        budget = max(1000, ctx.count * _MAX_ATTEMPTS_PER_MASK)
        attempts = 0
        while len(masks) < ctx.count:
            attempts += 1
            if attempts > budget:
                raise ValueError(
                    f"cannot place {ctx.count} distinct bursts on "
                    f"{ctx.structure} (placed {len(masks)}); reduce the "
                    "fault count or widen span/geometry")
            if axis == "bit":
                entry = rng.randrange(ctx.entries)
                base = rng.randrange(ctx.bits_per_entry - span + 1)
            else:
                entry = rng.randrange(ctx.entries - span + 1)
                base = rng.randrange(ctx.bits_per_entry)
            offsets = sorted(rng.sample(range(span), arity))
            cycle = 0 if ctx.model.permanent else rng.randrange(lo, hi)
            if axis == "bit":
                sites = [(entry, base + off, cycle) for off in offsets]
            else:
                sites = [(entry + off, base, cycle) for off in offsets]
            if any(site in taken for site in sites):
                continue
            taken.update(sites)
            masks.append(FaultMask(
                model=ctx.model,
                flips=tuple(
                    FaultFlip(structure=ctx.structure, entry=e, bit=b,
                              cycle=c)
                    for e, b, c in sites
                ),
                mask_id=len(masks),
            ))
        return masks


# --------------------------------------------------------------------------
# error-map: per-row non-uniform error rates
# --------------------------------------------------------------------------


class ErrorMapGenerator(FaultGenerator):
    """Row-weighted site draws (the undervolted-SRAM error-map shape).

    Rows are entries on CPU structures and 8-bit bytes on accelerator
    memories.  Row ``i`` carries weight ``rows[i]`` from the
    ``rows=w0/w1/...`` list (or a TOML map file inlined by
    :func:`resolve`); rows beyond the list carry ``default`` (1.0 unless
    set).  Sites inside a row stay uniform, and draws remain without
    replacement so the Leveugle margin keeps its distinct-sample
    assumption.
    """

    name = "error-map"
    supports_accel = True
    param_help = {
        "rows": "slash-separated per-row weights, e.g. rows=4/2/1/0.25",
        "default": "weight of rows beyond the list (default 1.0)",
        "map": "TOML file with `rows = [...]` and optional `default`; "
               "inlined into the spec at parse time",
    }

    def _validate(self, params):
        if "map" in params:
            raise ValueError(
                "error-map 'map' files must be resolved before sampling "
                "(parse the model through repro.core.faultmodels.resolve)")
        weights = _weights_param(params)
        default = _float_param(params, "default", 1.0)
        if not weights and "rows" not in params and "default" not in params:
            raise ValueError(
                "error-map needs a rows=w0/w1/... weight list, a "
                "default=..., or a map=FILE.toml")
        if default == 0 and (not weights or not any(weights)):
            raise ValueError(
                "error-map assigns zero weight to every row; nothing to draw")

    def _row_weights(self, params, rows: int) -> list[float]:
        weights = _weights_param(params)
        default = _float_param(params, "default", 1.0)
        full = [
            weights[i] if i < len(weights) else default for i in range(rows)
        ]
        if not any(full):
            raise ValueError(
                f"error-map assigns zero weight to all {rows} rows of the "
                "target; nothing to draw")
        return full

    @staticmethod
    def _pick_row(rng: random.Random, cumulative: list[float]) -> int:
        import bisect

        r = rng.random() * cumulative[-1]
        return bisect.bisect_right(cumulative, r)

    @staticmethod
    def _cumulative(weights: list[float]) -> list[float]:
        total = 0.0
        out = []
        for w in weights:
            total += w
            out.append(total)
        return out

    def cpu_masks(self, params, ctx):
        lo, hi = ctx.window
        if hi <= lo:
            raise ValueError(f"empty injection window {ctx.window}")
        if ctx.entries <= 0 or ctx.bits_per_entry <= 0:
            raise ValueError("structure geometry must be positive")
        weights = self._row_weights(params, ctx.entries)
        live_rows = sum(1 for w in weights if w > 0)
        span = 1 if ctx.model.permanent else hi - lo
        population = live_rows * ctx.bits_per_entry * span
        needed = ctx.count * ctx.flips_per_mask
        if needed > population:
            raise ValueError(
                f"cannot draw {needed} distinct fault sites from a "
                f"population of {population} positively-weighted sites")
        rng = random.Random(ctx.seed)
        cumulative = self._cumulative(weights)

        def draw_one():
            entry = self._pick_row(rng, cumulative)
            return (
                entry,
                rng.randrange(ctx.bits_per_entry),
                0 if ctx.model.permanent else rng.randrange(lo, hi),
            )

        sites = _drawn_without_replacement(
            needed, draw_one, f"row-weighted sites on {ctx.structure}")
        masks = []
        for mask_id in range(ctx.count):
            chunk = sites[mask_id * ctx.flips_per_mask:
                          (mask_id + 1) * ctx.flips_per_mask]
            masks.append(FaultMask(
                model=ctx.model,
                flips=tuple(
                    FaultFlip(structure=ctx.structure, entry=e, bit=b,
                              cycle=c)
                    for e, b, c in chunk
                ),
                mask_id=mask_id,
            ))
        return masks

    def accel_masks(self, params, ctx):
        if ctx.total_bits <= 0 or ctx.cycles <= 0:
            raise ValueError("accelerator geometry must be positive")
        rows = (ctx.total_bits + 7) // 8
        weights = self._row_weights(params, rows)
        live_rows = sum(1 for w in weights if w > 0)
        span = 1 if ctx.model.permanent else ctx.cycles
        population = live_rows * 8 * span
        if ctx.count > population:
            raise ValueError(
                f"cannot draw {ctx.count} distinct fault sites from a "
                f"population of {population} positively-weighted sites")
        rng = random.Random(ctx.seed)
        cumulative = self._cumulative(weights)

        def draw_one():
            while True:
                row = self._pick_row(rng, cumulative)
                bit = row * 8 + rng.randrange(8)
                if bit < ctx.total_bits:
                    break
            return (bit, 0 if ctx.model.permanent else rng.randrange(ctx.cycles))

        sites = _drawn_without_replacement(
            ctx.count, draw_one, f"row-weighted sites on {ctx.structure}")
        return [
            FaultMask(
                model=ctx.model,
                flips=(FaultFlip(structure=ctx.structure, entry=0,
                                 bit=bit, cycle=cycle),),
                mask_id=mask_id,
            )
            for mask_id, (bit, cycle) in enumerate(sites)
        ]


# --------------------------------------------------------------------------
# adversarial: InjectV-style directed campaigns
# --------------------------------------------------------------------------


class AdversarialGenerator(FaultGenerator):
    """Directed flips aimed at instruction bytes resident in a cache.

    Instead of sampling the structure uniformly, the generator walks the
    golden commit trace and targets the cache lines that hold committed
    instructions — the InjectV attack families:

    * ``attack=skip``   — any committed instruction's first (opcode) byte;
    * ``attack=opcode`` — any of the first 4 instruction bytes (clamped to
      the cache line);
    * ``attack=branch`` — the opcode byte of committed *branches* only
      (the decode/branch-resolution window).

    The cache set is determined by the instruction address; the way is
    drawn at random (an attacker does not control fill order), and the
    injection cycle is spread across the golden window by trace position.
    Campaigns report ``attack_success`` — the SDC share of valid records —
    next to AVF.
    """

    name = "adversarial"
    param_help = {
        "attack": "'skip', 'opcode' or 'branch' (default skip)",
    }

    def _validate(self, params):
        attack = params.get("attack", "skip")
        if attack not in ("skip", "opcode", "branch"):
            raise ValueError(
                f"adversarial attack={attack!r} unknown "
                "(use skip, opcode or branch)")

    def _candidates(self, attack: str, trace: list,
                    line_size: int) -> list[tuple[int, int]]:
        """Distinct ``(pc, targetable_bytes)`` selectors, in commit order."""
        seen: set[int] = set()
        out: list[tuple[int, int]] = []
        for rec in trace:
            pc, _raw, _dst, _value, _addr, _store, taken = rec
            if pc in seen:
                continue
            seen.add(pc)
            if attack == "branch" and taken is None:
                continue
            if attack == "opcode":
                nbytes = min(4, line_size - pc % line_size)
            else:
                nbytes = 1
            out.append((pc, nbytes))
        return out

    def cpu_masks(self, params, ctx):
        if ctx.target_kind != "cache":
            raise ValueError(
                "the adversarial fault model targets instruction bytes in "
                f"a cache (l1i recommended); {ctx.structure} is a "
                f"{ctx.target_kind or 'non-cache'} structure")
        if ctx.model is not FaultModel.TRANSIENT:
            raise ValueError(
                "the adversarial fault model injects timed transients only "
                f"(got {ctx.model.value})")
        if ctx.flips_per_mask != 1:
            raise ValueError(
                "the adversarial fault model places one directed flip per "
                "mask; leave flips_per_mask at 1")
        if ctx.cache_geometry is None or not ctx.commit_trace:
            raise ValueError(
                "adversarial sampling needs the golden commit trace and the "
                "target cache geometry")
        attack = params.get("attack", "skip")
        line_size, num_sets, assoc = ctx.cache_geometry
        candidates = self._candidates(attack, ctx.commit_trace, line_size)
        if not candidates:
            raise ValueError(
                f"adversarial attack={attack!r}: the golden commit trace "
                "has no eligible instructions (no branches committed?)")
        lo, hi = ctx.window
        if hi <= lo:
            raise ValueError(f"empty injection window {ctx.window}")
        rng = random.Random(ctx.seed)
        n = len(candidates)

        def draw_one():
            i = rng.randrange(n)
            pc, nbytes = candidates[i]
            byte_off = rng.randrange(nbytes)
            bit_in_byte = rng.randrange(8)
            set_idx = (pc // line_size) % num_sets
            way = rng.randrange(assoc)
            entry = set_idx * assoc + way
            bit = (pc % line_size + byte_off) * 8 + bit_in_byte
            # the commit trace carries no cycle stamps: spread injections
            # across the golden window by trace position, deterministically
            cycle = min(hi - 1, lo + ((i + 1) * (hi - lo)) // (n + 1))
            return (entry, bit, cycle)

        sites = _drawn_without_replacement(
            ctx.count, draw_one,
            f"adversarial sites over {n} candidate instructions")
        return [
            FaultMask(
                model=ctx.model,
                flips=(FaultFlip(structure=ctx.structure, entry=e, bit=b,
                                 cycle=c),),
                mask_id=mask_id,
            )
            for mask_id, (e, b, c) in enumerate(sites)
        ]


# --------------------------------------------------------------------------
# registry + dispatch
# --------------------------------------------------------------------------


GENERATORS: dict[str, FaultGenerator] = {
    g.name: g
    for g in (
        UniformGenerator(),
        BurstGenerator(),
        ErrorMapGenerator(),
        AdversarialGenerator(),
    )
}


def get_generator(name: str) -> FaultGenerator:
    try:
        return GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r}; available: "
            f"{', '.join(sorted(GENERATORS))}"
        ) from None


def _inline_error_map(params: dict[str, str],
                      base_dir: str | Path | None) -> dict[str, str]:
    """Replace a ``map=FILE.toml`` param with the file's inline weights.

    Inlining — rather than fingerprinting the path — makes the spec
    fingerprint content-sensitive *and* the journal self-contained: a
    resumed or distributed campaign never needs the file again, and
    editing the file cannot silently change what a journal claims was run.
    """
    import tomllib

    if "rows" in params or "default" in params:
        raise ValueError(
            "error-map: pass either map=FILE.toml or inline "
            "rows=/default= weights, not both")
    path = Path(params["map"])
    if base_dir is not None and not path.is_absolute():
        path = Path(base_dir) / path
    try:
        doc = tomllib.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"error-map file {path}: {exc}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"error-map file {path}: {exc}") from exc
    unknown = sorted(set(doc) - {"rows", "default"})
    if unknown:
        raise ValueError(
            f"error-map file {path}: unknown key(s) {', '.join(unknown)} "
            "(allowed: rows, default)")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not all(
            isinstance(w, (int, float)) for w in rows):
        raise ValueError(
            f"error-map file {path}: 'rows' must be a list of numbers")
    out = {k: v for k, v in params.items() if k != "map"}
    out["rows"] = "/".join(_fmt_weight(w) for w in rows)
    if "default" in doc:
        if not isinstance(doc["default"], (int, float)):
            raise ValueError(
                f"error-map file {path}: 'default' must be a number")
        out["default"] = _fmt_weight(doc["default"])
    return out


def _fmt_weight(w) -> str:
    return str(int(w)) if float(w).is_integer() else repr(float(w))


def resolve(spec: FaultModelSpec | None,
            base_dir: str | Path | None = None) -> FaultModelSpec | None:
    """Canonicalize a parsed fault-model spec for use in a campaign spec.

    * validates the generator name and its parameters,
    * inlines ``error-map`` ``map=`` files (relative to ``base_dir``),
    * collapses a bare ``uniform`` to ``None`` — the unset form — so an
      explicitly-requested default fingerprint-matches (and journals
      byte-identically to) a spec that never mentioned a fault model.
    """
    if spec is None:
        return None
    generator = get_generator(spec.name)
    params = spec.param_dict()
    if spec.name == "error-map" and "map" in params:
        params = _inline_error_map(params, base_dir)
    generator.validate(params)
    if spec.name == DEFAULT_GENERATOR and not params:
        return None
    return FaultModelSpec(name=spec.name, params=tuple(params.items()))


def parse_fault_model(text: str,
                      base_dir: str | Path | None = None) -> FaultModelSpec | None:
    """Parse + resolve a ``--fault-model`` argument in one step."""
    return resolve(FaultModelSpec.parse(text), base_dir)


def validate_for(spec: FaultModelSpec | None, *, accel: bool = False,
                 model: FaultModel | None = None,
                 flips_per_mask: int = 1,
                 target_kind: str | None = None) -> None:
    """Static compatibility check of a fault model against a campaign.

    Raises ``ValueError`` with an actionable message when the generator is
    unknown, unsupported on this campaign side, mis-parameterized, or
    incompatible with the campaign's fault model / mask arity / target
    kind.  Campaign drivers call this before any golden simulation so a
    bad spec fails fast.
    """
    if spec is None:
        return
    generator = get_generator(spec.name)
    if accel and not generator.supports_accel:
        raise ValueError(
            f"fault model {spec.name!r} supports CPU campaigns only")
    if not accel and not generator.supports_cpu:  # pragma: no cover
        raise ValueError(
            f"fault model {spec.name!r} supports accelerator campaigns only")
    generator.validate(spec.param_dict())
    if spec.name == "burst" and flips_per_mask != 1:
        raise ValueError(
            "the burst fault model sets its own multi-bit arity; "
            "leave flips_per_mask at 1")
    if spec.name == "adversarial":
        if flips_per_mask != 1:
            raise ValueError(
                "the adversarial fault model places one directed flip per "
                "mask; leave flips_per_mask at 1")
        if model is not None and model is not FaultModel.TRANSIENT:
            raise ValueError(
                "the adversarial fault model injects timed transients only "
                f"(got {model.value})")
        if target_kind is not None and target_kind != "cache":
            raise ValueError(
                "the adversarial fault model targets instruction bytes in "
                "a cache (l1i recommended); pick a cache target")


def cpu_sample(spec: FaultModelSpec | None, **kwargs) -> list[FaultMask]:
    """Dispatch a CPU-structure sample through the registry."""
    ctx = CpuSampleContext(**kwargs)
    generator = get_generator(spec.name if spec is not None else DEFAULT_GENERATOR)
    params = spec.param_dict() if spec is not None else {}
    generator.validate(params)
    return generator.cpu_masks(params, ctx)


def accel_sample(spec: FaultModelSpec | None, **kwargs) -> list[FaultMask]:
    """Dispatch an accelerator-memory sample through the registry."""
    ctx = AccelSampleContext(**kwargs)
    name = spec.name if spec is not None else DEFAULT_GENERATOR
    generator = get_generator(name)
    if not generator.supports_accel:
        raise ValueError(f"fault model {name!r} supports CPU campaigns only")
    params = spec.param_dict() if spec is not None else {}
    generator.validate(params)
    return generator.accel_masks(params, ctx)
