"""Statistical fault sampling (Leveugle et al., DATE 2009).

The paper's campaigns draw 1,000 uniformly distributed single-bit faults per
structure, which the Leveugle formulation puts at a 3% error margin with 95%
confidence; these are the same formulas.
"""

from __future__ import annotations

import math
import random

from repro.core.faults import FaultFlip, FaultMask, FaultModel

#: two-sided normal quantiles for common confidence levels
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ValueError(f"unsupported confidence {confidence}; use 0.90/0.95/0.99") from None


def sample_size(
    population: int,
    error_margin: float = 0.03,
    confidence: float = 0.95,
    p: float = 0.5,
) -> int:
    """Faults needed for the given error margin (finite population corrected).

    ``n = N / (1 + e^2 (N-1) / (z^2 p (1-p)))`` — Leveugle's equation with
    ``p = 0.5`` as the conservative prior the paper adopts.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    z = _z(confidence)
    e2 = error_margin * error_margin
    n = population / (1 + e2 * (population - 1) / (z * z * p * (1 - p)))
    return max(1, math.ceil(n))


def error_margin_for(
    n: int, population: int, confidence: float = 0.95, p: float = 0.5
) -> float:
    """Error margin achieved by ``n`` samples out of ``population`` bits."""
    if n <= 0 or population <= 0:
        raise ValueError("n and population must be positive")
    if n >= population:
        return 0.0
    z = _z(confidence)
    return z * math.sqrt(p * (1 - p) / n * (population - n) / (population - 1))


def generate_masks(
    structure: str,
    entries: int,
    bits_per_entry: int,
    count: int,
    window: tuple[int, int],
    model: FaultModel = FaultModel.TRANSIENT,
    seed: int = 1,
    flips_per_mask: int = 1,
) -> list[FaultMask]:
    """``count`` uniformly distributed fault masks over a structure.

    ``window`` is the (start, end) cycle interval of the golden run during
    which transient faults may strike (the checkpoint→switch_cpu region of
    the paper's workload protocol).  Stuck-at faults are timed at cycle 0:
    a manufacturing defect is present from power-on.
    """
    if entries <= 0 or bits_per_entry <= 0:
        raise ValueError("structure geometry must be positive")
    lo, hi = window
    if hi <= lo:
        raise ValueError(f"empty injection window {window}")
    rng = random.Random(seed)
    masks = []
    for mask_id in range(count):
        flips = tuple(
            FaultFlip(
                structure=structure,
                entry=rng.randrange(entries),
                bit=rng.randrange(bits_per_entry),
                cycle=0 if model.permanent else rng.randrange(lo, hi),
            )
            for _ in range(flips_per_mask)
        )
        masks.append(FaultMask(model=model, flips=flips, mask_id=mask_id))
    return masks
