"""Statistical fault sampling (Leveugle et al., DATE 2009).

The paper's campaigns draw 1,000 uniformly distributed single-bit faults per
structure, which the Leveugle formulation puts at a 3% error margin with 95%
confidence; these are the same formulas.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.faults import FaultFlip, FaultMask, FaultModel

#: two-sided normal quantiles for common confidence levels
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ValueError(f"unsupported confidence {confidence}; use 0.90/0.95/0.99") from None


def sample_size(
    population: int,
    error_margin: float = 0.03,
    confidence: float = 0.95,
    p: float = 0.5,
) -> int:
    """Faults needed for the given error margin (finite population corrected).

    ``n = N / (1 + e^2 (N-1) / (z^2 p (1-p)))`` — Leveugle's equation with
    ``p = 0.5`` as the conservative prior the paper adopts.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    if not 0 < p < 1:
        raise ValueError(f"p must be in the open interval (0, 1): {p}")
    z = _z(confidence)
    e2 = error_margin * error_margin
    n = population / (1 + e2 * (population - 1) / (z * z * p * (1 - p)))
    return max(1, math.ceil(n))


def error_margin_for(
    n: int, population: int, confidence: float = 0.95, p: float = 0.5
) -> float:
    """Error margin achieved by ``n`` samples out of ``population`` bits."""
    if n <= 0 or population <= 0:
        raise ValueError("n and population must be positive")
    if not 0 < p < 1:
        # p=0/p=1 would silently report margin 0 and stop an adaptive
        # campaign after its first batch — reject it loudly instead
        raise ValueError(f"p must be in the open interval (0, 1): {p}")
    if n >= population:
        return 0.0
    z = _z(confidence)
    return z * math.sqrt(p * (1 - p) / n * (population - n) / (population - 1))


@dataclass(frozen=True)
class AdaptiveSampling:
    """Sequential stopping rule for a fault campaign (Leveugle, sequel).

    Instead of always burning the fixed fault budget, the campaign
    dispatches masks in batches and stops as soon as the *achieved* error
    margin — ``error_margin_for(n_valid, population)`` at ``confidence`` —
    drops to ``target_margin``.  The fixed budget becomes an upper bound;
    structures whose estimate converges early stop early.

    The stopping decision is a pure function of the (deterministic) record
    stream and the *absolute* batch boundaries, so an interrupted campaign
    resumed from its journal makes the identical stop decision and the
    journal stays byte-identical to an uninterrupted run's.
    """

    #: stop once the achieved error margin is at or below this
    target_margin: float = 0.03
    #: confidence level for the margin (0.90 / 0.95 / 0.99)
    confidence: float = 0.95
    #: masks dispatched between margin checks
    batch: int = 50
    #: never stop before this many masks have run (early estimates are noisy)
    min_faults: int = 20

    def __post_init__(self):
        if not 0 < self.target_margin < 1:
            raise ValueError(f"target_margin must be in (0, 1): {self.target_margin}")
        if self.batch < 1 or self.min_faults < 1:
            raise ValueError("batch and min_faults must be >= 1")
        _z(self.confidence)   # validates the confidence level

    def boundaries(self, budget: int):
        """Absolute mask counts at which the margin is checked.

        ``min_faults, min_faults + batch, min_faults + 2*batch, ...``
        capped at ``budget`` (which is always the final boundary).
        """
        if budget <= 0:
            raise ValueError(f"budget must be positive: {budget}")
        b = min(self.min_faults, budget)
        while b < budget:
            yield b
            b = min(b + self.batch, budget)
        yield budget

    def next_boundary(self, done: int, budget: int) -> int | None:
        """The first boundary strictly beyond ``done`` masks (None = spent)."""
        for b in self.boundaries(budget):
            if b > done:
                return b
        return None

    def satisfied(self, n_valid: int, population: int) -> bool:
        """Has ``n_valid`` distinct samples already hit the target margin?"""
        if n_valid <= 0:
            return False
        return (
            error_margin_for(n_valid, population, self.confidence)
            <= self.target_margin
        )


def generate_masks(
    structure: str,
    entries: int,
    bits_per_entry: int,
    count: int,
    window: tuple[int, int],
    model: FaultModel = FaultModel.TRANSIENT,
    seed: int = 1,
    flips_per_mask: int = 1,
) -> list[FaultMask]:
    """``count`` uniformly distributed fault masks over a structure.

    ``window`` is the (start, end) cycle interval of the golden run during
    which transient faults may strike (the checkpoint→switch_cpu region of
    the paper's workload protocol).  Stuck-at faults are timed at cycle 0:
    a manufacturing defect is present from power-on.

    Draws are *without replacement* over ``(entry, bit, cycle)`` fault
    sites: Leveugle's ``error_margin_for(n, N)`` assumes ``n`` distinct
    samples of the population, so a duplicate site would overstate the
    achieved statistical power — and inside a multi-bit transient mask a
    repeated flip would XOR itself away, silently turning an ``n``-bit
    fault model into an ``n-2``-bit one.

    Below 50% saturation the draws come from the historical rejection
    stream and are byte-identical to every earlier release.  At or above
    50% saturation rejection sampling degenerates toward coupon-collector
    time, so the sampler switches to a seeded full-population shuffle —
    same distribution, same determinism per seed, linear time.  The
    smaller-count-is-a-prefix property therefore holds *within* a
    sampling regime, not across the 50% boundary.
    """
    if entries <= 0 or bits_per_entry <= 0:
        raise ValueError("structure geometry must be positive")
    lo, hi = window
    if hi <= lo:
        raise ValueError(f"empty injection window {window}")
    # stuck-at sites collapse the cycle dimension (always struck at 0)
    site_population = entries * bits_per_entry * (1 if model.permanent else hi - lo)
    needed = count * flips_per_mask
    if needed > site_population:
        raise ValueError(
            f"cannot draw {needed} distinct fault sites "
            f"from a population of {site_population}"
        )
    rng = random.Random(seed)

    if needed * 2 > site_population:
        # coupon-collector regime: enumerate every site in canonical
        # (entry, bit, cycle) order and shuffle once
        cycles = (0,) if model.permanent else range(lo, hi)
        sites = [
            (e, b, c)
            for e in range(entries)
            for b in range(bits_per_entry)
            for c in cycles
        ]
        rng.shuffle(sites)
        picked = iter(sites[:needed])

        def draw() -> FaultFlip:
            site = next(picked)
            return FaultFlip(
                structure=structure, entry=site[0], bit=site[1],
                cycle=site[2],
            )
    else:
        seen: set[tuple[int, int, int]] = set()

        def draw() -> FaultFlip:
            while True:
                site = (
                    rng.randrange(entries),
                    rng.randrange(bits_per_entry),
                    0 if model.permanent else rng.randrange(lo, hi),
                )
                if site not in seen:
                    seen.add(site)
                    return FaultFlip(
                        structure=structure, entry=site[0], bit=site[1],
                        cycle=site[2],
                    )

    masks = []
    for mask_id in range(count):
        flips = tuple(draw() for _ in range(flips_per_mask))
        masks.append(FaultMask(model=model, flips=flips, mask_id=mask_id))
    return masks


def uniform_accel_sites(
    total_bits: int,
    cycles: int,
    count: int,
    permanent: bool,
    seed: int = 1,
) -> list[tuple[int, int]]:
    """``count`` distinct uniform ``(bit, cycle)`` accelerator fault sites.

    This is the historical accelerator draw loop, extracted so the fault
    -model registry's ``uniform`` generator and the accelerator campaign
    driver share one stream.  Below 50% saturation the rejection stream is
    byte-identical to earlier releases; at or above it, a seeded
    full-population shuffle avoids coupon-collector degeneration (same
    regime split as :func:`generate_masks`).
    """
    if total_bits <= 0 or cycles <= 0:
        raise ValueError("accelerator geometry must be positive")
    population = total_bits * (1 if permanent else cycles)
    if count > population:
        raise ValueError(
            f"cannot draw {count} distinct fault sites from a population "
            f"of {population}"
        )
    rng = random.Random(seed)
    if count * 2 > population:
        if permanent:
            sites = [(b, 0) for b in range(total_bits)]
        else:
            sites = [(b, c) for b in range(total_bits) for c in range(cycles)]
        rng.shuffle(sites)
        return sites[:count]
    seen: set[tuple[int, int]] = set()
    out: list[tuple[int, int]] = []
    while len(out) < count:
        site = (
            rng.randrange(total_bits),
            0 if permanent else rng.randrange(cycles),
        )
        if site not in seen:
            seen.add(site)
            out.append(site)
    return out
