"""Checkpointing: snapshot/restore of the full simulated system state.

The paper extends gem5's checkpointing to preserve **both** architectural
and microarchitectural state (including cache contents) so fault campaigns
can start from any point without warm-up (Section IV-B, "Flexibility and
Ease of Expansion").  This module does the same for :class:`OoOCore`, at
two granularities:

* the legacy quiesced checkpoint (:func:`take_checkpoint`), taken with a
  drained pipeline — an architectural save point;
* :class:`CoreCheckpoint`, a *mid-flight* snapshot of everything down to
  in-flight ROB entries and PLRU bits, cheap enough for a
  :class:`CheckpointStore` to collect one per stride bucket during the
  golden run.  Fault runs then restore the nearest checkpoint at-or-before
  the injection cycle instead of re-simulating the warm-up, and compare
  :func:`state_digest` values against the golden stream to detect
  re-convergence (the fault is gone and every future cycle is identical —
  classify Masked immediately).

Simulation is deterministic, so "identical state at cycle C" implies
"identical run from cycle C" — the property the differential equivalence
suite (``tests/core/test_checkpoint_equivalence.py``) pins down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.cpu.core import OoOCore, _RE


class CheckpointError(Exception):
    """Checkpoint taken or restored in an invalid pipeline state."""


# --------------------------------------------------------------------------
# campaign-facing policy
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a campaign uses checkpoints (kept out of :class:`CampaignSpec`
    on purpose: the policy is an execution strategy, not part of the
    experiment identity, so journal fingerprints — and therefore resume —
    are unaffected by toggling it).

    * ``stride`` — golden-run cycles between checkpoints; ``None`` picks an
      adaptive stride (start fine, thin by doubling once
      ``max_checkpoints`` is exceeded), ``0`` disables checkpointing;
    * ``early_exit`` — classify Masked as soon as the fault run's state
      digest re-converges with the golden checkpoint stream;
    * ``max_checkpoints`` — memory bound for the adaptive mode.
    """

    stride: int | None = None
    early_exit: bool = True
    max_checkpoints: int = 64

    @property
    def enabled(self) -> bool:
        return self.stride != 0


DEFAULT_POLICY = CheckpointPolicy()
NO_CHECKPOINTS = CheckpointPolicy(stride=0, early_exit=False)

#: first stride tried by the adaptive mode (doubles on thinning)
AUTO_INITIAL_STRIDE = 64


# --------------------------------------------------------------------------
# canonical state serialization + digest
# --------------------------------------------------------------------------


def _uop_key(uop) -> tuple:
    """Every behavior-relevant MicroOp field (the debug ``repr`` is not
    exhaustive enough to serve as an identity)."""
    return (
        uop.kind, getattr(uop.fn, "value", uop.fn), uop.dst, uop.dst_fp,
        uop.srcs, uop.srcs_fp, uop.imm, uop.width, uop.signed, uop.cond,
        uop.target, uop.uses_flags, uop.rm_shift, uop.pc, uop.size, uop.raw,
        uop.first_of_instr,
    )


def _entry_key(entry: _RE) -> tuple:
    return tuple(
        _uop_key(getattr(entry, slot)) if slot == "uop" else getattr(entry, slot)
        for slot in _RE.__slots__
    )


def payload_digest(payload: dict) -> bytes:
    """Digest of every future-relevant field of a core snapshot.

    Deliberately *excludes* statistics (cache hit counters, predictor
    lookup counts) and the HVF flags: neither influences any future
    architectural or timing behavior, and a restored core starts its stats
    at zero.  Everything else — down to PLRU bits, free-list order and
    in-flight completion times — is included, so equal digests mean equal
    futures on this deterministic simulator.
    """
    h = hashlib.sha256()
    h.update(payload["memory"])
    h.update(payload["output"])
    for name in ("l1i", "l1d", "l2"):
        cache = payload[name]
        for line in cache["data"]:
            h.update(line)
        h.update(repr((cache["tags"], cache["valid"], cache["dirty"],
                       cache["plru"])).encode())
    h.update(repr((payload["prf_int"], payload["prf_fp"],
                   payload["rat_int"], payload["rat_fp"])).encode())
    h.update(repr((payload["lq"], payload["sq"], payload["predictor"])).encode())
    h.update(repr((
        payload["fetch_pc"],
        [( _uop_key(u), taken) for u, taken in payload["fetch_queue"]],
        payload["fetch_ready_at"], payload["fetch_stalled"],
        [_entry_key(e) for e in payload["rob"]],
        [_entry_key(e) for e in payload["iq"]],
        [(when, _entry_key(e)) for when, e in payload["inflight"]],
        payload["seq"], payload["cycle"], payload["instructions"],
        payload["halted"], payload["wfi_sleep"], payload["irq_pending"],
        payload["checkpoint_cycle"], payload["switch_cycle"],
        payload["div_busy"], payload["fdiv_busy"], payload["trace_len"],
    )).encode())
    # optional structures: their keys only exist when the core has them,
    # so digests of legacy configurations are unchanged byte for byte
    for name in ("mshr", "store_buffer", "prefetcher"):
        if name in payload:
            h.update(repr((name, payload[name])).encode())
    return h.digest()


def state_digest(core: OoOCore) -> bytes:
    """Digest of a live core's complete future-relevant state."""
    return payload_digest(core.snapshot())


# --------------------------------------------------------------------------
# memory image deltas
# --------------------------------------------------------------------------

_DELTA_CHUNK = 256


def delta_encode(base: bytes, image: bytes,
                 chunk: int = _DELTA_CHUNK) -> list[tuple[int, bytes]]:
    """Chunked byte-diff of a memory image against the initial executable
    image — checkpoints store only the pages the program wrote."""
    patches = []
    for off in range(0, len(image), chunk):
        piece = image[off:off + chunk]
        if piece != base[off:off + chunk]:
            patches.append((off, bytes(piece)))
    return patches


def delta_apply(base: bytes, patches: list[tuple[int, bytes]]) -> bytearray:
    buf = bytearray(base)
    for off, piece in patches:
        buf[off:off + len(piece)] = piece
    return buf


# --------------------------------------------------------------------------
# mid-flight checkpoints
# --------------------------------------------------------------------------


class CoreCheckpoint:
    """One mid-flight full-state snapshot plus its digest.

    Memory is held as a delta against the executable's initial image when
    a ``base_image`` is supplied (the common case — one shared base per
    store), or as a full copy otherwise.
    """

    __slots__ = ("cycle", "digest", "payload", "base_image", "mem_delta",
                 "mem_image")

    def __init__(self, cycle, digest, payload, base_image, mem_delta, mem_image):
        self.cycle = cycle
        self.digest = digest
        self.payload = payload
        self.base_image = base_image
        self.mem_delta = mem_delta
        self.mem_image = mem_image

    @classmethod
    def capture(cls, core: OoOCore, base_image: bytes | None = None
                ) -> "CoreCheckpoint":
        payload = core.snapshot()
        digest = payload_digest(payload)
        memory = payload.pop("memory")
        if base_image is not None and len(base_image) == len(memory):
            return cls(payload["cycle"], digest, payload, base_image,
                       delta_encode(base_image, memory), None)
        return cls(payload["cycle"], digest, payload, None, None, memory)

    def memory_image(self) -> bytes | bytearray:
        if self.mem_image is not None:
            return self.mem_image
        return delta_apply(self.base_image, self.mem_delta)

    def restore_into(self, core: OoOCore) -> None:
        """Restore into any core built from the same executable + config."""
        payload = dict(self.payload)
        payload["memory"] = self.memory_image()
        core.restore(payload)


class CheckpointStore:
    """Checkpoints collected along one golden run, ordered by cycle.

    With a fixed stride the store grows as run_cycles/stride; in adaptive
    mode (``stride=None``) it starts at :data:`AUTO_INITIAL_STRIDE` and,
    whenever ``max_checkpoints`` is exceeded, drops every other checkpoint
    and doubles the stride — bounded memory for arbitrarily long runs,
    still deterministic for a given run length.
    """

    def __init__(self, policy: CheckpointPolicy,
                 base_image: bytes | None = None):
        if not policy.enabled:
            raise CheckpointError("CheckpointStore built with a disabled policy")
        self.policy = policy
        self.base_image = base_image
        self.stride = policy.stride or AUTO_INITIAL_STRIDE
        self.checkpoints: list[CoreCheckpoint] = []
        self._next_mark = 0

    def consider(self, core: OoOCore) -> None:
        """Capture if the core reached the next stride mark (call at the
        top of every golden cycle, e.g. via ``OoOCore.run(on_cycle=...)``)."""
        if core.cycle < self._next_mark:
            return
        self.checkpoints.append(CoreCheckpoint.capture(core, self.base_image))
        if (self.policy.stride is None
                and len(self.checkpoints) > self.policy.max_checkpoints):
            self.checkpoints = self.checkpoints[::2]
            self.stride *= 2
        self._next_mark = self.checkpoints[-1].cycle + self.stride

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self.checkpoints)

    def best_for(self, cycle: int) -> CoreCheckpoint | None:
        """Latest checkpoint at-or-before ``cycle`` (None if there is none)."""
        best = None
        for ckpt in self.checkpoints:
            if ckpt.cycle > cycle:
                break
            best = ckpt
        return best

    def restore_cycle_for(self, cycle: int) -> int:
        ckpt = self.best_for(cycle)
        return ckpt.cycle if ckpt is not None else 0

    def probes_after(self, cycle: int) -> list[CoreCheckpoint]:
        """Checkpoints strictly after ``cycle`` — the points a fault run
        compares its own digest for re-convergence."""
        return [c for c in self.checkpoints if c.cycle > cycle]


def matches(ckpt: CoreCheckpoint, core: OoOCore) -> bool:
    """Does the live core's state digest equal this golden checkpoint's?

    Cheap pre-filters first (commit-trace position, program output): a
    diverged run almost always differs there, and the full digest requires
    a complete state snapshot — worth paying only when convergence is
    actually plausible.
    """
    if ckpt.payload["trace_len"] != len(core.trace):
        return False
    if ckpt.payload["output"] != core.output:
        return False
    return state_digest(core) == ckpt.digest


# --------------------------------------------------------------------------
# legacy quiesced checkpoints (architectural save points)
# --------------------------------------------------------------------------


@dataclass
class Checkpoint:
    """An opaque full-system snapshot."""

    cycle: int
    payload: dict


def quiesce(core: OoOCore, max_cycles: int = 100_000) -> None:
    """Drain the pipeline: run until the ROB and store queue are empty.

    Fetch keeps running, so this is "drain in-flight work", not "stop" —
    call right after the instruction of interest commits.
    """
    start = core.cycle
    while (core.rob or any(e.valid for e in core.sq.entries)
           or (core.store_buffer is not None
               and any(e.valid for e in core.store_buffer.entries))
           or (core.mshr is not None and core.mshr.occupancy())):
        if core.halted:
            return
        if core.cycle - start > max_cycles:
            raise CheckpointError("pipeline failed to drain")
        core.step()


def take_checkpoint(core: OoOCore) -> Checkpoint:
    """Snapshot the complete system state (call on a quiesced core)."""
    if core.rob:
        raise CheckpointError("checkpoint requires a drained pipeline")
    payload = {
        "memory": core.memory.snapshot(),
        "l1i": core.l1i.snapshot(),
        "l1d": core.l1d.snapshot(),
        "l2": core.l2.snapshot(),
        "prf_int": core.prf_int.snapshot(),
        "prf_fp": core.prf_fp.snapshot(),
        "rat_int": list(core.rat_int),
        "rat_fp": list(core.rat_fp),
        "lq": core.lq.snapshot(),
        "sq": core.sq.snapshot(),
        "predictor": core.predictor.snapshot(),
        "fetch_pc": core.fetch_pc,
        "cycle": core.cycle,
        "seq": core.seq,
        "instructions": core.instructions,
        "output": bytes(core.output),
        "halted": core.halted,
    }
    # quiesce drained the MSHR and store buffer, but the prefetcher's
    # trained strides are persistent timing state, like the predictor's
    if core.mshr is not None:
        payload["mshr"] = core.mshr.snapshot()
    if core.store_buffer is not None:
        payload["store_buffer"] = core.store_buffer.snapshot()
    if core.prefetcher is not None:
        payload["prefetcher"] = core.prefetcher.snapshot()
    return Checkpoint(cycle=core.cycle, payload=payload)


def restore_checkpoint(core: OoOCore, ckpt: Checkpoint) -> None:
    """Restore a snapshot into a core built with the same configuration."""
    p = ckpt.payload
    core.memory.restore(p["memory"])
    core.l1i.restore(p["l1i"])
    core.l1d.restore(p["l1d"])
    core.l2.restore(p["l2"])
    core.prf_int.restore(p["prf_int"])
    core.prf_fp.restore(p["prf_fp"])
    core.rat_int[:] = p["rat_int"]
    core.rat_fp[:] = p["rat_fp"]
    core.lq.restore(p["lq"])
    core.sq.restore(p["sq"])
    core.predictor.restore(p["predictor"])
    core.fetch_pc = p["fetch_pc"]
    core.cycle = p["cycle"]
    core.seq = p["seq"]
    core.instructions = p["instructions"]
    core.output = bytearray(p["output"])
    core.halted = p["halted"]
    if core.mshr is not None and "mshr" in p:
        core.mshr.restore(p["mshr"])
    if core.store_buffer is not None and "store_buffer" in p:
        core.store_buffer.restore(p["store_buffer"])
    if core.prefetcher is not None and "prefetcher" in p:
        core.prefetcher.restore(p["prefetcher"])
    core.rob.clear()
    core.iq.clear()
    core.inflight.clear()
    core.fetch_queue.clear()
    core.fetch_stalled = False
    core.fetch_ready_at = core.cycle
    core.last_commit_cycle = core.cycle
    core._decode_cache.clear()
