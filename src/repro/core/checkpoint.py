"""Checkpointing: snapshot/restore of the full simulated system state.

The paper extends gem5's checkpointing to preserve **both** architectural
and microarchitectural state (including cache contents) so fault campaigns
can start from any point without warm-up (Section IV-B, "Flexibility and
Ease of Expansion").  This module does the same for :class:`OoOCore`:
a checkpoint captures memory, all cache arrays (tags + data + PLRU),
physical register files, rename tables, queues and the fetch state, taken
at a quiesced point (pipeline drained).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import OoOCore


class CheckpointError(Exception):
    """Checkpoint taken or restored in an invalid pipeline state."""


@dataclass
class Checkpoint:
    """An opaque full-system snapshot."""

    cycle: int
    payload: dict


def quiesce(core: OoOCore, max_cycles: int = 100_000) -> None:
    """Drain the pipeline: run until the ROB and store queue are empty.

    Fetch keeps running, so this is "drain in-flight work", not "stop" —
    call right after the instruction of interest commits.
    """
    start = core.cycle
    while core.rob or any(e.valid for e in core.sq.entries):
        if core.halted:
            return
        if core.cycle - start > max_cycles:
            raise CheckpointError("pipeline failed to drain")
        core.step()


def take_checkpoint(core: OoOCore) -> Checkpoint:
    """Snapshot the complete system state (call on a quiesced core)."""
    if core.rob:
        raise CheckpointError("checkpoint requires a drained pipeline")
    payload = {
        "memory": core.memory.snapshot(),
        "l1i": core.l1i.snapshot(),
        "l1d": core.l1d.snapshot(),
        "l2": core.l2.snapshot(),
        "prf_int": core.prf_int.snapshot(),
        "prf_fp": core.prf_fp.snapshot(),
        "rat_int": list(core.rat_int),
        "rat_fp": list(core.rat_fp),
        "lq": core.lq.snapshot(),
        "sq": core.sq.snapshot(),
        "predictor": core.predictor.snapshot(),
        "fetch_pc": core.fetch_pc,
        "cycle": core.cycle,
        "seq": core.seq,
        "instructions": core.instructions,
        "output": bytes(core.output),
        "halted": core.halted,
    }
    return Checkpoint(cycle=core.cycle, payload=payload)


def restore_checkpoint(core: OoOCore, ckpt: Checkpoint) -> None:
    """Restore a snapshot into a core built with the same configuration."""
    p = ckpt.payload
    core.memory.restore(p["memory"])
    core.l1i.restore(p["l1i"])
    core.l1d.restore(p["l1d"])
    core.l2.restore(p["l2"])
    core.prf_int.restore(p["prf_int"])
    core.prf_fp.restore(p["prf_fp"])
    core.rat_int[:] = p["rat_int"]
    core.rat_fp[:] = p["rat_fp"]
    core.lq.restore(p["lq"])
    core.sq.restore(p["sq"])
    core.predictor.restore(p["predictor"])
    core.fetch_pc = p["fetch_pc"]
    core.cycle = p["cycle"]
    core.seq = p["seq"]
    core.instructions = p["instructions"]
    core.output = bytearray(p["output"])
    core.halted = p["halted"]
    core.rob.clear()
    core.iq.clear()
    core.inflight.clear()
    core.fetch_queue.clear()
    core.fetch_stalled = False
    core.fetch_ready_at = core.cycle
    core._decode_cache.clear()
