"""Experiment-matrix scheduler: declarative campaign grids, run as one queue.

The paper's headline results are *grids* — per-structure AVF across
workloads × ISAs (Figures 4-11), DSA designs × components (Figure 14) —
but ``repro campaign`` runs one cell at a time, re-paying compilation and
golden simulation per invocation.  This module runs a whole grid:

* **declarative grid** — a TOML file expands into campaign *cells*
  (:func:`load_grid`): every ``[cpu]`` ``isas × workloads × targets``
  combination and every ``[accel]`` ``designs × components`` combination
  becomes one cell with its own spec, seed, and fault budget;
* **one interleaved work queue** — each scheduling round drains every
  active cell's next batch through a single
  :func:`~repro.core.supervisor.run_supervised` pool (or a serial loop),
  round-robin across cells, with per-item wall-clock budgets
  (``item_timeout``) because CPU and DSA cells have wildly different
  golden run lengths.  Compiled executables, golden runs and checkpoint
  stores are shared across cells by the existing process-level caches —
  cells differing only in target re-use the same golden simulation;
* **resumable matrix manifest** — every cell journals into
  ``<out>/cells/<key>.jsonl`` through an
  :class:`~repro.core.journal.OrderedJournalWriter`, so each cell journal
  is byte-identical to the one a standalone serial campaign would write,
  at every instant.  ``manifest.json`` (atomically rewritten each round)
  records grid fingerprint and per-cell progress; ``resume=True`` repairs
  torn tails, replays the journal prefix, and continues — producing
  byte-identical cell journals to an uninterrupted run;
* **adaptive sequential sampling** — with an ``[adaptive]`` section the
  grid applies :class:`~repro.core.sampling.AdaptiveSampling` per cell:
  a cell whose achieved error margin reaches the target at a batch
  boundary stops early, freeing the queue for unconverged cells.  Stop
  decisions depend only on absolute boundaries and the deterministic
  record stream, so resumed matrices stop at the identical fault.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.campaign import (
    CampaignResult,
    CampaignSpec,
    FaultRecord,
    default_fault_timeout,
    golden_run,
    masks_for_spec,
    quarantine_record,
    run_one_fault,
    target_geometry,
)
from repro.core.protection import ProtectionConfig, normalized
from repro.core.checkpoint import DEFAULT_POLICY as DEFAULT_CHECKPOINT_POLICY
from repro.core.checkpoint import CheckpointPolicy
from repro.core.faults import FaultMask, FaultModel
from repro.core.journal import (
    CampaignJournal,
    OrderedJournalWriter,
    contiguous_prefix,
    repair_torn_tail,
)
from repro.core.outcome import Outcome
from repro.core.report import render_matrix
from repro.core.sampling import AdaptiveSampling, error_margin_for
from repro.core.sanitizer import DEFAULT_HANG_CYCLES, SanitizerPolicy
from repro.core.supervisor import SupervisorPolicy, TaskOutcome, run_supervised
from repro.core.targets import get_target
from repro.cpu.core import OoOCore
from repro.isa.base import get_isa

MANIFEST_VERSION = 1

_MODELS = {
    "transient": FaultModel.TRANSIENT,
    "stuck0": FaultModel.STUCK_AT_0,
    "stuck1": FaultModel.STUCK_AT_1,
}


class MatrixError(RuntimeError):
    """A grid file or matrix output directory cannot be used."""


# --------------------------------------------------------------------------
# grid definition
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MatrixCell:
    """One campaign in the grid (key is filesystem- and report-stable)."""

    key: str
    kind: str               # 'cpu' | 'accel'
    row: str                # report row label (isa/workload or design)
    col: str                # report column label (target or component)
    spec: object            # CampaignSpec | AccelCampaignSpec


@dataclass(frozen=True)
class MatrixGrid:
    """A parsed experiment grid."""

    name: str
    cells: tuple[MatrixCell, ...]
    adaptive: AdaptiveSampling | None = None
    clock_hz: float = 2e9
    fingerprint: str = ""


def _fingerprint(data: dict) -> str:
    canon = json.dumps(data, sort_keys=True, default=str)
    return hashlib.sha256(canon.encode()).hexdigest()


def _check_keys(section: str, data: dict, allowed: set[str]) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise MatrixError(
            f"unknown key(s) {sorted(unknown)} in [{section}] "
            f"(allowed: {sorted(allowed)})"
        )


def _protection_variants(
    section: str, table: dict | None, structure: str, model: FaultModel,
) -> list[tuple[str, ProtectionConfig | None]]:
    """Expand a grid protection table into per-cell (suffix, config) pairs.

    ``table`` maps structure names to a scheme name *or a list of scheme
    names* — the list form is the coverage-DSE axis, fanning one grid cell
    out into one cell per scheme.  A ``none`` entry keeps the unsuffixed
    cell key (and a ``None`` config), so its journal stays byte-identical
    to an unprotected grid's; every other scheme suffixes the key with
    ``+<scheme>``.
    """
    if not table:
        return [("", None)]
    value = table.get(structure, "none")
    names = list(value) if isinstance(value, list) else [value]
    if not names:
        raise MatrixError(
            f"[{section}.protection] {structure}: empty scheme list"
        )
    variants: list[tuple[str, ProtectionConfig | None]] = []
    for name in names:
        try:
            config = normalized(
                ProtectionConfig(schemes=((structure, str(name)),))
            )
        except ValueError as exc:
            raise MatrixError(
                f"[{section}.protection] {structure}: {exc}"
            ) from exc
        if config is not None and model is not FaultModel.TRANSIENT:
            raise MatrixError(
                f"[{section}.protection] {structure}: protection modeling "
                f"supports transient faults only (model is "
                f"{model.value!r})"
            )
        variants.append(("" if config is None else f"+{name}", config))
    return variants


def _cell_seed(base: int, *parts: str) -> int:
    """Stable per-cell sub-seed derived from the grid seed and cell identity.

    Feeding the raw grid ``seed`` into every cell's ``random.Random`` made
    cells with coinciding geometry and window draw *identical* fault-site
    sequences (e.g. two same-width regfile targets, or the same target
    across workloads sharing a window), silently correlating their AVF
    estimates.  Hashing the cell identity into the seed keeps each cell's
    stream deterministic and resumable while decorrelating cells; the
    derived seed lands in the cell's spec (and so its journal header), so
    a standalone ``repro campaign`` replay of that spec still produces the
    byte-identical journal.
    """
    digest = hashlib.sha256("\x1f".join([*parts, str(base)]).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _fault_model_variants(section: str, value, *, accel: bool,
                          model: FaultModel, flips_per_mask: int = 1,
                          target_kind: str | None = None,
                          base_dir: str | Path | None = None):
    """Expand a grid ``fault_model`` entry into (suffix, spec) pairs.

    ``value`` is a generator string (``"burst:arity=3"``), a table
    (``{name = "error-map", rows = "4/2/1"}``), or a list of either — the
    list form fans one grid cell out into one cell per generator, like
    protection scheme lists.  A ``uniform`` (or absent) entry keeps the
    unsuffixed cell key and an unset spec field, so its journal stays
    byte-identical to a grid that never mentions fault models; every other
    generator suffixes the key with ``@<name>[-k=v...]``.
    """
    from repro.core import faultmodels

    if value is None:
        return [("", None)]
    items = list(value) if isinstance(value, list) else [value]
    if not items:
        raise MatrixError(f"[{section}] fault_model: empty list")
    variants = []
    for item in items:
        try:
            if isinstance(item, str):
                parsed = faultmodels.FaultModelSpec.parse(item)
            elif isinstance(item, dict):
                name = item.get("name")
                if not isinstance(name, str):
                    raise ValueError(
                        "fault_model table needs a string 'name' key")
                params = tuple(
                    (str(k), str(v)) for k, v in item.items() if k != "name"
                )
                parsed = faultmodels.FaultModelSpec(name=name, params=params)
            else:
                raise ValueError(
                    f"fault_model entries are strings or tables, "
                    f"got {type(item).__name__}")
            resolved = faultmodels.resolve(parsed, base_dir)
            faultmodels.validate_for(
                resolved, accel=accel, model=model,
                flips_per_mask=flips_per_mask, target_kind=target_kind,
            )
        except ValueError as exc:
            raise MatrixError(f"[{section}] fault_model: {exc}") from exc
        if resolved is None:
            variants.append(("", None))
        else:
            # cell keys become journal filenames: strip path separators
            safe = (resolved.describe()
                    .replace(":", "-").replace(",", "-").replace("/", "_"))
            variants.append((f"@{safe}", resolved))
    return variants


def _liveness_mode(section: str, value) -> str | None:
    """Normalize a grid ``liveness`` entry (``"off"`` → ``None``).

    ``None`` keeps the spec's default so the cell journal stays
    byte-identical to a grid that never mentions liveness.
    """
    if value is None or value == "off":
        return None
    if value in ("on", "audit"):
        return value
    raise MatrixError(
        f"[{section}] unknown liveness mode {value!r} "
        f"(allowed: off, on, audit)"
    )


def grid_from_dict(data: dict,
                   base_dir: str | Path | None = None) -> MatrixGrid:
    """Expand a parsed grid document into a :class:`MatrixGrid`.

    ``base_dir`` anchors relative paths inside the grid (error-map files);
    :func:`load_grid` passes the grid file's own directory.
    """
    _check_keys("<top>", data, {"matrix", "cpu", "accel", "adaptive", "report"})
    meta = data.get("matrix", {})
    _check_keys("matrix", meta, {"name"})
    cells: list[MatrixCell] = []

    cpu = data.get("cpu")
    if cpu:
        from repro.core.presets import get_preset

        _check_keys("cpu", cpu, {
            "isas", "workloads", "targets", "faults", "seed", "scale",
            "model", "preset", "flips_per_mask", "protection", "liveness",
            "fault_model", "mshr_entries", "store_buffer_entries",
            "prefetcher_entries",
        })
        for need in ("workloads", "targets"):
            if not cpu.get(need):
                raise MatrixError(f"[cpu] needs a non-empty '{need}' list")
        cfg = get_preset(cpu.get("preset", "sim"))
        uarch_sizes = {
            key: int(cpu[key])
            for key in ("mshr_entries", "store_buffer_entries",
                        "prefetcher_entries")
            if key in cpu
        }
        if uarch_sizes:
            cfg = cfg.with_(**uarch_sizes)
        model = _MODELS.get(cpu.get("model", "transient"))
        if model is None:
            raise MatrixError(f"unknown fault model {cpu.get('model')!r}")
        liveness = _liveness_mode("cpu", cpu.get("liveness"))
        flips_per_mask = int(cpu.get("flips_per_mask", 1))
        for isa in cpu.get("isas", ["rv"]):
            for workload in cpu["workloads"]:
                for target in cpu["targets"]:
                    try:
                        target_kind = get_target(target).kind
                    except KeyError as exc:
                        raise MatrixError(f"[cpu] {exc.args[0]}") from exc
                    variants = _protection_variants(
                        "cpu", cpu.get("protection"), target, model
                    )
                    fm_variants = _fault_model_variants(
                        "cpu", cpu.get("fault_model"), accel=False,
                        model=model, flips_per_mask=flips_per_mask,
                        target_kind=target_kind, base_dir=base_dir,
                    )
                    for suffix, protection in variants:
                        for fm_suffix, fault_model in fm_variants:
                            spec = CampaignSpec(
                                isa=isa, workload=workload, target=target,
                                cfg=cfg,
                                scale=cpu.get("scale", "tiny"), model=model,
                                faults=int(cpu.get("faults", 100)),
                                seed=_cell_seed(int(cpu.get("seed", 1)),
                                                "cpu", isa, workload, target),
                                flips_per_mask=flips_per_mask,
                                protection=protection,
                                liveness=liveness,
                                fault_model=fault_model,
                            )
                            cells.append(MatrixCell(
                                key=(f"cpu-{isa}-{workload}-{target}"
                                     f"{suffix}{fm_suffix}"),
                                kind="cpu", row=f"{isa}/{workload}",
                                col=f"{target}{suffix}{fm_suffix}",
                                spec=spec,
                            ))

    accel = data.get("accel")
    if accel:
        from repro.accel.campaign import AccelCampaignSpec
        from repro.accel_designs import PAPER_TARGETS

        _check_keys("accel", accel, {
            "designs", "components", "faults", "seed", "scale", "model",
            "protection", "liveness", "fault_model",
        })
        if not accel.get("designs"):
            raise MatrixError("[accel] needs a non-empty 'designs' list")
        model = _MODELS.get(accel.get("model", "transient"))
        if model is None:
            raise MatrixError(f"unknown fault model {accel.get('model')!r}")
        liveness = _liveness_mode("accel", accel.get("liveness"))
        fm_variants = _fault_model_variants(
            "accel", accel.get("fault_model"), accel=True,
            model=model, base_dir=base_dir,
        )
        for design in accel["designs"]:
            components = accel.get("components") or PAPER_TARGETS.get(design)
            if not components:
                raise MatrixError(f"no components known for design {design!r}")
            for component in components:
                variants = _protection_variants(
                    "accel", accel.get("protection"), component, model
                )
                for suffix, protection in variants:
                    for fm_suffix, fault_model in fm_variants:
                        spec = AccelCampaignSpec(
                            design=design, component=component,
                            scale=accel.get("scale", "tiny"), model=model,
                            faults=int(accel.get("faults", 100)),
                            seed=_cell_seed(int(accel.get("seed", 1)),
                                            "accel", design, component),
                            protection=protection,
                            liveness=liveness,
                            fault_model=fault_model,
                        )
                        cells.append(MatrixCell(
                            key=(f"accel-{design}-{component}"
                                 f"{suffix}{fm_suffix}"),
                            kind="accel", row=f"accel/{design}",
                            col=f"{component}{suffix}{fm_suffix}",
                            spec=spec,
                        ))

    if not cells:
        raise MatrixError("grid expands to zero cells (no [cpu] or [accel])")
    keys = [c.key for c in cells]
    if len(set(keys)) != len(keys):
        raise MatrixError("grid expands to duplicate cell keys")

    adaptive = None
    if "adaptive" in data:
        adp = data["adaptive"]
        _check_keys("adaptive", adp, {
            "target_margin", "confidence", "batch", "min_faults",
        })
        adaptive = AdaptiveSampling(
            target_margin=float(adp.get("target_margin", 0.03)),
            confidence=float(adp.get("confidence", 0.95)),
            batch=int(adp.get("batch", 50)),
            min_faults=int(adp.get("min_faults", 20)),
        )

    report = data.get("report", {})
    _check_keys("report", report, {"clock_hz"})

    return MatrixGrid(
        name=str(meta.get("name", "matrix")),
        cells=tuple(cells),
        adaptive=adaptive,
        clock_hz=float(report.get("clock_hz", 2e9)),
        fingerprint=_fingerprint(data),
    )


def load_grid(path: str | Path) -> MatrixGrid:
    """Parse a grid TOML file into a :class:`MatrixGrid`."""
    import tomllib

    try:
        data = tomllib.loads(Path(path).read_text())
    except tomllib.TOMLDecodeError as exc:
        raise MatrixError(f"{path}: {exc}") from exc
    return grid_from_dict(data, base_dir=Path(path).parent)


# --------------------------------------------------------------------------
# worker-side execution (one function for both cell kinds)
# --------------------------------------------------------------------------

#: policies the pool initializer armed for this worker process
_W_CHECKPOINTS: CheckpointPolicy | None = None
_W_SANITIZER: SanitizerPolicy | None = None
_W_HANG_CYCLES: int = DEFAULT_HANG_CYCLES
#: per-process replay-context cache: accel cells re-use DMA'd state
_W_ACCEL_CTX: dict = {}


def _matrix_worker_init(checkpoints: CheckpointPolicy | None = None,
                        sanitizer: SanitizerPolicy | None = None,
                        hang_cycles: int = DEFAULT_HANG_CYCLES) -> None:
    global _W_CHECKPOINTS, _W_SANITIZER, _W_HANG_CYCLES
    _W_CHECKPOINTS = checkpoints
    _W_SANITIZER = sanitizer
    _W_HANG_CYCLES = hang_cycles
    _W_ACCEL_CTX.clear()


def _matrix_task(task: tuple) -> FaultRecord:
    """Run one (kind, spec, mask) task; used by pool workers *and* the
    serial path, so both share the per-process golden/exe/context caches."""
    kind, spec, mask = task
    if kind == "cpu":
        return run_one_fault(spec, mask, checkpoints=_W_CHECKPOINTS,
                             sanitizer=_W_SANITIZER,
                             hang_cycles=_W_HANG_CYCLES)
    from repro.accel.campaign import AccelReplayContext, run_one_accel_fault

    ctx = _W_ACCEL_CTX.get(spec)
    if ctx is None:
        ctx = _W_ACCEL_CTX[spec] = AccelReplayContext(spec)
    return run_one_accel_fault(spec, mask, ctx, sanitizer=_W_SANITIZER,
                               hang_cycles=_W_HANG_CYCLES)


def _task_record(outcome: TaskOutcome) -> FaultRecord:
    """Map a supervised verdict for a (kind, spec, mask) item to a record."""
    _kind, _spec, mask = outcome.item
    if outcome.ok:
        record: FaultRecord = outcome.value
        if outcome.attempts > 1:
            record = replace(record,
                             retries=record.retries + outcome.attempts - 1)
        return record
    kind = "harness_timeout" if outcome.kind == "timeout" else "harness_error"
    return quarantine_record(
        mask, kind, outcome.error or kind, retries=outcome.attempts - 1
    )


# --------------------------------------------------------------------------
# per-cell scheduling state
# --------------------------------------------------------------------------


@dataclass
class _CellState:
    cell: MatrixCell
    masks: list[FaultMask]
    population_bits: int
    golden: object                      # GoldenRun | AccelGolden
    timeout_s: float
    journal_path: Path
    writer: OrderedJournalWriter | None = None
    records: dict[int, FaultRecord] = field(default_factory=dict)
    resumed: int = 0
    #: terminal state: 'converged' (adaptive stop), 'exhausted' (budget
    #: spent), or '' while still active; set with the stop position
    status: str = ""
    stop_at: int = 0
    stopped_early: bool = False
    stop_reported: bool = False

    @property
    def budget(self) -> int:
        return len(self.masks)

    def done_prefix(self) -> int:
        """Contiguous completed positions from 0 (the journalable prefix)."""
        n = 0
        while n in self.records:
            n += 1
        return n

    def n_valid(self, boundary: int) -> int:
        return sum(
            1 for i in range(min(boundary, self.done_prefix()))
            if self.records[i].outcome is not Outcome.SIM_FAULT
        )

    def achieved_margin(self, confidence: float = 0.95) -> float | None:
        n = self.n_valid(self.stop_at or self.done_prefix())
        if n == 0:
            return None
        return error_margin_for(n, self.population_bits, confidence)

    def evaluate(self, adaptive: AdaptiveSampling | None) -> int | None:
        """Settle terminal status, or return the next dispatch boundary.

        Walks the absolute batch boundaries against the completed prefix —
        the identical walk an uninterrupted run makes — so a resumed matrix
        reaches the same stop decision at the same fault.
        """
        if self.status:
            return None
        done = self.done_prefix()
        if adaptive is None:
            if done >= self.budget:
                self.status, self.stop_at = "exhausted", self.budget
                return None
            return self.budget
        for b in adaptive.boundaries(self.budget):
            if b > done:
                return b
            if adaptive.satisfied(self.n_valid(b), self.population_bits):
                self.status, self.stop_at = "converged", b
                self.stopped_early = b < self.budget
                return None
        self.status, self.stop_at = "exhausted", self.budget
        return None


# --------------------------------------------------------------------------
# the matrix runner
# --------------------------------------------------------------------------


@dataclass
class MatrixResult:
    """Terminal state of a matrix run."""

    name: str
    cells: list[dict]                   # per-cell summaries (+ row/col keys)
    manifest_path: Path
    clock_hz: float = 2e9

    def render(self) -> str:
        return render_matrix(self.cells, clock_hz=self.clock_hz)

    @property
    def stopped_early(self) -> int:
        return sum(1 for c in self.cells if c.get("stopped_early"))


def _cell_result(state: _CellState):
    """Materialize the campaign-result object for a finished cell."""
    records = [state.records[i] for i in range(state.stop_at)]
    if state.cell.kind == "cpu":
        return CampaignResult(
            spec=state.cell.spec, records=records, golden=state.golden,
            population_bits=state.population_bits, resumed=state.resumed,
            stopped_early=state.stopped_early,
        )
    from repro.accel.campaign import AccelCampaignResult

    return AccelCampaignResult(
        spec=state.cell.spec, records=records, golden=state.golden,
        population_bits=state.population_bits, resumed=state.resumed,
        stopped_early=state.stopped_early,
    )


@dataclass(frozen=True)
class CellRuntime:
    """Everything derived (not declared) about one grid cell: the sample,
    its population, the golden run and the per-fault wall budget.  Shared
    by the single-host matrix runner and distributed shard workers so both
    execute the *identical* mask sequence."""

    masks: tuple[FaultMask, ...]
    population_bits: int
    golden: object                      # GoldenRun | AccelGolden
    timeout_s: float


def cell_runtime(cell: MatrixCell,
                 ckpt_policy: CheckpointPolicy) -> CellRuntime:
    """Generate the cell's sample and derive budgets (deterministic)."""
    if cell.kind == "cpu":
        spec = cell.spec
        golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale,
                            checkpoints=ckpt_policy,
                            liveness=spec.liveness is not None)
        masks = masks_for_spec(spec, golden)
        probe = OoOCore.from_executable(golden.exe, get_isa(spec.isa), spec.cfg)
        entries, bits = target_geometry(spec, probe)
        population = entries * bits
        timeout = default_fault_timeout(golden.cycles,
                                        spec.cfg.watchdog_factor)
    else:
        from repro.accel.campaign import (
            accel_golden,
            accel_masks,
            accel_population_bits,
        )
        from repro.accel_designs import get_design

        spec = cell.spec
        golden = accel_golden(spec, liveness=spec.liveness is not None)
        masks = accel_masks(spec, golden)
        design = get_design(spec.design)
        size = {d.name: d.size for d in design.memories}[spec.component]
        population = accel_population_bits(spec, size)
        budget_cycles = golden.cycles * spec.watchdog_factor + 1000
        timeout = max(60.0, budget_cycles / 2_000)
    return CellRuntime(masks=tuple(masks), population_bits=population,
                       golden=golden, timeout_s=timeout)


def _prepare_cell(cell: MatrixCell, out_dir: Path, resume: bool,
                  ckpt_policy: CheckpointPolicy) -> _CellState:
    """Generate the cell's sample, derive budgets, replay its journal."""
    runtime = cell_runtime(cell, ckpt_policy)
    spec = cell.spec
    masks = list(runtime.masks)
    journal_path = out_dir / "cells" / f"{cell.key}.jsonl"
    state = _CellState(
        cell=cell, masks=masks, population_bits=runtime.population_bits,
        golden=runtime.golden, timeout_s=runtime.timeout_s,
        journal_path=journal_path,
    )
    if resume and journal_path.exists():
        repair_torn_tail(journal_path)
        done = CampaignJournal.completed(journal_path, spec)
        done = {
            m.mask_id: done[m.mask_id] for m in masks
            if m.mask_id in done and done[m.mask_id].mask == m
        }
        prefix = contiguous_prefix(masks, done)
        state.records = {i: done[masks[i].mask_id] for i in range(prefix)}
        state.resumed = prefix
    state.writer = OrderedJournalWriter(
        CampaignJournal.open(journal_path, spec), start=state.done_prefix()
    )
    return state


def _write_manifest(path: Path, grid: MatrixGrid,
                    states: list[_CellState]) -> None:
    """Atomic manifest rewrite: progress + per-cell status each round."""
    doc = {
        "kind": "matrix-manifest",
        "version": MANIFEST_VERSION,
        "name": grid.name,
        "fingerprint": grid.fingerprint,
        "adaptive": (
            {
                "target_margin": grid.adaptive.target_margin,
                "confidence": grid.adaptive.confidence,
                "batch": grid.adaptive.batch,
                "min_faults": grid.adaptive.min_faults,
            }
            if grid.adaptive is not None else None
        ),
        "cells": {
            s.cell.key: {
                "kind": s.cell.kind,
                "row": s.cell.row,
                "col": s.cell.col,
                "journal": str(s.journal_path.relative_to(path.parent)),
                "status": s.status or "running",
                "faults_done": s.done_prefix(),
                "budget": s.budget,
                "stopped_early": s.stopped_early,
                "achieved_margin": s.achieved_margin(
                    grid.adaptive.confidence if grid.adaptive else 0.95
                ),
            }
            for s in states
        },
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(doc, indent=2) + "\n")
    os.replace(tmp, path)


def read_manifest(out_dir: str | Path) -> dict:
    """Load ``manifest.json`` from a matrix output directory."""
    path = Path(out_dir) / "manifest.json"
    if not path.exists():
        raise MatrixError(f"{path}: no matrix manifest")
    doc = json.loads(path.read_text())
    if doc.get("kind") != "matrix-manifest":
        raise MatrixError(f"{path}: not a matrix manifest")
    return doc


def run_matrix(
    grid: MatrixGrid,
    out_dir: str | Path,
    *,
    workers: int = 1,
    resume: bool = False,
    checkpoints: CheckpointPolicy | None = None,
    sanitizer: SanitizerPolicy | None = None,
    hang_cycles: int = DEFAULT_HANG_CYCLES,
    telemetry=None,
) -> MatrixResult:
    """Run every cell of ``grid``, journaling into ``out_dir``.

    ``resume=True`` continues a previous run of the *identical* grid from
    its cell journals (torn tails repaired, stop decisions re-derived);
    without it a populated output directory is refused rather than mixed.
    Per-cell journals are byte-identical to standalone serial campaigns —
    and to an uninterrupted matrix run — whatever ``workers`` is.
    """
    out_dir = Path(out_dir)
    manifest_path = out_dir / "manifest.json"
    if manifest_path.exists():
        manifest = read_manifest(out_dir)
        if manifest.get("fingerprint") != grid.fingerprint:
            raise MatrixError(
                f"{out_dir} holds a different grid "
                f"({manifest.get('name')!r}); refusing to mix"
            )
        if not resume:
            raise MatrixError(
                f"{out_dir} already holds matrix {grid.name!r}; "
                "pass resume=True to continue it"
            )
    out_dir.mkdir(parents=True, exist_ok=True)
    ckpt_policy = checkpoints if checkpoints is not None else DEFAULT_CHECKPOINT_POLICY

    states = [
        _prepare_cell(cell, out_dir, resume, ckpt_policy)
        for cell in grid.cells
    ]
    if telemetry is not None:
        telemetry.campaign_started(
            planned=sum(s.budget for s in states),
            resumed=sum(s.resumed for s in states),
            labels={"matrix": grid.name},
        )
    _write_manifest(manifest_path, grid, states)

    timeouts = {id(s.cell.spec): s.timeout_s for s in states}
    by_spec = {id(s.cell.spec): s for s in states}

    def item_timeout(item: tuple) -> float:
        return timeouts[id(item[1])]

    policy = SupervisorPolicy()
    if workers <= 1:
        # one arming for the whole matrix, so the serial path keeps its
        # accel replay contexts and golden caches warm across rounds
        _matrix_worker_init(ckpt_policy, sanitizer, hang_cycles)
    try:
        while True:
            # one scheduling round: every active cell contributes its next
            # batch, interleaved round-robin so no cell starves the queue
            batches = []
            for s in states:
                boundary = s.evaluate(grid.adaptive)
                if boundary is None:
                    if s.status == "converged" and s.stopped_early \
                            and telemetry is not None \
                            and not s.stop_reported:
                        s.stop_reported = True
                        telemetry.adaptive_stop(
                            done=s.stop_at, budget=s.budget,
                            margin=s.achieved_margin(grid.adaptive.confidence),
                        )
                    continue
                start = s.done_prefix()
                batches.append([
                    (s, i, s.masks[i]) for i in range(start, boundary)
                ])
            if not batches:
                break
            tasks: list[tuple[_CellState, int, FaultMask]] = []
            width = max(len(b) for b in batches)
            for depth in range(width):
                for b in batches:
                    if depth < len(b):
                        tasks.append(b[depth])
            items = [(t[0].cell.kind, t[0].cell.spec, t[2]) for t in tasks]

            def finish(task_index: int, record: FaultRecord,
                       wall_s: float | None = None) -> None:
                s, pos, _mask = tasks[task_index]
                s.records[pos] = record
                s.writer.add(pos, record)
                if telemetry is not None:
                    fm = s.cell.spec.fault_model
                    telemetry.fault_finished(
                        record, wall_s=wall_s,
                        generator=fm.name if fm is not None else None)

            if workers > 1:
                def on_result(o: TaskOutcome) -> None:
                    finish(o.index, _task_record(o), wall_s=o.wall_s)

                on_event = None
                if telemetry is not None:
                    def on_event(kind: str, info: dict) -> None:
                        if kind == "dispatch":
                            telemetry.fault_dispatched(
                                items[info["index"]][2].mask_id,
                                attempt=info.get("attempt", 0),
                            )
                        else:
                            telemetry.supervisor_event(kind, info)
                run_supervised(
                    _matrix_task, items, workers=workers, policy=policy,
                    initializer=_matrix_worker_init,
                    initargs=(ckpt_policy, sanitizer, hang_cycles),
                    on_result=on_result, on_event=on_event,
                    item_timeout=item_timeout,
                )
            else:
                for idx, item in enumerate(items):
                    if telemetry is not None:
                        telemetry.fault_dispatched(item[2].mask_id)
                    started = time.perf_counter()
                    record = _matrix_task(item)
                    finish(idx, record, wall_s=time.perf_counter() - started)
            _write_manifest(manifest_path, grid, states)
    finally:
        for s in states:
            if s.writer is not None:
                s.writer.close()
        _write_manifest(manifest_path, grid, states)
        if telemetry is not None:
            telemetry.campaign_finished()

    cells = []
    for s in states:
        result = _cell_result(s)
        summary = result.summary()
        summary["row"] = s.cell.row
        summary["col"] = s.cell.col
        summary["key"] = s.cell.key
        summary["achieved_margin"] = s.achieved_margin(
            grid.adaptive.confidence if grid.adaptive else 0.95
        )
        cells.append(summary)
    return MatrixResult(
        name=grid.name, cells=cells, manifest_path=manifest_path,
        clock_hz=grid.clock_hz,
    )
