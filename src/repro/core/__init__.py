"""gem5-MARVEL core: the microarchitecture-level fault-injection framework.

The paper's contribution — everything else in :mod:`repro` is substrate.

Public entry points:

* :func:`repro.core.campaign.run_campaign` — run a statistical fault
  injection campaign against a CPU structure and get per-fault records,
* :func:`repro.core.campaign.golden_run` — (cached) fault-free reference,
* :mod:`repro.core.sampling` — Leveugle statistical sample machinery,
* :mod:`repro.core.metrics` — AVF / weighted AVF / SDC-AVF / HVF / OPF,
* :mod:`repro.core.presets` — the paper's Table II configuration and the
  scaled default.
"""

from repro.core.campaign import (
    CampaignResult,
    CampaignSpec,
    FaultRecord,
    SimulatorFault,
    golden_run,
    run_campaign,
    run_one_fault,
)
from repro.core.doctor import DoctorReport, diagnose_journal
from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.journal import CampaignJournal, JournalError, JournalFollower
from repro.core.sanitizer import (
    DEFAULT_AUDIT_STRIDE,
    DEFAULT_HANG_CYCLES,
    DEFAULT_SANITIZER,
    FULL_SANITIZER,
    NO_SANITIZER,
    IntegrityReport,
    IntegrityViolation,
    SanitizerPolicy,
    hang_detected,
)
from repro.core.supervisor import SupervisorPolicy, TaskOutcome, run_supervised
from repro.core.matrix import (
    MatrixCell,
    MatrixError,
    MatrixGrid,
    MatrixResult,
    grid_from_dict,
    load_grid,
    run_matrix,
)
from repro.core.metrics import (
    WeightedAVF,
    avf,
    crash_avf,
    error_margin,
    hvf,
    n_valid,
    opf,
    sdc_avf,
    weighted_avf,
    weighted_avf_detailed,
)
from repro.core.telemetry import (
    CampaignAggregate,
    ProgressPrinter,
    Telemetry,
    TelemetryEvent,
    aggregate_from_journal,
    to_prometheus,
)
from repro.core.outcome import HVFClass, Outcome
from repro.core.presets import paper_config, sim_config
from repro.core.sampling import AdaptiveSampling, generate_masks, sample_size

__all__ = [
    "DEFAULT_AUDIT_STRIDE",
    "DEFAULT_HANG_CYCLES",
    "DEFAULT_SANITIZER",
    "FULL_SANITIZER",
    "NO_SANITIZER",
    "CampaignAggregate",
    "CampaignJournal",
    "CampaignResult",
    "CampaignSpec",
    "DoctorReport",
    "FaultFlip",
    "FaultMask",
    "FaultModel",
    "FaultRecord",
    "HVFClass",
    "IntegrityReport",
    "IntegrityViolation",
    "AdaptiveSampling",
    "JournalError",
    "JournalFollower",
    "MatrixCell",
    "MatrixError",
    "MatrixGrid",
    "MatrixResult",
    "Outcome",
    "ProgressPrinter",
    "SanitizerPolicy",
    "SimulatorFault",
    "SupervisorPolicy",
    "TaskOutcome",
    "Telemetry",
    "TelemetryEvent",
    "aggregate_from_journal",
    "diagnose_journal",
    "hang_detected",
    "run_supervised",
    "to_prometheus",
    "WeightedAVF",
    "avf",
    "crash_avf",
    "error_margin",
    "generate_masks",
    "golden_run",
    "grid_from_dict",
    "hvf",
    "load_grid",
    "n_valid",
    "opf",
    "paper_config",
    "run_campaign",
    "run_matrix",
    "run_one_fault",
    "sample_size",
    "sdc_avf",
    "sim_config",
    "weighted_avf",
    "weighted_avf_detailed",
]
