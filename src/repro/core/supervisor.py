"""Supervised process-pool execution for fault-injection campaigns.

``ProcessPoolExecutor.map`` is the wrong tool for a 10k-fault campaign: a
single hung simulation stalls the whole pool, a worker segfault raises
``BrokenProcessPool`` out of ``map`` and sinks every remaining mask, and
nothing records which masks were in flight.  :func:`run_supervised` wraps a
process pool with the supervision a long campaign needs:

* **per-task wall-clock timeouts** — a task that exceeds its budget is
  abandoned (its worker killed where possible) and retried with exponential
  backoff, then reported as a ``timeout`` failure instead of hanging the run;
* **broken-pool recovery** — ``BrokenProcessPool`` respawns the pool and
  requeues every in-flight task (the pool failed, not the tasks, so their
  attempt counts are unchanged);
* **graceful degradation** — after ``max_pool_respawns`` pool breakages the
  remaining tasks run serially in the parent process, so a pathological
  environment degrades to slow-but-complete instead of aborting;
* **completion callbacks** — ``on_result`` fires in completion order from the
  parent process, which is what a run journal needs.

The module is campaign-agnostic: it executes ``fn(item)`` for picklable
``fn``/``item`` and reports :class:`TaskOutcome` rows in input order.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

#: terminal kinds a task can end in
OK = "ok"
TIMEOUT = "timeout"
ERROR = "error"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs for :func:`run_supervised` (picklable, reusable)."""

    #: per-task wall-clock budget in seconds; ``None`` disables timeouts
    timeout_s: float | None = None
    #: extra attempts after the first for timed-out / worker-raised tasks
    max_retries: int = 2
    #: exponential backoff: ``min(cap, base * 2**attempt)`` seconds
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 4.0
    #: pool breakages tolerated before degrading to serial execution
    max_pool_respawns: int = 3
    #: how often the supervisor wakes up to check deadlines
    poll_s: float = 0.05
    #: deadline multiplier for retried attempts: a task that timed out may
    #: simply be near the budget (e.g. an escalated integrity re-run that
    #: simulates from scratch), so each retry gets ``timeout_s * scale**n``
    timeout_scale_on_retry: float = 2.0

    def backoff_for(self, attempt: int) -> float:
        """Backoff before re-running a task whose ``attempt``-th execution
        failed.  Attempt numbers are clamped at 0: a negative attempt (the
        first pool respawn computes ``respawns - 1``) must sleep the base
        backoff, never ``base / 2``.
        """
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2 ** max(0, attempt)))

    def timeout_for(self, attempt: int) -> float | None:
        """Wall-clock budget for a task on its ``attempt``-th retry.

        Attempt 0 (the first execution) gets exactly ``timeout_s``; each
        retry doubles it (``timeout_scale_on_retry``).  Clamped at 0 like
        :meth:`backoff_for` so a stray negative attempt can never *shrink*
        the budget below the configured baseline.
        """
        if self.timeout_s is None:
            return None
        return self.timeout_s * (self.timeout_scale_on_retry ** max(0, attempt))


@dataclass(frozen=True)
class TaskOutcome:
    """Terminal state of one supervised task."""

    index: int                      # position in the input sequence
    item: object
    kind: str = OK                  # 'ok' | 'timeout' | 'error'
    value: object = None            # fn's return value when kind == 'ok'
    error: str | None = None        # failure description otherwise
    attempts: int = 1               # total executions attempted
    mode: str = "pool"              # 'pool' | 'serial' (degraded)
    #: wall-clock seconds of the terminal attempt, measured in the parent
    #: from submit to completion (includes any in-pool queueing)
    wall_s: float | None = None

    @property
    def ok(self) -> bool:
        return self.kind == OK


@dataclass
class _Pending:
    index: int
    item: object
    attempt: int = 0                # retries consumed so far


def _kill_workers(pool: ProcessPoolExecutor) -> None:
    """Best-effort kill of a pool's worker processes (hung-task recycle)."""
    try:
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.kill()
    except Exception:
        pass


def run_supervised(
    fn: Callable,
    items: Sequence,
    workers: int,
    policy: SupervisorPolicy | None = None,
    *,
    initializer: Callable | None = None,
    initargs: tuple = (),
    on_result: Callable[[TaskOutcome], None] | None = None,
    on_event: Callable[[str, dict], None] | None = None,
    item_timeout: Callable[[object], float | None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> list[TaskOutcome]:
    """Run ``fn(item)`` for every item under pool supervision.

    Returns one :class:`TaskOutcome` per item, in input order.  Never raises
    for task-level failures — those come back as ``timeout``/``error``
    outcomes; only truly unexpected supervisor bugs propagate.

    ``on_event`` receives supervision telemetry as ``(kind, info)`` pairs:
    ``dispatch`` (a task handed to an executor, with its ``index`` and
    ``attempt``), ``retry`` (a failed/timed-out task rescheduled),
    ``pool_respawn`` and ``serial_degradation``.  Purely observational —
    event consumers cannot change scheduling.

    ``item_timeout`` gives each item its *own* wall-clock budget —
    ``item_timeout(item) -> seconds | None`` — evaluated in the parent at
    submit time.  A heterogeneous work queue (the experiment-matrix runner
    interleaves CPU and DSA cells with wildly different golden run lengths)
    cannot share one ``policy.timeout_s``.  Retries still scale the budget
    by ``policy.timeout_scale_on_retry``; an item whose callable returns
    ``None`` runs untimed.
    """
    policy = policy or SupervisorPolicy()
    results: list[TaskOutcome | None] = [None] * len(items)
    pending: deque[_Pending] = deque(_Pending(i, item) for i, item in enumerate(items))
    pool: ProcessPoolExecutor | None = None
    inflight: dict = {}              # future -> (_Pending, deadline, budget, t0)
    abandoned = 0                    # timed-out tasks still occupying a worker
    respawns = 0
    serial = False

    def notify(kind: str, **info) -> None:
        if on_event is not None:
            on_event(kind, info)

    def budget_for(task: _Pending) -> float | None:
        if item_timeout is not None:
            base = item_timeout(task.item)
            if base is None:
                return None
            return base * (policy.timeout_scale_on_retry ** max(0, task.attempt))
        return policy.timeout_for(task.attempt)

    def emit(outcome: TaskOutcome) -> None:
        results[outcome.index] = outcome
        if on_result is not None:
            on_result(outcome)

    def scrap_pool() -> None:
        nonlocal pool, abandoned
        if pool is not None:
            _kill_workers(pool)
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
        for task, *_ in inflight.values():
            pending.appendleft(task)        # pool failed, not the task
        inflight.clear()
        abandoned = 0

    def note_pool_failure() -> None:
        nonlocal respawns, serial
        respawns += 1
        scrap_pool()
        notify("pool_respawn", respawns=respawns)
        if respawns > policy.max_pool_respawns:
            serial = True
            notify("serial_degradation", respawns=respawns)
        else:
            sleep(policy.backoff_for(respawns - 1))

    while pending or inflight:
        if serial:
            break
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=workers, initializer=initializer, initargs=initargs
            )
        # keep the pool fed, with a small overcommit so workers never starve
        while pending and len(inflight) < workers * 2:
            task = pending.popleft()
            try:
                future = pool.submit(fn, task.item)
            except (BrokenProcessPool, RuntimeError):
                pending.appendleft(task)
                note_pool_failure()
                break
            budget = budget_for(task)
            submitted = clock()
            deadline = submitted + budget if budget is not None else None
            inflight[future] = (task, deadline, budget, submitted)
            notify("dispatch", index=task.index, attempt=task.attempt)
        if not inflight:
            continue

        done, _ = wait(list(inflight), timeout=policy.poll_s,
                       return_when=FIRST_COMPLETED)
        pool_broke = False
        for future in done:
            task, _deadline, _budget, submitted = inflight.pop(future)
            wall = clock() - submitted
            try:
                value = future.result()
            except BrokenProcessPool:
                pending.appendleft(task)
                pool_broke = True
            except Exception as exc:  # fn raised inside the worker
                if task.attempt < policy.max_retries:
                    notify("retry", index=task.index,
                           attempt=task.attempt + 1, reason="error")
                    sleep(policy.backoff_for(task.attempt))
                    pending.append(replace_attempt(task))
                else:
                    emit(TaskOutcome(
                        index=task.index, item=task.item, kind=ERROR,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=task.attempt + 1, wall_s=wall,
                    ))
            else:
                emit(TaskOutcome(
                    index=task.index, item=task.item, value=value,
                    attempts=task.attempt + 1, wall_s=wall,
                ))
        if pool_broke:
            note_pool_failure()
            continue

        # enforce wall-clock deadlines on whatever is still running — also
        # when only per-item budgets are set (policy.timeout_s may be None)
        if policy.timeout_s is not None or item_timeout is not None:
            now = clock()
            for future, (task, deadline, budget, submitted) in list(inflight.items()):
                if deadline is None or now < deadline:
                    continue
                inflight.pop(future)
                if not future.cancel():
                    abandoned += 1      # running: its worker slot is poisoned
                if task.attempt < policy.max_retries:
                    notify("retry", index=task.index,
                           attempt=task.attempt + 1, reason="timeout")
                    sleep(policy.backoff_for(task.attempt))
                    pending.append(replace_attempt(task))
                else:
                    emit(TaskOutcome(
                        index=task.index, item=task.item, kind=TIMEOUT,
                        error=f"exceeded {budget:.1f}s wall clock",
                        attempts=task.attempt + 1, wall_s=now - submitted,
                    ))
            if abandoned >= workers:
                # every slot is stuck behind a hung task: recycle the pool
                note_pool_failure()

    if pool is not None:
        if inflight or abandoned:
            # degraded mid-flight, or a hung task still owns a worker:
            # waiting would block on it, so kill and reclaim instead
            scrap_pool()
        else:
            pool.shutdown(wait=True)

    if serial and (pending or any(r is None for r in results)):
        if initializer is not None:
            initializer(*initargs)
        while pending:
            task = pending.popleft()
            notify("dispatch", index=task.index, attempt=task.attempt,
                   mode="serial")
            started = clock()
            try:
                value = fn(task.item)
            except Exception as exc:
                emit(TaskOutcome(
                    index=task.index, item=task.item, kind=ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=task.attempt + 1, mode="serial",
                    wall_s=clock() - started,
                ))
            else:
                emit(TaskOutcome(
                    index=task.index, item=task.item, value=value,
                    attempts=task.attempt + 1, mode="serial",
                    wall_s=clock() - started,
                ))

    assert all(r is not None for r in results), "supervisor lost a task"
    return results  # type: ignore[return-value]


def replace_attempt(task: _Pending) -> _Pending:
    return _Pending(task.index, task.item, task.attempt + 1)


def run_with_retry(
    fn: Callable,
    *,
    attempts: int = 5,
    policy: SupervisorPolicy | None = None,
    retry_on: tuple = (OSError,),
    passthrough: tuple = (),
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn()`` with bounded retry and the policy's exponential backoff.

    The single-call sibling of :func:`run_supervised`, for operations that
    are flaky rather than hung — the distributed shard store funnels every
    lease/journal filesystem touch through this so a glitching NFS mount
    degrades to a bounded number of slower attempts instead of an abort.
    ``passthrough`` exceptions re-raise immediately even when they are
    subclasses of a ``retry_on`` type: ``FileExistsError`` losing a lease
    race is a protocol verdict, not an I/O failure, and must never be
    retried into a double claim.
    """
    policy = policy or SupervisorPolicy()
    last: BaseException | None = None
    for attempt in range(max(1, attempts)):
        try:
            return fn()
        except passthrough:
            raise
        except retry_on as exc:
            last = exc
            if attempt + 1 < max(1, attempts):
                sleep(policy.backoff_for(attempt))
    raise last
