"""Sanity-check programs for the fault injector (the paper's Listing 1).

Each validation program puts a microarchitectural structure into a fully
known state, opens the injection window with ``checkpoint()``, idles in a
nop loop while the fault is injected, closes the window with
``switch_cpu()``, and then checks the structure's contents — a deviation
proves the fault landed where the mask said.

``validate_l1d`` is the direct Listing-1 port: fill an array sized to the
L1 data cache with zeros (warm the cache), idle, then sum the array — a
non-zero sum means the injected flip is visible.  Injecting only into
cache-resident, array-covered lines must yield 100% visibility ("the
measured AVF is 100%"), which :func:`run_l1d_validation` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.faults import FaultMask
from repro.core.injector import InjectionController
from repro.cpu.config import CPUConfig
from repro.cpu.core import OoOCore
from repro.isa.base import get_isa
from repro.kernel.compiler import compile_program
from repro.kernel.ir import Cond, Program, ProgramBuilder


def build_l1d_validation(cache_bytes: int, warm_iterations: int = 10) -> Program:
    """The Listing-1 analog: zero-fill an L1D-sized array, idle, then sum it.

    ``warm_iterations`` repeated passes fill every way under pseudo-LRU,
    exactly as the paper's footnote prescribes.
    """
    words = cache_bytes // 8
    b = ProgramBuilder("l1d_validation")
    arr = b.data_zeros("array", cache_bytes, align=64)

    b.label("entry")
    base = b.la(arr)
    count = b.const(words)
    zero = b.const(0)

    j = b.var(0)
    b.label("warm_outer")
    i = b.var(0)
    b.label("warm_inner")
    b.store(zero, b.add(base, b.shl(i, b.const(3))), 0, width=8)
    b.inc(i)
    b.br(Cond.LTU, i, count, "warm_inner", "warm_next")
    b.label("warm_next")
    b.inc(j)
    b.br(Cond.LTU, j, b.const(warm_iterations), "warm_outer", "window")

    # injection window: nop loop, cache contents undisturbed
    b.label("window")
    k = b.var(0)
    b.label("nop_loop")
    b.nop()
    b.inc(k)
    b.br(Cond.LTU, k, b.const(400), "nop_loop", "check")

    # check: sum all words; non-zero means the fault is visible
    b.label("check")
    b.switch_cpu()
    total = b.var(0)
    m = b.var(0)
    b.label("sum_loop")
    v = b.load(b.add(base, b.shl(m, b.const(3))), 0, width=8)
    b.or_(total, v, dest=total)
    b.inc(m)
    b.br(Cond.LTU, m, count, "sum_loop", "emit")
    b.label("emit")
    b.out(total, width=8)
    b.halt()

    prog = b.build()
    # move checkpoint to the start of the nop window: emit at build time by
    # inserting into the window block (after its first label)
    window = prog.block("window")
    from repro.kernel.ir import Instr, Op

    window.instrs.insert(0, Instr(Op.CHECKPOINT))
    return prog


@dataclass
class ValidationResult:
    injected: int
    visible: int

    @property
    def coverage(self) -> float:
        return self.visible / self.injected if self.injected else 0.0


def run_l1d_validation(
    isa_name: str, cfg: CPUConfig, faults: int = 50, seed: int = 1
) -> ValidationResult:
    """Inject ``faults`` flips into array-resident L1D lines; count visible.

    The validation array is cache-sized, so after warm-up every L1D line
    holds array zeros; any flip inside the window must surface as a nonzero
    OR-sum (AVF 100% over resident lines — the paper's Section IV-F check).
    """
    import random

    from repro.core.faults import FaultModel

    isa = get_isa(isa_name)
    program = build_l1d_validation(cfg.l1d.size)
    exe = compile_program(program, isa)

    golden_core = OoOCore.from_executable(exe, isa, cfg)
    golden = golden_core.run()
    assert golden.ok and golden.output == bytes(8), "validation golden run broken"
    window = (golden.checkpoint_cycle, golden.switch_cycle)

    rng = random.Random(seed)
    injected = visible = 0
    for mask_id in range(faults):
        core = OoOCore.from_executable(exe, isa, cfg)
        # choose a *valid* line at injection time by probing the golden
        # core's final cache state geometry: lines are all valid post-warm
        line = rng.randrange(core.l1d.num_lines)
        bit = rng.randrange(cfg.l1d.line_size * 8)
        cycle = rng.randrange(window[0] + 1, window[1])
        mask = FaultMask.single("l1d", line, bit, cycle, FaultModel.TRANSIENT, mask_id)
        controller = InjectionController(mask, stop_early=False)
        core.injector = controller
        result = core.run()
        injected += 1
        if result.output != golden.output:
            visible += 1
    return ValidationResult(injected=injected, visible=visible)
