"""Microarchitectural integrity sanitizer: runtime invariant auditing.

The SFI methodology only trusts a campaign's AVF/HVF numbers because the
injector corrupts *exactly* what the fault mask says.  A simulator bug that
does not raise — a subtly wrong ``snapshot()/restore()``, a double-released
physical register, a cache line aliased into two ways — silently produces an
*impossible* microarchitectural state that today would be folded into the
vulnerability factors as SDC or Masked.  This module is the runtime defense:

* a registry of per-structure **invariant checks** (rename-map/free-list
  bijection, ROB age ordering and occupancy bounds, LQ/SQ entries referencing
  live ROB entries, cache tag/valid/PLRU consistency, SPM access-counter
  monotonicity), audited from the existing ``on_cycle`` hook at a
  configurable stride (``--sanitize=off|sampled|full``, ``--audit-stride N``);
* **fault-aware suppression**: corruption reachable from the active fault
  mask (the injected structure and its architecturally propagated effects)
  is expected and suppressed, while impossible states escalate to a
  structured :class:`IntegrityReport` and quarantine the run as
  ``Outcome.SIM_FAULT`` with ``sim_error_kind="integrity"``;
* a **deterministic hang detector** in *simulated* time — no commit for K
  cycles while the ROB is non-empty and nothing is outstanding (CPU), no
  dataflow progress for K cycles (accel) — classifying ``Crash(hang)``
  reproducibly instead of burning the nondeterministic wall-clock watchdog.

Check taxonomy
--------------

Checks are either **structural** or **value** checks.  Fault masks flip
*data* bits only (register values, cache data bytes, LSQ address/data bits,
SPM bytes) — never free lists, rename maps, sequence numbers, tags, valid
bits or PLRU state.  A violated structural check is therefore impossible
regardless of the active mask and always escalates.  Value checks audit
redundancy in the data path itself (e.g. a 1-byte load carrying a 128-bit
value) and are suppressed when the active mask can reach the structure:

* any flip already **read** or **escaped** taints the whole datapath —
  all value checks are suppressed;
* an **armed** flip (corruption sits in the structure, not yet consumed)
  suppresses only value checks on that structure;
* pending or masked flips suppress nothing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.core.injector import ARMED, CORRECTED, DETECTED, ESCAPED, READ

#: default audit stride for ``--sanitize=sampled`` (matches the checkpoint
#: engine's initial stride so audits land on checkpoint-aligned cycles)
DEFAULT_AUDIT_STRIDE = 64

#: default hang-detector window in *simulated* cycles.  Must comfortably
#: exceed the longest legitimate commit gap (a full-ROB dependency chain of
#: L2 misses resolves in well under a thousand cycles at the default
#: geometry); 2048 keeps detection cheap and false-positive-free.
DEFAULT_HANG_CYCLES = 2048

SANITIZE_MODES = ("off", "sampled", "full")

STRUCTURAL = "structural"
VALUE = "value"

#: sentinel reach: a consumed flip taints everything downstream
ALL_STRUCTURES = frozenset({"*"})


@dataclass(frozen=True)
class SanitizerPolicy:
    """How (and whether) invariants are audited during a run.

    ``corruptor`` is a test instrument: a picklable callable invoked as
    ``corruptor(state, n_prior_audits)`` at every audit point *before* the
    checks run, used by the mutation tests to plant impossible states and
    hang wedges mid-run.  It is never set in production.
    """

    mode: str = "sampled"
    audit_stride: int = DEFAULT_AUDIT_STRIDE
    corruptor: Callable | None = None

    def __post_init__(self) -> None:
        if self.mode not in SANITIZE_MODES:
            raise ValueError(f"unknown sanitize mode {self.mode!r}; "
                             f"expected one of {SANITIZE_MODES}")
        if self.audit_stride < 1:
            raise ValueError("audit_stride must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def stride(self) -> int:
        return 1 if self.mode == "full" else self.audit_stride


DEFAULT_SANITIZER = SanitizerPolicy()
NO_SANITIZER = SanitizerPolicy(mode="off")
FULL_SANITIZER = SanitizerPolicy(mode="full")


@dataclass(frozen=True)
class IntegrityReport:
    """Structured evidence for one impossible microarchitectural state."""

    check: str             # registry name of the violated invariant
    structure: str         # structure family the check audits
    kind: str              # STRUCTURAL | VALUE
    cycle: int             # simulated cycle the audit fired at
    detail: str            # human-readable description of the violation
    mask_id: int = -1      # fault mask active during the run (-1: golden)
    mode: str = "sampled"  # sanitizer mode that caught it
    #: differential-escalation label: ``deterministic`` (reproduces from
    #: scratch), ``checkpoint-divergence`` (clean without fast-forward), or
    #: ``None`` when the violation was not escalated (e.g. golden runs)
    divergence: str | None = None

    def describe(self) -> str:
        tag = f" [{self.divergence}]" if self.divergence else ""
        return (f"integrity violation{tag}: {self.check} ({self.kind}) on "
                f"{self.structure} at cycle {self.cycle}: {self.detail}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "IntegrityReport":
        return cls(**data)


class IntegrityViolation(Exception):
    """An invariant check failed on state the fault mask cannot explain."""

    def __init__(self, report: IntegrityReport):
        super().__init__(report.describe())
        self.report = report


@dataclass(frozen=True)
class InvariantCheck:
    name: str
    structure: str          # display name for reports
    kind: str               # STRUCTURAL | VALUE
    #: mask structure names whose injected corruption could trip the check
    #: (only consulted for VALUE checks)
    reaches: tuple[str, ...]
    fn: Callable            # fn(core) -> str | None (violation detail)


def should_suppress(check: InvariantCheck, reach: frozenset) -> bool:
    """Is a violation of ``check`` explainable by the active mask's reach?"""
    if check.kind != VALUE:
        return False
    if reach is ALL_STRUCTURES or "*" in reach:
        return True
    return bool(reach.intersection(check.reaches))


def cpu_reach(controller) -> frozenset:
    """Structures whose data the active CPU mask can have corrupted.

    Reads the per-flip lifecycle states tracked by the injection
    controller; see the module docstring for the taint rules.
    """
    if controller is None:
        return frozenset()
    reach: set[str] = set()
    for fs in controller.flips:
        if fs.status in (READ, ESCAPED):
            return ALL_STRUCTURES
        if fs.status == ARMED:
            reach.add(fs.flip.structure)
    return frozenset(reach)


# --------------------------------------------------------------------------
# CPU invariant registry
# --------------------------------------------------------------------------

CPU_CHECKS: list[InvariantCheck] = []


def _cpu_check(name: str, structure: str, kind: str,
               reaches: tuple[str, ...] = ()):
    def register(fn):
        CPU_CHECKS.append(InvariantCheck(name, structure, kind, reaches, fn))
        return fn
    return register


@_cpu_check("rename_free_bijection", "prf/rat", STRUCTURAL)
def _check_rename_free_bijection(core) -> str | None:
    """Free list holds each register at most once, in range, and never a
    register the rename map still points at."""
    for prf, rat in ((core.prf_int, core.rat_int), (core.prf_fp, core.rat_fp)):
        free = prf.free
        if len(set(free)) != len(free):
            dup = sorted(r for r in set(free) if free.count(r) > 1)
            return f"{prf.name}: registers {dup} double-released to free list"
        for r in free:
            if not 0 <= r < prf.size:
                return f"{prf.name}: free-list register p{r} out of range"
        overlap = set(free).intersection(rat)
        if overlap:
            return (f"{prf.name}: registers {sorted(overlap)} are both free "
                    f"and rename-mapped")
    return None


@_cpu_check("rob_phys_ownership", "rob", STRUCTURAL)
def _check_rob_phys_ownership(core) -> str | None:
    """Every live ROB entry exclusively owns its allocated registers."""
    free = (set(core.prf_int.free), set(core.prf_fp.free))
    seen: tuple[set, set] = (set(), set())
    for e in core.rob:
        if e.phys_dst is None:
            continue
        fp = 1 if e.uop.dst_fp else 0
        if e.phys_dst in free[fp]:
            return (f"seq {e.seq}: in-flight phys_dst p{e.phys_dst} is on "
                    f"the free list (double allocation)")
        if e.phys_dst in seen[fp]:
            return f"phys_dst p{e.phys_dst} owned by two live ROB entries"
        seen[fp].add(e.phys_dst)
        if e.old_phys is not None and e.old_phys in free[fp]:
            return (f"seq {e.seq}: old_phys p{e.old_phys} freed before "
                    f"its overwriting instruction committed")
    return None


@_cpu_check("rob_age_order", "rob", STRUCTURAL)
def _check_rob_age_order(core) -> str | None:
    """ROB entries stay in strictly increasing program order within bounds."""
    if len(core.rob) > core.cfg.rob_entries:
        return (f"occupancy {len(core.rob)} exceeds capacity "
                f"{core.cfg.rob_entries}")
    prev = None
    for e in core.rob:
        if e.squashed:
            return f"squashed entry seq {e.seq} still resident in ROB"
        if prev is not None and e.seq <= prev:
            return f"age order broken: seq {e.seq} follows seq {prev}"
        prev = e.seq
    return None


@_cpu_check("iq_subset_of_rob", "iq", STRUCTURAL)
def _check_iq_subset_of_rob(core) -> str | None:
    """Every issue-queue entry is a live ROB entry."""
    if len(core.iq) > core.cfg.iq_entries:
        return (f"occupancy {len(core.iq)} exceeds capacity "
                f"{core.cfg.iq_entries}")
    rob_ids = set(map(id, core.rob))
    for e in core.iq:
        if e.squashed:
            return f"squashed entry seq {e.seq} still resident in IQ"
        if id(e) not in rob_ids:
            return f"IQ entry seq {e.seq} not present in the ROB"
    return None


@_cpu_check("lsq_liveness", "lsq", STRUCTURAL)
def _check_lsq_liveness(core) -> str | None:
    """Valid LQ (and uncommitted SQ) entries reference live ROB entries."""
    live = {e.seq for e in core.rob}
    if core.lq.occupancy() > len(core.lq.entries):
        return "LQ occupancy exceeds capacity"
    for idx, le in enumerate(core.lq.entries):
        if le.valid and le.seq not in live:
            return f"lq[{idx}]: seq {le.seq} references no live ROB entry"
    for idx, se in enumerate(core.sq.entries):
        if se.valid and not se.committed and se.seq not in live:
            return f"sq[{idx}]: seq {se.seq} references no live ROB entry"
    return None


@_cpu_check("cache_consistency", "cache", STRUCTURAL)
def _check_cache_consistency(core) -> str | None:
    """No tag aliases two valid ways; dirty implies valid; PLRU in range."""
    for cache in (core.l1i, core.l1d, core.l2):
        cfg = cache.cfg
        plru_bound = 1 << max(0, cfg.assoc - 1)
        for s in range(cfg.num_sets):
            if not 0 <= cache.plru[s] < plru_bound:
                return (f"{cache.name}: PLRU state {cache.plru[s]} out of "
                        f"range for set {s} (assoc {cfg.assoc})")
            seen: dict[int, int] = {}
            for way in range(cfg.assoc):
                line = s * cfg.assoc + way
                if cache.dirty[line] and not cache.valid[line]:
                    return f"{cache.name}: set {s} way {way} dirty but invalid"
                if not cache.valid[line]:
                    continue
                tag = cache.tags[line]
                if tag in seen:
                    return (f"{cache.name}: tag {tag:#x} aliases valid ways "
                            f"{seen[tag]} and {way} of set {s}")
                seen[tag] = way
    return None


@_cpu_check("prf_value_width", "prf",
            VALUE, reaches=("regfile_int", "regfile_fp"))
def _check_prf_value_width(core) -> str | None:
    """Physical registers hold non-negative values within 64 bits."""
    for prf in (core.prf_int, core.prf_fp):
        if prf.values and max(prf.values) >> 64:
            return f"{prf.name}: register value wider than 64 bits"
        if prf.values and min(prf.values) < 0:
            return f"{prf.name}: negative register value"
    return None


@_cpu_check("lq_data_width", "lq", VALUE, reaches=("lq",))
def _check_lq_data_width(core) -> str | None:
    """A completed load's data fits the access width it performed."""
    for idx, le in enumerate(core.lq.entries):
        if (le.valid and le.data_known and not le.pair
                and le.data >> (le.width * 8)):
            return (f"lq[{idx}]: {le.width}-byte load carries data "
                    f"{le.data:#x} wider than its access")
    return None


@_cpu_check("mshr_state", "mshr", VALUE, reaches=("mshr",))
def _check_mshr_state(core) -> str | None:
    """MSHR entries reference in-flight misses only.

    A valid entry is a dispatched, not-yet-retired miss: block-aligned,
    still pointing where it was dispatched, with at least one waiting
    load in range.  Invalid slots are cleared by ``free``.  VALUE check:
    the mask can flip addr/valid/targets, so mshr-reaching masks suppress.
    """
    if core.mshr is None:
        return None
    line = core.cfg.l1d.line_size
    bound = 1 << core.cfg.lq_entries
    for idx, e in enumerate(core.mshr.entries):
        if e.valid:
            if e.addr % line:
                return f"mshr[{idx}]: miss address {e.addr:#x} not block-aligned"
            if e.addr != e.orig_addr:
                return (f"mshr[{idx}]: fill destination {e.addr:#x} diverged "
                        f"from dispatch address {e.orig_addr:#x}")
            if not e.targets:
                return f"mshr[{idx}]: outstanding miss with no waiting loads"
            if e.targets >> core.cfg.lq_entries:
                return (f"mshr[{idx}]: target bitmap {e.targets:#x} exceeds "
                        f"the LQ ({bound:#x})")
        elif e.addr or e.targets:
            return f"mshr[{idx}]: freed slot not cleared"
    return None


@_cpu_check("store_buffer_order", "store_buffer", STRUCTURAL)
def _check_store_buffer_order(core) -> str | None:
    """The store buffer drains committed stores in program order.

    Sequence numbers are metadata the mask never flips, so violations
    always escalate: duplicates mean a store was buffered twice, and an
    entry at or below ``last_drained_seq`` means program order broke.
    """
    if core.store_buffer is None:
        return None
    seen: set[int] = set()
    for idx, e in enumerate(core.store_buffer.entries):
        if not e.valid:
            continue
        if e.seq in seen:
            return f"store_buffer[{idx}]: seq {e.seq} buffered twice"
        seen.add(e.seq)
        if e.seq <= core.store_buffer.last_drained_seq:
            return (f"store_buffer[{idx}]: seq {e.seq} still resident after "
                    f"seq {core.store_buffer.last_drained_seq} drained")
    return None


@_cpu_check("prefetcher_untouched_zero", "prefetcher", VALUE,
            reaches=("prefetcher",))
def _check_prefetcher_untouched_zero(core) -> str | None:
    """Never-trained prefetch slots hold all-zero state; trained slots
    stay inside their declared field widths."""
    if core.prefetcher is None:
        return None
    for idx, e in enumerate(core.prefetcher.entries):
        if not e.trained:
            if e.last_addr or e.stride or e.conf:
                return f"prefetcher[{idx}]: untouched slot is nonzero"
        elif e.stride >> 16 or e.conf >> 4 or e.last_addr >> 64:
            return f"prefetcher[{idx}]: field value exceeds declared width"
    return None


# --------------------------------------------------------------------------
# Auditors
# --------------------------------------------------------------------------

class CoreAuditor:
    """Audits one ``OoOCore`` at the policy's stride via ``on_cycle``."""

    def __init__(self, policy: SanitizerPolicy, controller=None, mask=None):
        self.policy = policy
        self.controller = controller
        self.mask_id = mask.mask_id if mask is not None else -1
        self.audits = 0
        self.suppressed = 0
        self._next = 0

    def on_cycle(self, core) -> None:
        if core.cycle < self._next:
            return
        self._next = core.cycle + self.policy.stride
        self.audit(core)

    def _audit_protection(self, core) -> None:
        """Protection-bookkeeping invariants on the injection controller.

        Purely structural: lifecycle states and virtual-bit bookkeeping are
        simulator metadata no fault mask can corrupt, so a violation always
        escalates (never suppressed by mask reach).
        """
        ctl = self.controller
        for fs in ctl.flips:
            scheme = getattr(fs, "scheme", None)
            if fs.status == CORRECTED and (scheme is None
                                           or not scheme.corrects):
                raise IntegrityViolation(IntegrityReport(
                    check="protection_corrects", structure=fs.flip.structure,
                    kind=STRUCTURAL, cycle=core.cycle,
                    detail=(f"flip bit {fs.flip.bit} marked corrected by "
                            f"{'no scheme' if scheme is None else scheme.name}"
                            f", which cannot correct"),
                    mask_id=self.mask_id, mode=self.policy.mode,
                ))
            if fs.status == DETECTED and not ctl.detected_by:
                raise IntegrityViolation(IntegrityReport(
                    check="protection_detected_by",
                    structure=fs.flip.structure,
                    kind=STRUCTURAL, cycle=core.cycle,
                    detail=(f"flip bit {fs.flip.bit} marked detected but the "
                            f"controller carries no detected_by provenance"),
                    mask_id=self.mask_id, mode=self.policy.mode,
                ))
            if getattr(fs, "virtual", False) and fs.applied:
                raise IntegrityViolation(IntegrityReport(
                    check="protection_virtual_bits",
                    structure=fs.flip.structure,
                    kind=STRUCTURAL, cycle=core.cycle,
                    detail=(f"virtual check-bit flip {fs.flip.bit} was "
                            f"materialized in simulated storage"),
                    mask_id=self.mask_id, mode=self.policy.mode,
                ))

    def audit(self, core) -> None:
        if self.policy.corruptor is not None:
            self.policy.corruptor(core, self.audits)
        self.audits += 1
        reach = cpu_reach(self.controller)
        if self.controller is not None:
            self._audit_protection(core)
        for check in CPU_CHECKS:
            detail = check.fn(core)
            if detail is None:
                continue
            if should_suppress(check, reach):
                self.suppressed += 1
                continue
            raise IntegrityViolation(IntegrityReport(
                check=check.name, structure=check.structure, kind=check.kind,
                cycle=core.cycle, detail=detail, mask_id=self.mask_id,
                mode=self.policy.mode,
            ))


def hang_detected(core, hang_cycles: int) -> bool:
    """Deterministic CPU hang: no commit for ``hang_cycles`` simulated
    cycles while the ROB is non-empty and nothing is outstanding.

    Stateless — derived entirely from core state that snapshots and
    restores with checkpoints, so checkpointed and from-scratch runs fire
    at the identical simulated cycle.  Events landing at ``cycle + 1``
    (single-cycle replays) do *not* count as outstanding: a load replay
    livelock re-schedules itself every cycle and must still be a hang.
    """
    if not hang_cycles or core.halted or not core.rob:
        return False
    if core.cycle - core.last_commit_cycle < hang_cycles:
        return False
    horizon = core.cycle + 1
    if core.fetch_ready_at > horizon:
        return False
    for when, _entry in core.inflight:
        if when > horizon:
            return False
    for until in core._div_busy:
        if until > horizon:
            return False
    for until in core._fdiv_busy:
        if until > horizon:
            return False
    mshr = getattr(core, "mshr", None)
    if mshr is not None:
        # an outstanding miss whose fill is still in flight is progress:
        # its retire will wake replaying loads
        for e in mshr.entries:
            if e.valid and e.ready_at > horizon:
                return False
    return True


# --------------------------------------------------------------------------
# Accelerator side
# --------------------------------------------------------------------------

#: byte -> 0x00 for untouched (0), 0xFF otherwise: builds a coverage mask
#: so the untouched-implies-zero scan runs at C speed on whole memories
_TOUCH_TABLE = bytes([0]) + bytes([255]) * 255


def accel_reach(injector) -> frozenset:
    """Memories whose bytes the active accel mask can have corrupted."""
    if injector is None:
        return frozenset()
    if injector.state == injector.READ:
        return ALL_STRUCTURES
    if injector.state == injector.ARMED:
        # mask structure is "accel:<design>:<component>"
        return frozenset({injector.flip.structure.rsplit(":", 1)[-1]})
    return frozenset()


class AccelAuditor:
    """Audits a ``DataflowEngine`` and its memory map at the policy stride.

    The SPM counter checks are stateful (monotonicity needs a previous
    observation), so one auditor must watch one engine run start-to-end.
    """

    def __init__(self, policy: SanitizerPolicy, injector=None, mask=None):
        self.policy = policy
        self.injector = injector
        self.mask_id = mask.mask_id if mask is not None else -1
        self.audits = 0
        self.suppressed = 0
        self._next = 0
        self._counters: dict[str, tuple[int, int, int]] = {}

    def on_cycle(self, engine) -> None:
        if engine.cycle < self._next:
            return
        self._next = engine.cycle + self.policy.stride
        self.audit(engine)

    def _raise(self, engine, check: str, structure: str, kind: str,
               detail: str) -> None:
        raise IntegrityViolation(IntegrityReport(
            check=check, structure=structure, kind=kind, cycle=engine.cycle,
            detail=detail, mask_id=self.mask_id, mode=self.policy.mode,
        ))

    def audit(self, engine) -> None:
        if self.policy.corruptor is not None:
            self.policy.corruptor(engine, self.audits)
        self.audits += 1
        reach = accel_reach(self.injector)
        tainted = reach is ALL_STRUCTURES or "*" in reach
        for mem in engine.memmap.memories:
            touched_total = sum(mem.touched)
            cur = (mem.reads, mem.writes, touched_total)
            prev = self._counters.get(mem.name)
            self._counters[mem.name] = cur
            if prev is not None and any(c < p for c, p in zip(cur, prev)):
                self._raise(engine, "spm_counter_monotonic", mem.name,
                            STRUCTURAL,
                            f"access counters ran backwards: {prev} -> {cur}")
            if max(mem.touched, default=0) > 1:
                self._raise(engine, "spm_touch_flags", mem.name, STRUCTURAL,
                            "touch flag outside {0, 1}")
            if not (tainted or mem.name in reach):
                stray = (int.from_bytes(bytes(mem.data), "little")
                         & ~int.from_bytes(
                             bytes(mem.touched).translate(_TOUCH_TABLE),
                             "little"))
                if stray:
                    bit = (stray & -stray).bit_length() - 1
                    self._raise(
                        engine, "spm_untouched_zero", mem.name, VALUE,
                        f"never-written byte {bit // 8} is nonzero")
        for node in getattr(engine, "_window", ()):
            if node.pending < 0 or node.pending_start < 0:
                self._raise(engine, "dataflow_pending", "engine", STRUCTURAL,
                            f"node {node.idx} ({node.instr.op}): negative "
                            f"pending count "
                            f"({node.pending}/{node.pending_start})")
        for when in getattr(engine, "_completing", ()):
            if when < engine.cycle:
                self._raise(engine, "dataflow_completion_order", "engine",
                            STRUCTURAL,
                            f"completion scheduled in the past "
                            f"(cycle {when} < {engine.cycle})")
