"""Bit-liveness (ACE-style) pre-analysis over the golden run.

A transient flip is provably Masked when the *first* golden-run event that
touches the flipped bit at or after the injection cycle is a **kill** — an
overwrite, a whole-line fill, a clean eviction, or a queue-entry free.  In
that case the faulty run is cycle-identical to the golden run up to that
event (the corrupted value was never observed), the event destroys the
corruption, and the supervised simulation would deterministically reach one
of the injector's final-masked states.  Such sites can be classified
analytically, without simulating them.

Events that *observe* a bit — operand reads, store-to-load forwarding
scans, dirty evictions (the value escapes to the next level), and
protection decode points — **pin** liveness: no dead window may cross them,
because the outcome downstream of an observation is unknowable without
simulation.  Protection composes conservatively: a structure covered by a
scheme decodes on overwrite as well (a detectable pattern raises DUE before
the new data lands), so overwrite is no longer a kill there and
:func:`mask_provably_dead` refuses to claim any flip into a protected
structure.

The recorders below attach to the existing probe seams (the same ones the
injector arms) during a golden run and append to a flat event tape; the
:class:`LivenessMap` is built from the tapes once, after the run, and
answers point queries by binary search over per-segment dead windows.

Window algebra: injection happens at the top of cycle ``c`` (before any of
cycle ``c``'s events), so an event at cycle ``k >= c`` is post-injection.
Every kill at cycle ``k`` emits the half-open-below window ``(prev, k]``
where ``prev`` is the cycle of the previous event of *any* kind on that
segment (``-1`` if none); a flip at cycle ``c`` is dead iff some window has
``prev < c <= k``.  The open tail after the last event is never claimed —
a bit that is still live when the workload ends may reach the output.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left

from repro.core.targets import TARGETS

#: event kinds on the tape — a pin observes a segment, a kill destroys it
PIN = 0
KILL = 1


class LivenessTrack:
    """Dead-window algebra for one segment (one register, byte, or field).

    ``pin``/``kill`` must be fed in non-decreasing cycle order (golden
    stream order).  ``decode`` is an alias of ``pin``: a protection decode
    point observes the stored code word, so it pins liveness exactly like
    an architectural read does.
    """

    __slots__ = ("last", "starts", "ends")

    def __init__(self) -> None:
        self.last = -1
        self.starts: list[int] = []
        self.ends: list[int] = []

    def event(self, cycle: int, kind: int) -> None:
        if kind == KILL and self.last < cycle:
            self.starts.append(self.last)
            self.ends.append(cycle)
        self.last = cycle

    def pin(self, cycle: int) -> None:
        self.event(cycle, PIN)

    def kill(self, cycle: int) -> None:
        self.event(cycle, KILL)

    def decode(self, cycle: int) -> None:
        """A protection decode point counts as a read (see DESIGN.md)."""
        self.event(cycle, PIN)

    def dead(self, cycle: int) -> bool:
        """True iff a flip injected at the top of ``cycle`` is provably dead."""
        i = bisect_left(self.ends, cycle)
        return i < len(self.ends) and self.starts[i] < cycle <= self.ends[i]

    def windows(self) -> list[tuple[int, int]]:
        return list(zip(self.starts, self.ends))


# --------------------------------------------------------------------------
# golden-run recorders (one per structure, attached to the probe seams)


class CacheLivenessRecorder:
    """CacheProbe recording byte-granular liveness events for one cache."""

    KIND = "cache"

    def __init__(self, structure_name: str, clock) -> None:
        self.structure_name = structure_name
        self.clock = clock
        self.tape: list[tuple[int, int, int, int, int]] = []

    def on_read(self, cache, line: int, lo: int, hi: int) -> None:
        self.tape.append((self.clock(), line, lo, hi, PIN))

    def on_write(self, cache, line: int, lo: int, hi: int) -> None:
        self.tape.append((self.clock(), line, lo, hi, KILL))

    def on_fill(self, cache, line: int) -> None:
        self.tape.append((self.clock(), line, 0, cache.cfg.line_size, KILL))

    def on_evict(self, cache, line: int, dirty: bool) -> None:
        # a dirty eviction writes the (possibly corrupted) line to the next
        # level — the value escapes, so it pins; a clean one discards it
        self.tape.append(
            (self.clock(), line, 0, cache.cfg.line_size, PIN if dirty else KILL)
        )

    def build_windows(self) -> dict:
        table: dict[tuple[int, int], LivenessTrack] = {}
        for cycle, line, lo, hi, kind in self.tape:
            for byte in range(lo, hi):
                track = table.get((line, byte))
                if track is None:
                    track = table[(line, byte)] = LivenessTrack()
                track.event(cycle, kind)
        return table


class RegFileLivenessRecorder:
    """RegFileProbe recording whole-register liveness events."""

    KIND = "regfile"

    def __init__(self, structure_name: str, clock) -> None:
        self.structure_name = structure_name
        self.clock = clock
        self.tape: list[tuple[int, int, int]] = []

    def on_reg_read(self, rf, reg: int) -> None:
        self.tape.append((self.clock(), reg, PIN))

    def on_reg_write(self, rf, reg: int) -> None:
        self.tape.append((self.clock(), reg, KILL))

    def build_windows(self) -> dict:
        table: dict[int, LivenessTrack] = {}
        for cycle, reg, kind in self.tape:
            track = table.get(reg)
            if track is None:
                track = table[reg] = LivenessTrack()
            track.event(cycle, kind)
        return table


#: LSQ segment indices: the two injectable fields of one entry
LSQ_ADDR, LSQ_DATA = 0, 1


class LSQLivenessRecorder:
    """LSQProbe recording per-field (addr/data) liveness events."""

    KIND = "lsq"

    def __init__(self, structure_name: str, clock) -> None:
        self.structure_name = structure_name
        self.clock = clock
        self.tape: list[tuple[int, int, int, int]] = []

    def _both(self, idx: int, kind: int) -> None:
        cycle = self.clock()
        self.tape.append((cycle, idx, LSQ_ADDR, kind))
        self.tape.append((cycle, idx, LSQ_DATA, kind))

    def on_entry_read(self, queue, idx: int) -> None:
        self._both(idx, PIN)

    def on_entry_scan(self, queue, idx: int) -> None:
        # forwarding CAM scan observes the address field only
        self.tape.append((self.clock(), idx, LSQ_ADDR, PIN))

    def on_entry_write(self, queue, idx: int, field: str) -> None:
        if field == "alloc":
            self._both(idx, KILL)
        elif field == "addr":
            self.tape.append((self.clock(), idx, LSQ_ADDR, KILL))
        else:  # "data"
            self.tape.append((self.clock(), idx, LSQ_DATA, KILL))

    def on_entry_free(self, queue, idx: int) -> None:
        # free clears the entry; a flip first touched by the free is discarded
        self._both(idx, KILL)

    def build_windows(self) -> dict:
        table: dict[tuple[int, int], LivenessTrack] = {}
        for cycle, idx, seg, kind in self.tape:
            track = table.get((idx, seg))
            if track is None:
                track = table[(idx, seg)] = LivenessTrack()
            track.event(cycle, kind)
        return table


class FieldQueueLivenessRecorder:
    """Per-field recorder for any ``FIELDS``-described queue structure.

    The MSHR file, store buffer and prefetcher table all speak the LSQ
    probe protocol and publish their injectable bit layout as a ``FIELDS``
    table; one recorder covers them all, with one liveness segment per
    field.  Segment indices are the field's position in ``FIELDS`` —
    :func:`_segment_key` mirrors the same boundaries per kind.
    """

    def __init__(self, structure_name: str, clock, kind: str) -> None:
        self.structure_name = structure_name
        self.clock = clock
        self.KIND = kind
        self.tape: list[tuple[int, int, int, int]] = []

    def on_entry_read(self, queue, idx: int) -> None:
        cycle = self.clock()
        for seg in range(len(queue.FIELDS)):
            self.tape.append((cycle, idx, seg, PIN))

    def on_entry_scan(self, queue, idx: int) -> None:
        # CAM scans compare the address — always the first declared field
        self.tape.append((self.clock(), idx, 0, PIN))

    def on_entry_write(self, queue, idx: int, field: str) -> None:
        cycle = self.clock()
        if field == "alloc":
            for seg in range(len(queue.FIELDS)):
                self.tape.append((cycle, idx, seg, KILL))
        else:
            seg = next(
                i for i, (name, _, _) in enumerate(queue.FIELDS)
                if name == field
            )
            self.tape.append((cycle, idx, seg, KILL))

    def on_entry_free(self, queue, idx: int) -> None:
        cycle = self.clock()
        for seg in range(len(queue.FIELDS)):
            self.tape.append((cycle, idx, seg, KILL))

    def build_windows(self) -> dict:
        table: dict[tuple[int, int], LivenessTrack] = {}
        for cycle, idx, seg, kind in self.tape:
            track = table.get((idx, seg))
            if track is None:
                track = table[(idx, seg)] = LivenessTrack()
            track.event(cycle, kind)
        return table


class MemLivenessRecorder:
    """MemProbe recording byte-granular liveness for one accel memory."""

    KIND = "mem"

    def __init__(self, structure_name: str, clock) -> None:
        self.structure_name = structure_name
        self.clock = clock
        self.tape: list[tuple[int, int, int, int]] = []

    def on_read(self, mem, lo: int, hi: int) -> None:
        self.tape.append((self.clock(), lo, hi, PIN))

    def on_write(self, mem, lo: int, hi: int) -> None:
        self.tape.append((self.clock(), lo, hi, KILL))

    def build_windows(self) -> dict:
        table: dict[int, LivenessTrack] = {}
        for cycle, lo, hi, kind in self.tape:
            for byte in range(lo, hi):
                track = table.get(byte)
                if track is None:
                    track = table[byte] = LivenessTrack()
                track.event(cycle, kind)
        return table


# --------------------------------------------------------------------------
# the queryable map


def _segment_key(kind: str, entry: int, bit: int):
    if kind == "cache":
        return (entry, bit // 8)
    if kind == "regfile":
        return entry
    if kind == "lsq":
        return (entry, LSQ_ADDR if bit < 64 else LSQ_DATA)
    if kind == "mem":
        return bit // 8
    # the FIELDS-described structures: segment = field index, boundaries
    # fixed by each structure's declared bit layout
    if kind == "store_buffer":        # 64 addr | 128 data
        return (entry, 0 if bit < 64 else 1)
    if kind == "mshr":                # 64 addr | 1 valid | targets
        return (entry, 0 if bit < 64 else (1 if bit == 64 else 2))
    if kind == "prefetcher":          # 64 last_addr | 16 stride | 4 conf
        return (entry, 0 if bit < 64 else (1 if bit < 80 else 2))
    raise ValueError(kind)  # pragma: no cover


class LivenessMap:
    """Per-structure dead-window tables built from golden-run tapes."""

    def __init__(self) -> None:
        self._structs: dict[str, tuple[str, dict]] = {}

    @classmethod
    def from_recorders(cls, recorders) -> "LivenessMap":
        liveness = cls()
        for rec in recorders:
            liveness._structs[rec.structure_name] = (rec.KIND, rec.build_windows())
        return liveness

    def structures(self) -> list[str]:
        return sorted(self._structs)

    def dead(self, structure: str, entry: int, bit: int, cycle: int) -> bool:
        info = self._structs.get(structure)
        if info is None:
            return False
        kind, table = info
        track = table.get(_segment_key(kind, entry, bit))
        # an untracked segment saw no post-injection event at all: open
        # tail, never claimed
        return track is not None and track.dead(cycle)

    def window_count(self, structure: str) -> int:
        info = self._structs.get(structure)
        if info is None:
            return 0
        return sum(len(t.ends) for t in info[1].values())

    def fingerprint(self) -> str:
        """Deterministic digest of every dead window (regression anchor)."""
        h = hashlib.sha256()
        for name in sorted(self._structs):
            kind, table = self._structs[name]
            h.update(f"{name}:{kind}\n".encode())
            for key in sorted(table, key=repr):
                track = table[key]
                h.update(
                    f"{key!r}|{track.last}|{track.starts}|{track.ends}\n".encode()
                )
        return h.hexdigest()


def mask_provably_dead(mask, liveness: LivenessMap, protected=frozenset()) -> bool:
    """True iff *every* flip of a transient mask lands in a dead window.

    ``protected`` is the set of structure names covered by an active
    protection scheme: their decoders also fire on overwrite (a detectable
    pattern raises DUE before new data lands), so overwrite is not a kill
    there and no claim is made.  Permanent faults re-assert themselves
    after every overwrite and are never claimed.
    """
    if mask.model.permanent:
        return False
    for flip in mask.flips:
        if flip.structure in protected:
            return False
        if not liveness.dead(flip.structure, flip.entry, flip.bit, flip.cycle):
            return False
    return True


# --------------------------------------------------------------------------
# attach helpers


def attach_cpu_recorders(core) -> list:
    """Arm liveness recorders on every injectable CPU structure.

    Must be called after core construction (so initialization writes that
    precede the first injectable cycle are not taped) and before ``run()``.
    """
    clock = lambda: core.cycle  # noqa: E731
    factories = {
        "cache": CacheLivenessRecorder,
        "regfile": RegFileLivenessRecorder,
        "lsq": LSQLivenessRecorder,
    }
    recorders = []
    for target in TARGETS.values():
        obj = target.accessor(core)
        if obj is None:
            continue  # optional structure disabled on this configuration
        factory = factories.get(target.kind)
        if factory is not None:
            rec = factory(target.name, clock)
        else:
            rec = FieldQueueLivenessRecorder(target.name, clock, target.kind)
        obj.probe = rec
        recorders.append(rec)
    return recorders


def attach_accel_recorder(mem, engine, structure_name: str) -> MemLivenessRecorder:
    """Arm a liveness recorder on one accel memory.

    Must be called after ``load_inputs`` (DMA precedes cycle 0 and would
    otherwise tape pre-injection kills) and before the engine runs.
    """
    rec = MemLivenessRecorder(structure_name, lambda: engine.cycle)
    mem.probe = rec
    return rec
