"""Fault-injection campaign controller (the paper's Figure 2 flow).

1. build the hardware configuration + workload (compile once, cache),
2. run the golden (fault-free) simulation, recording output, cycle count,
   the injection window (checkpoint→switch_cpu) and the commit trace,
3. generate a statistical fault-mask sample over the target structure,
4. run one simulation per mask (optionally across worker processes),
   with the early-termination optimizations armed,
5. classify every run (Masked / SDC / Crash and HVF Benign / Corruption),
6. aggregate into AVF / HVF / error-margin reports.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

from repro.core.faults import FaultMask, FaultModel
from repro.core.injector import InjectionController
from repro.core.outcome import Classification, HVFClass, Outcome, classify
from repro.core.sampling import error_margin_for, generate_masks
from repro.core.targets import get_target
from repro.cpu.config import CPUConfig
from repro.cpu.core import CrashError, OoOCore, RunResult
from repro.isa.base import get_isa
from repro.kernel.compiler import Executable, compile_program
from repro.workloads import build_workload


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to reproduce a campaign (picklable)."""

    isa: str
    workload: str
    target: str
    cfg: CPUConfig
    scale: str = "tiny"
    model: FaultModel = FaultModel.TRANSIENT
    faults: int = 100
    seed: int = 1
    flips_per_mask: int = 1
    stop_early: bool = True
    stop_on_hvf: bool = False       # HVF-only campaigns may stop at first mismatch


@dataclass
class GoldenRun:
    """Cached fault-free reference execution."""

    exe: Executable
    result: RunResult
    window: tuple[int, int]

    @property
    def output(self) -> bytes:
        return self.result.output

    @property
    def cycles(self) -> int:
        return self.result.cycles


@dataclass(frozen=True)
class FaultRecord:
    """Per-fault outcome row."""

    mask: FaultMask
    outcome: Outcome
    hvf: HVFClass
    cycles: int
    masked_reason: str | None = None
    crash_reason: str | None = None
    activated: bool = False


@dataclass
class CampaignResult:
    """Aggregated campaign results."""

    spec: CampaignSpec
    records: list[FaultRecord]
    golden: GoldenRun
    population_bits: int

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.records if r.outcome is outcome)

    @property
    def avf(self) -> float:
        return 1 - self.count(Outcome.MASKED) / len(self.records)

    @property
    def sdc_avf(self) -> float:
        return self.count(Outcome.SDC) / len(self.records)

    @property
    def crash_avf(self) -> float:
        return self.count(Outcome.CRASH) / len(self.records)

    @property
    def hvf(self) -> float:
        corrupt = sum(1 for r in self.records if r.hvf is HVFClass.CORRUPTION)
        return corrupt / len(self.records)

    @property
    def error_margin(self) -> float:
        return error_margin_for(len(self.records), self.population_bits)

    def summary(self) -> dict:
        return {
            "isa": self.spec.isa,
            "workload": self.spec.workload,
            "target": self.spec.target,
            "model": self.spec.model.value,
            "faults": len(self.records),
            "avf": self.avf,
            "sdc_avf": self.sdc_avf,
            "crash_avf": self.crash_avf,
            "hvf": self.hvf,
            "error_margin": self.error_margin,
            "golden_cycles": self.golden.cycles,
        }


# --------------------------------------------------------------------------
# golden-run cache
# --------------------------------------------------------------------------

_GOLDEN_CACHE: dict[tuple, GoldenRun] = {}
_EXE_CACHE: dict[tuple, Executable] = {}


def compile_workload(isa_name: str, workload: str, scale: str) -> Executable:
    """Compile (and memoize) a workload for an ISA."""
    key = (isa_name, workload, scale)
    if key not in _EXE_CACHE:
        program = build_workload(workload, scale)
        _EXE_CACHE[key] = compile_program(program, get_isa(isa_name))
    return _EXE_CACHE[key]


def golden_run(isa_name: str, workload: str, cfg: CPUConfig, scale: str = "tiny") -> GoldenRun:
    """Fault-free reference run (cached per isa/workload/config/scale)."""
    key = (isa_name, workload, scale, cfg)
    cached = _GOLDEN_CACHE.get(key)
    if cached is not None:
        return cached
    exe = compile_workload(isa_name, workload, scale)
    isa = get_isa(isa_name)
    core = OoOCore.from_executable(exe, isa, cfg)
    core.trace_mode = "record"
    result = core.run()
    if not result.ok:
        raise RuntimeError(
            f"golden run failed for {isa_name}/{workload}: {result.crashed}"
        )
    lo = result.checkpoint_cycle if result.checkpoint_cycle is not None else 0
    hi = result.switch_cycle if result.switch_cycle is not None else result.cycles
    if hi <= lo:
        hi = result.cycles
    golden = GoldenRun(exe=exe, result=result, window=(lo, hi))
    _GOLDEN_CACHE[key] = golden
    return golden


def clear_caches() -> None:
    """Drop memoized executables and golden runs (tests use this)."""
    _GOLDEN_CACHE.clear()
    _EXE_CACHE.clear()


# --------------------------------------------------------------------------
# single fault run
# --------------------------------------------------------------------------


def run_one_fault(spec: CampaignSpec, mask: FaultMask, golden: GoldenRun | None = None) -> FaultRecord:
    """Simulate one injected fault and classify the outcome."""
    if golden is None:
        golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    isa = get_isa(spec.isa)
    controller = InjectionController(mask, stop_early=spec.stop_early)
    core = OoOCore.from_executable(golden.exe, isa, cfg=spec.cfg, injector=controller)
    core.trace_mode = "compare"
    core.golden_trace = golden.result.commit_trace
    core.stop_on_hvf = spec.stop_on_hvf

    max_cycles = golden.cycles * spec.cfg.watchdog_factor + 10_000
    crashed: str | None = None
    crash_pc = 0
    try:
        while not core.halted and core.cycle < max_cycles:
            core.step()
            if controller.early_masked:
                break
        if not core.halted and not controller.early_masked:
            crashed = "timeout"
    except CrashError as exc:
        crashed = exc.reason
        crash_pc = exc.pc

    result = RunResult(
        output=bytes(core.output),
        cycles=core.cycle,
        instructions=core.instructions,
        halted=core.halted,
        crashed=crashed,
        crash_pc=crash_pc,
        hvf_corrupt=core.hvf_corrupt,
        hvf_seq=core.hvf_seq,
    )
    if spec.stop_on_hvf and core.hvf_corrupt:
        # HVF-only campaign: the run stopped at the first commit mismatch
        cls = Classification(Outcome.SDC, HVFClass.CORRUPTION)
    else:
        cls = classify(
            result,
            golden.output,
            controller.early_masked,
            controller.masked_reason(),
        )
    return FaultRecord(
        mask=mask,
        outcome=cls.outcome,
        hvf=cls.hvf,
        cycles=core.cycle,
        masked_reason=cls.masked_reason,
        crash_reason=cls.crash_reason,
        activated=controller.activated,
    )


def _worker(args: tuple) -> FaultRecord:
    spec, mask = args
    return run_one_fault(spec, mask)


# --------------------------------------------------------------------------
# campaign driver
# --------------------------------------------------------------------------


def masks_for_spec(spec: CampaignSpec, golden: GoldenRun) -> list[FaultMask]:
    """Generate the statistical fault sample for a campaign spec."""
    isa = get_isa(spec.isa)
    probe_core = OoOCore.from_executable(golden.exe, isa, spec.cfg)
    entries, bits = get_target(spec.target).geometry(probe_core)
    return generate_masks(
        structure=spec.target,
        entries=entries,
        bits_per_entry=bits,
        count=spec.faults,
        window=golden.window,
        model=spec.model,
        seed=spec.seed,
        flips_per_mask=spec.flips_per_mask,
    )


def run_campaign(
    spec: CampaignSpec,
    masks: list[FaultMask] | None = None,
    workers: int = 1,
) -> CampaignResult:
    """Run a full SFI campaign; returns per-fault records + aggregates."""
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale)
    if masks is None:
        masks = masks_for_spec(spec, golden)

    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            records = list(pool.map(_worker, [(spec, m) for m in masks]))
    else:
        records = [run_one_fault(spec, m, golden) for m in masks]

    isa = get_isa(spec.isa)
    probe_core = OoOCore.from_executable(golden.exe, isa, spec.cfg)
    entries, bits = get_target(spec.target).geometry(probe_core)
    return CampaignResult(
        spec=spec,
        records=records,
        golden=golden,
        population_bits=entries * bits,
    )
