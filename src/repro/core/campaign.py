"""Fault-injection campaign controller (the paper's Figure 2 flow).

1. build the hardware configuration + workload (compile once, cache),
2. run the golden (fault-free) simulation, recording output, cycle count,
   the injection window (checkpoint→switch_cpu) and the commit trace,
3. generate a statistical fault-mask sample over the target structure,
4. run one simulation per mask (optionally across worker processes),
   with the early-termination optimizations armed,
5. classify every run (Masked / SDC / Crash and HVF Benign / Corruption),
6. aggregate into AVF / HVF / error-margin reports.
"""

from __future__ import annotations

import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.checkpoint import (
    DEFAULT_POLICY as DEFAULT_CHECKPOINT_POLICY,
    NO_CHECKPOINTS,
    CheckpointPolicy,
    CheckpointStore,
    matches as checkpoint_matches,
)
from repro.core.faultmodels import FaultModelSpec, cpu_sample, validate_for
from repro.core.faults import FaultMask, FaultModel
from repro.core.injector import InjectionController
from repro.core.journal import CampaignJournal
from repro.core.liveness import (
    LivenessMap,
    attach_cpu_recorders,
    mask_provably_dead,
)
from repro.core.outcome import Classification, HVFClass, Outcome, classify
from repro.core.protection import ProtectionConfig
from repro.core.sampling import AdaptiveSampling, error_margin_for
from repro.core.sanitizer import (
    DEFAULT_HANG_CYCLES,
    DEFAULT_SANITIZER,
    CoreAuditor,
    IntegrityReport,
    IntegrityViolation,
    SanitizerPolicy,
    hang_detected,
)
from repro.core.supervisor import SupervisorPolicy, TaskOutcome, run_supervised
from repro.core.targets import get_target
from repro.cpu.config import CPUConfig
from repro.cpu.core import CrashError, OoOCore, RunResult
from repro.isa.base import get_isa
from repro.kernel.compiler import Executable, compile_program
from repro.workloads import build_workload


@dataclass(frozen=True)
class CampaignSpec:
    """Everything needed to reproduce a campaign (picklable)."""

    isa: str
    workload: str
    target: str
    cfg: CPUConfig
    scale: str = "tiny"
    model: FaultModel = FaultModel.TRANSIENT
    faults: int = 100
    seed: int = 1
    flips_per_mask: int = 1
    stop_early: bool = True
    stop_on_hvf: bool = False       # HVF-only campaigns may stop at first mismatch
    #: per-structure protection assignment; None = unprotected.  Kept None
    #: (never an all-``none`` config) so the spec fingerprint — and every
    #: journal byte — of an unprotected campaign is identical to pre-
    #: protection output (see ``repro.core.journal.spec_to_dict``).
    protection: ProtectionConfig | None = None
    #: bit-liveness pre-analysis mode: ``None`` = off (the default; the key
    #: is dropped from the serialized spec so unset campaigns stay
    #: byte-identical to pre-liveness output), ``"on"`` = provably-dead
    #: sites classify analytically without simulation, ``"audit"`` =
    #: analytically classified sites are simulated anyway and any
    #: disagreement quarantines the mask (``sim_error_kind="liveness"``).
    liveness: str | None = None
    #: fault-generator selection; ``None`` = the uniform default (the key
    #: is dropped from the serialized spec so unset campaigns journal
    #: byte-identically to pre-registry output).  Generator name + params
    #: are part of the spec fingerprint: ``--resume`` refuses a journal
    #: drawn by a different generator and ``repro doctor`` validates the
    #: provenance (see ``repro.core.faultmodels``).
    fault_model: "FaultModelSpec | None" = None

    #: default sizes used when a campaign targets an optional structure
    #: the configuration left disabled
    _AUTO_SIZES = {
        "mshr": ("mshr_entries", 8),
        "store_buffer": ("store_buffer_entries", 8),
        "prefetcher": ("prefetcher_entries", 16),
    }

    def __post_init__(self) -> None:
        # Targeting an optional structure implies enabling it: an MSHR
        # campaign needs the non-blocking L1D to exist.  Idempotent (a
        # round-tripped spec already carries the size), and a nonzero
        # explicit size always wins.
        info = self._AUTO_SIZES.get(self.target)
        if info is not None:
            fname, default = info
            if getattr(self.cfg, fname) == 0:
                object.__setattr__(
                    self, "cfg", self.cfg.with_(**{fname: default})
                )


@dataclass
class GoldenRun:
    """Cached fault-free reference execution."""

    exe: Executable
    result: RunResult
    window: tuple[int, int]
    #: mid-flight checkpoints collected along this run (None when the run
    #: was simulated without a checkpoint policy)
    checkpoints: CheckpointStore | None = field(default=None, repr=False)
    #: bit-liveness dead-window map recorded along this run (None when the
    #: run was simulated without liveness recording)
    liveness: LivenessMap | None = field(default=None, repr=False)

    @property
    def output(self) -> bytes:
        return self.result.output

    @property
    def cycles(self) -> int:
        return self.result.cycles


@dataclass(frozen=True)
class FaultRecord:
    """Per-fault outcome row."""

    mask: FaultMask
    outcome: Outcome
    hvf: HVFClass
    cycles: int
    masked_reason: str | None = None
    crash_reason: str | None = None
    activated: bool = False
    #: watchdog budget the run was given (crash-timeout runs hit this)
    max_cycles: int = 0
    #: the run halted via the stop_on_hvf early exit, not program completion
    stopped_on_hvf: bool = False
    #: simulator-level retries this mask consumed (0 = clean first attempt)
    retries: int = 0
    #: simulator failure description (traceback + core snapshot) when the
    #: run was quarantined or succeeded only after a retry
    error: str | None = None
    #: 'deterministic' (both attempts failed), 'flaky' (retry succeeded),
    #: 'harness_timeout' / 'harness_error' (supervised executor gave up),
    #: 'integrity' (a sanitizer invariant check caught an impossible state)
    sim_error_kind: str | None = None
    #: structured sanitizer evidence for an 'integrity' quarantine
    integrity: IntegrityReport | None = None
    #: ``scheme:structure`` provenance of a DUE verdict (None otherwise;
    #: omitted from the journal line when None so unprotected journals
    #: stay byte-identical to pre-protection output)
    detected_by: str | None = None
    #: ``"liveness"`` when the verdict came from the dead-window
    #: pre-analysis instead of a simulation (None otherwise; omitted from
    #: the journal line when None so liveness-off journals stay
    #: byte-identical to pre-liveness output)
    classified_by: str | None = None
    #: golden-checkpoint cycle the run fast-forwarded from (0 = from
    #: scratch).  Excluded from equality: a checkpointed record is the
    #: *same verdict* as its from-scratch twin, just cheaper to reach.
    restored_from: int = field(default=0, compare=False)
    #: the run ended at a golden-trace re-convergence probe instead of
    #: simulating to completion.  Like ``restored_from``, an execution
    #: detail: excluded from equality and never serialized, so journals
    #: stay byte-identical; telemetry reads it to count early exits.
    early_exited: bool = field(default=False, compare=False)

    @property
    def quarantined(self) -> bool:
        return self.outcome is Outcome.SIM_FAULT


class SimulatorFault(Exception):
    """A non-CrashError exception escaped the simulated core.

    Carries the original traceback plus a snapshot of where the simulation
    stood, so the quarantined :class:`FaultRecord` can explain itself.
    """

    def __init__(self, cause: BaseException, snapshot: dict):
        self.cause = cause
        self.snapshot = snapshot
        self.traceback_text = "".join(
            traceback.format_exception(type(cause), cause, cause.__traceback__)
        )
        super().__init__(f"{type(cause).__name__}: {cause}")

    def describe(self, limit: int = 4000) -> str:
        state = ", ".join(f"{k}={v}" for k, v in self.snapshot.items())
        text = f"{self} [{state}]\n{self.traceback_text}"
        return text[-limit:] if len(text) > limit else text


@dataclass
class CampaignResult:
    """Aggregated campaign results.

    AVF/HVF aggregates are computed over *valid* records only: quarantined
    runs (``Outcome.SIM_FAULT``) are simulator failures, not verdicts about
    the hardware, so they are reported separately instead of polluting the
    vulnerability factors.
    """

    spec: CampaignSpec
    records: list[FaultRecord]
    golden: GoldenRun
    population_bits: int
    #: masks satisfied from a resume journal instead of fresh simulation
    resumed: int = 0
    #: adaptive sequential sampling stopped the campaign before the fixed
    #: fault budget (``spec.faults``); ``error_margin`` is the achieved one
    stopped_early: bool = False

    @property
    def valid_records(self) -> list[FaultRecord]:
        return [r for r in self.records if r.outcome is not Outcome.SIM_FAULT]

    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.records if r.outcome is outcome)

    @property
    def quarantined(self) -> int:
        return self.count(Outcome.SIM_FAULT)

    @property
    def retried(self) -> int:
        return sum(1 for r in self.records if r.retries)

    @property
    def timeouts(self) -> int:
        return sum(1 for r in self.records if r.crash_reason == "timeout")

    @property
    def hangs(self) -> int:
        return sum(1 for r in self.records if r.crash_reason == "hang")

    @property
    def integrity_quarantined(self) -> int:
        return sum(1 for r in self.records if r.sim_error_kind == "integrity")

    @property
    def liveness_skips(self) -> int:
        """Records classified analytically by the liveness pre-analysis."""
        return sum(1 for r in self.records if r.classified_by == "liveness")

    @property
    def liveness_disagreements(self) -> int:
        """Audit-mode quarantines where simulation contradicted the claim."""
        return sum(1 for r in self.records if r.sim_error_kind == "liveness")

    @property
    def avf(self) -> float | None:
        """``None`` for a degenerate campaign (no valid record to judge)."""
        valid = self.valid_records
        if not valid:
            return None
        return 1 - sum(1 for r in valid if r.outcome is Outcome.MASKED) / len(valid)

    @property
    def sdc_avf(self) -> float | None:
        valid = self.valid_records
        return self.count(Outcome.SDC) / len(valid) if valid else None

    @property
    def crash_avf(self) -> float | None:
        valid = self.valid_records
        return self.count(Outcome.CRASH) / len(valid) if valid else None

    @property
    def due_avf(self) -> float | None:
        """Detected-uncorrectable share of the AVF (machine checks)."""
        valid = self.valid_records
        return self.count(Outcome.DUE) / len(valid) if valid else None

    @property
    def corrected(self) -> int:
        """Runs whose every flip the protection scheme repaired in place."""
        return sum(1 for r in self.records if r.masked_reason == "corrected")

    @property
    def coverage(self) -> float | None:
        """Share of protection-relevant faults the scheme caught.

        ``(corrected + DUE) / (corrected + DUE + SDC + CRASH)`` — of the
        faults that either mattered or were intercepted, how many did the
        scheme correct or at least flag?  ``None`` when nothing in the
        sample exercised the question (all masked for other reasons).
        """
        caught = self.corrected + self.count(Outcome.DUE)
        exercised = caught + self.count(Outcome.SDC) + self.count(Outcome.CRASH)
        return caught / exercised if exercised else None

    @property
    def residual_sdc_avf(self) -> float | None:
        """SDC remaining *despite* protection (multi-bit escapes)."""
        return self.sdc_avf

    @property
    def hvf(self) -> float | None:
        valid = self.valid_records
        if not valid:
            return None
        corrupt = sum(1 for r in valid if r.hvf is HVFClass.CORRUPTION)
        return corrupt / len(valid)

    @property
    def attack_success(self) -> float | None:
        """Share of directed injections that silently corrupted output.

        The InjectV success criterion: an attack *succeeds* when the
        workload completes with wrong output (SDC) — a crash or machine
        check is a detected, hence failed, attack.  Reported next to AVF
        for ``adversarial`` campaigns; numerically it equals ``sdc_avf``
        over the directed (non-uniform) sample, which is the point of
        the comparison.
        """
        valid = self.valid_records
        return self.count(Outcome.SDC) / len(valid) if valid else None

    @property
    def error_margin(self) -> float | None:
        """Achieved margin of the valid sample (``None`` when it is empty)."""
        n = len(self.valid_records)
        if n == 0:
            return None
        return error_margin_for(n, self.population_bits)

    def summary(self) -> dict:
        out = {
            "isa": self.spec.isa,
            "workload": self.spec.workload,
            "target": self.spec.target,
            "model": self.spec.model.value,
            "faults": len(self.records),
            "budget": self.spec.faults,
            "n_valid": len(self.valid_records),
            "avf": self.avf,
            "sdc_avf": self.sdc_avf,
            "crash_avf": self.crash_avf,
            "hvf": self.hvf,
            "error_margin": self.error_margin,
            "stopped_early": self.stopped_early,
            "golden_cycles": self.golden.cycles,
            "quarantined": self.quarantined,
            "retried": self.retried,
            "timeouts": self.timeouts,
            "resumed": self.resumed,
        }
        if self.spec.protection is not None and self.spec.protection.enabled:
            # protection-only keys: an unprotected summary renders exactly
            # as it always has
            out["protection"] = self.spec.protection.scheme_name_for(
                self.spec.target) or "none"
            out["due_avf"] = self.due_avf
            out["corrected"] = self.corrected
            out["coverage"] = self.coverage
            out["residual_sdc_avf"] = self.residual_sdc_avf
        if self.spec.liveness is not None:
            # liveness-only keys: an unset summary renders exactly as it
            # always has
            out["liveness"] = self.spec.liveness
            out["liveness_skips"] = self.liveness_skips
            out["liveness_skip_rate"] = (
                self.liveness_skips / len(self.records)
                if self.records else None
            )
            if self.spec.liveness == "audit":
                out["liveness_disagreements"] = self.liveness_disagreements
        if self.spec.fault_model is not None:
            # fault-model-only keys: a default-generator summary renders
            # exactly as it always has
            out["fault_model"] = self.spec.fault_model.describe()
            if self.spec.fault_model.name == "adversarial":
                out["attack_success"] = self.attack_success
        return out


# --------------------------------------------------------------------------
# golden-run cache
# --------------------------------------------------------------------------

#: bound on cached golden runs per process — multi-spec sweeps touch many
#: (isa, workload, cfg) combinations, and each checkpointed golden holds
#: dozens of full-state snapshots, so an unbounded cache grows worker
#: memory without limit
GOLDEN_CACHE_LIMIT = 16


class _LRUCache(OrderedDict):
    """Least-recently-used mapping with a fixed key count."""

    def __init__(self, maxsize: int):
        super().__init__()
        self.maxsize = maxsize

    def get(self, key, default=None):
        if key in self:
            self.move_to_end(key)
            return super().__getitem__(key)
        return default

    def put(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)


_GOLDEN_CACHE: _LRUCache = _LRUCache(GOLDEN_CACHE_LIMIT)
_EXE_CACHE: dict[tuple, Executable] = {}
#: process-local count of golden-cache misses (full golden simulations);
#: tests use this to assert workers compute the golden run at most once
_GOLDEN_MISSES = 0


def golden_miss_count() -> int:
    """How many golden simulations this process has actually run."""
    return _GOLDEN_MISSES


def compile_workload(isa_name: str, workload: str, scale: str) -> Executable:
    """Compile (and memoize) a workload for an ISA."""
    key = (isa_name, workload, scale)
    if key not in _EXE_CACHE:
        program = build_workload(workload, scale)
        _EXE_CACHE[key] = compile_program(program, get_isa(isa_name))
    return _EXE_CACHE[key]


def golden_run(
    isa_name: str,
    workload: str,
    cfg: CPUConfig,
    scale: str = "tiny",
    *,
    checkpoints: CheckpointPolicy | None = None,
    sanitizer: SanitizerPolicy | None = None,
    liveness: bool = False,
) -> GoldenRun:
    """Fault-free reference run (cached per isa/workload/config/scale).

    With a ``checkpoints`` policy, the run also collects one mid-flight
    :class:`CoreCheckpoint` per stride bucket (``GoldenRun.checkpoints``)
    so fault runs can fast-forward to the injection cycle.  A cached
    golden that already carries checkpoints is reused as-is — correctness
    never depends on the stride, only speed does — while a cached one
    without them is re-simulated once to collect them.

    With an enabled ``sanitizer`` policy the golden run is invariant-audited
    at the policy's stride.  No fault mask is active, so nothing is
    suppressed and a violation propagates as a hard :class:`IntegrityViolation`
    (a corrupt golden reference invalidates every verdict derived from it).
    Auditing only happens on cache misses — a cached golden was already
    simulated — so callers measuring audit overhead must clear the cache.

    With ``liveness=True`` the run is instrumented with bit-liveness
    recorders (see :mod:`repro.core.liveness`) and ``GoldenRun.liveness``
    carries the dead-window map.  Like checkpoints, a cached golden
    without the map is re-simulated once to collect it; the simulation is
    deterministic and the recorders are pure observers, so the reference
    result is identical either way.
    """
    key = (isa_name, workload, scale, cfg)
    want = checkpoints is not None and checkpoints.enabled
    cached = _GOLDEN_CACHE.get(key)
    if (cached is not None
            and (not want or cached.checkpoints is not None)
            and (not liveness or cached.liveness is not None)):
        return cached
    global _GOLDEN_MISSES
    _GOLDEN_MISSES += 1
    exe = compile_workload(isa_name, workload, scale)
    isa = get_isa(isa_name)
    core = OoOCore.from_executable(exe, isa, cfg)
    core.trace_mode = "record"
    # arm the liveness recorders only now: construction-time initialization
    # writes precede the first injectable cycle and must not be taped (a
    # pre-injection kill would falsely claim cycle-0 flips)
    recorders = attach_cpu_recorders(core) if liveness else None
    store = (
        CheckpointStore(checkpoints, base_image=bytes(exe.initial_memory()))
        if want else None
    )
    auditor = (
        CoreAuditor(sanitizer)
        if sanitizer is not None and sanitizer.enabled else None
    )
    if store is not None and auditor is not None:
        def on_cycle(c, _consider=store.consider, _audit=auditor.on_cycle):
            _consider(c)
            _audit(c)
    elif store is not None:
        on_cycle = store.consider
    elif auditor is not None:
        on_cycle = auditor.on_cycle
    else:
        on_cycle = None
    result = core.run(on_cycle=on_cycle)
    if not result.ok:
        raise RuntimeError(
            f"golden run failed for {isa_name}/{workload}: {result.crashed}"
        )
    if auditor is not None:
        auditor.audit(core)   # final audit of the halted end state
    lo = result.checkpoint_cycle if result.checkpoint_cycle is not None else 0
    hi = result.switch_cycle if result.switch_cycle is not None else result.cycles
    if hi <= lo:
        hi = result.cycles
    lmap = (
        LivenessMap.from_recorders(recorders) if recorders is not None else None
    )
    if cached is not None:
        # upgrading a cached golden for one facet keeps the other: the run
        # is deterministic, so the carried-over artifact is still exact
        if lmap is None:
            lmap = cached.liveness
        if store is None:
            store = cached.checkpoints
    golden = GoldenRun(exe=exe, result=result, window=(lo, hi),
                       checkpoints=store, liveness=lmap)
    _GOLDEN_CACHE.put(key, golden)
    return golden


def clear_caches() -> None:
    """Drop memoized executables and golden runs (tests use this)."""
    _GOLDEN_CACHE.clear()
    _EXE_CACHE.clear()


# --------------------------------------------------------------------------
# single fault run
# --------------------------------------------------------------------------


def _simulate_one(
    spec: CampaignSpec,
    mask: FaultMask,
    golden: GoldenRun,
    policy: CheckpointPolicy | None = None,
    sanitizer: SanitizerPolicy | None = None,
    hang_cycles: int = DEFAULT_HANG_CYCLES,
) -> FaultRecord:
    """One injected simulation, unguarded: simulator bugs raise
    :class:`SimulatorFault` for :func:`run_one_fault` to quarantine, and
    sanitizer hits raise :class:`IntegrityViolation` for it to escalate.

    The deterministic hang detector is *always* armed (``hang_cycles=0``
    disables it): it reads only simulated state, so a hang classifies as
    ``Crash(hang)`` at the identical cycle regardless of sanitize mode,
    host speed, or worker parallelism — records stay byte-identical
    between ``--sanitize=off`` and ``--sanitize=sampled``.

    With an enabled ``policy`` and a checkpointed golden run, the core is
    restored from the nearest golden checkpoint at-or-before the earliest
    flip cycle instead of simulating the warm-up (the simulator is
    deterministic and the injector is a no-op before the flip cycle, so the
    restored run is bit-identical to a from-scratch one).  With
    ``policy.early_exit``, the run additionally compares its state digest
    against the golden checkpoint stream once every flip has reached a
    terminal lifecycle state: a digest match proves every remaining cycle
    is identical to the golden run, so the record is emitted immediately
    with the exact fields a full-length run would have produced.
    """
    isa = get_isa(spec.isa)
    controller = InjectionController(mask, stop_early=spec.stop_early,
                                     protection=spec.protection)
    core = OoOCore.from_executable(golden.exe, isa, cfg=spec.cfg, injector=controller)
    core.trace_mode = "compare"
    core.golden_trace = golden.result.commit_trace
    core.stop_on_hvf = spec.stop_on_hvf

    store = (
        golden.checkpoints
        if policy is not None and policy.enabled else None
    )
    restored_from = 0
    if store is not None:
        first_cycle = min(f.cycle for f in mask.flips)
        ckpt = store.best_for(first_cycle)
        if ckpt is not None and ckpt.cycle > 0:
            ckpt.restore_into(core)
            restored_from = ckpt.cycle
            # replay marker notifications the restored prefix already passed
            if core.checkpoint_cycle is not None:
                controller.on_checkpoint(core)
            if core.switch_cycle is not None:
                controller.on_switch_cpu(core)

    probes = []
    if (
        store is not None
        and policy.early_exit
        and mask.model is FaultModel.TRANSIENT
    ):
        probes = store.probes_after(core.cycle)
    probe_idx = 0
    reconverged = False

    auditor = (
        CoreAuditor(sanitizer, controller, mask)
        if sanitizer is not None and sanitizer.enabled else None
    )
    max_cycles = golden.cycles * spec.cfg.watchdog_factor + 10_000
    crashed: str | None = None
    crash_pc = 0
    try:
        while not core.halted and core.cycle < max_cycles:
            if auditor is not None:
                auditor.on_cycle(core)
            core.step()
            if controller.early_masked:
                break
            if probe_idx < len(probes) and core.cycle == probes[probe_idx].cycle:
                ckpt = probes[probe_idx]
                probe_idx += 1
                if controller.settled and checkpoint_matches(ckpt, core):
                    reconverged = True
                    break
            if hang_detected(core, hang_cycles):
                crashed = "hang"
                break
        if (crashed is None and not core.halted
                and not controller.early_masked and not reconverged):
            crashed = "timeout"
        if crashed is None:
            # end-of-run patrol scrub: decode protected words the program
            # never touched again, so a resident uncorrectable error
            # raises its machine check (DUE) instead of silently vanishing
            controller.finish(core)
        if auditor is not None:
            auditor.audit(core)   # final audit of the terminal state
    except CrashError as exc:
        # an expected outcome: the *simulated program* crashed
        crashed = exc.reason
        crash_pc = exc.pc
    except IntegrityViolation:
        # impossible state caught mid-run — escalate upstream untouched
        raise
    except Exception as exc:
        # the *simulator* crashed — a fault-corrupted core walked the model
        # into a state the code never anticipated; quarantine upstream
        raise SimulatorFault(exc, snapshot={
            "cycle": core.cycle,
            "instructions": core.instructions,
            "halted": core.halted,
            "mask_id": mask.mask_id,
            "restored_from": restored_from,
        }) from exc

    # stop_on_hvf halts the core at the first commit mismatch; without this
    # flag, an incomplete-but-halted run would be indistinguishable from a
    # genuine program completion (and a hang from an early HVF exit)
    stopped_on_hvf = bool(spec.stop_on_hvf and core.hvf_corrupt and core.halted)

    if reconverged:
        # every cycle from here on would replay the golden run exactly, so
        # report the record as the full-length run would have: golden
        # completion cycles/output, the (already settled) injector verdict,
        # and whatever HVF state the divergence window accumulated
        result = RunResult(
            output=golden.output,
            cycles=golden.cycles,
            instructions=golden.result.instructions,
            halted=True,
            crashed=None,
            crash_pc=0,
            hvf_corrupt=core.hvf_corrupt,
            hvf_seq=core.hvf_seq,
        )
    else:
        result = RunResult(
            output=bytes(core.output),
            cycles=core.cycle,
            instructions=core.instructions,
            halted=core.halted,
            crashed=crashed,
            crash_pc=crash_pc,
            hvf_corrupt=core.hvf_corrupt,
            hvf_seq=core.hvf_seq,
        )
    if spec.stop_on_hvf and core.hvf_corrupt:
        # HVF-only campaign: the run stopped at the first commit mismatch
        cls = Classification(Outcome.SDC, HVFClass.CORRUPTION)
    else:
        cls = classify(
            result,
            golden.output,
            controller.early_masked,
            controller.masked_reason(),
            detected_by=controller.detected_by,
        )
    return FaultRecord(
        mask=mask,
        outcome=cls.outcome,
        hvf=cls.hvf,
        cycles=result.cycles,
        masked_reason=cls.masked_reason,
        crash_reason=cls.crash_reason,
        activated=controller.activated,
        max_cycles=max_cycles,
        stopped_on_hvf=stopped_on_hvf,
        detected_by=cls.detected_by,
        restored_from=restored_from,
        early_exited=reconverged,
    )


def quarantine_record(mask: FaultMask, kind: str, error: str,
                      retries: int = 0,
                      integrity: IntegrityReport | None = None) -> FaultRecord:
    """A FaultRecord for a run the simulator could not complete."""
    return FaultRecord(
        mask=mask,
        outcome=Outcome.SIM_FAULT,
        hvf=HVFClass.BENIGN,
        cycles=0,
        retries=retries,
        error=error,
        sim_error_kind=kind,
        integrity=integrity,
    )


def _escalate_integrity(
    spec: CampaignSpec,
    mask: FaultMask,
    golden: GoldenRun,
    policy: CheckpointPolicy,
    sanitizer: SanitizerPolicy | None,
    hang_cycles: int,
    violation: IntegrityViolation,
) -> FaultRecord:
    """Differential escalation for a suspected integrity violation.

    If the failing run fast-forwarded from a golden checkpoint, the mask is
    re-simulated once *from scratch* (checkpoints disabled): a run that
    fails again — or any clean verdict that would require trusting state
    the sanitizer already caught corrupt — labels the violation
    ``deterministic``, while a clean from-scratch run labels it
    ``checkpoint-divergence`` (the snapshot/restore path is the suspect).
    Either way the mask is quarantined; an observed impossible state is
    never laundered into an AVF verdict.
    """
    restored = 0
    if policy.enabled and golden.checkpoints is not None:
        restored = golden.checkpoints.restore_cycle_for(
            min(f.cycle for f in mask.flips)
        )
    retries = 0
    if restored > 0:
        retries = 1
        try:
            _simulate_one(spec, mask, golden, NO_CHECKPOINTS,
                          sanitizer=sanitizer, hang_cycles=hang_cycles)
        except (IntegrityViolation, SimulatorFault):
            divergence = "deterministic"
        else:
            divergence = "checkpoint-divergence"
    else:
        divergence = "deterministic"
    report = replace(violation.report, divergence=divergence)
    return quarantine_record(mask, "integrity", report.describe(),
                             retries=retries, integrity=report)


def liveness_masked_record(mask: FaultMask) -> FaultRecord:
    """The analytic verdict for a provably-dead injection site.

    ``cycles=0`` / ``max_cycles=0`` record that no simulation ran — the
    doctor enforces exactly this shape for liveness-classified records.
    """
    return FaultRecord(
        mask=mask,
        outcome=Outcome.MASKED,
        hvf=HVFClass.BENIGN,
        cycles=0,
        masked_reason="dead_interval",
        max_cycles=0,
        classified_by="liveness",
    )


def _liveness_claim(spec: CampaignSpec, mask: FaultMask,
                    golden: GoldenRun) -> FaultRecord | None:
    """The analytic record for ``mask``, or None when simulation is needed."""
    if spec.liveness is None or golden.liveness is None:
        return None
    protected = frozenset()
    if spec.protection is not None and spec.protection.enabled:
        protected = frozenset(
            f.structure for f in mask.flips
            if spec.protection.scheme_for(f.structure) is not None
        )
    if mask_provably_dead(mask, golden.liveness, protected=protected):
        return liveness_masked_record(mask)
    return None


def _simulate_with_retry(
    spec: CampaignSpec,
    mask: FaultMask,
    golden: GoldenRun,
    policy: CheckpointPolicy,
    san: SanitizerPolicy,
    hang_cycles: int,
) -> FaultRecord:
    """The supervised simulate path: quarantine boundary + one retry."""
    try:
        return _simulate_one(spec, mask, golden, policy,
                             sanitizer=san, hang_cycles=hang_cycles)
    except IntegrityViolation as viol:
        return _escalate_integrity(spec, mask, golden, policy, san,
                                   hang_cycles, viol)
    except SimulatorFault as first:
        first_text = first.describe()
    try:
        record = _simulate_one(spec, mask, golden, policy,
                               sanitizer=san, hang_cycles=hang_cycles)
    except IntegrityViolation as viol:
        return _escalate_integrity(spec, mask, golden, policy, san,
                                   hang_cycles, viol)
    except SimulatorFault as second:
        return quarantine_record(
            mask, "deterministic", second.describe(), retries=1
        )
    # the retry succeeded: keep the real verdict, flag the flaky attempt
    return replace(record, retries=record.retries + 1,
                   sim_error_kind="flaky", error=first_text)


def run_one_fault(
    spec: CampaignSpec,
    mask: FaultMask,
    golden: GoldenRun | None = None,
    *,
    checkpoints: CheckpointPolicy | None = None,
    sanitizer: SanitizerPolicy | None = None,
    hang_cycles: int = DEFAULT_HANG_CYCLES,
) -> FaultRecord:
    """Run one injected fault to a classified :class:`FaultRecord`.

    With ``spec.liveness`` set, the golden run's dead-window map is
    consulted first: a mask whose every flip lands inside a dead interval
    is provably Masked and — in ``"on"`` mode — returns its analytic
    record without simulating.  ``"audit"`` mode simulates the claimed
    site anyway: agreement returns the analytic record (so audit journals
    match ``"on"`` journals record-for-record), a simulator failure keeps
    its quarantine record, and a contradicting verdict quarantines the
    mask with ``sim_error_kind="liveness"``.

    Crash-quarantine boundary: a simulated-program crash (`CrashError`) is a
    normal campaign outcome, but *any other* exception escaping the
    fault-corrupted core is a simulator failure.  Those are retried once
    with the same mask — a second failure means a deterministic simulator
    bug, a success means flaky state — and never abort the campaign.
    Sanitizer hits (:class:`IntegrityViolation`) take the differential
    escalation path instead and quarantine as ``sim_error_kind="integrity"``.

    ``checkpoints`` selects the fast-forward/early-exit strategy (default:
    :data:`repro.core.checkpoint.DEFAULT_POLICY`); the resulting record is
    bit-identical either way.  ``sanitizer`` selects the invariant-audit
    policy (default: :data:`repro.core.sanitizer.DEFAULT_SANITIZER`,
    sampled mode).
    """
    policy = checkpoints if checkpoints is not None else DEFAULT_CHECKPOINT_POLICY
    san = sanitizer if sanitizer is not None else DEFAULT_SANITIZER
    if golden is None or (spec.liveness is not None and golden.liveness is None):
        golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale,
                            checkpoints=policy,
                            liveness=spec.liveness is not None)
    analytic = _liveness_claim(spec, mask, golden)
    if analytic is not None and spec.liveness == "on":
        return analytic
    record = _simulate_with_retry(spec, mask, golden, policy, san, hang_cycles)
    if analytic is None:
        return record
    # audit mode: the pre-analysis claimed this site dead and the site was
    # simulated anyway — reconcile the two verdicts
    if record.quarantined:
        return record   # a simulator failure is not evidence either way
    if record.outcome is Outcome.MASKED:
        return analytic  # agreement: journal the exact bytes "on" would have
    return quarantine_record(
        mask, "liveness",
        f"liveness pre-analysis claimed mask {mask.mask_id} provably Masked "
        f"but simulation produced {record.outcome.value}"
        + (f" ({record.crash_reason})" if record.crash_reason else ""),
    )


#: checkpoint policy the pool initializer armed for this worker process
_WORKER_CHECKPOINTS: CheckpointPolicy | None = None
#: sanitizer policy and hang window the pool initializer armed
_WORKER_SANITIZER: SanitizerPolicy | None = None
_WORKER_HANG_CYCLES: int = DEFAULT_HANG_CYCLES


def _worker(args: tuple) -> FaultRecord:
    spec, mask = args
    return run_one_fault(spec, mask, checkpoints=_WORKER_CHECKPOINTS,
                         sanitizer=_WORKER_SANITIZER,
                         hang_cycles=_WORKER_HANG_CYCLES)


def _worker_init(spec: CampaignSpec,
                 checkpoints: CheckpointPolicy | None = None,
                 sanitizer: SanitizerPolicy | None = None,
                 hang_cycles: int = DEFAULT_HANG_CYCLES) -> None:
    """Pool initializer: prime the golden run once per worker process.

    Without this every subprocess would recompute the golden simulation on
    its first fault (the parent's cache does not follow pickled specs under
    the spawn start method).  The miss counter is reset so tests can assert
    at-most-one golden simulation per worker.  The priming run uses the
    same checkpoint policy the worker's fault runs will, so the cache entry
    already carries the checkpoint store.
    """
    global _GOLDEN_MISSES, _WORKER_CHECKPOINTS
    global _WORKER_SANITIZER, _WORKER_HANG_CYCLES
    _GOLDEN_MISSES = 0
    _WORKER_CHECKPOINTS = checkpoints
    _WORKER_SANITIZER = sanitizer
    _WORKER_HANG_CYCLES = hang_cycles
    policy = checkpoints if checkpoints is not None else DEFAULT_CHECKPOINT_POLICY
    golden_run(spec.isa, spec.workload, spec.cfg, spec.scale, checkpoints=policy,
               liveness=spec.liveness is not None)


def _probe_golden_misses(_arg=None) -> int:
    """Picklable probe: golden-cache misses inside a worker process."""
    return golden_miss_count()


# --------------------------------------------------------------------------
# campaign driver
# --------------------------------------------------------------------------


def target_geometry(spec: CampaignSpec, core) -> tuple[int, int]:
    """Injectable geometry of the spec's target, protection-extended.

    A protected structure's fault population includes its check bits
    (virtual for TMR copies / ECC syndromes, see
    :mod:`repro.core.protection`), so both the mask sample and the
    Leveugle population are drawn over the extended word.
    """
    entries, bits = get_target(spec.target).geometry(core)
    scheme = (
        spec.protection.scheme_for(spec.target)
        if spec.protection is not None else None
    )
    if scheme is not None:
        bits = scheme.extended_bits(bits)
    return entries, bits


def masks_for_spec(spec: CampaignSpec, golden: GoldenRun) -> list[FaultMask]:
    """Generate the fault sample for a campaign spec (registry dispatch).

    Every sample — matrix cells and distributed shard workers included —
    flows through here, so selecting a generator on the spec covers every
    execution path.  An unset ``fault_model`` dispatches to ``uniform``,
    whose stream is byte-identical to the pre-registry sampler.
    """
    isa = get_isa(spec.isa)
    probe_core = OoOCore.from_executable(golden.exe, isa, spec.cfg)
    entries, bits = target_geometry(spec, probe_core)
    target = get_target(spec.target)
    cache_geometry = None
    if target.kind == "cache":
        cfg = target.structure(probe_core).cfg
        cache_geometry = (cfg.line_size, cfg.num_sets, cfg.assoc)
    return cpu_sample(
        spec.fault_model,
        structure=spec.target,
        entries=entries,
        bits_per_entry=bits,
        count=spec.faults,
        window=golden.window,
        model=spec.model,
        seed=spec.seed,
        flips_per_mask=spec.flips_per_mask,
        target_kind=target.kind,
        cache_geometry=cache_geometry,
        commit_trace=golden.result.commit_trace,
    )


def _check_unique_mask_ids(masks: list[FaultMask]) -> None:
    """Journaling and resume key on mask_id; duplicates would silently
    overwrite each other's records, so reject them up front."""
    seen: set[int] = set()
    for m in masks:
        if m.mask_id in seen:
            raise ValueError(f"duplicate mask_id {m.mask_id} in fault sample")
        seen.add(m.mask_id)


def default_fault_timeout(golden_cycles: int, watchdog_factor: int,
                          restored_from: int = 0) -> float:
    """Per-fault wall-clock budget, derived from the golden cycle count.

    The in-simulation watchdog already bounds *simulated* time; this bounds
    *host* time for the case where the simulator itself spins.  Sized very
    generously (assumes a pessimistic 2k simulated cycles per host second)
    so it only ever fires on a genuinely wedged worker.

    ``restored_from`` is the earliest checkpoint cycle the campaign's fault
    runs resume from: checkpointed runs only replay the delta, so their
    wall-clock budget shrinks accordingly (never below the 60 s floor).
    """
    budget_cycles = golden_cycles * watchdog_factor + 10_000 - restored_from
    return max(60.0, budget_cycles / 2_000)


def _outcome_to_record(outcome: TaskOutcome) -> FaultRecord:
    """Map a supervised-executor verdict onto a FaultRecord."""
    _spec, mask = outcome.item
    if outcome.ok:
        record: FaultRecord = outcome.value
        if outcome.attempts > 1:
            record = replace(record, retries=record.retries + outcome.attempts - 1)
        return record
    kind = "harness_timeout" if outcome.kind == "timeout" else "harness_error"
    return quarantine_record(
        mask, kind, outcome.error or kind, retries=outcome.attempts - 1
    )


def run_campaign(
    spec: CampaignSpec,
    masks: list[FaultMask] | None = None,
    workers: int = 1,
    *,
    journal: str | Path | None = None,
    resume: str | Path | None = None,
    timeout_s: float | None = None,
    policy: SupervisorPolicy | None = None,
    checkpoints: CheckpointPolicy | None = None,
    sanitizer: SanitizerPolicy | None = None,
    hang_cycles: int = DEFAULT_HANG_CYCLES,
    telemetry=None,
    adaptive: AdaptiveSampling | None = None,
) -> CampaignResult:
    """Run a full SFI campaign; returns per-fault records + aggregates.

    * ``journal`` — append every completed :class:`FaultRecord` to this
      JSONL file as it finishes (crash-safe progress log);
    * ``resume`` — skip masks already present in this journal (typically
      the same path as ``journal``), so an interrupted campaign restarts
      where it left off;
    * ``timeout_s`` / ``policy`` — supervised-executor knobs for the
      ``workers > 1`` path; the default timeout derives from the golden
      run's cycle count via :func:`default_fault_timeout`;
    * ``checkpoints`` — checkpoint fast-forward / early-exit policy
      (default: :data:`repro.core.checkpoint.DEFAULT_POLICY`; pass
      :data:`repro.core.checkpoint.NO_CHECKPOINTS` to simulate every fault
      from cycle 0).  Records — and journal fingerprints — are identical
      either way; only wall-clock time changes.
    * ``sanitizer`` / ``hang_cycles`` — invariant-audit policy (default:
      sampled) and the deterministic hang-detector window in simulated
      cycles (0 disables).  Neither is part of the campaign spec: auditing
      never changes a valid record, so journal fingerprints stay stable
      across sanitize modes.
    * ``telemetry`` — optional :class:`repro.core.telemetry.Telemetry` hub;
      receives the typed event stream (started / dispatched / finished /
      retry / quarantine / checkpoint-restore / early-exit / pool-respawn)
      and per-fault wall clocks.  Strictly observational: records and
      journals are byte-identical with telemetry on or off.
    * ``adaptive`` — sequential stopping rule
      (:class:`~repro.core.sampling.AdaptiveSampling`): masks are
      dispatched in batches, in mask order, and the campaign stops at the
      first batch boundary where the achieved error margin over the valid
      records reaches the target.  ``spec.faults`` becomes the *budget*
      (upper bound); ``CampaignResult.stopped_early`` reports whether the
      budget was cut short.  Like checkpointing, an execution detail: the
      journaled records are a prefix of (and byte-identical to) the
      fixed-budget campaign's.
    """
    if (spec.protection is not None and spec.protection.enabled
            and spec.model is not FaultModel.TRANSIENT):
        raise ValueError(
            "protection modeling supports transient faults only; run "
            f"permanent-fault campaigns unprotected (model={spec.model.value})"
        )
    if spec.liveness not in (None, "on", "audit"):
        raise ValueError(
            f"unknown liveness mode {spec.liveness!r}; "
            "use None (off), 'on' or 'audit'"
        )
    validate_for(
        spec.fault_model,
        model=spec.model,
        flips_per_mask=spec.flips_per_mask,
        target_kind=get_target(spec.target).kind,
    )
    ckpt_policy = checkpoints if checkpoints is not None else DEFAULT_CHECKPOINT_POLICY
    golden = golden_run(spec.isa, spec.workload, spec.cfg, spec.scale,
                        checkpoints=ckpt_policy,
                        liveness=spec.liveness is not None)
    if masks is None:
        masks = masks_for_spec(spec, golden)
    if journal is not None or resume is not None:
        # mask_id is the journal/resume key; duplicates would silently
        # overwrite each other's records
        _check_unique_mask_ids(masks)

    isa = get_isa(spec.isa)
    probe_core = OoOCore.from_executable(golden.exe, isa, spec.cfg)
    entries, bits = target_geometry(spec, probe_core)
    population_bits = entries * bits

    done: dict[int, FaultRecord] = {}
    if resume is not None and Path(resume).exists():
        journaled = CampaignJournal.completed(resume, spec)
        # trust a journaled verdict only for the identical mask
        done = {
            m.mask_id: journaled[m.mask_id]
            for m in masks
            if m.mask_id in journaled and journaled[m.mask_id].mask == m
        }
    pending = [(i, m) for i, m in enumerate(masks) if m.mask_id not in done]

    if telemetry is not None:
        telemetry.campaign_started(
            planned=len(masks), resumed=len(done),
            labels={"isa": spec.isa, "workload": spec.workload,
                    "target": spec.target, "model": spec.model.value},
        )

    writer = CampaignJournal.open(journal, spec) if journal is not None else None

    generator_name = spec.fault_model.name if spec.fault_model else None

    def record_done(record: FaultRecord, wall_s: float | None = None) -> None:
        if writer is not None:
            writer.append(record)
        if telemetry is not None:
            telemetry.fault_finished(record, wall_s=wall_s,
                                     generator=generator_name)

    if workers > 1 and pending and timeout_s is None:
        restored_from = 0
        if ckpt_policy.enabled and golden.checkpoints is not None:
            restored_from = min(
                (
                    golden.checkpoints.restore_cycle_for(
                        min(f.cycle for f in m.flips)
                    )
                    for _, m in pending
                ),
                default=0,
            )
        timeout_s = default_fault_timeout(
            golden.cycles, spec.cfg.watchdog_factor,
            restored_from=restored_from,
        )
    supervisor_policy = policy or SupervisorPolicy(timeout_s=timeout_s)

    by_pos: dict[int, FaultRecord] = {}

    def dispatch(chunk: list[tuple[int, FaultMask]]) -> None:
        """Simulate one batch of (position, mask) pairs into ``by_pos``."""
        if not chunk:
            return
        if workers > 1:
            on_result = None
            if writer is not None or telemetry is not None:
                def on_result(o: TaskOutcome) -> None:
                    record_done(_outcome_to_record(o), wall_s=o.wall_s)
            on_event = None
            if telemetry is not None:
                chunk_mask_ids = [m.mask_id for _, m in chunk]

                def on_event(kind: str, info: dict) -> None:
                    if kind == "dispatch":
                        telemetry.fault_dispatched(
                            chunk_mask_ids[info["index"]],
                            attempt=info.get("attempt", 0),
                        )
                    else:
                        telemetry.supervisor_event(kind, info)
            fresh = run_supervised(
                _worker,
                [(spec, m) for _, m in chunk],
                workers=workers,
                policy=supervisor_policy,
                initializer=_worker_init,
                initargs=(spec, ckpt_policy, sanitizer, hang_cycles),
                on_result=on_result,
                on_event=on_event,
            )
            for (i, _), o in zip(chunk, fresh):
                by_pos[i] = _outcome_to_record(o)
        else:
            for i, m in chunk:
                if telemetry is not None:
                    telemetry.fault_dispatched(m.mask_id)
                started = time.perf_counter()
                record = run_one_fault(spec, m, golden, checkpoints=ckpt_policy,
                                       sanitizer=sanitizer,
                                       hang_cycles=hang_cycles)
                record_done(record, wall_s=time.perf_counter() - started)
                by_pos[i] = record

    def record_at(i: int) -> FaultRecord | None:
        r = by_pos.get(i)
        if r is None:
            r = done.get(masks[i].mask_id)
        return r

    def valid_in_prefix(boundary: int) -> int:
        n = 0
        for i in range(boundary):
            r = record_at(i)
            if r is not None and r.outcome is not Outcome.SIM_FAULT:
                n += 1
        return n

    processed = len(masks)
    stopped_early = False
    try:
        if adaptive is None:
            dispatch(pending)
        else:
            dispatched = 0
            for boundary in adaptive.boundaries(len(masks)):
                dispatch([(i, m) for i, m in pending
                          if dispatched <= i < boundary])
                dispatched = boundary
                if adaptive.satisfied(valid_in_prefix(boundary),
                                      population_bits):
                    processed = boundary
                    stopped_early = boundary < len(masks)
                    break
            else:
                processed = dispatched
            if stopped_early and telemetry is not None:
                telemetry.adaptive_stop(
                    done=processed, budget=len(masks),
                    margin=error_margin_for(
                        valid_in_prefix(processed), population_bits,
                        adaptive.confidence,
                    ),
                )
    finally:
        if writer is not None:
            writer.close()
        if telemetry is not None:
            telemetry.campaign_finished()

    records = [record_at(i) for i in range(processed)]
    assert all(r is not None for r in records), "campaign lost a record"
    return CampaignResult(
        spec=spec,
        records=records,
        golden=golden,
        population_bits=population_bits,
        resumed=sum(1 for i in range(processed)
                    if i not in by_pos and masks[i].mask_id in done),
        stopped_early=stopped_early,
    )
