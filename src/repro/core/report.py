"""Result aggregation and rendering: campaign tables, CSV/JSON export."""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Sequence

from repro.core.outcome import Outcome


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], floatfmt: str = "{:.3f}"
) -> str:
    """Plain-text table with aligned columns."""
    rendered_rows = [
        [floatfmt.format(c) if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 40, unit: str = "%"
) -> str:
    """ASCII bar chart (one row per label) — the text twin of a paper figure."""
    if not labels:
        return "(no data)"
    peak = max(max(values), 1e-9)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {value * 100 if unit == '%' else value:7.2f}{unit}")
    return "\n".join(lines)


def robustness_summary(records: Sequence) -> dict:
    """Campaign-health counters: how degraded was this campaign?

    Quarantined / retried / timed-out runs are reported *next to* AVF/HVF
    rather than silently folded into them, so a campaign that limped through
    simulator failures is visible as such.

    ``watchdog_pressure`` is how close the longest run came to exhausting
    its *effective* cycle budget: a run restored from a golden checkpoint
    only simulates ``max_cycles - restored_from`` cycles, so its pressure is
    ``(cycles - restored_from) / (max_cycles - restored_from)`` — using the
    original ``max_cycles`` would understate how close fast-forwarded runs
    sail to the watchdog.  1.0 means a run hit the watchdog exactly.

    ``hangs`` counts deterministic hang-detector crashes
    (``Crash(reason="hang")``) separately from wall-clock/watchdog
    ``timeouts``; ``integrity_quarantined`` / ``checkpoint_divergence``
    split out sanitizer escalations and their differential verdicts.
    """
    quarantined = sum(1 for r in records if r.outcome is Outcome.SIM_FAULT)
    deterministic = sum(
        1 for r in records if getattr(r, "sim_error_kind", None) == "deterministic"
    )
    flaky = sum(1 for r in records if getattr(r, "sim_error_kind", None) == "flaky")
    integrity = sum(
        1 for r in records if getattr(r, "sim_error_kind", None) == "integrity"
    )
    divergence = sum(
        1 for r in records
        if getattr(getattr(r, "integrity", None), "divergence", None)
        == "checkpoint-divergence"
    )
    retried = sum(1 for r in records if getattr(r, "retries", 0))
    timeouts = sum(1 for r in records if r.crash_reason == "timeout")
    hangs = sum(1 for r in records if r.crash_reason == "hang")
    hvf_stops = sum(1 for r in records if getattr(r, "stopped_on_hvf", False))
    pressure = 0.0
    for r in records:
        budget = getattr(r, "max_cycles", 0)
        restored = getattr(r, "restored_from", 0)
        effective = budget - restored
        if effective > 0 and r.outcome is not Outcome.SIM_FAULT:
            pressure = max(pressure, (r.cycles - restored) / effective)
    n_records = len(records)
    return {
        "n_records": n_records,
        "n_valid": n_records - quarantined,
        "masked": sum(1 for r in records if r.outcome is Outcome.MASKED),
        "sdc": sum(1 for r in records if r.outcome is Outcome.SDC),
        "crash": sum(1 for r in records if r.outcome is Outcome.CRASH),
        "quarantined": quarantined,
        "deterministic_sim_faults": deterministic,
        "flaky_sim_faults": flaky,
        "integrity_quarantined": integrity,
        "checkpoint_divergence": divergence,
        "retried": retried,
        "timeouts": timeouts,
        "hangs": hangs,
        "hvf_stops": hvf_stops,
        "watchdog_pressure": pressure,
    }


def render_robustness(records: Sequence) -> str:
    """One-line campaign-health note; empty string for a clean campaign.

    A fully-quarantined record set is reported as an explicit degenerate
    campaign (``n_valid=0``, AVF undefined) rather than letting a
    downstream metric raise ``ValueError`` — one dead structure must not
    abort the report for a whole sweep.
    """
    health = robustness_summary(records)
    if health["n_records"] and health["n_valid"] == 0:
        return (
            f"degenerate campaign: all {health['n_records']} records "
            f"quarantined (n_valid=0, avf=None — AVF/SDC/Crash/HVF "
            f"undefined): {health['deterministic_sim_faults']} deterministic, "
            f"{health['flaky_sim_faults']} flaky, "
            f"{health['integrity_quarantined']} integrity"
        )
    if not (health["quarantined"] or health["retried"] or health["timeouts"]):
        return ""
    return (
        f"degraded campaign: {health['quarantined']} quarantined "
        f"({health['deterministic_sim_faults']} deterministic, "
        f"{health['flaky_sim_faults']} flaky, "
        f"{health['integrity_quarantined']} integrity of which "
        f"{health['checkpoint_divergence']} checkpoint-divergence), "
        f"{health['retried']} retried, {health['timeouts']} watchdog timeouts "
        f"/ {health['hangs']} deterministic hangs "
        f"(pressure {health['watchdog_pressure']:.2f}) — quarantined runs are "
        "excluded from AVF/HVF"
    )


def summaries_to_csv(summaries: list[dict]) -> str:
    """Serialize campaign summaries to CSV text."""
    if not summaries:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(summaries[0]), lineterminator="\n")
    writer.writeheader()
    writer.writerows(summaries)
    return buf.getvalue()


def summaries_to_json(summaries: list[dict]) -> str:
    return json.dumps(summaries, indent=2, default=str)


def save_report(path: str, summaries: list[dict], fmt: str = "csv") -> None:
    """Write campaign summaries to disk (csv or json)."""
    text = summaries_to_csv(summaries) if fmt == "csv" else summaries_to_json(summaries)
    with open(path, "w") as handle:
        handle.write(text)
