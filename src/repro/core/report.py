"""Result aggregation and rendering: campaign tables, CSV/JSON export."""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], floatfmt: str = "{:.3f}"
) -> str:
    """Plain-text table with aligned columns."""
    rendered_rows = [
        [floatfmt.format(c) if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 40, unit: str = "%"
) -> str:
    """ASCII bar chart (one row per label) — the text twin of a paper figure."""
    if not labels:
        return "(no data)"
    peak = max(max(values), 1e-9)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {value * 100 if unit == '%' else value:7.2f}{unit}")
    return "\n".join(lines)


def summaries_to_csv(summaries: list[dict]) -> str:
    """Serialize campaign summaries to CSV text."""
    if not summaries:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(summaries[0]), lineterminator="\n")
    writer.writeheader()
    writer.writerows(summaries)
    return buf.getvalue()


def summaries_to_json(summaries: list[dict]) -> str:
    return json.dumps(summaries, indent=2, default=str)


def save_report(path: str, summaries: list[dict], fmt: str = "csv") -> None:
    """Write campaign summaries to disk (csv or json)."""
    text = summaries_to_csv(summaries) if fmt == "csv" else summaries_to_json(summaries)
    with open(path, "w") as handle:
        handle.write(text)
