"""Result aggregation and rendering: campaign tables, CSV/JSON export."""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Sequence

from repro.core.outcome import Outcome


def _fmt_cell(value, floatfmt: str = "{:.3f}") -> str:
    """One table cell: floats formatted, ``None`` (an undefined metric from
    a degenerate campaign) rendered as ``n/a`` instead of the word None."""
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return floatfmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], floatfmt: str = "{:.3f}"
) -> str:
    """Plain-text table with aligned columns (``None`` cells render n/a)."""
    rendered_rows = [
        [_fmt_cell(c, floatfmt) for c in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 40, unit: str = "%"
) -> str:
    """ASCII bar chart (one row per label) — the text twin of a paper figure."""
    if not labels:
        return "(no data)"
    peak = max(max(values), 1e-9)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {value * 100 if unit == '%' else value:7.2f}{unit}")
    return "\n".join(lines)


def robustness_summary(records: Sequence) -> dict:
    """Campaign-health counters: how degraded was this campaign?

    Quarantined / retried / timed-out runs are reported *next to* AVF/HVF
    rather than silently folded into them, so a campaign that limped through
    simulator failures is visible as such.

    ``watchdog_pressure`` is how close the longest run came to exhausting
    its *effective* cycle budget: a run restored from a golden checkpoint
    only simulates ``max_cycles - restored_from`` cycles, so its pressure is
    ``(cycles - restored_from) / (max_cycles - restored_from)`` — using the
    original ``max_cycles`` would understate how close fast-forwarded runs
    sail to the watchdog.  1.0 means a run hit the watchdog exactly.

    ``hangs`` counts deterministic hang-detector crashes
    (``Crash(reason="hang")``) separately from wall-clock/watchdog
    ``timeouts``; ``integrity_quarantined`` / ``checkpoint_divergence``
    split out sanitizer escalations and their differential verdicts.
    """
    quarantined = sum(1 for r in records if r.outcome is Outcome.SIM_FAULT)
    deterministic = sum(
        1 for r in records if getattr(r, "sim_error_kind", None) == "deterministic"
    )
    flaky = sum(1 for r in records if getattr(r, "sim_error_kind", None) == "flaky")
    integrity = sum(
        1 for r in records if getattr(r, "sim_error_kind", None) == "integrity"
    )
    divergence = sum(
        1 for r in records
        if getattr(getattr(r, "integrity", None), "divergence", None)
        == "checkpoint-divergence"
    )
    retried = sum(1 for r in records if getattr(r, "retries", 0))
    timeouts = sum(1 for r in records if r.crash_reason == "timeout")
    hangs = sum(1 for r in records if r.crash_reason == "hang")
    hvf_stops = sum(1 for r in records if getattr(r, "stopped_on_hvf", False))
    due = sum(1 for r in records if r.outcome is Outcome.DUE)
    corrected = sum(
        1 for r in records if getattr(r, "masked_reason", None) == "corrected"
    )
    pressure = 0.0
    for r in records:
        budget = getattr(r, "max_cycles", 0)
        restored = getattr(r, "restored_from", 0)
        effective = budget - restored
        if effective > 0 and r.outcome is not Outcome.SIM_FAULT:
            pressure = max(pressure, (r.cycles - restored) / effective)
    n_records = len(records)
    return {
        "n_records": n_records,
        "n_valid": n_records - quarantined,
        "masked": sum(1 for r in records if r.outcome is Outcome.MASKED),
        "sdc": sum(1 for r in records if r.outcome is Outcome.SDC),
        "crash": sum(1 for r in records if r.outcome is Outcome.CRASH),
        "due": due,
        "corrected": corrected,
        "quarantined": quarantined,
        "deterministic_sim_faults": deterministic,
        "flaky_sim_faults": flaky,
        "integrity_quarantined": integrity,
        "checkpoint_divergence": divergence,
        "retried": retried,
        "timeouts": timeouts,
        "hangs": hangs,
        "hvf_stops": hvf_stops,
        "watchdog_pressure": pressure,
    }


def render_robustness(records: Sequence) -> str:
    """One-line campaign-health note; empty string for a clean campaign.

    A fully-quarantined record set is reported as an explicit degenerate
    campaign (``n_valid=0``, AVF undefined) rather than letting a
    downstream metric raise ``ValueError`` — one dead structure must not
    abort the report for a whole sweep.
    """
    health = robustness_summary(records)
    if health["n_records"] and health["n_valid"] == 0:
        return (
            f"degenerate campaign: all {health['n_records']} records "
            f"quarantined (n_valid=0, avf=None — AVF/SDC/Crash/HVF "
            f"undefined): {health['deterministic_sim_faults']} deterministic, "
            f"{health['flaky_sim_faults']} flaky, "
            f"{health['integrity_quarantined']} integrity"
        )
    if not (health["quarantined"] or health["retried"] or health["timeouts"]):
        return ""
    return (
        f"degraded campaign: {health['quarantined']} quarantined "
        f"({health['deterministic_sim_faults']} deterministic, "
        f"{health['flaky_sim_faults']} flaky, "
        f"{health['integrity_quarantined']} integrity of which "
        f"{health['checkpoint_divergence']} checkpoint-divergence), "
        f"{health['retried']} retried, {health['timeouts']} watchdog timeouts "
        f"/ {health['hangs']} deterministic hangs "
        f"(pressure {health['watchdog_pressure']:.2f}) — quarantined runs are "
        "excluded from AVF/HVF"
    )


#: heat-grid shade ramp, light to dark, indexed by metric value over [0, 1]
_SHADES = " .:-=+*#%@"


def _shade(value: float | None) -> str:
    if value is None:
        return "?"
    idx = int(min(max(value, 0.0), 1.0) * (len(_SHADES) - 1) + 0.5)
    return _SHADES[idx]


def render_matrix(
    cells: Sequence[dict],
    value_key: str = "avf",
    clock_hz: float = 2e9,
) -> str:
    """Cross-cell report for an experiment matrix.

    ``cells`` are per-cell summary dicts carrying ``row`` / ``col`` labels
    plus the campaign summary keys (``avf`` / ``sdc_avf`` / ``crash_avf`` /
    ``error_margin`` / ``faults`` / ``budget`` / ``stopped_early`` /
    ``golden_cycles``).  Output is two blocks:

    * a **heat-grid** of ``value_key`` over rows × columns, each cell a
      value plus a shade character from :data:`_SHADES` (``?`` and ``n/a``
      for an undefined metric, e.g. an all-quarantined degenerate cell);
    * a **detail table** with one line per cell — AVF splits, achieved
      error margin, faults spent vs. budget (`*` marks an adaptive early
      stop) and the cell's OPF at ``clock_hz`` — followed by a
      cycle-weighted AVF per row computed with
      :func:`repro.core.metrics.weighted_avf_detailed` (degenerate cells
      skipped and reported, never crashing the sweep).
    """
    from repro.core.metrics import opf, weighted_avf_detailed

    if not cells:
        return "(no cells)"
    rows = list(dict.fromkeys(c["row"] for c in cells))
    cols = list(dict.fromkeys(c["col"] for c in cells))
    by_pos = {(c["row"], c["col"]): c for c in cells}

    def grid_cell(r, c):
        cell = by_pos.get((r, c))
        if cell is None:
            return "-"
        v = cell.get(value_key)
        return f"{_fmt_cell(v)} {_shade(v)}"

    grid = render_table(
        [value_key] + cols,
        [[r] + [grid_cell(r, c) for c in cols] for r in rows],
    )

    detail_rows = []
    for r in rows:
        row_cells = [by_pos[(r, c)] for c in cols if (r, c) in by_pos]
        for cell in row_cells:
            spent, budget = cell.get("faults", 0), cell.get("budget")
            spent_str = f"{spent}/{budget}" if budget else str(spent)
            if cell.get("stopped_early"):
                spent_str += "*"
            cycles = cell.get("golden_cycles")
            cell_opf = (
                opf(cell.get("avf"), cycles, clock_hz)
                if cycles else None
            )
            detail_rows.append(
                (r, cell["col"], cell.get("avf"), cell.get("sdc_avf"),
                 cell.get("crash_avf"), cell.get("error_margin"),
                 spent_str,
                 None if cell_opf is None else f"{cell_opf:.3e}")
            )
        detail = weighted_avf_detailed(
            [c.get("avf") for c in row_cells],
            [c.get("golden_cycles", 0) or 0 for c in row_cells],
        ) if row_cells else None
        if detail is not None:
            note = f"wAVF ({detail.n_used} cells"
            note += f", {detail.n_skipped} skipped)" if detail.n_skipped else ")"
            detail_rows.append((r, note, detail.value, None, None, None, "", None))
    table = render_table(
        ["row", "col", "AVF", "SDC", "Crash", "margin", "faults", "OPF"],
        detail_rows,
    )
    legend = (
        f"shade ramp [0,1]: '{_SHADES}'  ?=undefined  "
        "*=adaptive early stop"
    )
    return f"{grid}\n\n{table}\n{legend}"


def render_protection(cells: Sequence[dict], clock_hz: float = 2e9) -> str:
    """Protection coverage/cost table for one or more campaign summaries.

    ``cells`` are campaign summary dicts (see
    :meth:`repro.core.campaign.CampaignResult.summary`); protected cells
    carry ``protection`` / ``coverage`` / ``due_avf`` / ``corrected`` /
    ``residual_sdc_avf``, unprotected cells render with the scheme column
    ``none`` so a protected-vs-unprotected pair reads side by side.  The
    cost columns come from the scheme model: check-bit area overhead (over
    ``data_bits``, defaulting to a 64-bit word when the caller does not
    supply it) and added read-path latency.  OPF is computed from each
    cell's *total* AVF at ``clock_hz`` — the paper's Section V-G
    performance/reliability trade-off, which protection shifts by turning
    SDCs into corrected or DUE runs.
    """
    from repro.core.metrics import opf
    from repro.core.protection import get_scheme

    if not cells:
        return "(no cells)"
    rows = []
    for cell in cells:
        scheme = get_scheme(cell.get("protection") or "none")
        data_bits = cell.get("data_bits") or 64
        cycles = cell.get("golden_cycles")
        cell_opf = opf(cell.get("avf"), cycles, clock_hz) if cycles else None
        rows.append((
            cell.get("target") or cell.get("component") or "?",
            scheme.name,
            cell.get("avf"),
            cell.get("coverage"),
            cell.get("due_avf"),
            cell.get("residual_sdc_avf", cell.get("sdc_avf")),
            cell.get("corrected", 0),
            f"{scheme.area_overhead(data_bits) * 100:.1f}%",
            f"+{scheme.latency_cycles}cyc" if scheme.latency_cycles else "-",
            None if cell_opf is None else f"{cell_opf:.3e}",
        ))
    table = render_table(
        ["target", "scheme", "AVF", "coverage", "DUE",
         "residual SDC", "corrected", "area", "latency", "OPF"],
        rows,
    )
    legend = ("coverage = (corrected+DUE)/(corrected+DUE+SDC+Crash); "
              "residual SDC = multi-bit escapes despite protection")
    return f"{table}\n{legend}"


def render_liveness(cells: Sequence[dict]) -> str:
    """Liveness pre-analysis skip-rate table, one row per structure.

    ``cells`` are campaign summary dicts (see
    :meth:`repro.core.campaign.CampaignResult.summary`); liveness-enabled
    cells carry ``liveness`` / ``liveness_skips`` / ``liveness_skip_rate``
    (and ``liveness_disagreements`` in audit mode).  The skip rate is the
    share of the sample classified analytically — faults proven Masked
    from the golden run's dead-window map without simulating a single
    cycle — so it is also the fraction of simulation work the pre-analysis
    removed ("on") or would remove ("audit").
    """
    if not cells:
        return "(no cells)"
    rows = []
    for cell in cells:
        faults = cell.get("faults", 0)
        skips = cell.get("liveness_skips", 0)
        rows.append((
            cell.get("target") or cell.get("component") or "?",
            cell.get("liveness") or "off",
            f"{skips}/{faults}" if faults else str(skips),
            cell.get("liveness_skip_rate"),
            (cell.get("liveness_disagreements", 0)
             if cell.get("liveness") == "audit" else None),
        ))
    table = render_table(
        ["target", "mode", "analytic", "skip rate", "disagreements"],
        rows,
    )
    legend = ("skip rate = faults proven Masked from golden dead windows "
              "(simulation skipped when mode=on); disagreements quarantine "
              "in audit mode")
    return f"{table}\n{legend}"


def summaries_to_csv(summaries: list[dict]) -> str:
    """Serialize campaign summaries to CSV text."""
    if not summaries:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(summaries[0]), lineterminator="\n")
    writer.writeheader()
    writer.writerows(summaries)
    return buf.getvalue()


def summaries_to_json(summaries: list[dict]) -> str:
    return json.dumps(summaries, indent=2, default=str)


def save_report(path: str, summaries: list[dict], fmt: str = "csv") -> None:
    """Write campaign summaries to disk (csv or json)."""
    text = summaries_to_csv(summaries) if fmt == "csv" else summaries_to_json(summaries)
    with open(path, "w") as handle:
        handle.write(text)
