"""Append-only JSONL run journal for fault-injection campaigns.

A 10k-fault campaign that dies at fault 9,800 — power loss, OOM kill,
Ctrl-C — must not cost 9,800 completed simulations.  The journal records
every :class:`~repro.core.campaign.FaultRecord` as a single JSON line the
moment it completes, and ``run_campaign(..., resume=path)`` replays it to
skip masks that already ran.

File layout (one JSON object per line):

* line 1 — header: ``{"kind": "header", "version": 1, "fingerprint": ...,
  "spec": {...}}``.  The fingerprint is a SHA-256 over the canonicalized
  spec, so a journal is only ever resumed against the identical campaign
  (same ISA, workload, target, config, seed, fault model, sample size).
* following lines — records: ``{"kind": "record", "mask": {...},
  "outcome": ..., ...}``.

Robustness properties:

* appends are flushed per record, so at most the line being written when
  the process died is lost;
* a truncated or garbled trailing line (torn write) is tolerated on load —
  reading stops there and the mask simply re-runs;
* resume validates each journaled mask against the regenerated sample; a
  mismatched row (journal from a different sample) is ignored rather than
  trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any

from repro.core.faults import FaultFlip, FaultMask, FaultModel
from repro.core.outcome import HVFClass, Outcome
from repro.core.sanitizer import IntegrityReport

JOURNAL_VERSION = 1

#: injectable LSQ bits per entry (64 address + 128 data — pair stores
#: carry two registers).  Journaled as provenance for lq/sq campaigns:
#: journals from the 128-bit era (when the upper data half was silently
#: uninjectable) fingerprint differently and are refused on resume
#: instead of silently mixing geometries in one file.
LSQ_GEOMETRY_BITS = 192


class JournalError(RuntimeError):
    """A journal file exists but cannot be used (bad header, wrong spec)."""


# --------------------------------------------------------------------------
# serialization
# --------------------------------------------------------------------------


def mask_to_dict(mask: FaultMask) -> dict:
    return {
        "model": mask.model.value,
        "mask_id": mask.mask_id,
        "flips": [
            {"structure": f.structure, "entry": f.entry, "bit": f.bit,
             "cycle": f.cycle}
            for f in mask.flips
        ],
    }


def mask_from_dict(data: dict) -> FaultMask:
    return FaultMask(
        model=FaultModel(data["model"]),
        flips=tuple(
            FaultFlip(f["structure"], f["entry"], f["bit"], f["cycle"])
            for f in data["flips"]
        ),
        mask_id=data["mask_id"],
    )


def record_to_dict(record) -> dict:
    """Serialize a FaultRecord (duck-typed so accel records work too)."""
    data = {
        "kind": "record",
        "mask": mask_to_dict(record.mask),
        "outcome": record.outcome.value,
        "hvf": record.hvf.value,
        "cycles": record.cycles,
        "masked_reason": record.masked_reason,
        "crash_reason": record.crash_reason,
        "activated": record.activated,
        "max_cycles": record.max_cycles,
        "stopped_on_hvf": record.stopped_on_hvf,
        "retries": record.retries,
        "error": record.error,
        "sim_error_kind": record.sim_error_kind,
        # restored_from is deliberately NOT serialized: a checkpointed run's
        # journal must stay byte-identical to a from-scratch run's
        "integrity": (record.integrity.to_dict()
                      if getattr(record, "integrity", None) is not None
                      else None),
    }
    # only DUE records carry protection provenance; the key is omitted —
    # not nulled — otherwise, so unprotected journal lines keep their
    # exact pre-protection bytes
    if getattr(record, "detected_by", None) is not None:
        data["detected_by"] = record.detected_by
    # same omit-when-unset rule for liveness provenance: only analytically
    # classified records carry the key, so liveness-off journals keep their
    # exact pre-liveness bytes
    if getattr(record, "classified_by", None) is not None:
        data["classified_by"] = record.classified_by
    return data


def record_from_dict(data: dict):
    from repro.core.campaign import FaultRecord  # avoid import cycle

    return FaultRecord(
        mask=mask_from_dict(data["mask"]),
        outcome=Outcome(data["outcome"]),
        hvf=HVFClass(data["hvf"]),
        cycles=data["cycles"],
        masked_reason=data.get("masked_reason"),
        crash_reason=data.get("crash_reason"),
        activated=data.get("activated", False),
        max_cycles=data.get("max_cycles", 0),
        stopped_on_hvf=data.get("stopped_on_hvf", False),
        retries=data.get("retries", 0),
        error=data.get("error"),
        sim_error_kind=data.get("sim_error_kind"),
        integrity=(IntegrityReport.from_dict(data["integrity"])
                   if data.get("integrity") else None),
        detected_by=data.get("detected_by"),
        classified_by=data.get("classified_by"),
    )


def spec_to_dict(spec) -> dict:
    """Canonical spec dict used by fingerprints and journal headers.

    The ``protection`` key is dropped when unset: a spec that never asked
    for protection must fingerprint — and serialize — byte-identically to
    one written before the protection field existed, so ``--protect``-less
    journals stay binary-compatible across versions.
    """
    raw = dataclasses.asdict(spec)
    if raw.get("protection", "absent") is None:
        del raw["protection"]
    # liveness follows the same rule: unset specs must stay byte-identical
    # to journals written before the field existed
    if raw.get("liveness", "absent") is None:
        del raw["liveness"]
    # and fault_model: the uniform default serializes as absence, so
    # default-generator journals stay binary-compatible across versions
    if raw.get("fault_model", "absent") is None:
        del raw["fault_model"]
    # optional-structure sizes serialize as absence when disabled, so
    # configurations predating the structures fingerprint identically
    cfg = raw.get("cfg")
    if isinstance(cfg, dict):
        for key in ("mshr_entries", "store_buffer_entries",
                    "prefetcher_entries"):
            if cfg.get(key) == 0:
                del cfg[key]
    # lq/sq campaigns carry their injectable geometry as provenance — a
    # deliberate fingerprint break against journals written when the data
    # field was 128 bits wide and pair-store bits were uninjectable
    if raw.get("target") in ("lq", "sq"):
        raw["lsq_geometry"] = LSQ_GEOMETRY_BITS
    return raw


def spec_fingerprint(spec) -> str:
    """Stable identity hash of a (frozen dataclass) campaign spec."""
    canon = json.dumps(spec_to_dict(spec), sort_keys=True, default=_canon_default)
    return hashlib.sha256(canon.encode()).hexdigest()


def _spec_mismatch_detail(spec, header: dict) -> str:
    """Explain *why* a header fingerprint differs when we can tell.

    The lq/sq geometry widening is the one mismatch users hit on perfectly
    reasonable resumes of old journals, so it gets a dedicated message.
    """
    want = spec_to_dict(spec).get("lsq_geometry")
    have = header.get("spec", {}).get("lsq_geometry")
    if want is not None and have != want:
        return (
            f" (the journal predates the {want}-bit LSQ entry geometry — "
            "pair-store data bits were not injectable when it was written; "
            "re-run the campaign instead of resuming)"
        )
    return ""


def _canon_default(obj: Any) -> Any:
    if isinstance(obj, (FaultModel, Outcome, HVFClass)):
        return obj.value
    if dataclasses.is_dataclass(obj):
        return dataclasses.asdict(obj)
    return str(obj)


# --------------------------------------------------------------------------
# the journal
# --------------------------------------------------------------------------


class CampaignJournal:
    """Append-only per-fault record log with crash-safe resume.

    Writing::

        with CampaignJournal.open(path, spec) as journal:
            journal.append(record)

    Resuming::

        done = CampaignJournal.completed(path, spec)   # mask_id -> record
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    # ------------------------------------------------------------ writing

    @classmethod
    def open(cls, path: str | Path, spec) -> "CampaignJournal":
        """Open for appending; create + write the header if new/empty,
        validate the header against ``spec`` otherwise."""
        journal = cls(path)
        fingerprint = spec_fingerprint(spec)
        existing = journal._read_header()
        if existing is None:
            journal.path.parent.mkdir(parents=True, exist_ok=True)
            journal._fh = open(journal.path, "a")
            journal._write_line({
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
                "spec": json.loads(
                    json.dumps(spec_to_dict(spec), default=_canon_default)
                ),
            })
        else:
            if existing.get("fingerprint") != fingerprint:
                detail = _spec_mismatch_detail(spec, existing)
                raise JournalError(
                    f"journal {journal.path} was written by a different "
                    f"campaign spec; refusing to append{detail}"
                )
            journal._fh = open(journal.path, "a")
        return journal

    def append(self, record) -> None:
        if self._fh is None:
            raise JournalError("journal is not open for writing")
        self._write_line(record_to_dict(record))

    def _write_line(self, data: dict) -> None:
        self._fh.write(json.dumps(data) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ reading

    def _read_header(self) -> dict | None:
        if not self.path.exists() or self.path.stat().st_size == 0:
            return None
        with open(self.path) as fh:
            first = fh.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            raise JournalError(f"{self.path}: unreadable journal header")
        if header.get("kind") != "header":
            raise JournalError(f"{self.path}: missing journal header")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: journal version {header.get('version')} "
                f"!= {JOURNAL_VERSION}"
            )
        return header

    @classmethod
    def load(cls, path: str | Path, spec=None) -> list:
        """Read all complete records; tolerates a torn trailing line.

        With ``spec`` given, raises :class:`JournalError` when the journal
        belongs to a different campaign.
        """
        journal = cls(path)
        header = journal._read_header()
        if header is None:
            return []
        if spec is not None and header.get("fingerprint") != spec_fingerprint(spec):
            raise JournalError(
                f"journal {path} was written by a different campaign spec"
                f"{_spec_mismatch_detail(spec, header)}"
            )
        records = []
        with open(journal.path) as fh:
            fh.readline()  # header, already validated
            for line in fh:
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from an interrupted write: stop here
                if data.get("kind") != "record":
                    continue
                records.append(record_from_dict(data))
        return records

    @classmethod
    def completed(cls, path: str | Path, spec=None) -> dict:
        """``mask_id -> record`` for every journaled fault (last write wins)."""
        return {r.mask.mask_id: r for r in cls.load(path, spec)}


def repair_torn_tail(path: str | Path) -> int:
    """Truncate the torn tail a SIGKILL mid-append leaves; returns bytes cut.

    :meth:`CampaignJournal.load` already *reads past* a torn trailing line
    by stopping there, but re-opening the journal for append would
    concatenate the next record onto the fragment and corrupt the file.
    Byte-identical resume (the matrix runner's contract) therefore repairs
    first: everything at and after the first unterminated or unparseable
    line is cut, leaving exactly the clean record prefix.
    """
    p = Path(path)
    if not p.exists():
        return 0
    data = p.read_bytes()
    good = idx = 0
    while idx < len(data):
        nl = data.find(b"\n", idx)
        if nl < 0:
            break                       # unterminated tail
        try:
            json.loads(data[idx:nl])
        except (json.JSONDecodeError, UnicodeDecodeError):
            break                       # garbled line: cut from here
        good = idx = nl + 1
    removed = len(data) - good
    if removed:
        with open(p, "rb+") as fh:
            fh.truncate(good)
    return removed


def raw_journal_lines(
    path: str | Path,
) -> tuple[bytes | None, list[tuple[int, bytes]]]:
    """Byte-level journal read: ``(header_line, [(mask_id, line), ...])``.

    The distributed merge (:mod:`repro.core.shard`) reconstructs canonical
    cell journals *byte-identically* to a serial run's, so it must never
    re-serialize records — round-tripping through ``record_from_dict`` would
    be correct today and silently fragile forever.  This reader returns the
    exact line bytes (newline included) keyed by mask_id, stopping at the
    first torn or unparseable line exactly like :meth:`CampaignJournal.load`;
    non-record kinds after the header are skipped.
    """
    p = Path(path)
    if not p.exists() or p.stat().st_size == 0:
        return None, []
    header_line: bytes | None = None
    records: list[tuple[int, bytes]] = []
    data = p.read_bytes()
    idx = 0
    while idx < len(data):
        nl = data.find(b"\n", idx)
        if nl < 0:
            break                       # unterminated tail
        line = data[idx:nl + 1]
        try:
            doc = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            break                       # torn/garbled line: stop here
        idx = nl + 1
        kind = doc.get("kind") if isinstance(doc, dict) else None
        if header_line is None:
            if kind != "header":
                break                   # not a journal; nothing trustworthy
            header_line = line
            continue
        if kind != "record":
            continue
        try:
            mask_id = int(doc["mask"]["mask_id"])
        except (KeyError, TypeError, ValueError):
            break                       # malformed record: treat as torn
        records.append((mask_id, line))
    return header_line, records


class OrderedJournalWriter:
    """Order-preserving adapter over :class:`CampaignJournal` for parallel
    producers.

    A serial campaign journals records in mask order, and resume relies on
    that: the journal is always a clean prefix of the sample.  A parallel
    (or interleaved, in the experiment-matrix runner) campaign completes
    records in *completion* order — appending those directly would leave
    holes on a mid-run kill and make the journal bytes depend on worker
    scheduling.  This writer buffers out-of-order completions and appends
    only the contiguous prefix, in position order, so at every instant the
    file is byte-identical to what a serial run would have written after
    the same set of positions — a SIGKILL leaves a resumable prefix, never
    a hole.

    ``start`` seeds the expected next position for resumed campaigns whose
    journal already holds positions ``[0, start)``.
    """

    def __init__(self, journal: CampaignJournal, start: int = 0):
        self.journal = journal
        self._buffer: dict[int, Any] = {}
        self._next = start

    def add(self, position: int, record) -> None:
        if position < self._next or position in self._buffer:
            raise JournalError(
                f"duplicate journal position {position} (next={self._next})"
            )
        self._buffer[position] = record
        while self._next in self._buffer:
            self.journal.append(self._buffer.pop(self._next))
            self._next += 1

    @property
    def written(self) -> int:
        """Positions flushed to disk (the contiguous prefix length)."""
        return self._next

    @property
    def buffered(self) -> int:
        """Completed positions still waiting behind a gap."""
        return len(self._buffer)

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "OrderedJournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def contiguous_prefix(masks, done: dict) -> int:
    """Length of the leading run of ``masks`` whose mask_ids are in ``done``.

    The matrix runner journals through :class:`OrderedJournalWriter`, so a
    valid cell journal always covers exactly the first *k* masks; anything
    journaled beyond a gap (a corrupt or hand-edited journal) is ignored by
    resume rather than trusted.
    """
    k = 0
    for m in masks:
        if m.mask_id not in done:
            break
        k += 1
    return k


class JournalFollower:
    """Incremental reader for a journal that may still be growing.

    ``repro tail`` follows an in-flight campaign's journal by polling:
    each :meth:`poll` returns the records appended since the previous
    call.  Only *complete* lines (newline-terminated) are consumed — a
    torn tail mid-append is simply left for the next poll, when the
    writer's flush has completed it.  Complete-but-unparseable lines are
    skipped and counted in :attr:`skipped` (a crashed writer's garbage
    must not wedge the follower).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.header: dict | None = None
        self.skipped = 0
        self._offset = 0

    def poll(self) -> list:
        """Records appended since the last poll (empty if none / no file)."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path) as fh:
            fh.seek(self._offset)
            while True:
                line = fh.readline()
                if not line or not line.endswith("\n"):
                    break               # incomplete tail: retry next poll
                self._offset += len(line.encode())
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped += 1
                    continue
                kind = data.get("kind")
                if kind == "header":
                    self.header = data
                    continue
                if kind != "record":
                    self.skipped += 1
                    continue
                try:
                    records.append(record_from_dict(data))
                except Exception:
                    self.skipped += 1
        return records
