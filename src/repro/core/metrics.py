"""Vulnerability metrics: AVF, weighted AVF, SDC/Crash splits, HVF, OPF.

* **AVF** — probability that a fault in a structure corrupts the program's
  visible behaviour: ``(SDC + Crash) / runs``.
* **weighted AVF** (Section V-A) — per-benchmark AVFs combined with each
  benchmark's execution time as the weight.
* **HVF** — probability that a fault becomes architecturally visible at the
  commit stage (``Corruption / runs``); always ≥ AVF.
* **OPF** (Section V-G) — *operations per failure*: ``OPS / AVF`` where OPS
  is how many times per second the platform completes the workload.  Larger
  OPF = more correct executions between failures = a better
  performance/reliability trade-off.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.outcome import HVFClass, Outcome
from repro.core.sampling import error_margin_for


def _count(records: Iterable, outcome: Outcome) -> tuple[int, int]:
    """Count ``outcome`` hits over the *valid* records.

    Quarantined runs (``Outcome.SIM_FAULT``) are simulator failures, not
    verdicts about the hardware, and are excluded from every vulnerability
    factor's numerator and denominator.
    """
    n = hits = 0
    for r in records:
        if r.outcome is Outcome.SIM_FAULT:
            continue
        n += 1
        if r.outcome is outcome:
            hits += 1
    return hits, n


def avf(records: Sequence) -> float:
    """Architectural Vulnerability Factor: share of non-masked runs."""
    masked, n = _count(records, Outcome.MASKED)
    if n == 0:
        raise ValueError("no fault records")
    return (n - masked) / n


def sdc_avf(records: Sequence) -> float:
    """The SDC share of the AVF."""
    sdc, n = _count(records, Outcome.SDC)
    if n == 0:
        raise ValueError("no fault records")
    return sdc / n


def crash_avf(records: Sequence) -> float:
    """The Crash share of the AVF."""
    crash, n = _count(records, Outcome.CRASH)
    if n == 0:
        raise ValueError("no fault records")
    return crash / n


def hvf(records: Sequence) -> float:
    """Hardware Vulnerability Factor: share of commit-visible corruptions."""
    n = corrupt = 0
    for r in records:
        if r.outcome is Outcome.SIM_FAULT:
            continue
        n += 1
        if r.hvf is HVFClass.CORRUPTION:
            corrupt += 1
    if n == 0:
        raise ValueError("no fault records")
    return corrupt / n


def quarantined(records: Sequence) -> int:
    """How many runs were quarantined as simulator failures."""
    return sum(1 for r in records if r.outcome is Outcome.SIM_FAULT)


def integrity_quarantined(records: Sequence) -> int:
    """How many runs the sanitizer quarantined for impossible state.

    A subset of :func:`quarantined`: these runs tripped an invariant check
    the active fault mask cannot explain (``sim_error_kind="integrity"``).
    """
    return sum(
        1 for r in records
        if getattr(r, "sim_error_kind", None) == "integrity"
    )


def hangs(records: Sequence) -> int:
    """How many runs the deterministic hang detector crashed.

    These count toward :func:`crash_avf` (a hang is a catastrophic program
    outcome, like the paper's excessively-long BFS runs) — this counter just
    splits them from wall-clock watchdog ``timeout`` crashes, which are
    host-speed-dependent where hangs reproduce at an exact simulated cycle.
    """
    return sum(1 for r in records if r.crash_reason == "hang")


def weighted_avf(avfs: Sequence[float], times: Sequence[float]) -> float:
    """Execution-time-weighted AVF across benchmarks (Section V-A)::

        wAVF(c) = sum_k AVF_k(c) * t_k / sum_k t_k
    """
    if len(avfs) != len(times) or not avfs:
        raise ValueError("avfs and times must be equal-length and non-empty")
    total = sum(times)
    if total <= 0:
        raise ValueError("total execution time must be positive")
    return sum(a * t for a, t in zip(avfs, times)) / total


def opf(
    avf_value: float,
    cycles_per_run: float,
    clock_hz: float = 2e9,
    operations_per_run: float = 1.0,
) -> float:
    """Operations-per-Failure: ``OPF = OPS / AVF`` (Section V-G).

    ``OPS = operations_per_run / (cycles_per_run / clock_hz)``.  An AVF of 0
    gives ``inf`` (never fails).
    """
    if cycles_per_run <= 0 or clock_hz <= 0:
        raise ValueError("cycles and clock must be positive")
    ops = operations_per_run / (cycles_per_run / clock_hz)
    if avf_value <= 0:
        return float("inf")
    return ops / avf_value


def error_margin(records: Sequence, population: int, confidence: float = 0.95) -> float:
    """Achieved statistical error margin of a campaign's sample size."""
    return error_margin_for(len(records), population, confidence)
