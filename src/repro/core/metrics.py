"""Vulnerability metrics: AVF, weighted AVF, SDC/Crash splits, HVF, OPF.

* **AVF** — probability that a fault in a structure corrupts the program's
  visible behaviour: ``(SDC + Crash) / runs``.
* **weighted AVF** (Section V-A) — per-benchmark AVFs combined with each
  benchmark's execution time as the weight.
* **HVF** — probability that a fault becomes architecturally visible at the
  commit stage (``Corruption / runs``); always ≥ AVF.
* **OPF** (Section V-G) — *operations per failure*: ``OPS / AVF`` where OPS
  is how many times per second the platform completes the workload.  Larger
  OPF = more correct executions between failures = a better
  performance/reliability trade-off.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.outcome import HVFClass, Outcome
from repro.core.sampling import error_margin_for


def _count(records: Iterable, outcome: Outcome) -> tuple[int, int]:
    """Count ``outcome`` hits over the *valid* records.

    Quarantined runs (``Outcome.SIM_FAULT``) are simulator failures, not
    verdicts about the hardware, and are excluded from every vulnerability
    factor's numerator and denominator.
    """
    n = hits = 0
    for r in records:
        if r.outcome is Outcome.SIM_FAULT:
            continue
        n += 1
        if r.outcome is outcome:
            hits += 1
    return hits, n


def n_valid(records: Sequence) -> int:
    """How many records carry a hardware verdict (non-quarantined)."""
    return sum(1 for r in records if r.outcome is not Outcome.SIM_FAULT)


def _degenerate(records: Sequence) -> None:
    """Zero valid records: decide between a caller bug and a degenerate
    campaign.

    An *empty* record set is a programming error and raises, as it always
    has.  A non-empty set where every record was quarantined as
    ``SIM_FAULT`` is a real (if fully degraded) campaign outcome — one
    such structure must not abort report rendering for a whole sweep — so
    the metric degrades to ``None`` (undefined) instead of a traceback.
    """
    if not len(records):
        raise ValueError("no fault records")
    return None


def avf(records: Sequence) -> float | None:
    """Architectural Vulnerability Factor: share of non-masked runs.

    ``None`` when every record was quarantined (no valid sample to judge).
    """
    masked, n = _count(records, Outcome.MASKED)
    if n == 0:
        return _degenerate(records)
    return (n - masked) / n


def sdc_avf(records: Sequence) -> float | None:
    """The SDC share of the AVF (``None`` when no record is valid)."""
    sdc, n = _count(records, Outcome.SDC)
    if n == 0:
        return _degenerate(records)
    return sdc / n


def crash_avf(records: Sequence) -> float | None:
    """The Crash share of the AVF (``None`` when no record is valid)."""
    crash, n = _count(records, Outcome.CRASH)
    if n == 0:
        return _degenerate(records)
    return crash / n


def due_avf(records: Sequence) -> float | None:
    """The detected-uncorrectable (machine-check) share of the AVF.

    Only protected campaigns can produce DUE records; an unprotected
    sample simply reports 0.0.  ``None`` when no record is valid.
    """
    due, n = _count(records, Outcome.DUE)
    if n == 0:
        return _degenerate(records)
    return due / n


def corrected(records: Sequence) -> int:
    """Runs whose every flip a protection scheme repaired in place."""
    return sum(
        1 for r in records if getattr(r, "masked_reason", None) == "corrected"
    )


def coverage(records: Sequence) -> float | None:
    """Protection coverage: ``(corrected + DUE) / (corrected + DUE + SDC +
    CRASH)``.

    Of the faults that either mattered (SDC/Crash) or were intercepted
    (corrected/DUE), the share the scheme caught.  ``None`` when the
    sample never exercised the question — every record masked for
    protection-unrelated reasons (or was quarantined).
    """
    if not len(records):
        raise ValueError("no fault records")
    due, _ = _count(records, Outcome.DUE)
    sdc, _ = _count(records, Outcome.SDC)
    crash, _ = _count(records, Outcome.CRASH)
    caught = corrected(records) + due
    exercised = caught + sdc + crash
    if exercised == 0:
        return None
    return caught / exercised


def residual_sdc_avf(records: Sequence) -> float | None:
    """SDC remaining despite protection (multi-bit escapes): the SDC AVF
    of a protected campaign, named for what it measures there."""
    return sdc_avf(records)


def hvf(records: Sequence) -> float | None:
    """Hardware Vulnerability Factor: share of commit-visible corruptions.

    ``None`` when every record was quarantined (no valid sample to judge).
    """
    n = corrupt = 0
    for r in records:
        if r.outcome is Outcome.SIM_FAULT:
            continue
        n += 1
        if r.hvf is HVFClass.CORRUPTION:
            corrupt += 1
    if n == 0:
        return _degenerate(records)
    return corrupt / n


def quarantined(records: Sequence) -> int:
    """How many runs were quarantined as simulator failures."""
    return sum(1 for r in records if r.outcome is Outcome.SIM_FAULT)


def integrity_quarantined(records: Sequence) -> int:
    """How many runs the sanitizer quarantined for impossible state.

    A subset of :func:`quarantined`: these runs tripped an invariant check
    the active fault mask cannot explain (``sim_error_kind="integrity"``).
    """
    return sum(
        1 for r in records
        if getattr(r, "sim_error_kind", None) == "integrity"
    )


def hangs(records: Sequence) -> int:
    """How many runs the deterministic hang detector crashed.

    These count toward :func:`crash_avf` (a hang is a catastrophic program
    outcome, like the paper's excessively-long BFS runs) — this counter just
    splits them from wall-clock watchdog ``timeout`` crashes, which are
    host-speed-dependent where hangs reproduce at an exact simulated cycle.
    """
    return sum(1 for r in records if r.crash_reason == "hang")


@dataclass(frozen=True)
class WeightedAVF:
    """Result of a weighted-AVF combination over possibly-degenerate cells."""

    value: float | None      # None when every cell was skipped
    n_used: int              # cells that contributed
    n_skipped: int           # cells dropped for an undefined (None) AVF


def weighted_avf_detailed(
    avfs: Sequence[float | None], times: Sequence[float]
) -> WeightedAVF:
    """:func:`weighted_avf` with explicit skip accounting.

    A cell whose AVF is ``None`` (a fully-quarantined degenerate campaign)
    carries no information, so it is skipped and the weights renormalized
    over the remaining cells — one dead cell must not crash (or bias) a
    whole sweep's weighted AVF.  ``n_skipped`` reports how many were
    dropped; ``value`` is ``None`` only when *every* cell was skipped.
    """
    if len(avfs) != len(times) or not avfs:
        raise ValueError("avfs and times must be equal-length and non-empty")
    pairs = [(a, t) for a, t in zip(avfs, times) if a is not None]
    n_skipped = len(avfs) - len(pairs)
    if not pairs:
        return WeightedAVF(value=None, n_used=0, n_skipped=n_skipped)
    total = sum(t for _, t in pairs)
    if total <= 0:
        raise ValueError("total execution time must be positive")
    value = sum(a * t for a, t in pairs) / total
    return WeightedAVF(value=value, n_used=len(pairs), n_skipped=n_skipped)


def weighted_avf(
    avfs: Sequence[float | None], times: Sequence[float]
) -> float | None:
    """Execution-time-weighted AVF across benchmarks (Section V-A)::

        wAVF(c) = sum_k AVF_k(c) * t_k / sum_k t_k

    Cells with an undefined AVF (``None``, from an all-quarantined
    campaign) are skipped with a :class:`RuntimeWarning` and the weights
    renormalized over the valid cells; ``None`` comes back only when no
    cell is valid.  Use :func:`weighted_avf_detailed` for the skip count.
    """
    detail = weighted_avf_detailed(avfs, times)
    if detail.n_skipped:
        warnings.warn(
            f"weighted_avf: skipped {detail.n_skipped}/{len(avfs)} cells "
            f"with undefined (None) AVF; weights renormalized over "
            f"{detail.n_used} valid cells",
            RuntimeWarning,
            stacklevel=2,
        )
    return detail.value


def opf(
    avf_value: float | None,
    cycles_per_run: float,
    clock_hz: float = 2e9,
    operations_per_run: float = 1.0,
) -> float | None:
    """Operations-per-Failure: ``OPF = OPS / AVF`` (Section V-G).

    ``OPS = operations_per_run / (cycles_per_run / clock_hz)``.  An AVF of 0
    gives ``inf`` (never fails); an *undefined* AVF (``None``, from a
    degenerate all-quarantined campaign) gives an undefined OPF (``None``)
    instead of a ``TypeError``.
    """
    if cycles_per_run <= 0 or clock_hz <= 0:
        raise ValueError("cycles and clock must be positive")
    if avf_value is None:
        return None
    ops = operations_per_run / (cycles_per_run / clock_hz)
    if avf_value <= 0:
        return float("inf")
    return ops / avf_value


def error_margin(records: Sequence, population: int,
                 confidence: float = 0.95) -> float | None:
    """Achieved statistical error margin of a campaign's sample size.

    Only valid (non-quarantined) records contribute statistical power; a
    set with zero of them has an *undefined* margin — reported as ``None``
    instead of letting :func:`~repro.core.sampling.error_margin_for` raise
    on ``n=0`` (same degenerate-campaign family as :func:`avf`).
    """
    n = n_valid(records)
    if n == 0:
        return _degenerate(records)
    return error_margin_for(n, population, confidence)
