"""Per-structure protection schemes: parity, SECDED ECC, and TMR.

The paper measures *unprotected* AVF; this layer asks the follow-up
question — how much of that vulnerability a real protection mechanism buys
back — by modeling the three classic schemes at the code-word level:

* **parity** — one check bit per word; detects any odd number of flipped
  bits (raising a machine check → ``Outcome.DUE``), silently passes even
  error patterns;
* **secded** — single-error-correct / double-error-detect Hamming ECC
  (``r+1`` check bits where ``2^r >= data + r + 1``); one flipped bit is
  corrected in place, two raise a machine check, three or more escape
  undetected;
* **tmr** — triple modular redundancy (two extra copies, per-bit majority
  vote); one corrupted copy per bit position is outvoted, two corrupt the
  voted value silently.

Protection is exercised *by the injected flips themselves*: the fault
sample is drawn over the **extended** geometry (data bits + check bits per
code word), and the injector presents the set of still-armed flips in a
word to :meth:`ProtectionScheme.decode` whenever that word passes through
a decoder (read, read-modify-write, dirty eviction, end-of-run scrub).
Check-bit flips are *virtual* — bookkeeping-only, never materialized in
the simulated storage, since the simulator computes only with data bits —
but they participate in every decode verdict exactly as stored check bits
would.

A detected-but-uncorrectable verdict raises :class:`MachineCheckError`, a
:class:`~repro.cpu.core.CrashError` subclass the campaign driver turns
into the first-class ``Outcome.DUE`` (detected uncorrectable error).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CrashError

#: crash reason carried by a detected-uncorrectable error
MACHINE_CHECK = "machine_check"

# decode verdicts
CORRECT = "correct"
DETECT = "detect"
ESCAPE = "escape"


class MachineCheckError(CrashError):
    """A protection scheme detected an uncorrectable error.

    Ends the run like a crash, but classifies as ``Outcome.DUE`` — the
    machine *knows* it failed, unlike an SDC.  ``detected_by`` carries the
    ``scheme:structure`` provenance into the fault record.
    """

    def __init__(self, detected_by: str):
        super().__init__(MACHINE_CHECK, 0, 0)
        self.detected_by = detected_by


@dataclass(frozen=True)
class Decode:
    """One decoder pass over a code word's error pattern.

    ``fix_bits`` are *physical* (data) bit positions the decoder flips in
    storage to make it match the decoder's output — un-flipping corrected
    bits, or materializing a TMR majority-vote loss in the stored copy.
    """

    verdict: str                      # correct | detect | escape
    fix_bits: tuple[int, ...] = ()


class ProtectionScheme:
    """Base scheme: no check bits, every error pattern escapes."""

    name = "none"
    #: extra pipeline cycles a decode adds on the read path (cost model)
    latency_cycles = 0
    #: this scheme can repair (not just detect) some error patterns
    corrects = False

    def check_bits(self, data_bits: int) -> int:
        return 0

    def extended_bits(self, data_bits: int) -> int:
        """Injectable bits per code word: data plus check bits."""
        return data_bits + self.check_bits(data_bits)

    def area_overhead(self, data_bits: int) -> float:
        """Storage overhead as a fraction of the protected data bits."""
        return self.check_bits(data_bits) / data_bits

    def decode(self, bits: set[int], data_bits: int) -> Decode:
        """Verdict for a word whose flipped-bit set is ``bits``.

        ``bits`` may contain virtual check-bit positions
        (``>= data_bits``); ``fix_bits`` never does.
        """
        return Decode(ESCAPE)


class Parity(ProtectionScheme):
    """One check bit per word: detect-only, odd error patterns."""

    name = "parity"

    def check_bits(self, data_bits: int) -> int:
        return 1

    def decode(self, bits: set[int], data_bits: int) -> Decode:
        return Decode(DETECT if len(bits) % 2 else ESCAPE)


class Secded(ProtectionScheme):
    """Hamming single-error-correct / double-error-detect ECC."""

    name = "secded"
    latency_cycles = 1
    corrects = True

    def check_bits(self, data_bits: int) -> int:
        # smallest r with 2^r >= data + r + 1, plus the overall parity bit
        r = 1
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r + 1

    def decode(self, bits: set[int], data_bits: int) -> Decode:
        if len(bits) == 1:
            (bit,) = bits
            return Decode(CORRECT, (bit,) if bit < data_bits else ())
        if len(bits) == 2:
            return Decode(DETECT)
        # 3+ bits alias into a valid-looking syndrome: residual escape
        return Decode(ESCAPE)


class TMR(ProtectionScheme):
    """Triple modular redundancy: two extra copies, per-bit majority vote.

    The stored data array models copy 0; the virtual bit ranges
    ``[data, 2*data)`` and ``[2*data, 3*data)`` are copies 1 and 2.  A bit
    position with one flipped copy is outvoted (corrected); two flipped
    copies corrupt the voted value — silently, since a 2-vs-1 vote looks
    exactly like a healthy word with one bad copy.
    """

    name = "tmr"
    latency_cycles = 1
    corrects = True

    def check_bits(self, data_bits: int) -> int:
        return 2 * data_bits

    def decode(self, bits: set[int], data_bits: int) -> Decode:
        flipped_copies: dict[int, set[int]] = {}
        for b in bits:
            flipped_copies.setdefault(b % data_bits, set()).add(b // data_bits)
        fix = []
        clean = True
        for pos, copies in flipped_copies.items():
            voted = len(copies) >= 2      # the voted bit comes out flipped
            stored = 0 in copies          # the stored copy is flipped
            if voted:
                clean = False
            if voted != stored:
                fix.append(pos)
        return Decode(CORRECT if clean else ESCAPE, tuple(sorted(fix)))


SCHEMES: dict[str, ProtectionScheme] = {
    s.name: s for s in (ProtectionScheme(), Parity(), Secded(), TMR())
}


def get_scheme(name: str) -> ProtectionScheme:
    try:
        return SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown protection scheme {name!r}; "
            f"available: {', '.join(SCHEMES)}"
        ) from None


@dataclass(frozen=True)
class ProtectionConfig:
    """Per-structure scheme assignment (picklable, hashable, canonical).

    ``schemes`` maps structure names to scheme names, stored as a sorted
    tuple of pairs so equal configs fingerprint identically.  Structure
    names match injection-target names exactly; for accelerator flips
    (``accel:<design>:<component>``) the trailing component also matches,
    so ``--protect MATRIX1=secded`` protects gemm's MATRIX1 memory.
    """

    schemes: tuple[tuple[str, str], ...] = ()

    def __post_init__(self):
        seen: set[str] = set()
        for structure, scheme in self.schemes:
            get_scheme(scheme)
            if structure in seen:
                raise ValueError(
                    f"structure {structure!r} assigned more than one scheme"
                )
            seen.add(structure)
        object.__setattr__(self, "schemes", tuple(sorted(self.schemes)))

    @classmethod
    def parse(cls, text: str) -> "ProtectionConfig":
        """Parse the CLI form: ``l1d=secded,regfile_int=tmr``."""
        pairs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad protection entry {part!r} (want structure=scheme)"
                )
            structure, scheme = part.split("=", 1)
            pairs.append((structure.strip(), scheme.strip()))
        if not pairs:
            raise ValueError("empty protection assignment")
        return cls(schemes=tuple(pairs))

    @classmethod
    def from_dict(cls, mapping: dict) -> "ProtectionConfig":
        """Build from a ``{structure: scheme}`` table (matrix TOML form)."""
        return cls(schemes=tuple(
            (str(k), str(v)) for k, v in sorted(mapping.items())
        ))

    @property
    def enabled(self) -> bool:
        return any(scheme != "none" for _, scheme in self.schemes)

    def scheme_name_for(self, structure: str) -> str | None:
        for name, scheme in self.schemes:
            if name == structure:
                return scheme
        if ":" in structure:
            tail = structure.rsplit(":", 1)[1]
            for name, scheme in self.schemes:
                if name == tail:
                    return scheme
        return None

    def scheme_for(self, structure: str) -> ProtectionScheme | None:
        """The active scheme for a structure (None = unprotected)."""
        name = self.scheme_name_for(structure)
        if name is None or name == "none":
            return None
        return SCHEMES[name]


def normalized(config: ProtectionConfig | None) -> ProtectionConfig | None:
    """Collapse a disabled config to None.

    A spec whose protection is ``None`` fingerprints — and journals —
    byte-identically to a pre-protection spec; an all-``none`` config must
    not silently fork the fingerprint for the same physical campaign.
    """
    if config is not None and not config.enabled:
        return None
    return config
