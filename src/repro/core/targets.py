"""Injection-target registry: names → microarchitectural structures.

Every supported structure exposes the same small interface so the injector
and mask generator are structure-agnostic:

* ``geometry(core) -> (entries, bits_per_entry)``
* ``flip(core, entry, bit)`` / ``force(core, entry, bit, value) -> changed``
* ``occupied(core, entry) -> bool`` — False means the paper's
  "fault in an invalid or unused entry" fast path (immediately Masked)
* ``structure(core)`` — the underlying object (for probe arming)

The paper showcases five CPU structures (integer PRF, L1I, L1D, LQ, SQ);
the registry also carries the FP register file and the L2 so campaigns can
target them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

#: kinds sharing the entry-indexed queue interface (``entries`` list,
#: ``BITS_PER_ENTRY``, ``entry_valid``/``flip_bit``/``force_bit``)
QUEUE_KINDS = frozenset({"lsq", "mshr", "store_buffer", "prefetcher"})


@dataclass(frozen=True)
class Target:
    """One injectable structure."""

    name: str
    kind: str        # 'regfile' | 'cache' | one of QUEUE_KINDS
    accessor: object               # core -> structure object
    description: str = ""

    def structure(self, core):
        obj = self.accessor(core)
        if obj is None:
            raise ValueError(
                f"target {self.name!r} is disabled on this core — set "
                f"CPUConfig.{self.name}_entries > 0 (campaign specs "
                "auto-enable it when the structure is the injection target)"
            )
        return obj

    def geometry(self, core) -> tuple[int, int]:
        obj = self.structure(core)
        if self.kind == "regfile":
            # read the width off the structure: a hard-coded 64 here would
            # silently drift from check-bit-extended geometries
            return obj.size, obj.width
        if self.kind == "cache":
            return obj.num_lines, obj.bits_per_line
        if self.kind in QUEUE_KINDS:
            return len(obj.entries), obj.BITS_PER_ENTRY
        raise ValueError(self.kind)  # pragma: no cover

    def flip(self, core, entry: int, bit: int) -> None:
        self.structure(core).flip_bit(entry, bit)

    def force(self, core, entry: int, bit: int, value: int) -> bool:
        return self.structure(core).force_bit(entry, bit, value)

    def occupied(self, core, entry: int) -> bool:
        obj = self.structure(core)
        if self.kind == "regfile":
            return entry not in obj.free
        if self.kind == "cache":
            return obj.line_valid(entry)
        if self.kind in QUEUE_KINDS:
            return obj.entry_valid(entry)
        raise ValueError(self.kind)  # pragma: no cover


TARGETS: dict[str, Target] = {
    t.name: t
    for t in [
        Target("regfile_int", "regfile", lambda c: c.prf_int,
               "integer physical register file"),
        Target("regfile_fp", "regfile", lambda c: c.prf_fp,
               "floating-point physical register file"),
        Target("l1i", "cache", lambda c: c.l1i, "L1 instruction cache data array"),
        Target("l1d", "cache", lambda c: c.l1d, "L1 data cache data array"),
        Target("l2", "cache", lambda c: c.l2, "unified L2 cache data array"),
        Target("lq", "lsq", lambda c: c.lq, "load queue (address+data fields)"),
        Target("sq", "lsq", lambda c: c.sq, "store queue (address+data fields)"),
        Target("mshr", "mshr", lambda c: c.mshr,
               "L1D miss-status holding registers (addr+valid+target bits)"),
        Target("store_buffer", "store_buffer", lambda c: c.store_buffer,
               "post-commit store buffer (address+data fields)"),
        Target("prefetcher", "prefetcher", lambda c: c.prefetcher,
               "stride-prefetcher table (last-addr+stride+confidence)"),
    ]
}

#: the five structures the paper's CPU case studies showcase
PAPER_CPU_TARGETS = ["regfile_int", "l1i", "l1d", "lq", "sq"]


def get_target(name: str) -> Target:
    try:
        return TARGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown injection target {name!r}; available: {', '.join(TARGETS)}"
        ) from None
