"""Injection-target registry: names → microarchitectural structures.

Every supported structure exposes the same small interface so the injector
and mask generator are structure-agnostic:

* ``geometry(core) -> (entries, bits_per_entry)``
* ``flip(core, entry, bit)`` / ``force(core, entry, bit, value) -> changed``
* ``occupied(core, entry) -> bool`` — False means the paper's
  "fault in an invalid or unused entry" fast path (immediately Masked)
* ``structure(core)`` — the underlying object (for probe arming)

The paper showcases five CPU structures (integer PRF, L1I, L1D, LQ, SQ);
the registry also carries the FP register file and the L2 so campaigns can
target them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Target:
    """One injectable structure."""

    name: str
    kind: str                      # 'regfile' | 'cache' | 'lsq'
    accessor: object               # core -> structure object
    description: str = ""

    def structure(self, core):
        return self.accessor(core)

    def geometry(self, core) -> tuple[int, int]:
        obj = self.structure(core)
        if self.kind == "regfile":
            # read the width off the structure: a hard-coded 64 here would
            # silently drift from check-bit-extended geometries
            return obj.size, obj.width
        if self.kind == "cache":
            return obj.num_lines, obj.bits_per_line
        if self.kind == "lsq":
            return len(obj.entries), obj.BITS_PER_ENTRY
        raise ValueError(self.kind)  # pragma: no cover

    def flip(self, core, entry: int, bit: int) -> None:
        self.structure(core).flip_bit(entry, bit)

    def force(self, core, entry: int, bit: int, value: int) -> bool:
        return self.structure(core).force_bit(entry, bit, value)

    def occupied(self, core, entry: int) -> bool:
        obj = self.structure(core)
        if self.kind == "regfile":
            return entry not in obj.free
        if self.kind == "cache":
            return obj.line_valid(entry)
        if self.kind == "lsq":
            return obj.entry_valid(entry)
        raise ValueError(self.kind)  # pragma: no cover


TARGETS: dict[str, Target] = {
    t.name: t
    for t in [
        Target("regfile_int", "regfile", lambda c: c.prf_int,
               "integer physical register file"),
        Target("regfile_fp", "regfile", lambda c: c.prf_fp,
               "floating-point physical register file"),
        Target("l1i", "cache", lambda c: c.l1i, "L1 instruction cache data array"),
        Target("l1d", "cache", lambda c: c.l1d, "L1 data cache data array"),
        Target("l2", "cache", lambda c: c.l2, "unified L2 cache data array"),
        Target("lq", "lsq", lambda c: c.lq, "load queue (address+data fields)"),
        Target("sq", "lsq", lambda c: c.sq, "store queue (address+data fields)"),
    ]
}

#: the five structures the paper's CPU case studies showcase
PAPER_CPU_TARGETS = ["regfile_int", "l1i", "l1d", "lq", "sq"]


def get_target(name: str) -> Target:
    try:
        return TARGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown injection target {name!r}; available: {', '.join(TARGETS)}"
        ) from None
