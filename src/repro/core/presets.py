"""Hardware configuration presets (the paper's Table II and a scaled twin).

AVF is, to first order, a question of *occupancy fractions*: what share of a
structure's bits hold live data when the fault strikes.  The paper runs full
MiBench inputs against 32KB L1s; this repo runs scaled inputs, so the
default ``sim`` preset scales the caches by the same factor to keep the
occupancy fractions (and with them the AVF ranges) comparable.  The exact
Table II configuration remains available as ``paper_config()`` for users
with patience.
"""

from __future__ import annotations

from repro.cpu.config import CacheConfig, CPUConfig


def paper_config() -> CPUConfig:
    """The paper's Table II: 64-bit 8-issue OoO with 32KB L1s and a 1MB L2."""
    return CPUConfig(
        name="paper",
        width=8,
        rob_entries=128,
        iq_entries=64,
        lq_entries=32,
        sq_entries=32,
        int_phys_regs=128,
        fp_phys_regs=128,
        l1i=CacheConfig(32 * 1024, line_size=64, assoc=4),          # 128 sets
        l1d=CacheConfig(32 * 1024, line_size=64, assoc=4),
        l2=CacheConfig(1024 * 1024, line_size=64, assoc=8, hit_latency=12),  # 2048 sets
    )


def sim_config() -> CPUConfig:
    """Scaled default: same core, caches sized to the scaled workloads.

    Workload code images are 150-1200 bytes and data footprints 0.5-4KB —
    roughly 1/32 of MiBench's, so the caches shrink by the same factor:
    512B L1I, 1KB L1D, 16KB L2 (line size and associativity unchanged).
    Pipeline-structure sizes stay at Table II values; their occupancy is set
    by ILP, not footprint.
    """
    return CPUConfig(
        name="sim",
        width=8,
        rob_entries=128,
        iq_entries=64,
        lq_entries=32,
        sq_entries=32,
        int_phys_regs=128,
        fp_phys_regs=128,
        l1i=CacheConfig(512, line_size=64, assoc=4),     # 2 sets, 8 lines
        l1d=CacheConfig(1024, line_size=64, assoc=4),    # 4 sets, 16 lines
        l2=CacheConfig(16 * 1024, line_size=64, assoc=8, hit_latency=12),
    )


PRESETS = {"paper": paper_config, "sim": sim_config}


def get_preset(name: str) -> CPUConfig:
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {', '.join(PRESETS)}"
        ) from None
