"""The framework capability matrix — the paper's Table I.

Used by tests (every claimed capability must map to a live code path) and
by the Table I bench, which renders the row this framework contributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Capabilities:
    """One row of Table I."""

    name: str
    sim_uarch: bool = False
    sim_gem5: bool = False
    sim_full_system: bool = False
    fi_cpu: bool = False
    fi_dsa: bool = False
    fi_soc: bool = False
    isa_x86: bool = False
    isa_arm: bool = False
    isa_riscv: bool = False
    transient: bool = False
    permanent: bool = False
    single_bit: bool = False
    multi_bit: bool = False
    metric_avf: bool = False
    metric_hvf: bool = False


THIS_WORK = Capabilities(
    name="gem5-MARVEL (this repro)",
    sim_uarch=True,
    sim_gem5=True,          # gem5-analog cycle-level OoO substrate
    sim_full_system=True,   # SoC: CPU + DSA + MMRs + DMA + interrupts
    fi_cpu=True,
    fi_dsa=True,
    fi_soc=True,
    isa_x86=True,
    isa_arm=True,
    isa_riscv=True,
    transient=True,
    permanent=True,
    single_bit=True,
    multi_bit=True,
    metric_avf=True,
    metric_hvf=True,
)

#: prior-work rows as the paper reports them (for the Table I rendering)
PRIOR_WORK = [
    Capabilities("FIMSIM", sim_uarch=True, sim_gem5=True, fi_cpu=True,
                 transient=True, permanent=True, single_bit=True,
                 multi_bit=True, metric_avf=True),
    Capabilities("GeFIN", sim_uarch=True, sim_gem5=True, sim_full_system=True,
                 fi_cpu=True, isa_x86=True, isa_arm=True, transient=True,
                 permanent=True, single_bit=True, multi_bit=True,
                 metric_avf=True, metric_hvf=True),
    Capabilities("MaFIN", sim_uarch=True, sim_full_system=True, fi_cpu=True,
                 isa_x86=True, transient=True, permanent=True,
                 single_bit=True, multi_bit=True, metric_avf=True),
    Capabilities("GemFI", sim_gem5=True, fi_cpu=True, isa_x86=True,
                 transient=True, permanent=True, single_bit=True),
    Capabilities("Thales/Fidelity", transient=True, single_bit=True,
                 multi_bit=True),
    Capabilities("LLFI/LLTFI", fi_cpu=True, isa_x86=True, isa_arm=True,
                 transient=True, single_bit=True),
    Capabilities("gem5-Approxilyzer", sim_gem5=True, sim_full_system=True,
                 fi_cpu=True, isa_x86=True, transient=True, single_bit=True),
]

_COLUMNS = [
    ("uArch", "sim_uarch"),
    ("gem5", "sim_gem5"),
    ("FS", "sim_full_system"),
    ("CPU", "fi_cpu"),
    ("DSA", "fi_dsa"),
    ("SoC", "fi_soc"),
    ("x86", "isa_x86"),
    ("Arm", "isa_arm"),
    ("RISC-V", "isa_riscv"),
    ("Trans", "transient"),
    ("Perm", "permanent"),
    ("1bit", "single_bit"),
    ("Nbit", "multi_bit"),
    ("AVF", "metric_avf"),
    ("HVF", "metric_hvf"),
]


def render_table1() -> str:
    """ASCII rendering of Table I (prior work + this framework)."""
    rows = PRIOR_WORK + [THIS_WORK]
    name_w = max(len(r.name) for r in rows) + 1
    header = "Framework".ljust(name_w) + " ".join(c.ljust(6) for c, _ in _COLUMNS)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(
            ("yes" if getattr(row, attr) else ".").ljust(6) for _, attr in _COLUMNS
        )
        lines.append(row.name.ljust(name_w) + cells)
    return "\n".join(lines)
