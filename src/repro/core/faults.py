"""Fault models and fault masks (the paper's Table III).

* **Transient**: a storage element's bit is flipped at one clock cycle; the
  bit position and the cycle can be chosen arbitrarily (randomly or
  directed).
* **Permanent**: a storage element's bit is stuck at 0 or 1 for the whole
  run; the framework re-enforces the stuck value after every write to the
  faulty cell.
* **Multi-bit**: a mask may carry several flips (spatial multi-bit in one
  or several structures, or temporal combinations at different cycles).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FaultModel(enum.Enum):
    """Supported fault models (Table III)."""

    TRANSIENT = "transient"
    STUCK_AT_0 = "stuck0"
    STUCK_AT_1 = "stuck1"

    @property
    def permanent(self) -> bool:
        return self is not FaultModel.TRANSIENT

    @property
    def stuck_value(self) -> int:
        if self is FaultModel.STUCK_AT_0:
            return 0
        if self is FaultModel.STUCK_AT_1:
            return 1
        raise ValueError("transient faults have no stuck value")


@dataclass(frozen=True)
class FaultFlip:
    """One faulty bit: ``structure`` is a target-registry name
    ('regfile_int', 'l1d', 'sq', ...), ``entry`` an index into the
    structure's entry space, ``bit`` a bit offset within the entry."""

    structure: str
    entry: int
    bit: int
    #: per-flip injection cycle (transient); permanent flips apply at t=0
    cycle: int = 0


@dataclass(frozen=True)
class FaultMask:
    """A complete fault specification for one injection run.

    Mirrors the paper's *fault mask files* (Section IV-C step 1): which
    component, which entry/bit, which cycle, and which fault model.
    """

    model: FaultModel
    flips: tuple[FaultFlip, ...]
    mask_id: int = 0

    def __post_init__(self) -> None:
        if not self.flips:
            raise ValueError("a fault mask needs at least one flip")

    @property
    def multi_bit(self) -> bool:
        return len(self.flips) > 1

    @property
    def structures(self) -> set[str]:
        return {f.structure for f in self.flips}

    @property
    def first_cycle(self) -> int:
        return min(f.cycle for f in self.flips)

    @staticmethod
    def single(
        structure: str,
        entry: int,
        bit: int,
        cycle: int,
        model: FaultModel = FaultModel.TRANSIENT,
        mask_id: int = 0,
    ) -> "FaultMask":
        """Convenience constructor for the common single-bit case."""
        return FaultMask(
            model=model,
            flips=(FaultFlip(structure, entry, bit, cycle),),
            mask_id=mask_id,
        )
