"""Distributed campaign service: sharded journals over a shared filesystem.

``repro matrix`` (the experiment-matrix runner) drives a whole grid from
one host, so a single slow ISA×workload cell serializes the tail and a
host crash loses the in-flight batch.  This module promotes the matrix to
a *service* whose only coordination substrate is the filesystem the
journals already live on — no broker, no sockets, no database:

* **plan** — the coordinator (``repro serve``) splits every grid cell's
  mask-index range ``[0, faults)`` into fixed-size *shards* and writes one
  immutable ``plan.json`` (plus a byte-exact copy of the grid TOML so any
  worker re-derives the identical :class:`~repro.core.matrix.MatrixGrid`);
* **leases** — any number of workers (``repro work``), on one host or many
  sharing a filesystem, claim shards by atomically creating
  ``leases/<shard>.json`` (``os.link`` of a fully-written temp file, which
  is exclusive even on NFS) and renew it ahead of a wall-clock deadline;
* **generation-fenced shard journals** — a claim at generation *g* appends
  records only to ``shards/<shard>.g<g>.jsonl``.  Every (shard,
  generation) journal has exactly one writer *ever*, so a zombie worker
  that lost its lease but keeps simulating can never corrupt a file the
  new owner writes — the worst a race costs is duplicated work, and the
  duplicate records are byte-identical because fault simulation is
  deterministic;
* **crash recovery** — an expired lease is reclaimed at generation
  ``g+1``: the torn tail the dead worker left is repaired with
  :func:`~repro.core.journal.repair_torn_tail` and every completed record
  from older generations is *skipped, not re-simulated*;
* **work stealing** — an idle worker writes ``leases/<shard>.steal``
  (exclusive create); the owner answers by publishing a child shard
  descriptor for the back half of its remaining range and shrinking its
  own effective range.  The descriptor is written *before* the owner
  shortens its loop, and :meth:`ShardStore.effective_stop` truncates any
  shard at the start of a same-cell shard inside its range, so a crash
  between the two steps can never orphan a mask range;
* **graceful degradation** — every store touch goes through
  :func:`~repro.core.supervisor.run_with_retry`; a worker whose filesystem
  disappears retries with backoff, then exits cleanly with its lease left
  to expire for someone else (:class:`StoreDegraded`);
* **byte-identical merge** — :func:`merge_shards` reconstructs each
  canonical ``cells/<key>.jsonl`` from the *raw line bytes* of the shard
  journals (mask-id ordered, fingerprint-verified, adaptive stop
  re-derived), so the merged output is byte-for-byte what a single-host
  serial ``repro matrix`` run would have written and every downstream
  consumer — telemetry fold, resume, report — is untouched.

Everything observable (lease expirations, stolen shards, merge conflicts)
is *folded purely from the files* by :func:`fold_shard_counters`, so live
and replayed telemetry agree by construction.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.journal import (
    CampaignJournal,
    JournalError,
    raw_journal_lines,
    repair_torn_tail,
)
from repro.core.matrix import (
    MatrixGrid,
    cell_runtime,
    load_grid,
    _matrix_task,
    _matrix_worker_init,
)
from repro.core.sampling import AdaptiveSampling, error_margin_for
from repro.core.sanitizer import DEFAULT_HANG_CYCLES
from repro.core.supervisor import SupervisorPolicy, run_with_retry

PLAN_VERSION = 1
DEFAULT_SHARD_SIZE = 25
DEFAULT_TTL_S = 60.0
#: an owner keeps ranges smaller than this rather than splitting them
MIN_STEAL_RANGE = 2

_GEN_RE = re.compile(r"\.g(\d+)\.jsonl$")


class ShardError(RuntimeError):
    """A shard plan or output directory cannot be used."""


class StoreDegraded(ShardError):
    """The shared filesystem stopped answering; the worker must exit."""


# --------------------------------------------------------------------------
# shard planning
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One claimable unit of work: a mask-index range of one cell."""

    id: str
    cell: str
    start: int
    stop: int
    stolen_from: str | None = None

    def to_dict(self) -> dict:
        doc = {"id": self.id, "cell": self.cell,
               "start": self.start, "stop": self.stop}
        if self.stolen_from is not None:
            doc["stolen_from"] = self.stolen_from
        return doc


def shard_name(cell: str, start: int, stop: int) -> str:
    return f"{cell}@{start}-{stop}"


def plan_shards(grid: MatrixGrid,
                shard_size: int = DEFAULT_SHARD_SIZE) -> list[ShardSpec]:
    """Tile every cell's budget into shards, interleaved round-robin.

    Round-robin interleaving (first shard of every cell, then second of
    every cell, ...) means workers claiming in plan order spread across
    cells instead of queueing on the first one — the same anti-starvation
    order the single-host matrix queue uses.
    """
    if shard_size < 1:
        raise ShardError(f"shard_size must be >= 1: {shard_size}")
    per_cell: list[list[ShardSpec]] = []
    for cell in grid.cells:
        budget = int(cell.spec.faults)
        tiles = []
        for start in range(0, budget, shard_size):
            stop = min(start + shard_size, budget)
            tiles.append(ShardSpec(
                id=shard_name(cell.key, start, stop),
                cell=cell.key, start=start, stop=stop,
            ))
        per_cell.append(tiles)
    shards: list[ShardSpec] = []
    depth = max((len(t) for t in per_cell), default=0)
    for i in range(depth):
        for tiles in per_cell:
            if i < len(tiles):
                shards.append(tiles[i])
    return shards


# --------------------------------------------------------------------------
# the filesystem store (leases, shard journals, markers)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Lease:
    """Proof of a successful claim: (shard, generation) names our journal."""

    shard: str
    worker: str
    gen: int
    deadline: float
    ttl_s: float


class ShardStore:
    """All distributed-campaign filesystem state under one output directory.

    Layout::

        <out>/grid.toml                   byte-exact copy of the grid file
        <out>/plan.json                   immutable shard plan
        <out>/leases/<shard>.json         live lease (atomic link/replace)
        <out>/leases/<shard>.steal        pending steal request
        <out>/shards/<shard>.g<N>.jsonl   per-(shard, generation) journal
        <out>/shards/<shard>.done.json    completion marker
        <out>/shards/<shard>.shard.json   dynamic (stolen) shard descriptor
        <out>/shards/<cell>.meta.json     derived cell facts (budget, bits)
        <out>/shards/<cell>.cancel.json   adaptive stop: skip work past it
        <out>/cells/<cell>.jsonl          canonical merged journal
        <out>/manifest.json               matrix-compatible manifest

    Every mutation is either an atomic rename of a fully-written temp file
    or an exclusive ``os.link``/``O_EXCL`` create, so no reader ever sees a
    half-written coordination file; journals are append-only and torn-tail
    tolerant like every other journal in the project.
    """

    def __init__(self, out_dir: str | Path, worker_id: str | None = None,
                 *, clock=time.time, sleep=time.sleep,
                 io_attempts: int = 5,
                 io_policy: SupervisorPolicy | None = None):
        self.out_dir = Path(out_dir)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.clock = clock
        self.sleep = sleep
        self.io_attempts = io_attempts
        self.io_policy = io_policy or SupervisorPolicy(backoff_base_s=0.05,
                                                       backoff_cap_s=1.0)
        self._tmp_seq = 0

    # ------------------------------------------------------------ paths

    @property
    def plan_path(self) -> Path:
        return self.out_dir / "plan.json"

    @property
    def grid_path(self) -> Path:
        return self.out_dir / "grid.toml"

    @property
    def leases_dir(self) -> Path:
        return self.out_dir / "leases"

    @property
    def shards_dir(self) -> Path:
        return self.out_dir / "shards"

    @property
    def cells_dir(self) -> Path:
        return self.out_dir / "cells"

    def lease_path(self, shard_id: str) -> Path:
        return self.leases_dir / f"{shard_id}.json"

    def steal_path(self, shard_id: str) -> Path:
        return self.leases_dir / f"{shard_id}.steal"

    def gen_path(self, shard_id: str, gen: int) -> Path:
        return self.shards_dir / f"{shard_id}.g{gen}.jsonl"

    def done_path(self, shard_id: str) -> Path:
        return self.shards_dir / f"{shard_id}.done.json"

    def descriptor_path(self, shard_id: str) -> Path:
        return self.shards_dir / f"{shard_id}.shard.json"

    def meta_path(self, cell_key: str) -> Path:
        return self.shards_dir / f"{cell_key}.meta.json"

    def cancel_path(self, cell_key: str) -> Path:
        return self.shards_dir / f"{cell_key}.cancel.json"

    # ------------------------------------------------------------ io plumbing

    def _io(self, fn, passthrough: tuple = (FileExistsError,
                                            FileNotFoundError)):
        """Run one filesystem touch with bounded retry → :class:`StoreDegraded`.

        ``FileExistsError`` / ``FileNotFoundError`` are lease-protocol
        verdicts (lost race, reclaimed lease) and re-raise immediately.
        """
        try:
            return run_with_retry(fn, attempts=self.io_attempts,
                                  policy=self.io_policy, retry_on=(OSError,),
                                  passthrough=passthrough, sleep=self.sleep)
        except (FileExistsError, FileNotFoundError):
            raise
        except OSError as exc:
            raise StoreDegraded(
                f"filesystem unavailable after {self.io_attempts} attempts: "
                f"{type(exc).__name__}: {exc}") from exc

    def _tmp_name(self, directory: Path) -> Path:
        self._tmp_seq += 1
        return directory / f".tmp.{self.worker_id}.{self._tmp_seq}"

    def _write_atomic(self, path: Path, doc: dict) -> None:
        def write() -> None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self._tmp_name(path.parent)
            tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
            os.replace(tmp, path)
        self._io(write, passthrough=())

    def _write_exclusive(self, path: Path, doc: dict) -> bool:
        """Exclusive create via link(2); False when someone else won."""
        def create() -> bool:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self._tmp_name(path.parent)
            tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
            try:
                os.link(tmp, path)
            except FileExistsError:
                return False
            finally:
                os.unlink(tmp)
            return True
        return self._io(create, passthrough=())

    def _read_json(self, path: Path) -> dict | None:
        def read():
            try:
                text = path.read_text()
            except FileNotFoundError:
                return None
            try:
                return json.loads(text)
            except json.JSONDecodeError:
                return None              # half-dead file: treat as absent
        return self._io(read, passthrough=())

    # ------------------------------------------------------------ the plan

    def init_plan(self, grid: MatrixGrid, *,
                  shard_size: int = DEFAULT_SHARD_SIZE,
                  ttl_s: float = DEFAULT_TTL_S) -> dict:
        """Write the immutable plan (idempotent for coordinator restarts)."""
        existing = self._read_json(self.plan_path)
        if existing is not None:
            if existing.get("fingerprint") != grid.fingerprint:
                raise ShardError(
                    f"{self.out_dir} holds a plan for a different grid "
                    f"({existing.get('name')!r}); refusing to mix")
            return existing
        doc = {
            "kind": "shard-plan",
            "version": PLAN_VERSION,
            "name": grid.name,
            "fingerprint": grid.fingerprint,
            "shard_size": int(shard_size),
            "ttl_s": float(ttl_s),
            "clock_hz": grid.clock_hz,
            "adaptive": (
                {
                    "target_margin": grid.adaptive.target_margin,
                    "confidence": grid.adaptive.confidence,
                    "batch": grid.adaptive.batch,
                    "min_faults": grid.adaptive.min_faults,
                }
                if grid.adaptive is not None else None
            ),
            "cells": {
                c.key: {"kind": c.kind, "row": c.row, "col": c.col,
                        "budget": int(c.spec.faults)}
                for c in grid.cells
            },
            "shards": [s.to_dict() for s in plan_shards(grid, shard_size)],
        }
        if not self._write_exclusive(self.plan_path, doc):
            return self.init_plan(grid, shard_size=shard_size, ttl_s=ttl_s)
        return doc

    def load_plan(self, wait_s: float = 0.0, poll_s: float = 0.2) -> dict:
        """Read the plan, optionally waiting for the coordinator to write it."""
        deadline = self.clock() + wait_s
        while True:
            doc = self._read_json(self.plan_path)
            if doc is not None:
                if doc.get("kind") != "shard-plan":
                    raise ShardError(f"{self.plan_path}: not a shard plan")
                if doc.get("version") != PLAN_VERSION:
                    raise ShardError(
                        f"{self.plan_path}: plan version "
                        f"{doc.get('version')} != {PLAN_VERSION}")
                return doc
            if self.clock() >= deadline:
                raise ShardError(f"{self.plan_path}: no shard plan")
            self.sleep(poll_s)

    # ------------------------------------------------------------ shard sets

    def dynamic_shards(self) -> list[ShardSpec]:
        """Stolen-child descriptors published after planning, stable order."""
        def scan() -> list[Path]:
            if not self.shards_dir.exists():
                return []
            return sorted(self.shards_dir.glob("*.shard.json"))
        shards = []
        for path in self._io(scan, passthrough=()):
            doc = self._read_json(path)
            if not doc:
                continue
            shards.append(ShardSpec(
                id=doc["id"], cell=doc["cell"], start=int(doc["start"]),
                stop=int(doc["stop"]), stolen_from=doc.get("stolen_from"),
            ))
        return shards

    def all_shards(self, plan: dict) -> list[ShardSpec]:
        static = [
            ShardSpec(id=s["id"], cell=s["cell"], start=int(s["start"]),
                      stop=int(s["stop"]))
            for s in plan.get("shards", ())
        ]
        return static + self.dynamic_shards()

    @staticmethod
    def effective_stop(shard: ShardSpec, shards: list[ShardSpec]) -> int:
        """The shard's range end after any splits published inside it.

        A shard is truncated at the start of *any* same-cell shard that
        begins strictly inside its range.  Publishing a child descriptor
        therefore shrinks the parent everywhere at once — which is what
        makes descriptor-first split ordering crash-safe.
        """
        stop = shard.stop
        for other in shards:
            if (other.cell == shard.cell
                    and shard.start < other.start < stop):
                stop = other.start
        return stop

    def journal_gens(self, shard_id: str) -> list[int]:
        """Generations with an on-disk journal for this shard, ascending."""
        def scan() -> list[Path]:
            if not self.shards_dir.exists():
                return []
            return list(self.shards_dir.glob(f"{shard_id}.g*.jsonl"))
        gens = []
        prefix = f"{shard_id}.g"
        for path in self._io(scan, passthrough=()):
            if not path.name.startswith(prefix):
                continue                 # glob '*' crossed into another id
            m = _GEN_RE.search(path.name)
            if m and path.name == f"{shard_id}.g{m.group(1)}.jsonl":
                gens.append(int(m.group(1)))
        return sorted(gens)

    def done_ids(self) -> set[str]:
        def scan() -> list[Path]:
            if not self.shards_dir.exists():
                return []
            return list(self.shards_dir.glob("*.done.json"))
        return {p.name[:-len(".done.json")]
                for p in self._io(scan, passthrough=())}

    def read_done(self, shard_id: str) -> dict | None:
        return self._read_json(self.done_path(shard_id))

    # ------------------------------------------------------------ leases

    def read_lease(self, shard_id: str) -> dict | None:
        return self._read_json(self.lease_path(shard_id))

    def try_claim(self, shard: ShardSpec, ttl_s: float) -> Lease | None:
        """Claim the shard, reclaiming an expired lease; None on any loss.

        Fresh claims and reclaims both end in the exclusive-link create, so
        two workers racing for the same shard get exactly one winner.  The
        claim's generation is one past every generation ever observed (on
        disk or in the expired lease), which fences the journals: whatever
        a not-quite-dead previous owner still appends lands in an *older*
        generation file the merge will simply dedup against.
        """
        path = self.lease_path(shard.id)
        expired_gen = 0
        current = self._read_json(path)
        if current is not None:
            if float(current.get("deadline", 0)) > self.clock():
                return None              # held by a live worker
            expired_gen = int(current.get("gen", 0))
            try:
                self._io(lambda: os.unlink(path))
            except FileNotFoundError:
                return None              # another reclaimer got here first
        elif self._io(path.exists, passthrough=()):
            # present but unparseable: a corrupt lease never blocks forever
            try:
                self._io(lambda: os.unlink(path))
            except FileNotFoundError:
                return None
        gen = max(self.journal_gens(shard.id) + [expired_gen], default=0) + 1
        deadline = self.clock() + ttl_s
        doc = {"kind": "lease", "shard": shard.id, "worker": self.worker_id,
               "gen": gen, "deadline": deadline, "ttl_s": ttl_s}
        if not self._write_exclusive(path, doc):
            return None
        return Lease(shard=shard.id, worker=self.worker_id, gen=gen,
                     deadline=deadline, ttl_s=ttl_s)

    def renew(self, lease: Lease) -> Lease | None:
        """Extend our lease; None when it is no longer ours to extend.

        A renewal past the deadline is refused locally even if the file
        still names us: someone may be reclaiming it right now, and the
        generation fence makes bowing out strictly safer than racing.
        """
        now = self.clock()
        if now >= lease.deadline:
            return None
        current = self._read_json(self.lease_path(lease.shard))
        if (not current or current.get("worker") != self.worker_id
                or int(current.get("gen", -1)) != lease.gen):
            return None
        deadline = now + lease.ttl_s
        self._write_atomic(self.lease_path(lease.shard), {
            "kind": "lease", "shard": lease.shard, "worker": self.worker_id,
            "gen": lease.gen, "deadline": deadline, "ttl_s": lease.ttl_s,
        })
        return Lease(shard=lease.shard, worker=self.worker_id, gen=lease.gen,
                     deadline=deadline, ttl_s=lease.ttl_s)

    def release(self, lease: Lease, *, stop: int, records: int) -> None:
        """Publish the completion marker, then drop the lease."""
        self._write_atomic(self.done_path(lease.shard), {
            "kind": "shard-done", "shard": lease.shard, "gen": lease.gen,
            "worker": self.worker_id, "stop": int(stop),
            "records": int(records),
        })
        current = self._read_json(self.lease_path(lease.shard))
        if current and current.get("worker") == self.worker_id \
                and int(current.get("gen", -1)) == lease.gen:
            try:
                self._io(lambda: os.unlink(self.lease_path(lease.shard)))
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------ stealing

    def request_steal(self, shard_id: str) -> bool:
        return self._write_exclusive(self.steal_path(shard_id),
                                     {"kind": "steal", "by": self.worker_id})

    def read_steal(self, shard_id: str) -> dict | None:
        return self._read_json(self.steal_path(shard_id))

    def clear_steal(self, shard_id: str) -> None:
        try:
            self._io(lambda: os.unlink(self.steal_path(shard_id)))
        except FileNotFoundError:
            pass

    def publish_split(self, parent: ShardSpec, split_at: int,
                      stop: int) -> ShardSpec:
        """Give ``[split_at, stop)`` away as a new claimable child shard.

        The descriptor lands on disk *before* the caller shortens its own
        loop; :meth:`effective_stop` already truncates the parent at the
        child's start, so a crash straight after this call loses nothing
        and duplicates at most the one fault in flight.
        """
        child = ShardSpec(
            id=shard_name(parent.cell, split_at, stop), cell=parent.cell,
            start=split_at, stop=stop, stolen_from=parent.id,
        )
        doc = child.to_dict()
        doc["kind"] = "shard"
        doc["by"] = self.worker_id
        self._write_atomic(self.descriptor_path(child.id), doc)
        self.clear_steal(parent.id)
        return child

    # ------------------------------------------------------------ cell markers

    def write_meta(self, cell_key: str, doc: dict) -> None:
        body = {"kind": "cell-meta", "cell": cell_key, **doc}
        self._write_exclusive(self.meta_path(cell_key), body)

    def read_meta(self, cell_key: str) -> dict | None:
        return self._read_json(self.meta_path(cell_key))

    def write_cancel(self, cell_key: str, stop_at: int) -> None:
        self._write_atomic(self.cancel_path(cell_key), {
            "kind": "cell-cancel", "cell": cell_key, "stop_at": int(stop_at),
        })

    def read_cancel(self, cell_key: str) -> int | None:
        doc = self._read_json(self.cancel_path(cell_key))
        if doc is None:
            return None
        return int(doc.get("stop_at", 0))


# --------------------------------------------------------------------------
# the worker
# --------------------------------------------------------------------------


@dataclass
class WorkerResult:
    """What one ``repro work`` invocation accomplished."""

    worker: str
    shards_completed: int = 0
    faults_run: int = 0
    resumed: int = 0                 # positions satisfied from older gens
    reclaims: int = 0                # shards taken over at generation > 1
    splits_published: int = 0        # steal requests this worker answered
    steals_requested: int = 0
    degraded: bool = False           # exited because the store disappeared


class _LeaseLost(Exception):
    """Internal: our lease expired mid-shard; abandon without releasing."""


def run_worker(
    out_dir: str | Path,
    *,
    worker_id: str | None = None,
    checkpoints=None,
    sanitizer=None,
    hang_cycles: int = DEFAULT_HANG_CYCLES,
    poll_s: float = 0.5,
    plan_wait_s: float = 60.0,
    max_shards: int | None = None,
    on_fault=None,
    store: ShardStore | None = None,
) -> WorkerResult:
    """Claim and run shards until the campaign has no work left.

    ``on_fault(shard_id, position)`` is a pre-simulation hook for the chaos
    harness — raising from it models a worker dying mid-shard with the
    journal flushed up to the previous record, exactly like a SIGKILL.
    """
    from repro.core.checkpoint import DEFAULT_POLICY

    store = store or ShardStore(out_dir, worker_id=worker_id)
    result = WorkerResult(worker=store.worker_id)
    ckpt = checkpoints if checkpoints is not None else DEFAULT_POLICY
    try:
        plan = store.load_plan(wait_s=plan_wait_s)
        grid = load_grid(store.grid_path)
        if grid.fingerprint != plan.get("fingerprint"):
            raise ShardError(
                f"{store.grid_path} does not match the shard plan "
                "(grid edited after planning?)")
        cells = {c.key: c for c in grid.cells}
        ttl_s = float(plan.get("ttl_s", DEFAULT_TTL_S))
        _matrix_worker_init(ckpt, sanitizer, hang_cycles)
        runtimes: dict = {}
        requested: set[str] = set()

        while True:
            if max_shards is not None \
                    and result.shards_completed >= max_shards:
                break
            shards = store.all_shards(plan)
            done = store.done_ids()
            todo = [s for s in shards if s.id not in done]
            if not todo:
                break
            # rotate the claim order per worker so a fleet spreads out
            # instead of stampeding the same lease
            offset = hash(store.worker_id) % len(todo)
            claimed = None
            for shard in todo[offset:] + todo[:offset]:
                lease = store.try_claim(shard, ttl_s)
                if lease is not None:
                    claimed = (shard, lease)
                    break
            if claimed is None:
                _maybe_request_steal(store, plan, todo, requested, result)
                store.sleep(poll_s)
                continue
            shard, lease = claimed
            if lease.gen > 1:
                result.reclaims += 1
            try:
                _run_shard(store, plan, cells[shard.cell], shard, lease,
                           runtimes, ckpt, result, on_fault=on_fault)
            except _LeaseLost:
                continue                 # someone else owns it now
    except StoreDegraded:
        result.degraded = True
    return result


def _maybe_request_steal(store: ShardStore, plan: dict,
                         todo: list[ShardSpec], requested: set[str],
                         result: WorkerResult) -> None:
    """Idle with nothing claimable: ask the busiest straggler to split."""
    shards = store.all_shards(plan)
    best, best_remaining = None, MIN_STEAL_RANGE
    for shard in todo:
        lease = store.read_lease(shard.id)
        if lease is None or shard.id in requested:
            continue
        if store.read_steal(shard.id) is not None:
            continue
        eff = store.effective_stop(shard, shards)
        finished = 0
        for gen in store.journal_gens(shard.id):
            _h, lines = raw_journal_lines(store.gen_path(shard.id, gen))
            finished += len(lines)
        remaining = eff - shard.start - finished
        if remaining > best_remaining:
            best, best_remaining = shard, remaining
    if best is not None and store.request_steal(best.id):
        requested.add(best.id)
        result.steals_requested += 1


def _run_shard(store: ShardStore, plan: dict, cell, shard: ShardSpec,
               lease: Lease, runtimes: dict, ckpt, result: WorkerResult,
               on_fault=None) -> None:
    """Execute one claimed shard: resume, heartbeat, split, journal, release."""
    runtime = runtimes.get(cell.key)
    if runtime is None:
        runtime = runtimes[cell.key] = cell_runtime(cell, ckpt)
        store.write_meta(cell.key, {
            "budget": len(runtime.masks),
            "population_bits": runtime.population_bits,
            "timeout_s": runtime.timeout_s,
        })
    masks = runtime.masks
    budget = len(masks)
    spec = cell.spec

    # everything completed by previous generations is evidence, not work
    done_records: set[int] = set()
    for gen in store.journal_gens(shard.id):
        if gen >= lease.gen:
            continue
        path = store.gen_path(shard.id, gen)
        store._io(lambda p=path: repair_torn_tail(p), passthrough=())
        try:
            for record in CampaignJournal.load(path, spec):
                mid = record.mask.mask_id
                if 0 <= mid < budget and masks[mid] == record.mask:
                    done_records.add(mid)
        except JournalError:
            continue                     # foreign/garbled gen: ignore it

    # create our generation's journal immediately: its existence is what
    # the telemetry fold counts, so live and replayed expiration counters
    # agree even for a claim that dies before its first record
    def open_journal():
        return CampaignJournal.open(store.gen_path(shard.id, lease.gen), spec)
    journal = store._io(open_journal, passthrough=())

    appended = 0
    try:
        i = shard.start
        while True:
            shards = store.all_shards(plan)
            eff = min(store.effective_stop(shard, shards), budget)
            cancel = store.read_cancel(cell.key)
            if cancel is not None:
                eff = min(eff, max(shard.start, cancel))
            if i >= eff:
                break
            if store.read_steal(shard.id) is not None:
                remaining = eff - i
                if remaining >= MIN_STEAL_RANGE:
                    split_at = i + (remaining + 1) // 2
                    store.publish_split(shard, split_at, eff)
                    result.splits_published += 1
                    eff = split_at
                    if i >= eff:
                        break
                else:
                    store.clear_steal(shard.id)
            now = store.clock()
            if now >= lease.deadline - 2 * lease.ttl_s / 3:
                renewed = store.renew(lease)
                if renewed is None:
                    raise _LeaseLost(shard.id)
                lease = renewed
            if i in done_records:
                result.resumed += 1
                i += 1
                continue
            if on_fault is not None:
                on_fault(shard.id, i)
            record = _matrix_task((cell.kind, spec, masks[i]))
            store._io(lambda r=record: journal.append(r), passthrough=())
            appended += 1
            result.faults_run += 1
            i += 1
        final_stop = i
    finally:
        journal.close()
    store.release(lease, stop=final_stop, records=appended)
    result.shards_completed += 1


# --------------------------------------------------------------------------
# the merge
# --------------------------------------------------------------------------


@dataclass
class MergeResult:
    """Outcome of reconstructing canonical cell journals from shards."""

    cells: dict = field(default_factory=dict)
    complete: bool = True
    conflicts: int = 0
    manifest_path: Path | None = None


def _collect_cell_lines(store: ShardStore, cell_key: str,
                        shards: list[ShardSpec]):
    """Union every shard generation's raw lines for one cell.

    Returns ``(header, chosen, conflict_ids)`` where ``chosen`` maps
    mask_id to the winning raw line.  Winner rule: highest generation,
    then lowest shard start — deterministic whatever order the files are
    scanned in.  ``conflict_ids`` is every mask_id that appeared with two
    byte-different lines (deterministic simulation makes that impossible
    unless something else is wrong, which is exactly why it is counted).
    """
    header: bytes | None = None
    chosen: dict[int, tuple[int, int, bytes]] = {}
    conflict_ids: set[int] = set()
    for shard in shards:
        if shard.cell != cell_key:
            continue
        for gen in store.journal_gens(shard.id):
            h, lines = raw_journal_lines(store.gen_path(shard.id, gen))
            if h is not None:
                if header is None:
                    header = h
                elif h != header:
                    raise ShardError(
                        f"shard journals of cell {cell_key!r} carry "
                        "different headers; the output directory mixes "
                        "campaigns")
            for mask_id, line in lines:
                prev = chosen.get(mask_id)
                if prev is None:
                    chosen[mask_id] = (gen, shard.start, line)
                    continue
                if prev[2] != line:
                    conflict_ids.add(mask_id)
                if (gen, -shard.start) > (prev[0], -prev[1]):
                    chosen[mask_id] = (gen, shard.start, line)
    return header, chosen, conflict_ids


def _derive_stop(adaptive: AdaptiveSampling | None, outcomes: list[str],
                 prefix: int, budget: int,
                 population: int | None) -> tuple[int | None, str, bool]:
    """Re-derive the adaptive stop from the merged record stream.

    The identical absolute-boundary walk the single-host runner makes
    (:meth:`repro.core.matrix._CellState.evaluate`), applied to the merged
    contiguous prefix — so the merged journal is truncated at exactly the
    fault a serial run would have stopped at.
    """
    if adaptive is None or population is None:
        if prefix >= budget:
            return budget, "exhausted", False
        return None, "running", False

    def n_valid(boundary: int) -> int:
        return sum(1 for i in range(min(boundary, prefix))
                   if outcomes[i] != "sim_fault")

    for b in adaptive.boundaries(budget):
        if b > prefix:
            return None, "running", False
        if adaptive.satisfied(n_valid(b), population):
            return b, "converged", b < budget
    return budget, "exhausted", False


def merge_shards(out_dir: str | Path, *,
                 store: ShardStore | None = None) -> MergeResult:
    """Rebuild canonical ``cells/*.jsonl`` byte-identically from the shards.

    Raw header and record lines are copied, never re-serialized, so a
    complete cell's merged journal is byte-for-byte the file a single-host
    serial ``repro matrix`` run would have written — ``cmp``-provable.
    Cells whose contiguous prefix has not yet reached their (re-derived)
    stop are reported ``running`` and left unwritten.  Also rewrites a
    matrix-compatible ``manifest.json`` so ``repro matrix --resume``,
    ``repro tail`` and the report renderer work on the merged directory
    unchanged.
    """
    store = store or ShardStore(out_dir)
    plan = store.load_plan()
    adaptive = (AdaptiveSampling(**plan["adaptive"])
                if plan.get("adaptive") else None)
    shards = store.all_shards(plan)
    result = MergeResult()
    manifest_cells: dict[str, dict] = {}

    for cell_key, declared in plan.get("cells", {}).items():
        meta = store.read_meta(cell_key)
        budget = int(meta["budget"]) if meta else int(declared["budget"])
        population = int(meta["population_bits"]) if meta else None
        header, chosen, conflict_ids = _collect_cell_lines(
            store, cell_key, shards)
        result.conflicts += len(conflict_ids)

        prefix = 0
        while prefix in chosen:
            prefix += 1
        outcomes = [json.loads(chosen[i][2]).get("outcome")
                    for i in range(prefix)]
        stop_at, status, stopped_early = _derive_stop(
            adaptive, outcomes, prefix, budget, population)

        journal_rel = f"cells/{cell_key}.jsonl"
        entry = {
            "kind": declared["kind"],
            "row": declared["row"],
            "col": declared["col"],
            "journal": journal_rel,
            "status": status,
            "faults_done": prefix if stop_at is None else stop_at,
            "budget": budget,
            "stopped_early": stopped_early,
            "achieved_margin": None,
            "conflicts": len(conflict_ids),
        }
        if stop_at is None or header is None:
            entry["status"] = "running"
            result.complete = False
        else:
            content = header + b"".join(chosen[i][2] for i in range(stop_at))
            path = store.cells_dir / f"{cell_key}.jsonl"

            def write(p=path, body=content) -> None:
                p.parent.mkdir(parents=True, exist_ok=True)
                tmp = store._tmp_name(p.parent)
                tmp.write_bytes(body)
                os.replace(tmp, p)
            store._io(write, passthrough=())
            if population is not None:
                confidence = adaptive.confidence if adaptive else 0.95
                valid = sum(1 for o in outcomes[:stop_at]
                            if o != "sim_fault")
                if valid:
                    entry["achieved_margin"] = error_margin_for(
                        valid, population, confidence)
        manifest_cells[cell_key] = entry
        result.cells[cell_key] = dict(entry)

    manifest = {
        "kind": "matrix-manifest",
        "version": 1,
        "name": plan.get("name"),
        "fingerprint": plan.get("fingerprint"),
        "adaptive": plan.get("adaptive"),
        "cells": {
            key: {k: v for k, v in entry.items() if k != "conflicts"}
            for key, entry in manifest_cells.items()
        },
    }
    manifest_path = store.out_dir / "manifest.json"

    def write_manifest() -> None:
        tmp = store._tmp_name(store.out_dir)
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        os.replace(tmp, manifest_path)
    store._io(write_manifest, passthrough=())
    result.manifest_path = manifest_path
    return result


# --------------------------------------------------------------------------
# file-derived telemetry counters
# --------------------------------------------------------------------------


def fold_shard_counters(out_dir: str | Path, *,
                        store: ShardStore | None = None) -> dict:
    """Distributed-campaign counters folded purely from the files.

    * ``lease_expirations`` — one per generation bump: a shard whose
      highest observed generation is *g* was abandoned and reclaimed
      ``g - 1`` times (claims create their generation journal immediately,
      so the fold sees every claim that ever held the lease);
    * ``shards_stolen`` — dynamic child descriptors published by splits;
    * ``merge_conflicts`` — mask_ids that appear with byte-different
      record lines across a cell's shard journals.

    Live telemetry calls this same fold, so live == replayed is a
    tautology rather than a test obligation.
    """
    store = store or ShardStore(out_dir)
    plan = store.load_plan()
    shards = store.all_shards(plan)

    expirations = 0
    for shard in shards:
        gens = store.journal_gens(shard.id)
        top = gens[-1] if gens else 0
        done = store.read_done(shard.id)
        if done is not None:
            top = max(top, int(done.get("gen", 0)))
        lease = store.read_lease(shard.id)
        if lease is not None:
            top = max(top, int(lease.get("gen", 0)))
        expirations += max(0, top - 1)

    stolen = sum(1 for s in shards if s.stolen_from is not None)

    conflicts = 0
    for cell_key in plan.get("cells", {}):
        _header, _chosen, conflict_ids = _collect_cell_lines(
            store, cell_key, shards)
        conflicts += len(conflict_ids)

    return {
        "lease_expirations": expirations,
        "shards_stolen": stolen,
        "merge_conflicts": conflicts,
    }


# --------------------------------------------------------------------------
# directory-wide journal following (repro tail on a matrix output dir)
# --------------------------------------------------------------------------


class DirectoryFollower:
    """Aggregate follower over every journal a matrix output dir grows.

    Watches ``shards/*.g*.jsonl`` *and* ``cells/*.jsonl`` (new files are
    discovered on every poll) and yields each logical record exactly once:
    records are deduplicated on ``(header fingerprint, mask_id)``, so a
    record seen in a shard journal is not double-counted when the merge
    copies its bytes into the canonical cell journal, and a reclaimed
    shard's duplicated work counts once however many generations carry it.
    """

    def __init__(self, out_dir: str | Path):
        from repro.core.journal import JournalFollower

        self.out_dir = Path(out_dir)
        self._follower_cls = JournalFollower
        self._followers: dict[Path, object] = {}
        self._seen: set[tuple[str, int]] = set()
        self.skipped = 0
        self.duplicates = 0

    def _paths(self) -> list[Path]:
        paths: list[Path] = []
        shards = self.out_dir / "shards"
        cells = self.out_dir / "cells"
        if shards.exists():
            paths.extend(sorted(shards.glob("*.jsonl")))
        if cells.exists():
            paths.extend(sorted(cells.glob("*.jsonl")))
        return paths

    def poll(self) -> list:
        """Every logical record appended anywhere since the last poll."""
        fresh = []
        for path in self._paths():
            follower = self._followers.get(path)
            if follower is None:
                follower = self._followers[path] = self._follower_cls(path)
            before = follower.skipped
            for record in follower.poll():
                fingerprint = (follower.header or {}).get("fingerprint", "")
                key = (fingerprint, record.mask.mask_id)
                if key in self._seen:
                    self.duplicates += 1
                    continue
                self._seen.add(key)
                fresh.append(record)
            self.skipped += follower.skipped - before
        return fresh

    def planned(self) -> int:
        """Total mask budget across the plan's cells (0 when no plan)."""
        try:
            plan = ShardStore(self.out_dir).load_plan()
        except (ShardError, StoreDegraded):
            return 0
        return sum(int(c.get("budget", 0))
                   for c in plan.get("cells", {}).values())


# --------------------------------------------------------------------------
# the coordinator
# --------------------------------------------------------------------------


def _worker_env() -> dict:
    env = dict(os.environ)
    pkg_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    if existing:
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = pkg_root + os.pathsep + existing
    else:
        env["PYTHONPATH"] = pkg_root
    return env


def serve(
    grid_path: str | Path,
    out_dir: str | Path,
    *,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    ttl_s: float = DEFAULT_TTL_S,
    poll_s: float = 0.5,
    stall_timeout_s: float = 900.0,
    max_respawns: int = 3,
    worker_args: tuple = (),
    on_progress=None,
) -> MergeResult:
    """Coordinate a distributed campaign: plan, spawn, watch, cancel, merge.

    Spawns ``workers`` local ``repro work`` subprocesses (``workers=0``
    coordinates externally-launched workers, e.g. other hosts sharing the
    filesystem).  The loop re-merges incrementally: a converged adaptive
    cell gets a cancel marker so workers stop burning budget past the
    stop the serial runner would have taken.  Dead local workers are
    respawned up to ``max_respawns`` times total; the coordinator itself
    is restartable at any point (the plan is idempotent and all progress
    lives in the shard files).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    grid_src = Path(grid_path)
    store = ShardStore(out)
    grid_bytes = grid_src.read_bytes()
    if store.grid_path.exists():
        if store.grid_path.read_bytes() != grid_bytes:
            raise ShardError(
                f"{store.grid_path} differs from {grid_src}; refusing to mix")
    else:
        tmp = store._tmp_name(out)
        tmp.write_bytes(grid_bytes)
        os.replace(tmp, store.grid_path)
    grid = load_grid(store.grid_path)
    plan = store.init_plan(grid, shard_size=shard_size, ttl_s=ttl_s)

    procs: list[subprocess.Popen] = []
    respawns = 0

    def spawn() -> subprocess.Popen:
        cmd = [sys.executable, "-m", "repro", "work", str(out),
               "--poll", str(poll_s), *worker_args]
        return subprocess.Popen(cmd, env=_worker_env())

    try:
        for _ in range(max(0, workers)):
            procs.append(spawn())

        last_progress = time.monotonic()
        last_state: tuple = ()
        while True:
            merged = merge_shards(out, store=store)
            if plan.get("adaptive"):
                for key, entry in merged.cells.items():
                    if entry["status"] == "converged" \
                            and store.read_cancel(key) is None:
                        store.write_cancel(key, entry["faults_done"])
            done = store.done_ids()
            shards = store.all_shards(plan)
            state = (
                len(done), len(shards),
                tuple(sorted(
                    (p.name, p.stat().st_size)
                    for p in store.shards_dir.glob("*.jsonl")
                )) if store.shards_dir.exists() else (),
            )
            if state != last_state:
                last_state = state
                last_progress = time.monotonic()
            if on_progress is not None:
                on_progress(merged, len(done), len(shards))
            if all(s.id in done for s in shards) and shards:
                break
            if time.monotonic() - last_progress > stall_timeout_s:
                raise ShardError(
                    f"no progress for {stall_timeout_s:.0f}s "
                    f"({len(done)}/{len(shards)} shards done); aborting")
            for i, proc in enumerate(procs):
                code = proc.poll()
                if code is not None and respawns < max_respawns:
                    respawns += 1
                    procs[i] = spawn()
            time.sleep(poll_s)

        final = merge_shards(out, store=store)
        if not final.complete:
            raise ShardError(
                "all shards report done but the merge is incomplete — "
                "run `repro doctor` on the output directory")
        return final
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
