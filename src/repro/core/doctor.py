"""Offline campaign-journal validation (the ``repro doctor`` subcommand).

A run journal is the crash-safe ledger a 10k-fault campaign resumes from —
which makes a *corrupt* journal the most expensive file in the project: a
bad resume silently skips or double-counts masks.  ``diagnose_journal``
audits one journal without re-running anything:

* the header parses, has a supported version, and its stored fingerprint
  matches a recomputation over the stored spec (a mismatch means the header
  was hand-edited or the file spliced from two campaigns);
* every record line parses; unreadable *trailing* lines are a tolerated
  torn tail (the writer died mid-append), unreadable *interior* lines are
  corruption;
* no two records claim the same ``mask_id`` (resume keys on it);
* per-record consistency: quarantined runs carry a ``sim_error_kind``,
  ``integrity`` quarantines carry their :class:`IntegrityReport`, Crash
  verdicts carry a ``crash_reason``, DUE verdicts carry their
  ``detected_by`` provenance (and protection verdicts — DUE or
  ``corrected`` — only ever appear under a spec with a protection
  config), liveness-classified records (``classified_by="liveness"``)
  are Masked with zero simulated cycles and only appear under a spec
  with a liveness mode, and every flip targets the structure the
  campaign spec says it should;
* the record count does not exceed the spec's sample size.

The verdict ships with the journal's robustness/integrity summary so the
operator sees campaign health in the same pass.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.core.journal import JOURNAL_VERSION, record_from_dict
from repro.core.outcome import Outcome
from repro.core.report import robustness_summary
from repro.core.sanitizer import IntegrityReport


@dataclasses.dataclass
class DoctorReport:
    """Everything ``repro doctor`` found out about one journal."""

    path: str
    problems: list[str] = dataclasses.field(default_factory=list)
    warnings: list[str] = dataclasses.field(default_factory=list)
    records: int = 0
    torn_tail: bool = False
    header: dict | None = None
    robustness: dict | None = None
    integrity_reports: list[IntegrityReport] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        lines = [f"journal: {self.path}"]
        if self.header is not None:
            spec = self.header.get("spec", {})
            what = (
                f"{spec.get('isa')}/{spec.get('workload')}/{spec.get('target')}"
                if "target" in spec
                else f"{spec.get('design')}/{spec.get('component')}"
            )
            lines.append(
                f"campaign: {what} model={spec.get('model')} "
                f"faults={spec.get('faults')} seed={spec.get('seed')}"
            )
        lines.append(f"records: {self.records}"
                     + (" (torn tail tolerated)" if self.torn_tail else ""))
        if self.robustness is not None:
            health = ", ".join(f"{k}={v:.2f}" if isinstance(v, float)
                               else f"{k}={v}"
                               for k, v in self.robustness.items())
            lines.append(f"robustness: {health}")
        for report in self.integrity_reports:
            lines.append(f"  integrity[mask {report.mask_id}]: "
                         f"{report.describe()}")
        for warning in self.warnings:
            lines.append(f"WARNING: {warning}")
        for problem in self.problems:
            lines.append(f"PROBLEM: {problem}")
        lines.append("verdict: " + ("ok" if self.ok else "CORRUPT"))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "problems": self.problems,
            "warnings": self.warnings,
            "records": self.records,
            "torn_tail": self.torn_tail,
            "robustness": self.robustness,
            "integrity_reports": [r.to_dict() for r in self.integrity_reports],
        }


def _recompute_fingerprint(spec_dict: dict) -> str:
    """Recompute the header fingerprint from the *stored* spec.

    The writer fingerprints ``json.dumps(asdict(spec), sort_keys=True)``
    after canonicalizing enums/dataclasses; the stored spec is that same
    canonical form round-tripped through JSON, so hashing its sorted dump
    reproduces the original digest exactly.
    """
    canon = json.dumps(spec_dict, sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()


def _expected_structure(spec: dict) -> str | None:
    if "target" in spec:
        return spec["target"]
    if "design" in spec and "component" in spec:
        return f"accel:{spec['design']}:{spec['component']}"
    return None


def _check_fault_model(report: DoctorReport, spec: dict) -> str | None:
    """Validate the spec's fault-generator provenance; return its name.

    An unset key means the uniform default (the byte-identity contract);
    a set key must name a registered generator with well-formed,
    generator-accepted parameters — anything else is forged or drifted
    provenance.  Returns the generator name for per-record shape checks
    (``None`` when unset or invalid).
    """
    data = spec.get("fault_model")
    if data is None:
        return None
    from repro.core.faultmodels import fault_model_from_dict, get_generator

    try:
        fm = fault_model_from_dict(data)
        get_generator(fm.name).validate(fm.param_dict())
    except ValueError as exc:
        report.problems.append(f"header fault_model is invalid: {exc}")
        return None
    if fm.name == "uniform" and not fm.params:
        report.warnings.append(
            "header spells out the uniform default fault model — written "
            "by an API caller that skipped spec normalization; the journal "
            "will not fingerprint-match an unset-spec resume")
    return fm.name


def _check_record(report: DoctorReport, line_no: int, record,
                  expected_structure: str | None,
                  protected: bool = False,
                  liveness: str | None = None,
                  generator: str | None = None) -> None:
    where = f"line {line_no} (mask {record.mask.mask_id})"
    if record.classified_by is not None and record.classified_by != "liveness":
        report.problems.append(
            f"{where}: unknown analytic classifier "
            f"{record.classified_by!r} (only 'liveness' exists)")
    if record.classified_by == "liveness":
        # An analytic claim is only ever "this flip dies before any read":
        # the verdict must be Masked and no cycle of simulation may have
        # backed it.  Anything else is forged provenance.
        if liveness is None:
            report.problems.append(
                f"{where}: liveness-classified record journaled by a "
                f"campaign spec without a liveness mode")
        if record.outcome is not Outcome.MASKED:
            report.problems.append(
                f"{where}: liveness-classified record claims outcome "
                f"{record.outcome.value!r}; analytic classification can "
                f"only ever prove masked")
        if record.cycles != 0 or record.max_cycles != 0:
            report.problems.append(
                f"{where}: liveness-classified record carries simulated "
                f"cycles ({record.cycles}/{record.max_cycles}) — analytic "
                f"records never simulate")
        if record.activated:
            report.problems.append(
                f"{where}: liveness-classified record claims the fault "
                f"activated — a dead-interval flip is never read")
    if record.sim_error_kind == "liveness" and liveness != "audit":
        report.problems.append(
            f"{where}: liveness-disagreement quarantine journaled by a "
            f"campaign spec not in audit mode")
    if record.outcome is Outcome.DUE and not record.detected_by:
        report.problems.append(
            f"{where}: DUE verdict without detected_by provenance")
    if record.detected_by and record.outcome is not Outcome.DUE:
        report.problems.append(
            f"{where}: carries detected_by {record.detected_by!r} but the "
            f"outcome is {record.outcome.value!r}, not due")
    if not protected and (
            record.outcome is Outcome.DUE
            or record.detected_by
            or record.masked_reason == "corrected"):
        report.problems.append(
            f"{where}: protection verdict journaled by a campaign spec "
            f"without a protection config")
    if record.outcome is Outcome.SIM_FAULT:
        if not record.sim_error_kind:
            report.problems.append(
                f"{where}: quarantined without a sim_error_kind")
        if record.sim_error_kind == "integrity" and record.integrity is None:
            report.problems.append(
                f"{where}: integrity quarantine without an IntegrityReport")
    if record.integrity is not None:
        report.integrity_reports.append(record.integrity)
        if record.sim_error_kind != "integrity":
            report.problems.append(
                f"{where}: carries an IntegrityReport but sim_error_kind is "
                f"{record.sim_error_kind!r}")
    if record.outcome is Outcome.CRASH and not record.crash_reason:
        report.problems.append(f"{where}: Crash verdict without a crash_reason")
    if expected_structure is not None:
        for flip in record.mask.flips:
            if flip.structure != expected_structure:
                report.problems.append(
                    f"{where}: flip targets {flip.structure!r} but the spec "
                    f"campaigns against {expected_structure!r}")
                break
    if generator == "burst":
        # a burst is one spatially-correlated event: every flip of the
        # mask strikes at the same timestamp
        if len({flip.cycle for flip in record.mask.flips}) > 1:
            report.problems.append(
                f"{where}: burst-generator mask spreads flips over "
                f"multiple cycles — a burst strikes at one timestamp")
        if len(record.mask.flips) < 2:
            report.problems.append(
                f"{where}: burst-generator mask carries a single flip "
                f"(burst arity is always >= 2)")
    if generator == "adversarial" and len(record.mask.flips) != 1:
        report.problems.append(
            f"{where}: adversarial-generator mask carries "
            f"{len(record.mask.flips)} flips (directed attacks place "
            f"exactly one)")


def diagnose_distributed(out_dir: str | Path) -> DoctorReport:
    """Validate a distributed campaign output directory offline.

    On top of per-journal checks for every merged ``cells/*.jsonl``, the
    shard substrate gets its own rules:

    * no two shards of a cell may cover overlapping mask ranges (after
      steal splits are applied via effective stops);
    * every record in a merged cell journal must be traceable to exactly
      one shard — the one whose range owns its mask_id — and the owning
      shard's journals must contain the byte-identical line;
    * stale leases, leftover steal requests and temp files are *warnings*:
      they are recoverable protocol state a crash legitimately leaves
      behind, not corruption.
    """
    import time

    from repro.core.journal import raw_journal_lines
    from repro.core.shard import ShardError, ShardStore, StoreDegraded

    out = Path(out_dir)
    report = DoctorReport(path=str(out))
    store = ShardStore(out)
    try:
        plan = store.load_plan()
    except (ShardError, StoreDegraded) as exc:
        report.problems.append(str(exc))
        return report
    shards = store.all_shards(plan)
    done = store.done_ids()
    now = time.time()

    if store.leases_dir.exists():
        for path in sorted(store.leases_dir.iterdir()):
            if path.name.endswith(".steal"):
                report.warnings.append(
                    f"leases/{path.name}: leftover steal request (the owner "
                    "died before splitting) — harmless")
                continue
            if path.name.startswith(".tmp."):
                report.warnings.append(
                    f"leases/{path.name}: leftover temp file — harmless")
                continue
            doc = store._read_json(path)
            if doc is None:
                report.warnings.append(
                    f"leases/{path.name}: unreadable lease — reclaim will "
                    "replace it")
                continue
            if doc.get("shard") in done:
                report.warnings.append(
                    f"leases/{path.name}: lease outlives its shard's done "
                    "marker — stale, not fatal")
            elif float(doc.get("deadline", 0)) <= now:
                report.warnings.append(
                    f"leases/{path.name}: stale lease "
                    f"(worker {doc.get('worker')!r} expired) — "
                    "reclaimable, not fatal")

    # byte-level shard journal index: cell -> shard id -> mask_id -> lines
    shard_lines: dict[str, dict[str, dict[int, set[bytes]]]] = {}
    for shard in shards:
        per_shard = shard_lines.setdefault(shard.cell, {}).setdefault(
            shard.id, {})
        for gen in store.journal_gens(shard.id):
            _h, lines = raw_journal_lines(store.gen_path(shard.id, gen))
            for mask_id, line in lines:
                per_shard.setdefault(mask_id, set()).add(line)

    for cell_key in sorted(plan.get("cells", {})):
        cell_shards = [s for s in shards if s.cell == cell_key]
        ranges = sorted(
            (s.start, store.effective_stop(s, shards), s.id)
            for s in cell_shards
        )
        for (a_start, a_stop, a_id), (b_start, _b_stop, b_id) in zip(
                ranges, ranges[1:]):
            if b_start < a_stop:
                report.problems.append(
                    f"cell {cell_key}: shards {a_id} and {b_id} cover "
                    f"overlapping mask ranges "
                    f"([{a_start},{a_stop}) vs start {b_start})")

        merged = out / "cells" / f"{cell_key}.jsonl"
        if not merged.exists():
            continue
        sub = diagnose_journal(merged)
        prefix = f"cells/{merged.name}"
        report.problems.extend(f"{prefix}: {p}" for p in sub.problems)
        report.warnings.extend(f"{prefix}: {w}" for w in sub.warnings)
        report.records += sub.records
        report.integrity_reports.extend(sub.integrity_reports)

        _header, lines = raw_journal_lines(merged)
        owners_by_id = shard_lines.get(cell_key, {})
        for mask_id, line in lines:
            owning = [(start, stop, sid) for start, stop, sid in ranges
                      if start <= mask_id < stop]
            if len(owning) != 1:
                report.problems.append(
                    f"{prefix}: record mask {mask_id} is traceable to "
                    f"{len(owning)} shards (must be exactly one)")
                continue
            sid = owning[0][2]
            if line not in owners_by_id.get(sid, {}).get(mask_id, set()):
                report.problems.append(
                    f"{prefix}: record mask {mask_id} does not match any "
                    f"line journaled by its owning shard {sid}")

    return report


def diagnose_journal(path: str | Path) -> DoctorReport:
    """Validate one campaign journal offline; never raises for bad input."""
    report = DoctorReport(path=str(path))
    path = Path(path)
    if not path.exists():
        report.problems.append("journal file does not exist")
        return report
    lines = path.read_text().splitlines()
    if not lines:
        report.problems.append("journal file is empty")
        return report

    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError:
        report.problems.append("line 1: unreadable journal header")
        return report
    if header.get("kind") != "header":
        report.problems.append("line 1: missing journal header")
        return report
    report.header = header
    if header.get("version") != JOURNAL_VERSION:
        report.problems.append(
            f"unsupported journal version {header.get('version')!r} "
            f"(expected {JOURNAL_VERSION})")
    spec = header.get("spec")
    if not isinstance(spec, dict):
        report.problems.append("header carries no campaign spec")
        spec = {}
    elif header.get("fingerprint") != _recompute_fingerprint(spec):
        report.problems.append(
            "header fingerprint does not match its own spec — the header "
            "was edited or spliced from another campaign")
    expected_structure = _expected_structure(spec)
    protected = bool(spec.get("protection"))
    liveness = spec.get("liveness")
    generator = _check_fault_model(report, spec)

    records = []
    seen_ids: dict[int, int] = {}
    last = len(lines) - 1
    for i, line in enumerate(lines[1:], start=1):
        line_no = i + 1
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            if i == last:
                report.torn_tail = True
                report.warnings.append(
                    f"line {line_no}: torn trailing line (interrupted "
                    f"append) — the mask will simply re-run on resume")
            else:
                report.problems.append(
                    f"line {line_no}: unreadable mid-journal line")
            continue
        if data.get("kind") != "record":
            report.warnings.append(
                f"line {line_no}: unknown kind {data.get('kind')!r}, skipped")
            continue
        try:
            record = record_from_dict(data)
        except Exception as exc:
            report.problems.append(
                f"line {line_no}: record does not deserialize "
                f"({type(exc).__name__}: {exc})")
            continue
        mask_id = record.mask.mask_id
        if mask_id in seen_ids:
            report.problems.append(
                f"line {line_no}: duplicate mask_id {mask_id} (first at "
                f"line {seen_ids[mask_id]}) — resume would keep only one")
        else:
            seen_ids[mask_id] = line_no
        _check_record(report, line_no, record, expected_structure,
                      protected=protected, liveness=liveness,
                      generator=generator)
        records.append(record)

    report.records = len(records)
    declared = spec.get("faults")
    if isinstance(declared, int) and len(seen_ids) > declared:
        report.problems.append(
            f"{len(seen_ids)} distinct masks journaled but the spec samples "
            f"only {declared}")
    if records:
        report.robustness = robustness_summary(records)
    return report
