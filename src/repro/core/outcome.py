"""Fault-effect classification (the paper's Section IV-A2).

AVF classes — full cross-layer verdicts on the program outcome:

* **MASKED** — the run completed and the output matches the fault-free run.
* **SDC** — the run completed *normally* but produced different output
  (silent data corruption: no observable indication anything went wrong).
* **CRASH** — a catastrophic event ended the run early: illegal instruction,
  wild memory access, or a hang caught by the watchdog ("excessively long
  execution times" count as crashes, as in the paper's BFS analysis).
* **DUE** — detected uncorrectable error: a protection scheme (parity,
  SECDED, TMR — see :mod:`repro.core.protection`) raised a machine check.
  The run ends early like a crash, but the machine *knows* it failed —
  the defining difference from an SDC — so it is a first-class outcome
  with its own ``detected_by`` provenance rather than a crash flavor.

HVF classes — hardware-layer verdicts at the commit stage:

* **BENIGN** — the fault never made it to the software layer: every
  committed instruction (bytes, destination value, memory traffic, order)
  matched the fault-free trace.
* **CORRUPTION** — the commit stream diverged from the fault-free trace,
  i.e. the fault became architecturally visible, whether or not software
  later masked it.  By construction HVF ≥ AVF.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.protection import MACHINE_CHECK
from repro.cpu.core import RunResult


class Outcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    #: a protection scheme detected an uncorrectable error (machine check)
    DUE = "due"
    #: the *simulator* (not the simulated program) failed on this mask; the
    #: run is quarantined and excluded from AVF/HVF aggregates
    SIM_FAULT = "sim_fault"


class HVFClass(enum.Enum):
    BENIGN = "benign"
    CORRUPTION = "corruption"


@dataclass(frozen=True)
class Classification:
    outcome: Outcome
    hvf: HVFClass
    masked_reason: str | None = None   # unused/overwritten/discarded/corrected/silent
    crash_reason: str | None = None
    #: ``scheme:structure`` provenance of a DUE verdict (None otherwise)
    detected_by: str | None = None


def classify(
    result: RunResult,
    golden_output: bytes,
    early_masked: bool,
    masked_reason: str | None,
    detected_by: str | None = None,
) -> Classification:
    """Derive the AVF and HVF classes for one fault run."""
    if early_masked:
        return Classification(Outcome.MASKED, HVFClass.BENIGN, masked_reason)
    if result.crashed == MACHINE_CHECK:
        # the error became architecturally visible, so HVF-corrupt — but
        # the machine reported it instead of silently corrupting output
        return Classification(
            Outcome.DUE, HVFClass.CORRUPTION, detected_by=detected_by
        )
    if result.crashed is not None:
        return Classification(
            Outcome.CRASH, HVFClass.CORRUPTION, crash_reason=result.crashed
        )
    hvf = HVFClass.CORRUPTION if result.hvf_corrupt else HVFClass.BENIGN
    if result.output == golden_output:
        reason = masked_reason or "masked_silent"
        return Classification(Outcome.MASKED, hvf, reason)
    return Classification(Outcome.SDC, HVFClass.CORRUPTION)
