"""Campaign telemetry: typed events, live progress, and metrics export.

A 1,000-fault-per-structure campaign (the paper's Section IV sample size)
runs for a long time, and until now it ran as a black box: no live
progress, no per-fault latency accounting, no machine-readable throughput
counters.  This module is the observability layer threaded through both
campaign engines:

* **typed event stream** — :class:`TelemetryEvent` rows (campaign started /
  fault dispatched / fault finished / retry / quarantine /
  checkpoint-restore / early-exit / pool respawn) emitted by
  :class:`Telemetry` and forwarded to any registered sink;
* **pure journal-fold aggregation** — :class:`CampaignAggregate` folds
  :class:`~repro.core.campaign.FaultRecord` rows into counters and latency
  histograms.  The fold reads only record fields, so the same numbers come
  out whether it runs live during a campaign or replayed from a
  :class:`~repro.core.journal.CampaignJournal` by ``repro tail`` /
  ``repro doctor`` — :meth:`CampaignAggregate.reconcilable` is the
  journal-derivable view that is *guaranteed* identical both ways;
* **live progress** — :class:`ProgressPrinter` renders throttled
  ``done/total``, faults/sec and ETA lines (the ``--progress`` flag);
* **latency histograms** — per-fault wall-clock and simulated-cycle
  histograms split by outcome and by fast-forwarded vs from-scratch runs,
  quantifying the checkpoint engine's speedup in production;
* **Prometheus textfile export** — :func:`to_prometheus` /
  ``--metrics-out metrics.prom`` snapshots every counter and histogram in
  the node-exporter textfile format.

Telemetry never touches the journal: a campaign run with ``--progress
--metrics-out`` writes a byte-identical journal to one run without them.
"""

from __future__ import annotations

import sys
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.outcome import Outcome

#: simulated-cycle histogram bucket upper bounds (last bucket is +Inf)
CYCLE_BUCKETS: tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
)

#: wall-clock histogram bucket upper bounds in seconds (last bucket is +Inf)
WALL_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0,
)

#: latency-split keys: did the run fast-forward from a golden checkpoint?
FAST_FORWARD = "fast_forward"
FROM_SCRATCH = "from_scratch"


class Histogram:
    """Fixed-bucket latency histogram (Prometheus-style, non-cumulative)."""

    __slots__ = ("bounds", "counts", "total", "n")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)   # +1 for the +Inf bucket
        self.total = 0.0
        self.n = 0

    def add(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.n += 1

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.n += other.n

    def to_dict(self) -> dict:
        return {
            "le": [*self.bounds, "inf"],
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.n,
        }

    def __eq__(self, other) -> bool:
        return isinstance(other, Histogram) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(n={self.n}, sum={self.total:.4g})"


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured observation from a running campaign."""

    kind: str                       # campaign_started | fault_dispatched |
                                    # fault_finished | retry | quarantine |
                                    # checkpoint_restore | early_exit |
                                    # liveness_skip | pool_respawn |
                                    # serial_degradation | campaign_finished
    mask_id: int | None = None
    attempt: int | None = None
    wall_s: float | None = None
    record: object = None           # the FaultRecord for fault_finished
    detail: str | None = None


def _record_path(record) -> str:
    return FAST_FORWARD if getattr(record, "restored_from", 0) else FROM_SCRATCH


@dataclass
class CampaignAggregate:
    """Folded campaign state: counters + latency histograms.

    :meth:`fold` is a pure function of the record (plus an optional live
    wall-clock sample), so folding a journal's records reproduces exactly
    the aggregate a live campaign computed — see :meth:`reconcilable` for
    the portion with that guarantee.  Fields that depend on live-only
    information (wall clocks, ``restored_from`` — deliberately not
    journaled — dispatch counts, pool respawns) are extras on top.
    """

    planned: int = 0
    resumed: int = 0
    dispatched: int = 0
    finished: int = 0
    outcomes: dict[str, int] = field(
        default_factory=lambda: {o.value: 0 for o in Outcome}
    )
    sim_error_kinds: dict[str, int] = field(default_factory=dict)
    retried: int = 0                # records that consumed >= 1 retry
    retries_total: int = 0          # total retries consumed
    timeouts: int = 0               # watchdog Crash(timeout) verdicts
    hangs: int = 0                  # deterministic Crash(hang) verdicts
    corrected: int = 0              # masked runs repaired by a protection scheme
    integrity_quarantined: int = 0
    liveness_skips: int = 0         # records classified analytically (no sim)
    liveness_disagreements: int = 0  # audit quarantines contradicting a claim
    stopped_on_hvf: int = 0
    checkpoint_restores: int = 0    # live-only: restored_from is not journaled
    early_exits: int = 0            # live-only: golden-trace re-convergence
    pool_respawns: int = 0          # live-only: supervisor pool breakages
    serial_degradations: int = 0    # live-only: supervisor gave up on pools
    adaptive_stops: int = 0         # live-only: sequential-sampling early stops
    adaptive_faults_saved: int = 0  # live-only: budgeted faults never dispatched
    adaptive_margin: float | None = None   # live-only: achieved margin at stop
    #: distributed-campaign counters (lease_expirations / shards_stolen /
    #: merge_conflicts) — set from repro.core.shard.fold_shard_counters,
    #: which reads only lease/journal files, so live == replayed trivially;
    #: None for single-host campaigns keeps their exports byte-identical
    shard: dict | None = None
    #: per-fault-generator outcome counters (generator -> outcome -> n);
    #: populated only when a campaign declares a non-default fault model,
    #: so default campaigns' exports stay byte-identical.  Journal-
    #: derivable: the generator name comes from the journal header's spec,
    #: identical live and replayed.
    generator_outcomes: dict[str, dict[str, int]] = field(default_factory=dict)
    cycle_hist: dict[tuple[str, str], Histogram] = field(default_factory=dict)
    wall_hist: dict[tuple[str, str], Histogram] = field(default_factory=dict)

    # ------------------------------------------------------------ folding

    def _bucket(self, hists: dict, key: tuple[str, str],
                bounds: Sequence[float]) -> Histogram:
        hist = hists.get(key)
        if hist is None:
            hist = hists[key] = Histogram(bounds)
        return hist

    def fold(self, record, wall_s: float | None = None,
             generator: str | None = None) -> None:
        """Fold one finished :class:`FaultRecord` into the aggregate.

        ``generator`` is the spec's fault-generator name (``None`` for the
        uniform default): live folds pass it from the spec, replayed folds
        from the journal header, so the two views stay identical.
        """
        out = record.outcome.value
        self.finished += 1
        self.outcomes[out] = self.outcomes.get(out, 0) + 1
        if generator is not None:
            per = self.generator_outcomes.setdefault(generator, {})
            per[out] = per.get(out, 0) + 1
        kind = getattr(record, "sim_error_kind", None)
        if kind:
            self.sim_error_kinds[kind] = self.sim_error_kinds.get(kind, 0) + 1
        retries = getattr(record, "retries", 0)
        if retries:
            self.retried += 1
            self.retries_total += retries
        if record.crash_reason == "timeout":
            self.timeouts += 1
        if record.crash_reason == "hang":
            self.hangs += 1
        if getattr(record, "masked_reason", None) == "corrected":
            self.corrected += 1
        if kind == "integrity":
            self.integrity_quarantined += 1
        if getattr(record, "classified_by", None) == "liveness":
            self.liveness_skips += 1
        if kind == "liveness":
            self.liveness_disagreements += 1
        if getattr(record, "stopped_on_hvf", False):
            self.stopped_on_hvf += 1
        path = _record_path(record)
        if path == FAST_FORWARD:
            self.checkpoint_restores += 1
        if getattr(record, "early_exited", False):
            self.early_exits += 1
        self._bucket(self.cycle_hist, (out, path), CYCLE_BUCKETS).add(
            float(record.cycles)
        )
        if wall_s is not None:
            self._bucket(self.wall_hist, (out, path), WALL_BUCKETS).add(wall_s)

    @classmethod
    def from_records(cls, records: Iterable,
                     planned: int = 0) -> "CampaignAggregate":
        agg = cls(planned=planned)
        for record in records:
            agg.fold(record)
        return agg

    # ------------------------------------------------------------ views

    @property
    def masked(self) -> int:
        return self.outcomes.get(Outcome.MASKED.value, 0)

    @property
    def sdc(self) -> int:
        return self.outcomes.get(Outcome.SDC.value, 0)

    @property
    def crash(self) -> int:
        return self.outcomes.get(Outcome.CRASH.value, 0)

    @property
    def due(self) -> int:
        return self.outcomes.get(Outcome.DUE.value, 0)

    @property
    def quarantined(self) -> int:
        return self.outcomes.get(Outcome.SIM_FAULT.value, 0)

    @property
    def protection_coverage(self) -> float | None:
        """``(corrected + DUE) / (corrected + DUE + SDC + Crash)``.

        ``None`` while no fault has exercised the question — the same
        definition as :func:`repro.core.metrics.coverage`, computable live
        because both inputs are folded from journaled record fields.
        """
        caught = self.corrected + self.due
        exercised = caught + self.sdc + self.crash
        if exercised == 0:
            return None
        return caught / exercised

    @property
    def n_valid(self) -> int:
        return self.finished - self.quarantined

    def reconcilable(self) -> dict:
        """The journal-derivable view of this aggregate.

        Guaranteed identical whether the aggregate was computed live or
        folded from ``CampaignJournal.load()``: it reads only journaled
        record fields, and the cycle histograms are summed over the
        fast-forward split (``restored_from`` is deliberately not
        serialized, so a replayed fold sees every run as from-scratch).
        """
        by_outcome: dict[str, Histogram] = {}
        for (out, _path), hist in sorted(self.cycle_hist.items()):
            merged = by_outcome.get(out)
            if merged is None:
                merged = by_outcome[out] = Histogram(hist.bounds)
            merged.merge(hist)
        doc = {
            "finished": self.finished,
            "outcomes": dict(self.outcomes),
            "sim_error_kinds": dict(sorted(self.sim_error_kinds.items())),
            "retried": self.retried,
            "retries_total": self.retries_total,
            "timeouts": self.timeouts,
            "hangs": self.hangs,
            "corrected": self.corrected,
            "integrity_quarantined": self.integrity_quarantined,
            "stopped_on_hvf": self.stopped_on_hvf,
            "cycle_hist": {
                out: hist.to_dict() for out, hist in sorted(by_outcome.items())
            },
        }
        if self.liveness_skips or self.liveness_disagreements:
            # liveness-only keys (both journal-derivable: classified_by and
            # sim_error_kind are serialized) — omitted when zero so a
            # non-liveness campaign's view stays exactly as it always was
            doc["liveness_skips"] = self.liveness_skips
            doc["liveness_disagreements"] = self.liveness_disagreements
        if self.generator_outcomes:
            # fault-model-only key — omitted for default-generator
            # campaigns so their view stays exactly as it always was
            doc["generator_outcomes"] = {
                gen: dict(sorted(per.items()))
                for gen, per in sorted(self.generator_outcomes.items())
            }
        return doc

    def to_dict(self) -> dict:
        doc = self.reconcilable()
        doc.update({
            "planned": self.planned,
            "resumed": self.resumed,
            "dispatched": self.dispatched,
            "checkpoint_restores": self.checkpoint_restores,
            "early_exits": self.early_exits,
            "pool_respawns": self.pool_respawns,
            "serial_degradations": self.serial_degradations,
            "adaptive_stops": self.adaptive_stops,
            "adaptive_faults_saved": self.adaptive_faults_saved,
            "adaptive_margin": self.adaptive_margin,
            "wall_hist": {
                f"{out}/{path}": hist.to_dict()
                for (out, path), hist in sorted(self.wall_hist.items())
            },
        })
        if self.shard is not None:
            doc["shard"] = dict(self.shard)
        return doc


def aggregate_from_journal(path: str | Path) -> tuple[CampaignAggregate, dict | None]:
    """Fold a journal into an aggregate; returns ``(aggregate, header)``.

    Tolerates a torn trailing line exactly like
    :meth:`~repro.core.journal.CampaignJournal.load`; ``planned`` is taken
    from the header's spec when present.
    """
    from repro.core.journal import JournalFollower

    follower = JournalFollower(path)
    agg = CampaignAggregate()
    # materialize before folding: the header line precedes every record,
    # so the generator attribution is known for the whole batch
    records = list(follower.poll())
    header = follower.header
    spec = (header or {}).get("spec") or {}
    fm = spec.get("fault_model")
    generator = fm.get("name") if isinstance(fm, dict) else None
    for record in records:
        agg.fold(record, generator=generator)
    if isinstance(spec.get("faults"), int):
        agg.planned = spec["faults"]
    return agg, header


def labels_from_spec(spec: Mapping) -> dict[str, str]:
    """Prometheus identity labels for a campaign spec (CPU or DSA)."""
    if "target" in spec:
        keys = ("isa", "workload", "target", "model")
    else:
        keys = ("design", "component", "model")
    return {k: str(spec[k]) for k in keys if spec.get(k) is not None}


# --------------------------------------------------------------------------
# progress rendering
# --------------------------------------------------------------------------


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}" if h else f"{m}:{s:02d}"


def render_progress(agg: CampaignAggregate,
                    elapsed_s: float | None = None) -> str:
    """One live progress line: done/total, faults/sec, ETA, outcome counts."""
    done = agg.resumed + agg.finished
    total = agg.planned or done
    parts = [f"{done}/{total} faults" + (
        f" ({done / total:5.1%})" if total else "")]
    if elapsed_s and elapsed_s > 0 and agg.finished:
        rate = agg.finished / elapsed_s
        parts.append(f"{rate:.2f} faults/s")
        if total > done:
            parts.append(f"eta {_fmt_eta((total - done) / rate)}")
    parts.append(
        f"masked {agg.masked} sdc {agg.sdc} crash {agg.crash}"
        + (f" quarantined {agg.quarantined}" if agg.quarantined else "")
    )
    extras = []
    if agg.resumed:
        extras.append(f"resumed {agg.resumed}")
    if agg.retried:
        extras.append(f"retried {agg.retried}")
    if agg.timeouts:
        extras.append(f"timeouts {agg.timeouts}")
    if agg.hangs:
        extras.append(f"hangs {agg.hangs}")
    if agg.due:
        extras.append(f"due {agg.due}")
    if agg.corrected:
        extras.append(f"corrected {agg.corrected}")
    if agg.liveness_skips:
        extras.append(f"analytic {agg.liveness_skips}/{agg.finished}")
    if agg.liveness_disagreements:
        extras.append(f"liveness-disagree {agg.liveness_disagreements}")
    if agg.pool_respawns:
        extras.append(f"respawns {agg.pool_respawns}")
    if agg.checkpoint_restores:
        extras.append(f"ff {agg.checkpoint_restores}/{agg.finished}")
    if extras:
        parts.append(" ".join(extras))
    return " | ".join(parts)


class ProgressPrinter:
    """Throttled progress-line writer (stderr by default)."""

    def __init__(self, stream=None, min_interval_s: float = 0.5,
                 clock: Callable[[], float] = time.monotonic):
        self._stream = stream
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._last = float("-inf")

    @property
    def stream(self):
        return self._stream if self._stream is not None else sys.stderr

    def update(self, agg: CampaignAggregate, elapsed_s: float | None = None,
               force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last < self.min_interval_s:
            return
        self._last = now
        self.stream.write(render_progress(agg, elapsed_s) + "\n")
        self.stream.flush()


# --------------------------------------------------------------------------
# Prometheus textfile export
# --------------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(base: Mapping[str, str], **extra: str) -> str:
    merged = {**base, **extra}
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in merged.items()
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(agg: CampaignAggregate,
                  labels: Mapping[str, str] | None = None) -> str:
    """Render the aggregate as a Prometheus textfile snapshot.

    Counter values are plain campaign totals (a textfile collector re-reads
    the whole file, so no delta bookkeeping is needed).  Histograms use the
    standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` form.
    """
    base = dict(labels or {})
    lines: list[str] = []

    def gauge(name: str, value: float, help_text: str, **extra) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_labels(base, **extra)} {_fmt_value(value)}")

    def counter(name: str, help_text: str,
                series: Sequence[tuple[dict, float]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        for extra, value in series:
            lines.append(f"{name}{_labels(base, **extra)} {_fmt_value(value)}")

    gauge("repro_faults_planned", agg.planned,
          "total masks in the campaign sample")
    gauge("repro_faults_resumed", agg.resumed,
          "masks satisfied from a resume journal")
    counter("repro_faults_dispatched_total",
            "fault simulations handed to an executor",
            [({}, agg.dispatched)])
    counter("repro_faults_finished_total",
            "fault records completed (fresh, not resumed)",
            [({}, agg.finished)])
    counter("repro_fault_outcomes_total",
            "fault records by terminal outcome",
            [({"outcome": out}, n) for out, n in sorted(agg.outcomes.items())])
    counter("repro_fault_sim_error_kinds_total",
            "simulator-failure records by sim_error_kind",
            [({"kind": k}, n)
             for k, n in sorted(agg.sim_error_kinds.items())])
    counter("repro_faults_retried_total",
            "fault records that consumed at least one retry",
            [({}, agg.retried)])
    counter("repro_fault_retries_total", "total retries consumed",
            [({}, agg.retries_total)])
    counter("repro_fault_timeouts_total",
            "watchdog Crash(timeout) verdicts", [({}, agg.timeouts)])
    counter("repro_fault_hangs_total",
            "deterministic Crash(hang) verdicts", [({}, agg.hangs)])
    counter("repro_fault_corrected_total",
            "masked runs whose flips a protection scheme repaired in place",
            [({}, agg.corrected)])
    if agg.protection_coverage is not None:
        gauge("repro_protection_coverage", agg.protection_coverage,
              "share of consequential faults the protection scheme caught")
    counter("repro_fault_integrity_quarantines_total",
            "sanitizer integrity quarantines",
            [({}, agg.integrity_quarantined)])
    if agg.liveness_skips or agg.liveness_disagreements:
        # liveness-only series: a campaign without liveness pre-analysis
        # exports byte-identical metrics to one predating the feature
        counter("repro_liveness_skips_total",
                "fault records classified analytically by the liveness "
                "pre-analysis (no simulation)",
                [({}, agg.liveness_skips)])
        counter("repro_liveness_simulated_total",
                "fault records the liveness pre-analysis could not prove "
                "and handed to the simulator",
                [({}, agg.finished - agg.liveness_skips)])
        counter("repro_liveness_disagreements_total",
                "audit-mode quarantines where simulation contradicted an "
                "analytic Masked claim",
                [({}, agg.liveness_disagreements)])
    if agg.generator_outcomes:
        # fault-model-only series: a default-generator campaign exports
        # byte-identical metrics to one predating the registry
        counter("repro_fault_generator_outcomes_total",
                "fault records by generator strategy and terminal outcome",
                [({"generator": gen, "outcome": out}, n)
                 for gen, per in sorted(agg.generator_outcomes.items())
                 for out, n in sorted(per.items())])
    counter("repro_fault_hvf_stops_total",
            "runs halted by the stop_on_hvf early exit",
            [({}, agg.stopped_on_hvf)])
    counter("repro_fault_checkpoint_restores_total",
            "runs fast-forwarded from a golden checkpoint",
            [({}, agg.checkpoint_restores)])
    counter("repro_fault_early_exits_total",
            "runs ended by golden-trace re-convergence",
            [({}, agg.early_exits)])
    counter("repro_supervisor_pool_respawns_total",
            "worker-pool breakages the supervisor recovered from",
            [({}, agg.pool_respawns)])
    counter("repro_supervisor_serial_degradations_total",
            "campaigns degraded to serial execution",
            [({}, agg.serial_degradations)])
    counter("repro_adaptive_stops_total",
            "adaptive sequential-sampling early stops",
            [({}, agg.adaptive_stops)])
    counter("repro_adaptive_faults_saved_total",
            "budgeted faults adaptive stopping never dispatched",
            [({}, agg.adaptive_faults_saved)])
    if agg.adaptive_margin is not None:
        gauge("repro_adaptive_achieved_margin", agg.adaptive_margin,
              "achieved error margin at the adaptive stop")
    if agg.shard is not None:
        # distributed-only series: folded purely from lease/journal files,
        # so a replayed fold over the same directory exports the identical
        # values; single-host campaigns omit them entirely
        counter("repro_lease_expirations_total",
                "shard leases that expired and were reclaimed "
                "(generation bumps observed in the shard journals)",
                [({}, agg.shard.get("lease_expirations", 0))])
        counter("repro_shards_stolen_total",
                "shards created by end-of-campaign work stealing splits",
                [({}, agg.shard.get("shards_stolen", 0))])
        counter("repro_merge_conflicts_total",
                "mask ids with byte-differing duplicate records across a "
                "cell's shard journals",
                [({}, agg.shard.get("merge_conflicts", 0))])

    for name, hists, help_text in (
        ("repro_fault_cycles", agg.cycle_hist,
         "simulated cycles per fault run"),
        ("repro_fault_wall_seconds", agg.wall_hist,
         "wall-clock seconds per fault run"),
    ):
        if not hists:
            continue
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} histogram")
        for (out, path), hist in sorted(hists.items()):
            cumulative = 0
            for bound, count in zip((*hist.bounds, float("inf")), hist.counts):
                cumulative += count
                lines.append(
                    f"{name}_bucket"
                    f"{_labels(base, outcome=out, path=path, le=_fmt_value(bound))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{name}_sum{_labels(base, outcome=out, path=path)} "
                f"{_fmt_value(hist.total)}"
            )
            lines.append(
                f"{name}_count{_labels(base, outcome=out, path=path)} "
                f"{hist.n}"
            )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse a textfile snapshot back into ``{'name{labels}': value}``.

    Only what the reconciliation checks need — not a general parser.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        out[key] = float(value)
    return out


def write_prometheus(path: str | Path, agg: CampaignAggregate,
                     labels: Mapping[str, str] | None = None) -> None:
    Path(path).write_text(to_prometheus(agg, labels))


# --------------------------------------------------------------------------
# the live telemetry hub
# --------------------------------------------------------------------------


class Telemetry:
    """Event hub a running campaign reports into.

    Owns one :class:`CampaignAggregate` (folded live), an optional
    :class:`ProgressPrinter`, an optional ``--metrics-out`` path written on
    :meth:`campaign_finished`, and any number of event sinks (callables
    receiving every :class:`TelemetryEvent`).

    Strictly observational: it never writes to the journal and never
    changes a record, so journals stay byte-identical with telemetry on or
    off.
    """

    def __init__(self, progress: ProgressPrinter | None = None,
                 metrics_out: str | Path | None = None,
                 labels: Mapping[str, str] | None = None,
                 sinks: Sequence[Callable[[TelemetryEvent], None]] = (),
                 clock: Callable[[], float] = time.monotonic):
        self.aggregate = CampaignAggregate()
        self.progress = progress
        self.metrics_out = Path(metrics_out) if metrics_out else None
        self.labels = dict(labels or {})
        self._sinks = list(sinks)
        self._clock = clock
        self._started: float | None = None

    # ------------------------------------------------------------ plumbing

    def add_sink(self, sink: Callable[[TelemetryEvent], None]) -> None:
        self._sinks.append(sink)

    @property
    def elapsed_s(self) -> float | None:
        if self._started is None:
            return None
        return self._clock() - self._started

    def _emit(self, kind: str, **fields) -> None:
        if self._sinks:
            event = TelemetryEvent(kind=kind, **fields)
            for sink in self._sinks:
                sink(event)

    def _tick(self, force: bool = False) -> None:
        if self.progress is not None:
            self.progress.update(self.aggregate, self.elapsed_s, force=force)

    # ------------------------------------------------------------ campaign hooks

    def campaign_started(self, planned: int, resumed: int = 0,
                         labels: Mapping[str, str] | None = None) -> None:
        if labels:
            self.labels.update(labels)
        self._started = self._clock()
        self.aggregate.planned = planned
        self.aggregate.resumed = resumed
        self._emit("campaign_started", detail=f"planned={planned} resumed={resumed}")
        self._tick(force=True)

    def fault_dispatched(self, mask_id: int, attempt: int = 0) -> None:
        if attempt == 0:
            self.aggregate.dispatched += 1
        self._emit("fault_dispatched", mask_id=mask_id, attempt=attempt)

    def fault_finished(self, record, wall_s: float | None = None,
                       generator: str | None = None) -> None:
        self.aggregate.fold(record, wall_s=wall_s, generator=generator)
        mask_id = record.mask.mask_id
        self._emit("fault_finished", mask_id=mask_id, wall_s=wall_s,
                   record=record)
        if getattr(record, "restored_from", 0):
            self._emit("checkpoint_restore", mask_id=mask_id,
                       detail=f"cycle={record.restored_from}")
        if getattr(record, "early_exited", False):
            self._emit("early_exit", mask_id=mask_id)
        if getattr(record, "classified_by", None) == "liveness":
            self._emit("liveness_skip", mask_id=mask_id)
        if getattr(record, "retries", 0):
            self._emit("retry", mask_id=mask_id,
                       attempt=record.retries,
                       detail=record.sim_error_kind)
        if record.outcome is Outcome.SIM_FAULT:
            self._emit("quarantine", mask_id=mask_id,
                       detail=record.sim_error_kind)
        self._tick()

    def adaptive_stop(self, done: int, budget: int, margin: float) -> None:
        """An adaptive campaign hit its target margin before the budget.

        Live-only (like checkpoint restores): the stop is an execution
        detail, not a journaled fact — a resumed campaign re-derives the
        identical stop from the journal prefix, so nothing needs recording.
        """
        self.aggregate.adaptive_stops += 1
        self.aggregate.adaptive_faults_saved += max(0, budget - done)
        self.aggregate.adaptive_margin = margin
        self._emit("adaptive_stop",
                   detail=f"done={done} budget={budget} margin={margin:.4f}")

    def supervisor_event(self, kind: str, info: Mapping) -> None:
        """Adapter for :func:`repro.core.supervisor.run_supervised` events."""
        if kind == "pool_respawn":
            self.aggregate.pool_respawns += 1
            self._emit("pool_respawn", detail=str(info.get("respawns")))
        elif kind == "serial_degradation":
            self.aggregate.serial_degradations += 1
            self._emit("serial_degradation")
        elif kind == "retry":
            self._emit("retry", attempt=info.get("attempt"),
                       detail=info.get("reason"))
        # 'dispatch' is translated by the campaign driver, which knows the
        # index -> mask_id mapping; unknown kinds are ignored by design.

    def campaign_finished(self) -> None:
        self._tick(force=True)
        self._emit("campaign_finished")
        if self.metrics_out is not None:
            write_prometheus(self.metrics_out, self.aggregate, self.labels)
